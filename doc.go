// Package esthera is a particle filter toolkit for many-core
// architectures — a from-scratch Go reproduction of the system described
// in "Adapting Particle Filter Algorithms to Many-Core Architectures"
// (Chitchian, van Amesfoort, Simonetto, Keviczky, Sips; IPDPS Workshops
// 2013), whose CUDA/OpenCL toolkit was also named Esthera.
//
// The toolkit separates generic particle filtering from model-specific
// routines: implement the Model interface (state transition sampling and
// measurement likelihood) and any of the filters will estimate it.
//
// The headline algorithm is a fully distributed particle filter: a
// network of small sub-filters, each resampling locally and exchanging
// its best few particles with topological neighbors (ring, 2-D torus, or
// all-to-all) every round. On the bundled many-core device substrate
// (work-groups of barrier-phased lanes, one sub-filter per work-group)
// this design scales to millions of particles; rules of thumb for
// configuring it are derived in the paper and reproduced by the
// experiment suite (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	m, sc, _ := esthera.NewArmScenario(5)       // 5-joint robotic arm
//	f, _ := esthera.NewFilter(m, esthera.DefaultConfig())
//	errs, _ := esthera.Track(f, sc, 100, 42)    // per-step position error
//
// See the examples directory for complete programs and cmd/ for the
// experiment drivers.
package esthera
