package esthera

import (
	"net/http"

	"esthera/internal/model"
	"esthera/internal/model/arm"
	"esthera/internal/serve"
)

// Serving layer, re-exported from internal/serve: a multi-session
// estimation service running many concurrent tracking sessions on one
// shared many-core device, with admission control, cross-session
// batching, checkpoint/restore and introspection. See the package
// documentation of internal/serve and cmd/esthera-serve for the HTTP
// front-end.
type (
	// Server runs concurrent estimation sessions over one shared device.
	Server = serve.Server
	// ServerConfig shapes a Server: queue depth, batch size, session
	// limits.
	ServerConfig = serve.Config
	// FilterSpec describes a session's filter by registry and option
	// names; its zero value selects a 16×64 ring filter.
	FilterSpec = serve.FilterSpec
	// ModelFactory builds a fresh model instance for one session.
	ModelFactory = serve.ModelFactory
	// StepResult is one observation step's output.
	StepResult = serve.StepResult
	// Checkpoint is the deterministic serialization of one session.
	Checkpoint = serve.Checkpoint
	// ServerStats is the introspection snapshot (the /metrics payload).
	ServerStats = serve.Stats
	// ServerHealth is the robustness-layer slice of ServerStats:
	// readiness, drain state, cancellation and backpressure counters.
	ServerHealth = serve.HealthSnapshot
	// SaturatedError reports admission-queue overflow with a retry hint.
	SaturatedError = serve.SaturatedError
	// Client is an HTTP client for the serving API with
	// exponential-backoff retries that honor the server's Retry-After
	// admission hints.
	Client = serve.Client
	// ClientConfig shapes a Client: base URL, attempt bound, backoff.
	ClientConfig = serve.ClientConfig
	// APIError is a Client's non-retryable (or retry-exhausted) reply.
	APIError = serve.APIError
)

// Serving errors, re-exported for errors.Is.
var (
	ErrNotFound        = serve.ErrNotFound
	ErrServerClosed    = serve.ErrClosed
	ErrServerDraining  = serve.ErrDraining
	ErrTooManySessions = serve.ErrTooManySessions
)

// NewServerClient builds a retrying HTTP client for a serving endpoint.
func NewServerClient(cfg ClientConfig) *Client {
	return serve.NewClient(cfg)
}

// BuiltinModels returns the standard model registry for serving: every
// bundled benchmark model by name. The "arm" entry serves the Table II
// default arm (5 joints); register arm.New directly for other arms.
func BuiltinModels() map[string]ModelFactory {
	return map[string]ModelFactory{
		"ungm":       func() (model.Model, error) { return model.NewUNGM(), nil },
		"bearings":   func() (model.Model, error) { return model.NewBearings(), nil },
		"volatility": func() (model.Model, error) { return model.NewStochasticVolatility(), nil },
		"vehicle":    func() (model.Model, error) { return model.NewVehicle(), nil },
		"arm":        func() (model.Model, error) { return arm.New(arm.Config{}) },
	}
}

// NewServer starts an estimation server over the builtin model registry.
// Use NewServerWithModels to serve custom models.
func NewServer(cfg ServerConfig) *Server {
	return serve.NewServer(cfg, BuiltinModels())
}

// NewServerWithModels starts an estimation server over a custom model
// registry.
func NewServerWithModels(cfg ServerConfig, models map[string]ModelFactory) *Server {
	return serve.NewServer(cfg, models)
}

// NewServerHandler exposes a Server as a JSON-over-HTTP API (see
// internal/serve's NewHandler for the route table).
func NewServerHandler(s *Server) http.Handler {
	return serve.NewHandler(s)
}
