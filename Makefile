.PHONY: build test verify bench serve

build:
	go build ./...

test:
	go test ./...

# Build + vet + full test suite, plus the concurrency-heavy packages
# under the race detector. This is the pre-merge gate.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

serve:
	go run ./cmd/esthera-serve
