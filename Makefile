.PHONY: build test verify bench bench-json serve

build:
	go build ./...

test:
	go test ./...

# Build + vet + full test suite, plus the concurrency-heavy packages
# under the race detector. This is the pre-merge gate.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Round hot-path benchmarks (unfused / fused / serve-batched) written to
# BENCH_2.json, with the recorded pre-optimization baseline merged in.
bench-json:
	./scripts/bench.sh

serve:
	go run ./cmd/esthera-serve
