.PHONY: build test lint vet-ratchet verify ci bench bench-json serve chaos

# Build-info stamping: esthera/internal/telemetry.Version defaults to
# "dev"; builds through make stamp it from git so `esthera-serve
# -version`, the listen banner and /healthz report the exact commit.
VERSION ?= $(shell git describe --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X esthera/internal/telemetry.Version=$(VERSION)"

build:
	go build $(LDFLAGS) ./...

test:
	go test ./...

# Run the esthera-vet static-analysis suite (determinism, barrier
# safety, float ordering, checkpoint wire-format compatibility, and the
# compiler-diagnostic contracts: noalloc, bce ratchet, draw order, lock
# order) over the whole module. Exits non-zero on any finding.
lint:
	go run ./cmd/esthera-vet ./...

# Recompute scripts/bce_baseline.txt from the tree's current
# //esthera:hotpath bce functions. Run after a deliberate, reviewed
# change to a hot loop's retained bounds checks; the diff is the audit.
vet-ratchet:
	go run ./cmd/esthera-vet -ratchet

# Build + vet + esthera-vet + full test suite, plus every package under
# the race detector. This is the pre-merge gate.
verify:
	./scripts/verify.sh

# The full CI pipeline: build, go vet, esthera-vet, tests, race sweep,
# and a benchmark smoke run.
ci:
	./scripts/ci.sh

bench:
	go test -bench=. -benchmem

# Round hot-path benchmarks (unfused / fused / serve-batched) written to
# BENCH_2.json, with the recorded pre-optimization baseline merged in.
bench-json:
	./scripts/bench.sh

serve:
	go run ./cmd/esthera-serve

# Sharded-serving chaos drill: router + 3 replicas, swarm load, kill -9
# and restart one replica mid-run. Fails on any non-retryable error or
# a blown p99 budget. Also runs inside verify via CHAOS=1.
chaos:
	./scripts/test_chaos_shards.sh
