#!/bin/sh
# Bounds-check-elimination audit for the vectorized hot paths, now a
# thin wrapper over the bce analyzer (`esthera-vet -run bce`): every
# function marked `//esthera:hotpath bce` is rebuilt with
# -d=ssa/check_bce and its retained checks are classified. Setup-class
# checks (outside loops: slice-header construction, table indexing) are
# sanctioned by design; loop-class checks are ratcheted against
# scripts/bce_baseline.txt — audited residuals the prove pass cannot
# eliminate, like strided RNG reads (zs[2*i]). Any NEW per-element-loop
# check fails this script with its source position, instead of relying
# on a human eyeballing raw compiler output.
#
# After a deliberate, reviewed change to a hot loop, refresh the
# baseline with `make vet-ratchet`.
#
# Usage: scripts/bce.sh [package ...]
# Package arguments are accepted for compatibility with the old audit
# but the sweep is always module-wide: the analyzer's package filter
# already restricts it to the numeric core, and partial runs would
# leave the ratchet unchecked elsewhere.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
	echo "bce.sh: note: ignoring package arguments ($*); the bce sweep is module-wide" >&2
fi

exec go run ./cmd/esthera-vet -run bce ./...
