#!/bin/sh
# Bounds-check-elimination audit for the vectorized hot paths: rebuilds
# the numeric core with -d=ssa/check_bce and prints every retained
# bounds check with its source line, so a regression in the hoisted
# [:n:n] slicing patterns (see DESIGN.md "Memory layout") is visible at
# a glance.
#
# The audit's expectation is NOT zero findings: per-group setup code
# (sub-slice construction, per-sub-filter table indexing) and the cold
# AoS pack/unpack boundary keep their checks by design, and the Go
# prove pass cannot eliminate strided RNG reads (zs[2*i] — it does not
# reason through the multiply). What must stay check-free is the
# per-element bodies of the StepVec kernels: the column loops ranging
# over a [:n:n]-hoisted destination. Eyeball the output — a finding
# inside a `for i := range d0`-style loop is a regression.
#
# Usage: scripts/bce.sh [package ...]  (defaults to the numeric core)
set -eu

cd "$(dirname "$0")/.."

PKGS="${*:-./internal/kernels ./internal/sortnet ./internal/scan ./internal/rng ./internal/model/...}"

for pkg in $PKGS; do
	imp="$(go list "$pkg" 2>/dev/null)" || continue
	for p in $imp; do
		echo "== $p"
		# -gcflags scoped to one package so dependency rebuilds stay quiet.
		go build -gcflags="$p=-d=ssa/check_bce" "$p" 2>&1 |
			grep -v '^#' |
			while IFS= read -r line; do
				file="${line%%:*}"
				ln="$(echo "$line" | cut -d: -f2)"
				src="$(sed -n "${ln}p" "$file" 2>/dev/null | sed 's/^[[:space:]]*//')"
				printf '  %-48s %s\n' "$line" "$src"
			done
	done
done
