#!/bin/sh
# Full verification: build + vet + the esthera-vet static-analysis suite,
# then tests everywhere, then every package again under the race
# detector. esthera-vet enforces the determinism and work-group safety
# invariants (see DESIGN.md "Static guarantees"); any diagnostic fails
# the run.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/esthera-vet -list
go run ./cmd/esthera-vet ./...
go test ./...
go test -race ./...
# The serving robustness layer (cancellation, shutdown, drain) is pure
# concurrency: hammer it repeatedly under the race detector so
# interleaving-dependent regressions surface before merge.
go test -race -count=3 ./internal/serve/...
