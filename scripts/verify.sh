#!/bin/sh
# Full verification: build + vet + the esthera-vet static-analysis suite,
# then tests everywhere, then every package again under the race
# detector. esthera-vet enforces the determinism and work-group safety
# invariants (see DESIGN.md "Static guarantees"); any diagnostic fails
# the run.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/esthera-vet -list
# -require makes the sweep fail loudly if a module-path change ever
# silently drops a load-bearing package from ./... coverage: telemetry
# and telemetry/log (leaf packages every hot path calls into, both under
# the noalloc ratchet for their disabled-path helpers), shard (framed
# wire structs under checkpointcompat), the //esthera:hotpath-annotated
# numeric core (kernels/sortnet/scan/rng/model under noalloc+bce, model
# under draworder), and serve (lockorder).
go run ./cmd/esthera-vet -require esthera/internal/telemetry,esthera/internal/telemetry/log,esthera/internal/shard,esthera/internal/kernels,esthera/internal/sortnet,esthera/internal/scan,esthera/internal/rng,esthera/internal/model,esthera/internal/model/arm,esthera/internal/serve ./...
go test ./...
go test -race ./...
# The vectorized lane kernels and the branchless sort/search paths are
# sensitive to codegen: re-run the numeric core once more under
# GOAMD64=v3 (AVX2-era ISA selection) so an instruction-selection
# difference that breaks bit-identity surfaces here, not on a user's
# machine. Probed: only meaningful on amd64, and only when the host CPU
# actually has the v3 feature set (avx2 implies the rest for this
# check's purposes).
if [ "$(go env GOARCH)" = "amd64" ] && grep -q avx2 /proc/cpuinfo 2>/dev/null; then
	GOAMD64=v3 go test ./internal/kernels/ ./internal/filter/ ./internal/sortnet/ ./internal/rng/ ./internal/model/...
else
	echo "verify: skipping GOAMD64=v3 leg (not amd64 or no avx2)"
fi
# The serving robustness layer (cancellation, shutdown, drain) is pure
# concurrency: hammer it repeatedly under the race detector so
# interleaving-dependent regressions surface before merge.
go test -race -count=3 ./internal/serve/...
# Adaptive-resampling accuracy gate: the sort-free Metropolis resampler
# and the ESS-driven adaptive allocator must match the fixed-allocation
# RWS/Vose baseline on the arm model. The 2x ratio is deliberately loose
# for the reduced CI budget — it catches a broken resampler or allocator
# (order-of-magnitude divergence), not run-to-run noise.
go run ./cmd/esthera-accuracy -exp adaptive -runs 3 -steps 30 -gate 2.0
# Observability must be free when disabled: assert the fused round hot
# path is within tolerance of the newest recorded benchmark baseline.
scripts/bench_guard.sh
# Sharded-serving chaos drill (router + replicas + kill/restore) is
# opt-in: it builds three binaries and runs ~30s of wall-clock load.
if [ "${CHAOS:-0}" = "1" ]; then
	scripts/test_chaos_shards.sh
fi
