#!/bin/sh
# Chaos drill for the sharded serving stack: build the three binaries,
# start a router fronting 3 esthera-serve replicas (HTTP + shard
# transport each), drive swarm load for the whole run, kill -9 one
# replica mid-run and restart it later. esthera-swarm judges the run:
# it exits non-zero if any session saw a non-retryable error (the
# failover must be absorbed by 503+Retry-After retries) or stepping p99
# exceeded its budget. Replica death must cost retries, not errors.
#
# Opt-in from verify.sh via CHAOS=1 (or `make chaos`): it burns ~30s of
# wall clock and binds local ports (base CHAOS_PORT_BASE, default 19480).
#
# Usage: scripts/test_chaos_shards.sh
set -eu

cd "$(dirname "$0")/.."

PORT="${CHAOS_PORT_BASE:-19480}"
DURATION="${CHAOS_DURATION:-20s}"
SESSIONS="${CHAOS_SESSIONS:-9}"

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
	for p in $PIDS; do
		kill "$p" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "chaos: building binaries" >&2
go build -o "$TMP/esthera-serve" ./cmd/esthera-serve
go build -o "$TMP/esthera-router" ./cmd/esthera-router
go build -o "$TMP/esthera-swarm" ./cmd/esthera-swarm

# start_replica <index>: HTTP on PORT+i, shard transport on PORT+10+i.
# Prints the replica pid; logs append so a restart keeps history.
start_replica() {
	"$TMP/esthera-serve" \
		-addr "127.0.0.1:$((PORT + $1))" \
		-shard-addr "127.0.0.1:$((PORT + 10 + $1))" \
		-shard-name "r$1" \
		>>"$TMP/replica$1.log" 2>&1 &
	echo $!
}

R1="$(start_replica 1)"
R2="$(start_replica 2)"
R3="$(start_replica 3)"
PIDS="$R1 $R2 $R3"

SPEC="r1|http://127.0.0.1:$((PORT + 1))|127.0.0.1:$((PORT + 11))"
SPEC="$SPEC,r2|http://127.0.0.1:$((PORT + 2))|127.0.0.1:$((PORT + 12))"
SPEC="$SPEC,r3|http://127.0.0.1:$((PORT + 3))|127.0.0.1:$((PORT + 13))"

"$TMP/esthera-router" \
	-addr "127.0.0.1:$PORT" \
	-shards "$SPEC" \
	-probe 100ms -fail-after 2 -retry-hint 25ms \
	-snapshot 500ms -rebalance-threshold 3 \
	>"$TMP/router.log" 2>&1 &
ROUTER=$!
PIDS="$PIDS $ROUTER"

echo "chaos: starting swarm ($SESSIONS sessions, $DURATION)" >&2
"$TMP/esthera-swarm" \
	-router "http://127.0.0.1:$PORT" \
	-sessions "$SESSIONS" -duration "$DURATION" \
	-attempts 128 -p99-budget 2s \
	>"$TMP/swarm.json" &
SWARM=$!
PIDS="$PIDS $SWARM"

sleep 5
echo "chaos: kill -9 replica r2 (pid $R2)" >&2
kill -9 "$R2" 2>/dev/null || true

sleep 5
echo "chaos: restarting replica r2" >&2
R2="$(start_replica 2)"
PIDS="$PIDS $R2"

STATUS=0
wait "$SWARM" || STATUS=$?

echo "chaos: swarm summary:" >&2
cat "$TMP/swarm.json"

if [ "$STATUS" -ne 0 ]; then
	echo "chaos: FAIL — swarm saw non-retryable errors or blew its p99 budget" >&2
	echo "chaos: router log tail:" >&2
	tail -40 "$TMP/router.log" >&2 || true
	exit "$STATUS"
fi
echo "chaos: ok — replica death cost retries, not errors" >&2
