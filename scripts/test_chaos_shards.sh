#!/bin/sh
# Chaos drill for the sharded serving stack: build the three binaries,
# start a router fronting 3 esthera-serve replicas (HTTP + shard
# transport each), drive swarm load for the whole run, kill -9 one
# replica mid-run and restart it later. esthera-swarm judges the run:
# it exits non-zero if any session saw a non-retryable error (the
# failover must be absorbed by 503+Retry-After retries) or stepping p99
# exceeded its budget. Replica death must cost retries, not errors.
#
# Opt-in from verify.sh via CHAOS=1 (or `make chaos`): it burns ~30s of
# wall clock and binds local ports (base CHAOS_PORT_BASE, default 19480).
#
# Usage: scripts/test_chaos_shards.sh
set -eu

cd "$(dirname "$0")/.."

PORT="${CHAOS_PORT_BASE:-19480}"
DURATION="${CHAOS_DURATION:-20s}"
SESSIONS="${CHAOS_SESSIONS:-9}"

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
	for p in $PIDS; do
		kill "$p" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "chaos: building binaries" >&2
go build -o "$TMP/esthera-serve" ./cmd/esthera-serve
go build -o "$TMP/esthera-router" ./cmd/esthera-router
go build -o "$TMP/esthera-swarm" ./cmd/esthera-swarm
go build -o "$TMP/esthera-trace" ./cmd/esthera-trace

# start_replica <index>: HTTP on PORT+i, shard transport on PORT+10+i.
# Prints the replica pid; logs append so a restart keeps history.
# Tracing is on so the post-run merge can assert span continuity.
start_replica() {
	"$TMP/esthera-serve" \
		-addr "127.0.0.1:$((PORT + $1))" \
		-shard-addr "127.0.0.1:$((PORT + 10 + $1))" \
		-shard-name "r$1" -trace \
		>>"$TMP/replica$1.log" 2>&1 &
	echo $!
}

# fetch_traces <tag>: drain every process's span ring into
# trace_<proc>_<tag>.json. Drains are periodic (GET /trace empties the
# ring) so a long run cannot overflow spans recorded early — the
# failover spans from the kill land in the first drain. A dead or
# freshly restarted process is tolerated here; empty drains are
# filtered out before the merge.
fetch_traces() {
	"$TMP/esthera-trace" fetch -out "$TMP/trace_router_$1.json" \
		"http://127.0.0.1:$PORT/trace?format=raw" 2>/dev/null || true
	for i in 1 2 3; do
		"$TMP/esthera-trace" fetch -out "$TMP/trace_r${i}_$1.json" \
			"http://127.0.0.1:$((PORT + i))/trace?format=raw" 2>/dev/null || true
	done
}

R1="$(start_replica 1)"
R2="$(start_replica 2)"
R3="$(start_replica 3)"
PIDS="$R1 $R2 $R3"

SPEC="r1|http://127.0.0.1:$((PORT + 1))|127.0.0.1:$((PORT + 11))"
SPEC="$SPEC,r2|http://127.0.0.1:$((PORT + 2))|127.0.0.1:$((PORT + 12))"
SPEC="$SPEC,r3|http://127.0.0.1:$((PORT + 3))|127.0.0.1:$((PORT + 13))"

"$TMP/esthera-router" \
	-addr "127.0.0.1:$PORT" \
	-shards "$SPEC" \
	-probe 100ms -fail-after 2 -retry-hint 25ms \
	-snapshot 500ms -rebalance-threshold 3 -trace \
	>"$TMP/router.log" 2>&1 &
ROUTER=$!
PIDS="$PIDS $ROUTER"

# Periodic trace drains for the whole run: the span rings are
# fixed-capacity and swarm load overwrites them in a couple of seconds,
# so a single post-run drain would have lost the failover spans from
# the kill. Draining every second bounds any span's time-at-risk to
# one interval; same-named files land on the same merged track.
(
	n=0
	while :; do
		sleep 1
		n=$((n + 1))
		fetch_traces "p$n"
	done
) &
POLLER=$!
PIDS="$PIDS $POLLER"

echo "chaos: starting swarm ($SESSIONS sessions, $DURATION)" >&2
"$TMP/esthera-swarm" \
	-router "http://127.0.0.1:$PORT" \
	-sessions "$SESSIONS" -duration "$DURATION" \
	-attempts 128 -p99-budget 2s \
	>"$TMP/swarm.json" &
SWARM=$!
PIDS="$PIDS $SWARM"

sleep 5
echo "chaos: kill -9 replica r2 (pid $R2)" >&2
kill -9 "$R2" 2>/dev/null || true

sleep 5
echo "chaos: restarting replica r2" >&2
R2="$(start_replica 2)"
PIDS="$PIDS $R2"

STATUS=0
wait "$SWARM" || STATUS=$?

echo "chaos: swarm summary:" >&2
cat "$TMP/swarm.json"

if [ "$STATUS" -ne 0 ]; then
	echo "chaos: FAIL — swarm saw non-retryable errors or blew its p99 budget" >&2
	echo "chaos: router log tail:" >&2
	tail -40 "$TMP/router.log" >&2 || true
	exit "$STATUS"
fi

# Post-chaos trace merge: stop the poller, final drain, clock offsets
# from the router's ping estimator, then align every per-process trace
# onto one timeline.
kill "$POLLER" 2>/dev/null || true
# -require-cross fails the merge unless at least one trace ID observed
# in two or more processes traverses the failover path — proof that the
# killed replica's sessions kept their trace identity across the hop.
fetch_traces end
curl -sf "http://127.0.0.1:$PORT/v1/shards" >"$TMP/shards.json" ||
	wget -qO "$TMP/shards.json" "http://127.0.0.1:$PORT/v1/shards"

TRACES=""
for f in "$TMP"/trace_*.json; do
	[ -f "$f" ] || continue
	# Skip empty drains (a freshly restarted replica's ring starts empty).
	grep -q '"events":\[{' "$f" && TRACES="$TRACES $f"
done
if [ -z "$TRACES" ]; then
	echo "chaos: FAIL — no non-empty trace drains collected" >&2
	exit 1
fi
# shellcheck disable=SC2086 # TRACES is a space-separated file list
if ! "$TMP/esthera-trace" merge -out "$TMP/merged_trace.json" \
	-shards "$TMP/shards.json" -require-cross failover.place $TRACES >&2; then
	echo "chaos: FAIL — merged trace missing a cross-process failover trace" >&2
	exit 1
fi
# The merged artifact must itself be a parseable trace.
if ! "$TMP/esthera-trace" summary -in "$TMP/merged_trace.json" >&2; then
	echo "chaos: FAIL — merged trace does not parse" >&2
	exit 1
fi

echo "chaos: ok — replica death cost retries, not errors; failover kept trace continuity" >&2
