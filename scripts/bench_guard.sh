#!/bin/sh
# Guards the fused round hot path against overhead creep: reruns
# BenchmarkRoundFused (telemetry disabled — the default) and asserts
# (a) the best-of-N ns/op is within BENCH_GUARD_TOLERANCE percent
# (default 20) of the newest recorded BENCH_*.json baseline, and
# (b) the steady-state round performs zero heap allocations.
# Observability must be free when off; this is where that promise is
# enforced.
#
# The recorded baseline is a best-of-N on a noisy single-core host whose
# run-to-run spread is ±15%, so the default tolerance is wide: it exists
# to catch structural regressions (an extra pass over the particles, a
# lost fusion — tens of percent), not single-digit drift the host cannot
# resolve. Tighten BENCH_GUARD_TOLERANCE on a quiet machine.
#
# With no recorded baseline the guard warns and exits 0 (first run on a
# fresh tree), so verify.sh stays runnable everywhere.
#
# Usage: scripts/bench_guard.sh
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_GUARD_TOLERANCE:-20}"
COUNT="${BENCH_GUARD_COUNT:-3}"
BENCHTIME="${BENCH_GUARD_BENCHTIME:-1s}"

# Newest recorded run that carries a fused-round number. "Newest" is
# the highest PR number in the filename, NOT file mtime: not every PR
# records a bench, so the BENCH_<n>.json numbering has gaps (e.g. only
# BENCH_2 and BENCH_5), and a checkout or touch can reorder mtimes.
# Non-numeric suffixes (BENCH_custom.json from BENCH_OUT) are ignored.
BASELINE=""
BEST=-1
for f in BENCH_*.json; do
	[ -f "$f" ] || continue
	n="${f#BENCH_}"
	n="${n%.json}"
	case "$n" in
	'' | *[!0-9]*) continue ;;
	esac
	if [ "$n" -gt "$BEST" ] && grep -q '"BenchmarkRoundFused' "$f"; then
		BEST="$n"
		BASELINE="$f"
	fi
done
if [ -z "$BASELINE" ]; then
	echo "bench_guard: no BENCH_*.json baseline with BenchmarkRoundFused; skipping (run scripts/bench.sh to record one)" >&2
	exit 0
fi

# First match is the "current" section (emitted before any merged-in
# historical baseline section). The default (sorted RWS) series and the
# metropolis series are guarded separately: the sort-free resampler has
# its own cost profile, so min-ing across series would let either one
# regress behind the other's number.
BASE_NS="$(sed -n 's/.*"BenchmarkRoundFused\/[^"]*m=128[^/"]*": {"ns_per_op": \([0-9][0-9.e+]*\).*/\1/p' "$BASELINE" | head -1)"
BASE_MET_NS="$(sed -n 's/.*"BenchmarkRoundFused\/[^"]*metropolis[^"]*": {"ns_per_op": \([0-9][0-9.e+]*\).*/\1/p' "$BASELINE" | head -1)"
if [ -z "$BASE_NS" ]; then
	echo "bench_guard: could not parse BenchmarkRoundFused ns/op from $BASELINE; skipping" >&2
	exit 0
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench 'BenchmarkRoundFused$' -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee "$RAW"

FRESH_NS="$(awk '/^BenchmarkRoundFused/ && $1 !~ /metropolis/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i-1); if (best == "" || ns + 0 < best + 0) best = ns } END { print best }' "$RAW")"
FRESH_MET_NS="$(awk '/^BenchmarkRoundFused/ && $1 ~ /metropolis/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i-1); if (best == "" || ns + 0 < best + 0) best = ns } END { print best }' "$RAW")"
if [ -z "$FRESH_NS" ]; then
	echo "bench_guard: BenchmarkRoundFused produced no ns/op" >&2
	exit 1
fi

# Zero-allocation assertion: the fused round reuses every buffer it
# touches, so any steady-state allocation is a leak into the hot path.
MAX_ALLOCS="$(awk '/^BenchmarkRoundFused/ { for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") if ($(i-1) + 0 > max + 0) max = $(i-1) } END { print max + 0 }' "$RAW")"
if [ "$MAX_ALLOCS" -gt 0 ]; then
	echo "bench_guard: FAIL [allocs/op] — fused round allocates $MAX_ALLOCS objects/op, want 0 (ns/op not at fault; find the escape with \`go run ./cmd/esthera-vet -run noalloc ./...\`)" >&2
	exit 1
fi
echo "bench_guard: fused round allocs/op: 0"

awk -v fresh="$FRESH_NS" -v base="$BASE_NS" -v tol="$TOLERANCE" -v src="$BASELINE" 'BEGIN {
	limit = base * (1 + tol / 100)
	delta = (fresh - base) / base * 100
	printf "bench_guard: fused round %.0f ns/op vs %.0f baseline (%s): %+.1f%% (tolerance +%s%%)\n", fresh, base, src, delta, tol
	if (fresh > limit) {
		printf "bench_guard: FAIL [ns/op] — fused round %.0f ns/op exceeds limit %.0f (baseline %.0f +%s%%); allocs/op already passed at 0\n", fresh, limit, base, tol
		exit 1
	}
	print "bench_guard: ok"
}'

# Metropolis series: guarded only once a baseline records it (older
# BENCH_*.json predate the series); the allocs/op ratchet above already
# covers it unconditionally.
if [ -n "$FRESH_MET_NS" ] && [ -n "$BASE_MET_NS" ]; then
	awk -v fresh="$FRESH_MET_NS" -v base="$BASE_MET_NS" -v tol="$TOLERANCE" -v src="$BASELINE" 'BEGIN {
		limit = base * (1 + tol / 100)
		delta = (fresh - base) / base * 100
		printf "bench_guard: fused round (metropolis) %.0f ns/op vs %.0f baseline (%s): %+.1f%% (tolerance +%s%%)\n", fresh, base, src, delta, tol
		if (fresh > limit) {
			printf "bench_guard: FAIL [ns/op] — metropolis fused round %.0f ns/op exceeds limit %.0f (baseline %.0f +%s%%)\n", fresh, limit, base, tol
			exit 1
		}
		print "bench_guard: ok (metropolis)"
	}'
elif [ -n "$FRESH_MET_NS" ]; then
	echo "bench_guard: metropolis series measured at $FRESH_MET_NS ns/op; no recorded baseline yet (allocs/op ratchet applied)"
fi
