#!/bin/sh
# Guards the fused round hot path against overhead creep: reruns
# BenchmarkRoundFused (telemetry disabled — the default) and asserts the
# best-of-N ns/op is within BENCH_GUARD_TOLERANCE percent (default 3)
# of the newest recorded BENCH_*.json baseline. Observability must be
# free when off; this is where that promise is enforced.
#
# With no recorded baseline the guard warns and exits 0 (first run on a
# fresh tree), so verify.sh stays runnable everywhere.
#
# Usage: scripts/bench_guard.sh
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_GUARD_TOLERANCE:-3}"
COUNT="${BENCH_GUARD_COUNT:-3}"
BENCHTIME="${BENCH_GUARD_BENCHTIME:-1s}"

# Newest recorded run that carries a fused-round number. "Newest" is
# the highest PR number in the filename, NOT file mtime: not every PR
# records a bench, so the BENCH_<n>.json numbering has gaps (e.g. only
# BENCH_2 and BENCH_5), and a checkout or touch can reorder mtimes.
# Non-numeric suffixes (BENCH_custom.json from BENCH_OUT) are ignored.
BASELINE=""
BEST=-1
for f in BENCH_*.json; do
	[ -f "$f" ] || continue
	n="${f#BENCH_}"
	n="${n%.json}"
	case "$n" in
	'' | *[!0-9]*) continue ;;
	esac
	if [ "$n" -gt "$BEST" ] && grep -q '"BenchmarkRoundFused' "$f"; then
		BEST="$n"
		BASELINE="$f"
	fi
done
if [ -z "$BASELINE" ]; then
	echo "bench_guard: no BENCH_*.json baseline with BenchmarkRoundFused; skipping (run scripts/bench.sh to record one)" >&2
	exit 0
fi

# First match is the "current" section (emitted before any merged-in
# historical baseline section).
BASE_NS="$(sed -n 's/.*"BenchmarkRoundFused[^"]*": {"ns_per_op": \([0-9][0-9.e+]*\).*/\1/p' "$BASELINE" | head -1)"
if [ -z "$BASE_NS" ]; then
	echo "bench_guard: could not parse BenchmarkRoundFused ns/op from $BASELINE; skipping" >&2
	exit 0
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench 'BenchmarkRoundFused$' -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"

FRESH_NS="$(awk '/^BenchmarkRoundFused/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i-1); if (best == "" || ns + 0 < best + 0) best = ns } END { print best }' "$RAW")"
if [ -z "$FRESH_NS" ]; then
	echo "bench_guard: BenchmarkRoundFused produced no ns/op" >&2
	exit 1
fi

awk -v fresh="$FRESH_NS" -v base="$BASE_NS" -v tol="$TOLERANCE" -v src="$BASELINE" 'BEGIN {
	limit = base * (1 + tol / 100)
	delta = (fresh - base) / base * 100
	printf "bench_guard: fused round %.0f ns/op vs %.0f baseline (%s): %+.1f%% (tolerance +%s%%)\n", fresh, base, src, delta, tol
	if (fresh > limit) {
		printf "bench_guard: FAIL — fused round regressed past tolerance\n"
		exit 1
	}
	print "bench_guard: ok"
}'
