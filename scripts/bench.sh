#!/bin/sh
# Benchmarks the round hot path (unfused / fused / serve-batched) and
# writes BENCH_<pr>.json with ns/op and particles/sec per configuration.
# The PR number is derived from CHANGES.md: the highest `- PR n:` line
# plus one. (The highest, not the count — not every PR records a bench,
# so neither the CHANGES numbering nor the BENCH_* files on disk can be
# assumed contiguous.) Override with BENCH_PR, or the whole filename
# with BENCH_OUT.
#
# A "baseline" section is merged in from a recorded `go test -bench`
# output of the pre-optimization tree (the PR 1 commit, measured by
# running the same unfused round benchmark there); by default it comes
# from scripts/bench_baseline_seed.txt. Pass a different capture file as
# $1, or an empty string to skip the baseline section. The headline
# number is fused throughput vs that unfused baseline.
#
# Usage: scripts/bench.sh [baseline-capture-file]
set -eu

cd "$(dirname "$0")/.."

BASELINE_FILE="${1-scripts/bench_baseline_seed.txt}"
COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCHTIME:-2s}"
LAST_PR="$(sed -n 's/^- PR \([0-9][0-9]*\):.*/\1/p' CHANGES.md | sort -n | tail -1)"
PR_NUM="${BENCH_PR:-$((${LAST_PR:-0} + 1))}"
OUT="${BENCH_OUT:-BENCH_${PR_NUM}.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkRound$|BenchmarkRoundFused$|BenchmarkRoundBatch$' \
	-benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee "$RAW"

# Best (min ns/op) run per benchmark, as JSON objects. allocs/op comes
# from -benchmem; the hot paths are expected to hold it at zero
# steady-state (enforced by bench_guard.sh).
emit_json() {
	awk '
	/^Benchmark/ {
		name = $1; ns = ""; pps = ""; allocs = ""
		for (i = 2; i <= NF; i++) {
			if ($(i) == "ns/op") ns = $(i-1)
			if ($(i) == "particles/s") pps = $(i-1)
			if ($(i) == "allocs/op") allocs = $(i-1)
		}
		if (ns == "") next
		if (!(name in best) || ns + 0 < best[name] + 0) {
			best[name] = ns
			bpps[name] = pps
			ballocs[name] = allocs
			if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
		}
	}
	END {
		for (i = 1; i <= n; i++) {
			name = order[i]
			printf "    \"%s\": {\"ns_per_op\": %s, \"particles_per_sec\": %s, \"allocs_per_op\": %s}%s\n", \
				name, best[name], (bpps[name] == "" ? "null" : bpps[name]), \
				(ballocs[name] == "" ? "null" : ballocs[name]), (i < n ? "," : "")
		}
	}' "$1"
}

{
	echo "{"
	echo "  \"bench\": \"round hot path: SoA particle columns + vectorized lane kernels + block RNG\","
	echo "  \"benchtime\": \"$BENCHTIME\", \"count\": $COUNT,"
	echo "  \"host\": \"$(go env GOOS)/$(go env GOARCH), $(getconf _NPROCESSORS_ONLN 2>/dev/null || echo '?') cpu\","
	echo "  \"current\": {"
	emit_json "$RAW"
	echo "  }"
	if [ -n "$BASELINE_FILE" ] && [ -f "$BASELINE_FILE" ]; then
		echo "  ,\"baseline\": {"
		emit_json "$BASELINE_FILE"
		echo "  }"
	fi
	echo "}"
} >"$OUT"

echo "wrote $OUT"
