package esthera_test

import (
	"math"
	"testing"

	"esthera"
)

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := esthera.DefaultConfig()
	if cfg.ParticlesPerSubFilter != 128 {
		t.Fatalf("particles per sub-filter %d, want 128 (Table II GPU default)", cfg.ParticlesPerSubFilter)
	}
	if cfg.SubFilters != 120 {
		t.Fatalf("sub-filters %d, want 120 (Table II)", cfg.SubFilters)
	}
	if cfg.ExchangeScheme != "ring" || cfg.ExchangeCount != 1 {
		t.Fatalf("exchange %s/%d, want ring/1 (Table II)", cfg.ExchangeScheme, cfg.ExchangeCount)
	}
}

func TestQuickstartFlow(t *testing.T) {
	m, sc, err := esthera.NewArmScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	if m.StateDim() != 9 {
		t.Fatalf("arm state dim %d, want 9", m.StateDim())
	}
	cfg := esthera.DefaultConfig()
	cfg.SubFilters, cfg.ParticlesPerSubFilter = 32, 32 // keep the test quick
	f, err := esthera.NewFilter(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := esthera.Track(f, sc, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 60 {
		t.Fatalf("%d error samples", len(errs))
	}
	tail := 0.0
	for _, e := range errs[40:] {
		tail += e
	}
	if tail/20 > 0.3 {
		t.Fatalf("quickstart filter trailing error %v m, want < 0.3", tail/20)
	}
}

func TestSequentialAndCentralizedConstructors(t *testing.T) {
	m, sc, err := esthera.NewArmScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := esthera.DefaultConfig()
	cfg.SubFilters, cfg.ParticlesPerSubFilter = 8, 16
	seqf, err := esthera.NewSequentialFilter(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := esthera.NewCentralizedFilter(m, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []esthera.Filter{seqf, cent} {
		errs, err := esthera.Track(f, sc, 20, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range errs {
			if math.IsNaN(e) {
				t.Fatalf("%s produced NaN error", f.Name())
			}
		}
	}
}

func TestOtherScenarios(t *testing.T) {
	for name, mk := range map[string]func() (esthera.Model, esthera.Scenario){
		"ungm":       func() (esthera.Model, esthera.Scenario) { return esthera.NewUNGMScenario(1) },
		"bearings":   func() (esthera.Model, esthera.Scenario) { return esthera.NewBearingsScenario(1) },
		"volatility": func() (esthera.Model, esthera.Scenario) { return esthera.NewVolatilityScenario(1) },
	} {
		m, sc := mk()
		f, err := esthera.NewCentralizedFilter(m, 256, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		errs, err := esthera.Track(f, sc, 20, 9)
		if err != nil || len(errs) != 20 {
			t.Fatalf("%s: %v / %d samples", name, err, len(errs))
		}
	}
}

func TestKalmanConstructors(t *testing.T) {
	m, sc := esthera.NewBearingsScenario(2)
	lin, ok := m.(esthera.Linearizable)
	if !ok {
		t.Fatal("bearings model must be Linearizable")
	}
	for _, f := range []esthera.Filter{esthera.NewEKF(lin, 1), esthera.NewUKF(lin, 1)} {
		errs, err := esthera.Track(f, sc, 30, 5)
		if err != nil {
			t.Fatal(err)
		}
		if errs[len(errs)-1] > 5 {
			t.Fatalf("%s final error %v", f.Name(), errs[len(errs)-1])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	m, _, _ := esthera.NewArmScenario(2)
	bad := []esthera.Config{
		{SubFilters: 8, ParticlesPerSubFilter: 16, ExchangeScheme: "bogus", ExchangeCount: 1},
		{SubFilters: 8, ParticlesPerSubFilter: 16, Resampler: "bogus"},
		{SubFilters: 8, ParticlesPerSubFilter: 16, Policy: "bogus"},
		{SubFilters: 0, ParticlesPerSubFilter: 16},
	}
	for i, cfg := range bad {
		if _, err := esthera.NewFilter(m, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := esthera.Track(nil, nil, 0, 0); err == nil {
		t.Error("Track with 0 steps must error")
	}
	// Both implementations accept the full resampler set.
	cfg := esthera.Config{SubFilters: 4, ParticlesPerSubFilter: 16, Resampler: "systematic", ExchangeScheme: "none"}
	if _, err := esthera.NewSequentialFilter(m, cfg); err != nil {
		t.Errorf("sequential systematic: %v", err)
	}
	if _, err := esthera.NewFilter(m, cfg); err != nil {
		t.Errorf("parallel systematic: %v", err)
	}
	// Adaptive allocation is a parallel-filter feature; the sequential
	// builder must say so rather than silently ignore it.
	cfg.AdaptEvery = 4
	if _, err := esthera.NewSequentialFilter(m, cfg); err == nil {
		t.Error("sequential filter accepted AdaptEvery")
	}
	if _, err := esthera.NewFilter(m, cfg); err != nil {
		t.Errorf("parallel adaptive: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (esthera.Config{}).Validate(); err != nil {
		t.Errorf("zero config must validate (all defaults): %v", err)
	}
	if err := esthera.DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
	good := esthera.Config{
		ExchangeScheme: "hypercube", Resampler: "vose", Policy: "ess",
		Streams: "mtgp", Estimator: "weighted-mean",
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid names rejected: %v", err)
	}
	good2 := esthera.Config{
		Resampler: "metropolis", Policy: "ess:0.3", AdaptEvery: 4,
	}
	if err := good2.Validate(); err != nil {
		t.Errorf("valid names rejected: %v", err)
	}
	bad := []esthera.Config{
		{ExchangeScheme: "mesh"},
		{Resampler: "multinomial"},
		{Policy: "sometimes"},
		{Streams: "xorshift"},
		{Estimator: "median"},
		{AdaptEvery: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
}

func TestVehicleScenario(t *testing.T) {
	m, sc := esthera.NewVehicleScenario(true)
	if m.StateDim() != 4 || m.Name() != "vehicle-map" {
		t.Fatalf("vehicle model wrong: dim %d name %s", m.StateDim(), m.Name())
	}
	f, err := esthera.NewCentralizedFilter(m, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := esthera.Track(f, sc, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, e := range errs {
		mean += e
	}
	// GPS σ is 8 m; a working filter must do clearly better.
	if mean/60 > 8 {
		t.Fatalf("vehicle mean error %v m, want < 8", mean/60)
	}
	mPlain, _ := esthera.NewVehicleScenario(false)
	if mPlain.Name() != "vehicle" {
		t.Fatalf("plain vehicle name %s", mPlain.Name())
	}
}

func TestClusterFilterConstructor(t *testing.T) {
	m, sc, err := esthera.NewArmScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := esthera.NewClusterFilter(m, esthera.ClusterConfig{
		Nodes: 2, SubFiltersPerNode: 8, ParticlesPerSubFilter: 16,
		ExchangeCount: 1, Network: "ib", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs, err := esthera.Track(f, sc, 30, 3)
	if err != nil || len(errs) != 30 {
		t.Fatalf("cluster track: %v / %d", err, len(errs))
	}
	if _, err := esthera.NewClusterFilter(m, esthera.ClusterConfig{
		Nodes: 2, SubFiltersPerNode: 8, ParticlesPerSubFilter: 16, Network: "bogus",
	}); err == nil {
		t.Fatal("bogus network profile accepted")
	}
}

func TestEstimatorConstructor(t *testing.T) {
	m, _ := esthera.NewUNGMScenario(1)
	if _, err := esthera.NewCentralizedFilterWithEstimator(m, 64, 1, "weighted-mean"); err != nil {
		t.Fatal(err)
	}
	if _, err := esthera.NewCentralizedFilterWithEstimator(m, 64, 1, "bogus"); err == nil {
		t.Fatal("bogus estimator accepted")
	}
}

func TestAuxiliaryFilterConstructor(t *testing.T) {
	m, sc := esthera.NewUNGMScenario(3)
	f, err := esthera.NewAuxiliaryFilter(m, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := esthera.Track(f, sc, 25, 5)
	if err != nil || len(errs) != 25 {
		t.Fatalf("APF track: %v / %d", err, len(errs))
	}
	// Stochastic volatility lacks StepMean → refused.
	mv, _ := esthera.NewVolatilityScenario(1)
	if _, err := esthera.NewAuxiliaryFilter(mv, 64, 1); err == nil {
		t.Fatal("APF accepted a model without StepMean")
	}
}

func TestRunClosedLoop(t *testing.T) {
	cfg := esthera.DefaultConfig()
	cfg.SubFilters, cfg.ParticlesPerSubFilter = 16, 16
	res, err := esthera.RunClosedLoop(5, 60, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PointingErr) != 60 || len(res.EstErr) != 60 {
		t.Fatalf("result lengths %d/%d", len(res.PointingErr), len(res.EstErr))
	}
	tail := 0.0
	for _, e := range res.PointingErr[30:] {
		tail += e
	}
	if tail/30 > 1.0 {
		t.Fatalf("closed-loop pointing error %v rad, want < 1", tail/30)
	}
	// Invalid joint count propagates.
	if _, err := esthera.RunClosedLoop(-1, 10, cfg, 1); err == nil {
		t.Fatal("negative joints accepted")
	}
}

func TestGaussianFilterConstructor(t *testing.T) {
	m, sc := esthera.NewBearingsScenario(4)
	f, err := esthera.NewGaussianFilter(m, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := esthera.Track(f, sc, 20, 2)
	if err != nil || len(errs) != 20 {
		t.Fatalf("gaussian track: %v / %d", err, len(errs))
	}
	if _, err := esthera.NewGaussianFilter(m, 1, 1); err == nil {
		t.Fatal("n=1 gaussian accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	m, _, _ := esthera.NewArmScenario(3)
	for _, policy := range []string{"always", "never", "ess", "random"} {
		cfg := esthera.Config{SubFilters: 4, ParticlesPerSubFilter: 8, Policy: policy, ExchangeScheme: "none"}
		if _, err := esthera.NewSequentialFilter(m, cfg); err != nil {
			t.Errorf("policy %q rejected: %v", policy, err)
		}
	}
	if _, err := esthera.NewSequentialFilter(m, esthera.Config{
		SubFilters: 4, ParticlesPerSubFilter: 8, ExchangeScheme: "none", Estimator: "bogus",
	}); err == nil {
		t.Error("bogus estimator accepted by sequential filter")
	}
}
