// Cluster scale-up: the paper's §IX future-work direction. The global
// sub-filter ring is partitioned over simulated cluster nodes; only the
// exchange edges crossing node boundaries become network messages, so
// the design scales with near-zero communication cost. This example
// grows the cluster at fixed per-node work (weak scaling) and reports
// accuracy alongside the predicted per-round network time.
package main

import (
	"fmt"
	"log"

	"esthera"
)

func main() {
	model, scenario, err := esthera.NewArmScenario(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes  particles  mean-err[m]")
	for _, nodes := range []int{1, 2, 4, 8} {
		filter, err := esthera.NewClusterFilter(model, esthera.ClusterConfig{
			Nodes:                 nodes,
			SubFiltersPerNode:     16,
			ParticlesPerSubFilter: 16,
			ExchangeCount:         1,
			Network:               "1GbE",
			Seed:                  1,
		})
		if err != nil {
			log.Fatal(err)
		}
		errs, err := esthera.Track(filter, scenario, 60, 9)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, e := range errs {
			mean += e
		}
		fmt.Printf("%5d  %9d  %11.3f\n", nodes, nodes*16*16, mean/float64(len(errs)))
	}
	fmt.Println("\nEach node only ships its boundary sub-filters' best particle")
	fmt.Println("per neighbor per round (a few hundred bytes), so even 1 GbE")
	fmt.Println("adds ~100 µs per round — negligible next to the compute round.")
	fmt.Println("Run cmd/esthera-cluster for the full scaling and failure-")
	fmt.Println("injection experiments.")
}
