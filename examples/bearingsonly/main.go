// Bearings-only tracking: a four-state-variable "small estimation
// problem" (the class where the paper reports kHz update rates), used
// here to compare the particle filter against the parametric baselines
// the paper's introduction contrasts it with: the extended and unscented
// Kalman filters and the Gaussian particle filter.
package main

import (
	"fmt"
	"log"

	"esthera"
)

func main() {
	// 60 steps keeps the target within useful triangulation range of the
	// two sensors; bearings-only accuracy degrades ~quadratically with
	// range, for every filter alike.
	const steps = 60
	model, scenario := esthera.NewBearingsScenario(17)
	lin, ok := model.(esthera.Linearizable)
	if !ok {
		log.Fatal("bearings model must be linearizable")
	}

	cfg := esthera.DefaultConfig()
	cfg.SubFilters, cfg.ParticlesPerSubFilter = 32, 64
	dpf, err := esthera.NewFilter(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pf, err := esthera.NewCentralizedFilter(model, 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	gpf, err := esthera.NewGaussianFilter(model, 2048, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("filter       mean-err  final-err")
	for _, f := range []esthera.Filter{
		dpf, pf, gpf, esthera.NewEKF(lin, 1), esthera.NewUKF(lin, 1),
	} {
		errs, err := esthera.Track(f, scenario, steps, 23)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, e := range errs {
			mean += e
		}
		mean /= float64(len(errs))
		fmt.Printf("%-12s %8.3f  %9.3f\n", f.Name(), mean, errs[len(errs)-1])
	}
	fmt.Println("\nOn this near-Gaussian problem all five are competitive —")
	fmt.Println("the regime where the paper notes parametric filters suffice.")
	fmt.Println("Rerun the UNGM comparison (esthera-accuracy -exp variants) to")
	fmt.Println("see the Kalman filters fail on a multimodal posterior.")
}
