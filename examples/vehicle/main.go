// Vehicle localization and map matching: the related-work application
// class the paper discusses (four state variables, particle filter with
// a road-map prior). Compares the same particle filter with and without
// map matching: the on-road soft constraint roughly halves the GPS-only
// localization error.
package main

import (
	"fmt"
	"log"

	"esthera"
)

func main() {
	const steps = 200
	run := func(mapMatching bool) float64 {
		model, scenario := esthera.NewVehicleScenario(mapMatching)
		cfg := esthera.DefaultConfig()
		cfg.SubFilters, cfg.ParticlesPerSubFilter = 32, 64
		filter, err := esthera.NewFilter(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		errs, err := esthera.Track(filter, scenario, steps, 99)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, e := range errs {
			mean += e
		}
		return mean / float64(len(errs))
	}

	plain := run(false)
	matched := run(true)
	fmt.Println("vehicle on a 100 m road grid, GPS σ = 8 m, 200 steps")
	fmt.Printf("GPS-only localization error: %6.2f m\n", plain)
	fmt.Printf("with map matching:           %6.2f m\n", matched)
	fmt.Printf("improvement:                 %6.1f%%\n", 100*(1-matched/plain))
	fmt.Println("\nThe road prior is multimodal near intersections (the vehicle")
	fmt.Println("could be on either crossing road), which is why map matching is")
	fmt.Println("a particle-filter problem rather than a Kalman-filter one.")
}
