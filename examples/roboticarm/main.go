// Robotic arm tracking: the paper's full application (§VII-A). Sweeps
// the arm's joint count (and with it the state dimension) and reports
// how accuracy and host update rate respond, contrasting the distributed
// filter with a centralized filter of the same total size — a miniature
// of the Fig. 4c / Fig. 9 story.
package main

import (
	"fmt"
	"log"
	"time"

	"esthera"
)

func main() {
	const steps = 80
	fmt.Println("joints  state-dim  filter        mean-err[m]  host-rate[Hz]")
	for _, joints := range []int{3, 5, 9} {
		model, scenario, err := esthera.NewArmScenario(joints)
		if err != nil {
			log.Fatal(err)
		}

		cfg := esthera.DefaultConfig()
		cfg.SubFilters, cfg.ParticlesPerSubFilter = 64, 64
		distributed, err := esthera.NewFilter(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		centralized, err := esthera.NewCentralizedFilter(model, 64*64, 1)
		if err != nil {
			log.Fatal(err)
		}

		for _, f := range []esthera.Filter{distributed, centralized} {
			start := time.Now()
			errs, err := esthera.Track(f, scenario, steps, 7)
			if err != nil {
				log.Fatal(err)
			}
			mean := 0.0
			for _, e := range errs {
				mean += e
			}
			mean /= float64(len(errs))
			rate := float64(steps) / time.Since(start).Seconds()
			fmt.Printf("%6d  %9d  %-12s  %11.3f  %13.1f\n",
				joints, model.StateDim(), f.Name(), mean, rate)
		}
	}
	fmt.Println("\nAs the state dimension grows, model evaluation dominates the")
	fmt.Println("runtime (Fig. 4c) while the distributed filter keeps pace with")
	fmt.Println("the centralized one at equal particle counts (Fig. 9).")
}
