// Serving: start the multi-session estimation server in-process, run
// several concurrent tracking sessions through the retrying API client,
// checkpoint one mid-run, restore it, and show that the restored
// session replays bit-identically. Finish with a graceful drain:
// readiness flips to 503 while in-flight steps complete. The same API
// is served standalone by cmd/esthera-serve.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"

	"esthera"
)

func main() {
	// An in-process server over the builtin model registry; in production
	// this is `esthera-serve` on its own host.
	s := esthera.NewServer(esthera.ServerConfig{Workers: 4})
	defer s.Shutdown()
	ts := httptest.NewServer(esthera.NewServerHandler(s))
	defer ts.Close()
	ctx := context.Background()

	// The retry client absorbs 429 backpressure using the server's own
	// adaptive Retry-After hints, so callers never hand-roll retry loops.
	client := esthera.NewServerClient(esthera.ClientConfig{BaseURL: ts.URL})
	if err := client.Ready(ctx); err != nil {
		log.Fatal(err)
	}

	// Eight concurrent sessions tracking the univariate nonstationary
	// growth model, each with its own seed and observation stream.
	const sessions = 8
	const steps = 20
	ids := make([]string, sessions)
	for i := range ids {
		id, err := client.Create(ctx, esthera.FilterSpec{
			Model: "ungm", SubFilters: 16, ParticlesPer: 64, Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for k := 1; k <= steps; k++ {
				z := []float64{10 * math.Sin(float64(k)*0.3+float64(i))}
				if _, err := client.Step(ctx, id, nil, z); err != nil {
					log.Fatal(err)
				}
			}
		}(i, id)
	}
	wg.Wait()

	// Checkpoint session 0, restore it as a new session, and verify both
	// produce identical estimates on the next observation.
	var cp json.RawMessage
	get(ts.URL+"/v1/sessions/"+ids[0]+"/checkpoint", &cp)
	var restored struct {
		ID string `json:"id"`
	}
	post(ts.URL+"/v1/restore", cp, &restored)
	z := []float64{3.25}
	a, err := client.Step(ctx, ids[0], nil, z)
	if err != nil {
		log.Fatal(err)
	}
	b, err := client.Step(ctx, restored.ID, nil, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original  %s: step %d estimate %.6f\n", ids[0], a.Step, a.State[0])
	fmt.Printf("restored  %s: step %d estimate %.6f\n", restored.ID, b.Step, b.State[0])
	if math.Float64bits(a.State[0]) != math.Float64bits(b.State[0]) {
		log.Fatal("restored session diverged")
	}
	fmt.Println("restored session replays bit-identically")

	// Introspection: per-session latency, the device kernel breakdown,
	// and the robustness-layer health counters.
	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions=%d mean batch=%.1f rejected=%d\n", len(st.Sessions), st.MeanBatch, st.Rejected)
	fmt.Printf("health: ready=%v in-flight=%d cancelled=%d retry-after=%.2fms batch-latency=%.0fµs\n",
		st.Health.Ready, st.Health.InFlight, st.Health.Cancelled, st.Health.RetryAfterMS, st.Health.BatchLatencyUS)
	for _, k := range st.Device.Kernels {
		fmt.Printf("  kernel %-16s launches=%-5d elapsed=%v\n", k.Name, k.Launches, k.Elapsed)
	}

	// Graceful drain: admission stops (new steps fail with ErrDraining,
	// /readyz goes 503 so load balancers route around the node) while
	// already-admitted steps complete and deliver.
	if err := s.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Step(ids[1], nil, z); !errors.Is(err, esthera.ErrServerDraining) {
		log.Fatalf("step while draining: %v, want ErrServerDraining", err)
	}
	if err := client.Ready(ctx); err == nil {
		log.Fatal("drained server still reports ready")
	}
	fmt.Println("drained: admission stopped, readiness 503, in-flight work delivered")
}

func post(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
