// Serving: start the multi-session estimation server in-process, run
// several concurrent tracking sessions over its HTTP API, checkpoint one
// mid-run, restore it, and show that the restored session replays
// bit-identically. The same API is served standalone by cmd/esthera-serve.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"

	"esthera"
)

func main() {
	// An in-process server over the builtin model registry; in production
	// this is `esthera-serve` on its own host.
	s := esthera.NewServer(esthera.ServerConfig{Workers: 4})
	defer s.Shutdown()
	ts := httptest.NewServer(esthera.NewServerHandler(s))
	defer ts.Close()

	// Eight concurrent sessions tracking the univariate nonstationary
	// growth model, each with its own seed and observation stream.
	const sessions = 8
	const steps = 20
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = create(ts.URL, esthera.FilterSpec{
			Model: "ungm", SubFilters: 16, ParticlesPer: 64, Seed: uint64(i + 1),
		})
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for k := 1; k <= steps; k++ {
				step(ts.URL, id, []float64{10 * math.Sin(float64(k)*0.3+float64(i))})
			}
		}(i, id)
	}
	wg.Wait()

	// Checkpoint session 0, restore it as a new session, and verify both
	// produce identical estimates on the next observation.
	var cp json.RawMessage
	get(ts.URL+"/v1/sessions/"+ids[0]+"/checkpoint", &cp)
	var restored struct {
		ID string `json:"id"`
	}
	post(ts.URL+"/v1/restore", cp, &restored)
	z := []float64{3.25}
	a := step(ts.URL, ids[0], z)
	b := step(ts.URL, restored.ID, z)
	fmt.Printf("original  %s: step %d estimate %.6f\n", ids[0], a.Step, a.State[0])
	fmt.Printf("restored  %s: step %d estimate %.6f\n", restored.ID, b.Step, b.State[0])
	if math.Float64bits(a.State[0]) != math.Float64bits(b.State[0]) {
		log.Fatal("restored session diverged")
	}
	fmt.Println("restored session replays bit-identically")

	// Introspection: per-session latency and the device kernel breakdown.
	var st esthera.ServerStats
	get(ts.URL+"/metrics", &st)
	fmt.Printf("sessions=%d mean batch=%.1f rejected=%d\n", len(st.Sessions), st.MeanBatch, st.Rejected)
	for _, k := range st.Device.Kernels {
		fmt.Printf("  kernel %-16s launches=%-5d elapsed=%v\n", k.Name, k.Launches, k.Elapsed)
	}
}

func create(base string, sp esthera.FilterSpec) string {
	var out struct {
		ID string `json:"id"`
	}
	post(base+"/v1/sessions", map[string]any{"spec": sp}, &out)
	return out.ID
}

func step(base, id string, z []float64) esthera.StepResult {
	var out esthera.StepResult
	post(base+"/v1/sessions/"+id+"/step", map[string]any{"z": z}, &out)
	return out
}

func post(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
