// Quickstart: build the paper's distributed particle filter with default
// Table II parameters and track the robotic arm's moving object for 100
// steps.
package main

import (
	"fmt"
	"log"

	"esthera"
)

func main() {
	// The benchmark scenario: a 5-joint robotic arm (9 state variables)
	// whose end-effector camera observes an object tracing a lemniscate.
	model, scenario, err := esthera.NewArmScenario(5)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's default configuration: 120 sub-filters × 128 particles,
	// ring exchange of one particle per neighbor, RWS resampling.
	cfg := esthera.DefaultConfig()
	filter, err := esthera.NewFilter(model, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Track for 100 steps; errors are Euclidean distances between the
	// estimated and true object position, in meters.
	errs, err := esthera.Track(filter, scenario, 100, 42)
	if err != nil {
		log.Fatal(err)
	}

	mean := 0.0
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	fmt.Printf("filter: %s over %d particles\n", filter.Name(), cfg.SubFilters*cfg.ParticlesPerSubFilter)
	fmt.Printf("mean tracking error: %.3f m\n", mean)
	fmt.Printf("final tracking error: %.3f m\n", errs[len(errs)-1])
}
