// Stochastic volatility: the econometrics application domain the paper's
// introduction cites (particle filter analysis of dynamic economic
// models). The filter estimates the latent log-volatility path of a
// return series; the measurement density is non-Gaussian in the state,
// so Kalman filters do not apply directly.
package main

import (
	"fmt"
	"log"
	"math"

	"esthera"
)

func main() {
	const steps = 250
	model, scenario := esthera.NewVolatilityScenario(101)

	// Volatility posteriors are smooth and unimodal, so the MMSE
	// (weighted-mean) estimate is the right operator; the max-weight
	// estimate essentially returns log(z²) and is far noisier.
	filter, err := esthera.NewCentralizedFilterWithEstimator(model, 4096, 5, "weighted-mean")
	if err != nil {
		log.Fatal(err)
	}
	errs, err := esthera.Track(filter, scenario, steps, 31)
	if err != nil {
		log.Fatal(err)
	}

	var sq float64
	for _, e := range errs {
		sq += e * e
	}
	rmse := math.Sqrt(sq / float64(len(errs)))
	// The stationary spread of the latent log-volatility is the no-data
	// baseline any useful filter must beat.
	prior := 0.16 / math.Sqrt(1-0.98*0.98)
	fmt.Printf("log-volatility RMSE over %d steps: %.3f (prior spread %.3f)\n", steps, rmse, prior)
	fmt.Printf("final-step log-volatility error:   %.3f\n", errs[len(errs)-1])
	fmt.Println("\nThe posterior of x_t given returns is non-Gaussian (the")
	fmt.Println("measurement is z = ε·exp(x/2)), which is why sequential Monte")
	fmt.Println("Carlo is the standard tool here (Flury & Shephard 2011).")
}
