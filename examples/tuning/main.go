// Tuning: a miniature of the paper's rules-of-thumb study (§VII-E).
// Sweeps the exchange scheme and exchange volume over a small and a
// large sub-filter network and prints which configuration wins where —
// reproducing the paper's guidance that low-connectivity schemes win in
// small networks while the extra connectivity of the torus pays off in
// large ones, and that exchanging even one particle per neighbor is
// almost all of the benefit.
package main

import (
	"fmt"
	"log"

	"esthera"
)

func meanError(m esthera.Model, sc esthera.Scenario, cfg esthera.Config, runs, steps int) float64 {
	sum := 0.0
	for run := 0; run < runs; run++ {
		cfg.Seed = uint64(run + 1)
		f, err := esthera.NewFilter(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		errs, err := esthera.Track(f, sc, steps, uint64(100+run))
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range errs {
			sum += e
		}
	}
	return sum / float64(runs*steps)
}

func main() {
	const runs, steps = 4, 50
	model, scenario, err := esthera.NewArmScenario(5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- exchange scheme vs network size (m=8, t=1) --")
	fmt.Println("sub-filters  scheme      mean-err[m]")
	for _, n := range []int{16, 256} {
		for _, scheme := range []string{"all-to-all", "ring", "torus"} {
			cfg := esthera.Config{
				SubFilters: n, ParticlesPerSubFilter: 8,
				ExchangeScheme: scheme, ExchangeCount: 1,
			}
			fmt.Printf("%11d  %-10s  %10.3f\n", n, scheme,
				meanError(model, scenario, cfg, runs, steps))
		}
	}

	fmt.Println("\n-- exchange volume (ring, 64 sub-filters, m=8) --")
	fmt.Println("t  mean-err[m]")
	for _, t := range []int{0, 1, 2, 3} {
		cfg := esthera.Config{
			SubFilters: 64, ParticlesPerSubFilter: 8,
			ExchangeScheme: "ring", ExchangeCount: t,
		}
		fmt.Printf("%d  %10.3f\n", t, meanError(model, scenario, cfg, runs, steps))
	}
	fmt.Println("\nRules of thumb (paper §VII-E): small setups favor limited")
	fmt.Println("communication over a low-connectivity network; large particle")
	fmt.Println("settings favor more connectivity; and t=1 captures nearly all")
	fmt.Println("of the exchange benefit.")
}
