// Closed-loop control: the particle filter in the loop. A PD controller
// drives the robotic arm's joints from the filter's state estimates so
// the end-effector camera keeps the moving object in view — the setting
// of the paper's companion work on real-time control (Chitchian et al.,
// IEEE TCST 2013), where estimation rate and accuracy directly determine
// control quality.
package main

import (
	"fmt"
	"log"
	"math"

	"esthera"
)

func main() {
	const steps = 200
	cfg := esthera.DefaultConfig()
	cfg.SubFilters, cfg.ParticlesPerSubFilter = 64, 64

	res, err := esthera.RunClosedLoop(5, steps, cfg, 7)
	if err != nil {
		log.Fatal(err)
	}

	burn := steps / 4
	var point, est float64
	worst := 0.0
	for i := burn; i < steps; i++ {
		point += res.PointingErr[i]
		est += res.EstErr[i]
		if res.PointingErr[i] > worst {
			worst = res.PointingErr[i]
		}
	}
	n := float64(steps - burn)
	fmt.Printf("closed-loop run: %d steps, 5-joint arm, %d particles\n",
		steps, cfg.SubFilters*cfg.ParticlesPerSubFilter)
	fmt.Printf("mean pointing error:  %5.1f° (%.3f rad)\n",
		point/n*180/math.Pi, point/n)
	fmt.Printf("worst pointing error: %5.1f°\n", worst*180/math.Pi)
	fmt.Printf("mean estimation error: %.3f m\n", est/n)
	fmt.Println("\nThe controller never sees the true state — only the filter's")
	fmt.Println("estimate — so estimation errors feed straight back into the")
	fmt.Println("plant. This is why the paper pushes estimation rates to")
	fmt.Println("hundreds of Hz: a slow or inaccurate filter destabilizes the loop.")
}
