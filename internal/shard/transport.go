package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler answers one request frame. Returning an error sends a
// FrameError to the caller (the connection stays up: handler errors
// are application-level); returning a *RemoteError preserves its code
// on the wire, any other error maps to CodeInternal.
type Handler interface {
	HandleFrame(remote string, t FrameType, payload []byte) (FrameType, []byte, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(remote string, t FrameType, payload []byte) (FrameType, []byte, error)

// HandleFrame implements Handler.
func (f HandlerFunc) HandleFrame(remote string, t FrameType, payload []byte) (FrameType, []byte, error) {
	return f(remote, t, payload)
}

// Listener serves the shard transport protocol on a TCP listener:
// per-connection, a Hello handshake followed by a strict
// request/response loop. Malformed frames kill the connection (the
// stream offset is unrecoverable); handler errors answer with
// FrameError and keep it.
type Listener struct {
	name string
	h    Handler

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewListener builds a transport listener identified as name in
// handshakes, dispatching request frames to h.
func NewListener(name string, h Handler) *Listener {
	return &Listener{name: name, h: h, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr and serves until Close. It returns
// once the listener is installed; the accept loop runs in background
// goroutines tracked by Close.
func (l *Listener) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return l.Serve(ln)
}

// Serve adopts an existing listener (ownership transfers: Close closes
// it) and starts the accept loop in the background.
func (l *Listener) Serve(ln net.Listener) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return errors.New("shard: listener closed")
	}
	if l.ln != nil {
		l.mu.Unlock()
		ln.Close()
		return errors.New("shard: listener already serving")
	}
	l.ln = ln
	l.mu.Unlock()
	l.wg.Add(1)
	go l.acceptLoop(ln)
	return nil
}

// Addr returns the bound address (nil before Serve).
func (l *Listener) Addr() net.Addr {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ln == nil {
		return nil
	}
	return l.ln.Addr()
}

// Close stops accepting, closes every live connection and waits for
// the per-connection goroutines to drain. Idempotent.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	l.closed = true
	ln := l.ln
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return nil
}

func (l *Listener) acceptLoop(ln net.Listener) {
	defer l.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go l.serveConn(conn)
	}
}

// connIdleTimeout bounds how long a served connection may sit between
// request frames before the read is abandoned; it keeps half-dead
// peers from pinning goroutines forever.
const connIdleTimeout = 5 * time.Minute

func (l *Listener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		conn.Close()
	}()

	// Handshake: the dialer speaks first; both directions send Hello.
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	t, payload, err := ReadFrame(conn)
	if err != nil || t != FrameHello {
		return
	}
	var hello HelloMsg
	if err := unmarshal(t, payload, &hello); err != nil || hello.Proto != ProtoVersion {
		_ = WriteFrame(conn, FrameError, marshal(ErrorMsg{Code: CodeBadRequest, Message: "bad handshake"}))
		return
	}
	if err := WriteFrame(conn, FrameHello, marshal(HelloMsg{Proto: ProtoVersion, Name: l.name})); err != nil {
		return
	}

	for {
		conn.SetDeadline(time.Now().Add(connIdleTimeout))
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, ErrMalformedFrame) {
				// Best-effort diagnosis for the peer, then cut the
				// stream: after a malformed header nothing downstream
				// can be framed again.
				_ = WriteFrame(conn, FrameError, marshal(ErrorMsg{Code: CodeBadRequest, Message: err.Error()}))
			}
			return
		}
		rt, rp, herr := l.h.HandleFrame(hello.Name, t, payload)
		if herr != nil {
			var rerr *RemoteError
			msg := ErrorMsg{Code: CodeInternal, Message: herr.Error()}
			if errors.As(herr, &rerr) {
				msg = ErrorMsg{Code: rerr.Code, Message: rerr.Message}
			}
			if errors.Is(herr, ErrMalformedFrame) {
				msg.Code = CodeBadRequest
			}
			rt, rp = FrameError, marshal(msg)
		}
		if err := WriteFrame(conn, rt, rp); err != nil {
			return
		}
	}
}

// Conn is one dialed transport connection. Calls are strictly
// request/response and serialized; concurrent callers queue on the
// connection mutex.
type Conn struct {
	mu     sync.Mutex
	c      net.Conn
	remote string
	broken bool
}

// DialTimeout bounds the TCP connect plus handshake of Dial.
const DialTimeout = 5 * time.Second

// Dial connects to a transport listener at addr, identifying as name
// in the handshake, and returns the connection after Hello exchange.
func Dial(ctx context.Context, addr, name string) (*Conn, error) {
	d := net.Dialer{Timeout: DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(DialTimeout))
	if err := WriteFrame(nc, FrameHello, marshal(HelloMsg{Proto: ProtoVersion, Name: name})); err != nil {
		nc.Close()
		return nil, err
	}
	t, payload, err := ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if t == FrameError {
		var em ErrorMsg
		_ = unmarshal(t, payload, &em)
		nc.Close()
		return nil, &RemoteError{Code: em.Code, Message: em.Message}
	}
	var hello HelloMsg
	if t != FrameHello || unmarshal(t, payload, &hello) != nil {
		nc.Close()
		return nil, fmt.Errorf("shard: handshake reply was %s, want hello", t)
	}
	nc.SetDeadline(time.Time{})
	return &Conn{c: nc, remote: hello.Name}, nil
}

// Remote returns the peer's handshake name.
func (c *Conn) Remote() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// callTimeout is the per-call deadline when the context carries none.
const callTimeout = 30 * time.Second

// Call sends one request frame and reads its reply. A FrameError reply
// surfaces as *RemoteError; any transport failure marks the connection
// broken (subsequent calls fail until redialed — the stream may hold an
// orphaned reply).
func (c *Conn) Call(ctx context.Context, t FrameType, payload []byte) (FrameType, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return 0, nil, errors.New("shard: connection broken")
	}
	deadline := time.Now().Add(callTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	c.c.SetDeadline(deadline)
	if err := WriteFrame(c.c, t, payload); err != nil {
		c.broken = true
		return 0, nil, err
	}
	rt, rp, err := ReadFrame(c.c)
	if err != nil {
		c.broken = true
		return 0, nil, err
	}
	if rt == FrameError {
		var em ErrorMsg
		if err := unmarshal(rt, rp, &em); err != nil {
			c.broken = true
			return 0, nil, err
		}
		return 0, nil, &RemoteError{Code: em.Code, Message: em.Message}
	}
	return rt, rp, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	return c.c.Close()
}

// Peer is a lazily-dialed, self-healing client for one transport
// address: the first Call dials, a transport failure drops the
// connection, and the next Call redials. Application-level errors
// (*RemoteError) do not recycle the connection.
type Peer struct {
	addr string
	name string

	mu   sync.Mutex
	conn *Conn
}

// NewPeer builds a peer client for the listener at addr, identifying
// as name when dialing.
func NewPeer(addr, name string) *Peer {
	return &Peer{addr: addr, name: name}
}

// Addr returns the peer's transport address.
func (p *Peer) Addr() string { return p.addr }

// Call issues one request, dialing or redialing as needed. One
// transport retry hides a connection that went stale between calls
// (listener restart, idle timeout); a fresh-dial failure is returned
// as-is.
func (p *Peer) Call(ctx context.Context, t FrameType, payload []byte) (FrameType, []byte, error) {
	for attempt := 0; ; attempt++ {
		conn, dialed, err := p.get(ctx)
		if err != nil {
			return 0, nil, err
		}
		rt, rp, err := conn.Call(ctx, t, payload)
		var rerr *RemoteError
		if err != nil && !errors.As(err, &rerr) {
			p.drop(conn)
			if ctx.Err() == nil && !dialed && attempt == 0 {
				continue // stale pooled connection: redial once
			}
			return 0, nil, err
		}
		return rt, rp, err
	}
}

// get returns the pooled connection, dialing if absent; dialed reports
// whether this call created it.
func (p *Peer) get(ctx context.Context) (conn *Conn, dialed bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p.conn, false, nil
	}
	c, err := Dial(ctx, p.addr, p.name)
	if err != nil {
		return nil, true, err
	}
	p.conn = c
	return c, true, nil
}

// drop discards a failed connection if it is still the pooled one.
func (p *Peer) drop(conn *Conn) {
	conn.Close()
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	p.mu.Unlock()
}

// Close drops the pooled connection.
func (p *Peer) Close() {
	p.mu.Lock()
	conn := p.conn
	p.conn = nil
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}
