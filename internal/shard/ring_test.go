package shard

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	build := func(order []string) *Ring {
		r := NewRing(0)
		for _, n := range order {
			r.Add(n)
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("t-%d", i)
		if got, want := a.Lookup(key), b.Lookup(key); got != want {
			t.Fatalf("key %q: placement depends on insertion order (%q vs %q)", key, got, want)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	shards := []string{"a", "b", "c"}
	for _, s := range shards {
		r.Add(s)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("t-%d", i))]++
	}
	for _, s := range shards {
		frac := float64(counts[s]) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("shard %q owns %.0f%% of keys; ring is badly skewed: %v", s, 100*frac, counts)
		}
	}
}

// TestRingMinimalRemap is the consistent-hashing property: dropping one
// shard moves only that shard's keys, everything else stays put.
func TestRingMinimalRemap(t *testing.T) {
	r := NewRing(0)
	for _, s := range []string{"a", "b", "c"} {
		r.Add(s)
	}
	const keys = 2000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Lookup(fmt.Sprintf("t-%d", i))
	}
	r.Remove("b")
	for i := range before {
		after := r.Lookup(fmt.Sprintf("t-%d", i))
		if before[i] != "b" && after != before[i] {
			t.Fatalf("key t-%d moved %q → %q though its shard survived", i, before[i], after)
		}
		if after == "b" {
			t.Fatalf("key t-%d still maps to the removed shard", i)
		}
	}
}

// TestRingLookupFuncFailover mirrors Remove with a liveness predicate:
// declaring a shard dead must reroute exactly the keys a Remove would.
func TestRingLookupFuncFailover(t *testing.T) {
	r := NewRing(0)
	for _, s := range []string{"a", "b", "c"} {
		r.Add(s)
	}
	removed := NewRing(0)
	for _, s := range []string{"a", "c"} {
		removed.Add(s)
	}
	alive := func(n string) bool { return n != "b" }
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("t-%d", i)
		if got, want := r.LookupFunc(key, alive), removed.Lookup(key); got != want {
			t.Fatalf("key %q: failover walk gave %q, membership removal gives %q", key, got, want)
		}
	}
	if got := r.LookupFunc("t-1", func(string) bool { return false }); got != "" {
		t.Fatalf("no live shard: got %q, want empty", got)
	}
	if got := NewRing(0).Lookup("t-1"); got != "" {
		t.Fatalf("empty ring: got %q, want empty", got)
	}
}

func TestRingMembers(t *testing.T) {
	r := NewRing(4)
	r.Add("b")
	r.Add("a")
	r.Add("a") // duplicate add is a no-op
	got := r.Members()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("members = %v, want [a b]", got)
	}
	r.Remove("zz") // absent remove is a no-op
	if len(r.points) != 2*4 {
		t.Fatalf("points = %d, want 8", len(r.points))
	}
}
