package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent hash ring mapping session ids onto shard names.
// Each shard owns Vnodes points on a 64-bit circle; a key hashes to a
// point and walks clockwise to the first shard point. Adding or
// removing one shard only remaps the keys whose arcs that shard's
// points bounded (~1/N of the space), which is what keeps placement
// stable while replicas come and go.
//
// The ring is deterministic: the same member set and vnode count place
// every key identically in every process, so a router restart recovers
// the same initial placements (migration overrides live in the
// router's table, not the ring). Not safe for concurrent mutation;
// the Router guards it with its own lock.
type Ring struct {
	vnodes int
	// points is sorted by hash; owner[i] names the shard owning
	// points[i].
	points []uint64
	owner  []string
	nodes  map[string]bool
}

// DefaultVnodes is the per-shard virtual node count when RingConfig
// leaves it zero: enough to keep the largest/smallest shard load ratio
// near 1 for single-digit shard counts.
const DefaultVnodes = 64

// NewRing builds an empty ring with the given virtual node count per
// shard (0 = DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hashKey is FNV-1a over the key bytes followed by a splitmix64-style
// avalanche finalizer: deterministic across processes and platforms,
// cheap, and well-spread even for near-identical short keys. The
// finalizer matters — raw FNV-1a maps "a#0".."a#63" onto one tiny arc
// (the trailing byte barely perturbs the state), which would collapse
// each shard's virtual nodes into a single effective point and ruin
// the load distribution.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a shard's points. Adding a present member is a no-op.
func (r *Ring) Add(name string) {
	if r.nodes[name] {
		return
	}
	r.nodes[name] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, hashKey(name+"#"+strconv.Itoa(i)))
		r.owner = append(r.owner, name)
	}
	r.sortPoints()
}

// Remove deletes a shard's points. Removing an absent member is a
// no-op.
func (r *Ring) Remove(name string) {
	if !r.nodes[name] {
		return
	}
	delete(r.nodes, name)
	points := r.points[:0]
	owner := r.owner[:0]
	for i, o := range r.owner {
		if o != name {
			points = append(points, r.points[i])
			owner = append(owner, o)
		}
	}
	r.points = points
	r.owner = owner
}

func (r *Ring) sortPoints() {
	idx := make([]int, len(r.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := r.points[idx[a]], r.points[idx[b]]
		if pa != pb {
			return pa < pb
		}
		// Hash ties break by owner name so the ring is deterministic
		// regardless of insertion order.
		return r.owner[idx[a]] < r.owner[idx[b]]
	})
	points := make([]uint64, len(idx))
	owner := make([]string, len(idx))
	for i, j := range idx {
		points[i] = r.points[j]
		owner[i] = r.owner[j]
	}
	r.points = points
	r.owner = owner
}

// Members returns the shard names on the ring, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the shard owning key ("" on an empty ring).
func (r *Ring) Lookup(key string) string {
	return r.LookupFunc(key, nil)
}

// LookupFunc returns the first shard clockwise from key's point for
// which ok returns true (nil ok accepts every shard). It walks at most
// one full circle of distinct shards; "" means no acceptable shard
// exists. This is both the primary placement (ok = nil) and the
// failover/ring-successor rule (ok = "is live"): a down shard's keys
// fall through to the next live shard, and only its keys move.
func (r *Ring) LookupFunc(key string, ok func(name string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points); i++ {
		name := r.owner[(start+i)%len(r.points)]
		if seen[name] {
			continue
		}
		seen[name] = true
		if ok == nil || ok(name) {
			return name
		}
		if len(seen) == len(r.nodes) {
			return ""
		}
	}
	return ""
}
