package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// echoHandler reflects every payload back with the same frame type,
// except FrameExport which reports a deliberate RemoteError.
func echoHandler() Handler {
	return HandlerFunc(func(remote string, t FrameType, payload []byte) (FrameType, []byte, error) {
		if t == FrameExport {
			return 0, nil, &RemoteError{Code: CodeNotFound, Message: "nothing to export"}
		}
		return t, payload, nil
	})
}

func startListener(t *testing.T, h Handler) *Listener {
	t.Helper()
	l := NewListener("test-listener", h)
	if err := l.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestTransportCallRoundTrip(t *testing.T) {
	l := startListener(t, echoHandler())
	ctx := context.Background()
	conn, err := Dial(ctx, l.Addr().String(), "caller")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Remote() != "test-listener" {
		t.Fatalf("handshake name %q, want test-listener", conn.Remote())
	}
	ft, payload, err := conn.Call(ctx, FramePing, []byte("ping-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if ft != FramePing || string(payload) != "ping-payload" {
		t.Fatalf("echo gave %v %q", ft, payload)
	}

	// Application errors keep the connection usable.
	if _, _, err := conn.Call(ctx, FrameExport, nil); err == nil {
		t.Fatal("want RemoteError")
	} else {
		var rerr *RemoteError
		if !errors.As(err, &rerr) || rerr.Code != CodeNotFound {
			t.Fatalf("err = %v, want CodeNotFound RemoteError", err)
		}
	}
	if _, _, err := conn.Call(ctx, FramePong, []byte("still alive")); err != nil {
		t.Fatalf("connection died after application error: %v", err)
	}
}

func TestTransportConcurrentCalls(t *testing.T) {
	l := startListener(t, echoHandler())
	peer := NewPeer(l.Addr().String(), "caller")
	defer peer.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			_, got, err := peer.Call(context.Background(), FramePing, []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(got) != want {
				errs <- fmt.Errorf("reply %q, want %q (responses crossed streams)", got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMalformedFrameClosesConn sends garbage after a valid handshake:
// the listener must answer with a FrameError diagnosis and cut the
// connection rather than try to resynchronize the stream.
func TestMalformedFrameClosesConn(t *testing.T) {
	l := startListener(t, echoHandler())
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(nc, FrameHello, marshal(HelloMsg{Proto: ProtoVersion, Name: "raw"})); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := ReadFrame(nc); err != nil || ft != FrameHello {
		t.Fatalf("handshake: %v %v", ft, err)
	}
	if _, err := nc.Write([]byte("GARBAGE-NOT-A-FRAME-................")); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := ReadFrame(nc)
	if err == nil {
		if ft != FrameError {
			t.Fatalf("reply to garbage was %v, want error frame", ft)
		}
		var em ErrorMsg
		if uerr := unmarshal(ft, payload, &em); uerr != nil || em.Code != CodeBadRequest {
			t.Fatalf("error frame %+v (%v), want bad_request", em, uerr)
		}
		// After the diagnosis the stream must be closed.
		if _, _, err := ReadFrame(nc); err == nil {
			t.Fatal("stream still open after malformed frame")
		}
	}
	// err != nil is also acceptable: the listener may have cut the
	// connection before the diagnosis flushed.
}

// TestBadHandshakeRejected covers version skew and non-hello openings.
func TestBadHandshakeRejected(t *testing.T) {
	l := startListener(t, echoHandler())

	// Wrong protocol version in the hello.
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(nc, FrameHello, marshal(HelloMsg{Proto: ProtoVersion + 1, Name: "future"})); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := ReadFrame(nc); err == nil && ft != FrameError {
		t.Fatalf("version-skewed hello got %v, want error frame", ft)
	}

	// Opening with a non-hello frame drops the connection.
	nc2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	nc2.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(nc2, FramePing, marshal(PingMsg{Seq: 1})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(nc2); err == nil {
		t.Fatal("listener answered a connection that never said hello")
	}
}

// TestPeerRedialsAfterRestart proves the self-healing client: a peer
// whose pooled connection died (listener restart on the same address)
// transparently redials on the next call.
func TestPeerRedialsAfterRestart(t *testing.T) {
	l := NewListener("gen1", echoHandler())
	if err := l.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	peer := NewPeer(addr, "caller")
	defer peer.Close()
	if _, _, err := peer.Call(context.Background(), FramePing, []byte("a")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Restart a listener on the same address; races with the OS releasing
	// the port, so retry briefly.
	var l2 *Listener
	for i := 0; i < 50; i++ {
		l2 = NewListener("gen2", echoHandler())
		if err := l2.ListenAndServe(addr); err == nil {
			break
		}
		l2 = nil
		time.Sleep(20 * time.Millisecond)
	}
	if l2 == nil {
		t.Skip("could not rebind the port")
	}
	defer l2.Close()

	_, got, err := peer.Call(context.Background(), FramePing, []byte("b"))
	if err != nil {
		t.Fatalf("peer did not redial after restart: %v", err)
	}
	if string(got) != "b" {
		t.Fatalf("reply %q, want b", got)
	}

	// With the listener gone for good, calls fail (and keep failing)
	// without hanging.
	l2.Close()
	if _, _, err := peer.Call(context.Background(), FramePing, []byte("c")); err == nil {
		// One call may still ride the pooled connection's buffered close
		// race; the next must fail.
		if _, _, err := peer.Call(context.Background(), FramePing, []byte("d")); err == nil {
			t.Fatal("calls keep succeeding against a closed listener")
		}
	}
}

// TestOversizeFrameRejectedBeforeAllocation: a header declaring a
// payload beyond MaxFramePayload must be rejected from the 12 header
// bytes alone — the decoder must not trust the length and allocate.
func TestOversizeFrameRejectedBeforeAllocation(t *testing.T) {
	var hdr bytes.Buffer
	var scratch bytes.Buffer
	if err := WriteFrame(&scratch, FramePing, nil); err != nil {
		t.Fatal(err)
	}
	h := scratch.Bytes()[:headerSize]
	binary.BigEndian.PutUint32(h[8:], MaxFramePayload+1)
	hdr.Write(h)
	// No payload follows: if the decoder tried to read (or allocate) the
	// declared 64MiB+1 it would block or balloon; instead it must fail
	// immediately on the header.
	_, _, err := ReadFrame(&hdr)
	if !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("err = %v, want ErrMalformedFrame", err)
	}
}
