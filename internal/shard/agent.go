package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"esthera/internal/serve"
	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

// migrationLogCap bounds the at-most-once dedup log. Entries are
// evicted oldest-first; a migration id replayed after 4096 newer
// migrations have completed is long past any retry window.
const migrationLogCap = 4096

// Agent is one replica's transport endpoint: it answers health pings
// and performs the two halves of a live migration against its local
// serve.Server — export (checkpoint + close at a round boundary) and
// restore. Both halves are at-most-once per migration id: a replayed
// export returns the original checkpoint instead of failing on the
// now-closed session, and a replayed restore returns the original
// session id instead of installing a second copy. The dedup log is
// what makes the router's retry loop safe over a lossy transport.
type Agent struct {
	name string
	srv  *serve.Server

	// opMu serializes migration operations (export-with-close and
	// restore) so the dedup check and the operation it guards are one
	// atomic section: two concurrent replays of the same migration id
	// cannot both miss the log. Migrations are rare control-plane
	// events; pings and concurrent step traffic never touch this lock.
	opMu sync.Mutex

	mu sync.Mutex
	// exports and restores are the migration dedup logs, keyed by
	// migration id; order tracks insertion for eviction.
	exports  map[string]*CheckpointMsg
	restores map[string]*RestoredMsg
	order    []dedupKey
}

type dedupKey struct {
	id      string
	restore bool
}

// NewAgent builds the transport endpoint for srv, identified as name.
func NewAgent(name string, srv *serve.Server) *Agent {
	return &Agent{
		name:     name,
		srv:      srv,
		exports:  make(map[string]*CheckpointMsg),
		restores: make(map[string]*RestoredMsg),
	}
}

// HandleFrame implements Handler.
func (a *Agent) HandleFrame(remote string, t FrameType, payload []byte) (FrameType, []byte, error) {
	switch t {
	case FramePing:
		// t1 (receive) is stamped as early as possible and t2 (send)
		// as late as possible, so the NTP-style offset the caller
		// derives excludes as much local processing as the frame
		// handler allows.
		recv := time.Now().UnixNano()
		var ping PingMsg
		if err := unmarshal(t, payload, &ping); err != nil {
			return 0, nil, err
		}
		pong := a.pong(ping.Seq)
		pong.RecvUnixNano = recv
		pong.SendUnixNano = time.Now().UnixNano()
		return FramePong, marshal(pong), nil
	case FrameExport:
		var req ExportMsg
		if err := unmarshal(t, payload, &req); err != nil {
			return 0, nil, err
		}
		reply, err := a.export(req)
		if err != nil {
			return 0, nil, err
		}
		return FrameCheckpoint, marshal(reply), nil
	case FrameRestore:
		var req RestoreMsg
		if err := unmarshal(t, payload, &req); err != nil {
			return 0, nil, err
		}
		reply, err := a.restore(req)
		if err != nil {
			return 0, nil, err
		}
		return FrameRestored, marshal(reply), nil
	default:
		return 0, nil, &RemoteError{Code: CodeBadRequest, Message: fmt.Sprintf("agent does not serve %s frames", t)}
	}
}

// pong summarizes the replica's health for the router's failure
// detector and load-based rebalancer.
func (a *Agent) pong(seq int64) PongMsg {
	st := a.srv.Stats()
	return PongMsg{
		Seq:        seq,
		Name:       a.name,
		Ready:      st.Health.Ready,
		Draining:   st.Health.Draining,
		Sessions:   len(st.Sessions),
		InFlight:   st.Health.InFlight,
		QueueDepth: st.QueueDepth,
		QueueCap:   st.QueueCap,
	}
}

// span records one replica-side migration span under the caller's
// trace (carried on the wire in traceparent form) and mirrors it to
// the replica's structured log, correlated by the same trace context.
func (a *Agent) span(traceparent, name, sessionID string, start time.Time, failed bool) {
	tc, ok := telemetry.ParseTraceParent(traceparent)
	if !ok {
		return
	}
	elapsed := time.Since(start)
	tr := a.srv.Tracer()
	span := telemetry.NewSpanID()
	if tr.Enabled() {
		ev := telemetry.Event{Name: name, Cat: "shard", TS: tr.Stamp(start), Dur: elapsed,
			Trace: tc.Trace, Span: span, Parent: tc.Span}
		if failed {
			ev.SetArg("failed", 1)
		}
		tr.Record(ev)
	}
	a.srv.Logger().Info(name, tlog.Trace(telemetry.TraceContext{Trace: tc.Trace, Span: span}),
		tlog.Str("session", sessionID), tlog.Dur("took", elapsed), tlog.Bool("failed", failed))
}

// export runs the source half of a migration. With req.Close the
// checkpoint+close is one atomic section (serve.Export); without it
// this is a plain snapshot (the router's failover-insurance path).
func (a *Agent) export(req ExportMsg) (*CheckpointMsg, error) {
	if req.SessionID == "" {
		return nil, &RemoteError{Code: CodeBadRequest, Message: "export needs a session id"}
	}
	if req.Close && req.MigrationID != "" {
		a.opMu.Lock()
		defer a.opMu.Unlock()
		a.mu.Lock()
		if prev, ok := a.exports[req.MigrationID]; ok {
			a.mu.Unlock()
			return prev, nil
		}
		a.mu.Unlock()
	}
	var (
		cp  *serve.Checkpoint
		err error
	)
	start := time.Now()
	if req.Close {
		cp, err = a.srv.Export(req.SessionID)
	} else {
		cp, err = a.srv.Checkpoint(req.SessionID)
	}
	a.span(req.Trace, "agent.export", req.SessionID, start, err != nil)
	if err != nil {
		return nil, wireError(err)
	}
	reply := &CheckpointMsg{MigrationID: req.MigrationID, Checkpoint: cp}
	if req.Close && req.MigrationID != "" {
		a.record(req.MigrationID, reply, nil)
	}
	return reply, nil
}

// restore runs the target half of a migration, at-most-once per
// migration id.
func (a *Agent) restore(req RestoreMsg) (*RestoredMsg, error) {
	if req.Checkpoint == nil {
		return nil, &RemoteError{Code: CodeBadRequest, Message: "restore needs a checkpoint"}
	}
	if req.MigrationID != "" {
		a.opMu.Lock()
		defer a.opMu.Unlock()
		a.mu.Lock()
		if prev, ok := a.restores[req.MigrationID]; ok {
			a.mu.Unlock()
			dup := *prev
			dup.Duplicate = true
			return &dup, nil
		}
		a.mu.Unlock()
	}
	start := time.Now()
	id, err := a.srv.Restore(req.Checkpoint)
	a.span(req.Trace, "agent.restore", id, start, err != nil)
	if err != nil {
		return nil, wireError(err)
	}
	reply := &RestoredMsg{MigrationID: req.MigrationID, SessionID: id}
	if req.MigrationID != "" {
		a.record(req.MigrationID, nil, reply)
	}
	return reply, nil
}

// record inserts a dedup-log entry, evicting oldest-first past the cap.
// Exactly one of cp/rm is non-nil. A restore that raced a duplicate to
// the log keeps the first entry: the loser's session would be a second
// live copy, so it is closed.
func (a *Agent) record(mid string, cp *CheckpointMsg, rm *RestoredMsg) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cp != nil {
		if _, ok := a.exports[mid]; ok {
			return
		}
		a.exports[mid] = cp
		a.order = append(a.order, dedupKey{id: mid})
	} else {
		if prev, ok := a.restores[mid]; ok {
			if prev.SessionID != rm.SessionID {
				_ = a.srv.Close(rm.SessionID)
			}
			return
		}
		a.restores[mid] = rm
		a.order = append(a.order, dedupKey{id: mid, restore: true})
	}
	for len(a.order) > migrationLogCap {
		old := a.order[0]
		a.order = a.order[1:]
		if old.restore {
			delete(a.restores, old.id)
		} else {
			delete(a.exports, old.id)
		}
	}
}

// wireError maps serve-layer errors onto wire error codes.
func wireError(err error) error {
	switch {
	case errors.Is(err, serve.ErrNotFound):
		return &RemoteError{Code: CodeNotFound, Message: err.Error()}
	case errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrDraining),
		errors.Is(err, serve.ErrTooManySessions):
		return &RemoteError{Code: CodeUnavailable, Message: err.Error()}
	default:
		return &RemoteError{Code: CodeInternal, Message: err.Error()}
	}
}
