// Package shard turns the single-process serving stack into the
// building block of a sharded, multi-process deployment — ROADMAP's
// "millions of users" step and the process-boundary scaling PPF
// (arXiv:1310.5045) demonstrates for the paper's sub-filter design:
//
//   - A length-prefixed binary TCP transport (wire.go, transport.go)
//     carries checkpoint transfers and cluster exchange records between
//     processes. Checkpoints ride the exact serve.Checkpoint wire format
//     (base64 little-endian float64 bit patterns), so a transfer is
//     bit-exact by construction; exchange records are raw IEEE-754 bits.
//   - An Agent (agent.go) gives every esthera-serve replica a transport
//     endpoint: health pings, session export (checkpoint + close at a
//     round boundary) and restore, with at-most-once migration
//     semantics — a replayed transfer returns the original result
//     instead of creating a second session.
//   - A Router (ring.go, router.go, http.go) fronts N replicas:
//     session ids consistent-hash onto shards, step/estimate requests
//     forward through the retrying serve.Client, /metrics aggregates
//     every shard, and live sessions migrate between replicas — drain
//     at the source, checkpoint over the transport, restore at the
//     target, repoint atomically — driven by health probes (failover)
//     and per-shard load (rebalance).
//
// A migrated session's estimate stream is bit-identical to an
// unmigrated run: the checkpoint captures every particle, weight and
// random-stream position, and export waits for the in-flight step, so
// the cut always lands on a round boundary (TestMigrationDeterminism).
package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"esthera/internal/serve"
)

// ProtoVersion is the transport protocol version; both frame headers
// and the Hello handshake carry it, and mismatches are rejected.
const ProtoVersion = 1

// frameMagic opens every frame: "ESHD".
var frameMagic = [4]byte{'E', 'S', 'H', 'D'}

// headerSize is the fixed frame header: 4-byte magic, 1-byte version,
// 1-byte type, 2 reserved zero bytes, 4-byte big-endian payload length.
const headerSize = 12

// MaxFramePayload bounds one frame's payload. Checkpoints dominate the
// sizing: a 120×128 session of an 8-dim model is ~20 MB of base64, so
// 64 MiB leaves headroom without letting a corrupt length field commit
// the decoder to an absurd allocation.
const MaxFramePayload = 64 << 20

// FrameType tags a frame's payload. Control frames carry JSON (the
// message structs below); exchange frames carry the packed binary
// layout documented on ExchangeMsg.
type FrameType uint8

// The frame types of protocol version 1.
const (
	// FrameHello opens every connection, both directions (HelloMsg).
	FrameHello FrameType = iota + 1
	// FrameError is any request's failure reply (ErrorMsg).
	FrameError
	// FramePing probes a replica (PingMsg); FramePong answers with the
	// replica's health summary (PongMsg).
	FramePing
	FramePong
	// FrameExport asks a replica to checkpoint a session, optionally
	// closing it in the same atomic section (ExportMsg); the reply is
	// FrameCheckpoint (CheckpointMsg).
	FrameExport
	FrameCheckpoint
	// FrameRestore ships a checkpoint to a replica for restore
	// (RestoreMsg); the reply is FrameRestored (RestoredMsg).
	FrameRestore
	FrameRestored
	// FrameExchange carries one cluster exchange record block
	// (ExchangeMsg, binary); FrameExchangeOK echoes the block back
	// from the far side of the wire.
	FrameExchange
	FrameExchangeOK
)

// String names a frame type for errors and logs.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameError:
		return "error"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameExport:
		return "export"
	case FrameCheckpoint:
		return "checkpoint"
	case FrameRestore:
		return "restore"
	case FrameRestored:
		return "restored"
	case FrameExchange:
		return "exchange"
	case FrameExchangeOK:
		return "exchange-ok"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// ErrMalformedFrame reports a frame the decoder rejected before
// reading its payload: bad magic, unknown version, nonzero reserved
// bytes, or an oversize length. A receiver must close the connection —
// after a malformed header the stream offset is unrecoverable.
var ErrMalformedFrame = errors.New("shard: malformed frame")

// WriteFrame writes one frame: the 12-byte header followed by payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("shard: %s payload %d bytes exceeds frame limit %d", t, len(payload), MaxFramePayload)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], frameMagic[:])
	hdr[4] = ProtoVersion
	hdr[5] = byte(t)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame. Header violations return an error wrapping
// ErrMalformedFrame; a short read inside a well-formed frame returns
// the underlying I/O error (io.ErrUnexpectedEOF on truncation).
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrMalformedFrame, hdr[:4])
	}
	if hdr[4] != ProtoVersion {
		return 0, nil, fmt.Errorf("%w: protocol version %d, this build speaks %d", ErrMalformedFrame, hdr[4], ProtoVersion)
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return 0, nil, fmt.Errorf("%w: nonzero reserved bytes", ErrMalformedFrame)
	}
	t := FrameType(hdr[5])
	if t < FrameHello || t > FrameExchangeOK {
		return 0, nil, fmt.Errorf("%w: unknown frame type %d", ErrMalformedFrame, hdr[5])
	}
	n := binary.BigEndian.Uint32(hdr[8:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds frame limit %d", ErrMalformedFrame, n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// HelloMsg is the connection handshake, sent by both sides before any
// other frame. A version or magic mismatch surfaces at the frame layer;
// Name identifies the peer in errors and metrics.
type HelloMsg struct {
	Proto int    `json:"proto"`
	Name  string `json:"name"`
}

// ErrorMsg is the failure reply to any request frame.
type ErrorMsg struct {
	// Code is a stable machine-readable class: "not_found",
	// "bad_request", "unavailable" or "internal".
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes carried by ErrorMsg.
const (
	CodeNotFound    = "not_found"
	CodeBadRequest  = "bad_request"
	CodeUnavailable = "unavailable"
	CodeInternal    = "internal"
)

// RemoteError is an ErrorMsg surfaced on the calling side.
type RemoteError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("shard: remote error (%s): %s", e.Code, e.Message)
}

// Is maps the not_found code onto serve.ErrNotFound so callers can use
// errors.Is across the transport boundary.
func (e *RemoteError) Is(target error) bool {
	return target == serve.ErrNotFound && e.Code == CodeNotFound
}

// PingMsg probes a replica's agent. SentUnixNano is the sender's clock
// at transmit (t0 of the NTP-style offset exchange); the replica echoes
// its own receive/send times in the pong, and the caller derives the
// clock offset that lets `esthera-trace merge` align per-process
// traces onto one timeline.
type PingMsg struct {
	Seq          int64 `json:"seq"`
	SentUnixNano int64 `json:"sent_unix_nano,omitempty"`
}

// PongMsg is the replica's health summary — the serve layer's
// degraded-mode health counters, made visible to the router's failure
// detector and rebalancer — plus the replica-clock timestamps of the
// offset exchange: RecvUnixNano (t1) when the ping arrived and
// SendUnixNano (t2) just before the pong left. With the caller's t0/t3
// around the call, offset = ((t1-t0)+(t2-t3))/2 and
// rtt = (t3-t0)-(t2-t1), the classic NTP estimate.
type PongMsg struct {
	Seq          int64  `json:"seq"`
	Name         string `json:"name"`
	Ready        bool   `json:"ready"`
	Draining     bool   `json:"draining"`
	Sessions     int    `json:"sessions"`
	InFlight     int64  `json:"in_flight"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	RecvUnixNano int64  `json:"recv_unix_nano,omitempty"`
	SendUnixNano int64  `json:"send_unix_nano,omitempty"`
}

// ExportMsg asks the replica to checkpoint session SessionID. With
// Close set the session is checkpointed and closed in one atomic
// section (serve.Export) — the migration drain: the in-flight step
// finishes, the snapshot lands on a round boundary, and no later step
// can touch the source copy. MigrationID makes the export replayable:
// a retried request returns the original checkpoint instead of failing
// on the now-closed session.
type ExportMsg struct {
	MigrationID string `json:"migration_id"`
	SessionID   string `json:"session_id"`
	Close       bool   `json:"close"`
	// Trace carries the caller's trace context in W3C traceparent form
	// ("00-<32 hex trace>-<16 hex span>-01", empty = untraced), so the
	// replica's export span joins the router's migration trace.
	Trace string `json:"trace,omitempty"`
}

// CheckpointMsg answers FrameExport. The checkpoint is the serving
// layer's own wire format, unchanged — bit-exact by construction.
type CheckpointMsg struct {
	MigrationID string            `json:"migration_id"`
	Checkpoint  *serve.Checkpoint `json:"checkpoint"`
}

// RestoreMsg ships a checkpoint for restore. MigrationID keys the
// at-most-once guarantee: a duplicate restore (a retried transfer, a
// router failover racing a manual migration) returns the first
// attempt's session id instead of installing a second copy.
type RestoreMsg struct {
	MigrationID string            `json:"migration_id"`
	Checkpoint  *serve.Checkpoint `json:"checkpoint"`
	// Trace is the caller's trace context (traceparent form, empty =
	// untraced); a restore driven by migration or failover records its
	// replica-side span under the originating trace.
	Trace string `json:"trace,omitempty"`
}

// RestoredMsg answers FrameRestore. Duplicate reports that the
// migration id had already been restored and SessionID is the original
// installation's id.
type RestoredMsg struct {
	MigrationID string `json:"migration_id"`
	SessionID   string `json:"session_id"`
	Duplicate   bool   `json:"duplicate"`
}

// ExchangeMsg is one cluster exchange record block crossing the wire:
// sub-filter From's top-t records (t×(dim+1) float64s) on their way to
// sub-filter To. Unlike the control messages it is packed binary — the
// exchange runs every round, and float64 bit patterns must survive the
// crossing exactly, so the records are raw little-endian IEEE-754 bits
// with a fixed 20-byte header (offsets in the binary tags).
type ExchangeMsg struct {
	Round int64     `binary:"off=0,u64le"`
	From  int32     `binary:"off=8,u32le"`
	To    int32     `binary:"off=12,u32le"`
	Recs  []float64 `binary:"off=16,u32le count, then count f64 bit patterns (u64le)"`
}

// exchangeHeader is ExchangeMsg's fixed binary prefix.
const exchangeHeader = 20

// EncodeExchange packs an ExchangeMsg into its binary frame payload.
func EncodeExchange(m ExchangeMsg) []byte {
	buf := make([]byte, exchangeHeader+8*len(m.Recs))
	binary.LittleEndian.PutUint64(buf[0:], uint64(m.Round))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.From))
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.To))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(m.Recs)))
	for i, x := range m.Recs {
		binary.LittleEndian.PutUint64(buf[exchangeHeader+8*i:], math.Float64bits(x))
	}
	return buf
}

// DecodeExchange unpacks EncodeExchange output, rejecting truncated or
// inconsistent payloads.
func DecodeExchange(payload []byte) (ExchangeMsg, error) {
	var m ExchangeMsg
	if len(payload) < exchangeHeader {
		return m, fmt.Errorf("%w: exchange payload %d bytes, header needs %d", ErrMalformedFrame, len(payload), exchangeHeader)
	}
	m.Round = int64(binary.LittleEndian.Uint64(payload[0:]))
	m.From = int32(binary.LittleEndian.Uint32(payload[8:]))
	m.To = int32(binary.LittleEndian.Uint32(payload[12:]))
	n := binary.LittleEndian.Uint32(payload[16:])
	if int64(len(payload)-exchangeHeader) != int64(n)*8 {
		return m, fmt.Errorf("%w: exchange payload declares %d records but carries %d bytes", ErrMalformedFrame, n, len(payload)-exchangeHeader)
	}
	m.Recs = make([]float64, n)
	for i := range m.Recs {
		m.Recs[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[exchangeHeader+8*i:]))
	}
	return m, nil
}

// marshal encodes a control message as a frame payload.
func marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// The message structs marshal by construction; a failure is a
		// programming error worth failing loudly on.
		panic(fmt.Sprintf("shard: marshal %T: %v", v, err))
	}
	return b
}

// unmarshal decodes a control payload, tagging decode failures as
// malformed frames.
func unmarshal(t FrameType, payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrMalformedFrame, t, err)
	}
	return nil
}
