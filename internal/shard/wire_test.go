package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"esthera/internal/serve"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, FramePing, p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, p := range payloads {
		ft, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if ft != FramePing {
			t.Fatalf("read %d: type %v, want ping", i, ft)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("read %d: payload %q, want %q", i, got, p)
		}
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FramePing, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := map[string]func([]byte) []byte{
		"bad magic":        func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":      func(b []byte) []byte { b[4] = ProtoVersion + 9; return b },
		"zero frame type":  func(b []byte) []byte { b[5] = 0; return b },
		"huge frame type":  func(b []byte) []byte { b[5] = 200; return b },
		"reserved nonzero": func(b []byte) []byte { b[6] = 1; return b },
		"oversize length": func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:], MaxFramePayload+1)
			return b
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(mutate(valid())))
			if !errors.Is(err, ErrMalformedFrame) {
				t.Fatalf("err = %v, want ErrMalformedFrame", err)
			}
		})
	}

	// Truncation mid-payload is an I/O error, not a malformed frame: the
	// header was well-formed, the stream just ended.
	b := valid()
	if _, _, err := ReadFrame(bytes.NewReader(b[:len(b)-1])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: err = %v, want unexpected EOF", err)
	}
}

// TestExchangeBitExact proves the binary exchange codec preserves every
// float64 bit pattern, including the values JSON cannot carry.
func TestExchangeBitExact(t *testing.T) {
	recs := []float64{
		0, math.Copysign(0, -1), 1.0 / 3.0, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(), 6.626070153e-34,
	}
	in := ExchangeMsg{Round: 41, From: 3, To: 7, Recs: recs}
	out, err := DecodeExchange(EncodeExchange(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != in.Round || out.From != in.From || out.To != in.To {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if len(out.Recs) != len(in.Recs) {
		t.Fatalf("rec count %d, want %d", len(out.Recs), len(in.Recs))
	}
	for i := range recs {
		if math.Float64bits(out.Recs[i]) != math.Float64bits(in.Recs[i]) {
			t.Fatalf("rec %d: bits %016x, want %016x", i, math.Float64bits(out.Recs[i]), math.Float64bits(in.Recs[i]))
		}
	}
}

func TestDecodeExchangeRejectsTruncated(t *testing.T) {
	full := EncodeExchange(ExchangeMsg{Round: 1, From: 0, To: 1, Recs: []float64{1, 2, 3}})
	for _, cut := range []int{1, exchangeHeader - 1, len(full) - 1} {
		if _, err := DecodeExchange(full[:cut]); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("cut=%d: err = %v, want ErrMalformedFrame", cut, err)
		}
	}
	// A declared count larger than the payload backs must not allocate
	// past the payload.
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(bad[16:], 1<<30)
	if _, err := DecodeExchange(bad); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("inflated count: err = %v, want ErrMalformedFrame", err)
	}
}

// FuzzReadFrame throws arbitrary bytes at the TCP decoder: it must
// never panic and never allocate beyond the framed length bound,
// whatever a malicious or corrupted peer sends.
func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteFrame(&valid, FrameHello, []byte(`{"proto":1,"name":"fuzz"}`))
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ESHD"))
	f.Add(valid.Bytes()[:headerSize-2])
	huge := append([]byte(nil), valid.Bytes()...)
	binary.BigEndian.PutUint32(huge[8:], 0xFFFFFFFF)
	f.Add(huge)
	badMagic := append([]byte(nil), valid.Bytes()...)
	copy(badMagic, "EVIL")
	f.Add(badMagic)

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ft < FrameHello || ft > FrameExchangeOK {
			t.Fatalf("accepted unknown frame type %d", ft)
		}
		if len(payload) > MaxFramePayload {
			t.Fatalf("payload %d bytes exceeds the frame limit", len(payload))
		}
		// A frame the decoder accepts must re-encode to the same bytes it
		// consumed (the codec is canonical).
		var buf bytes.Buffer
		if err := WriteFrame(&buf, ft, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("re-encode differs from consumed bytes")
		}
	})
}

func TestRemoteErrorIs(t *testing.T) {
	err := error(&RemoteError{Code: CodeNotFound, Message: "no session"})
	if !strings.Contains(err.Error(), "no session") {
		t.Fatalf("message lost: %v", err)
	}
	// A not-found crossing the transport must keep satisfying
	// errors.Is(err, serve.ErrNotFound), like the HTTP client's 404.
	if !errors.Is(err, serve.ErrNotFound) {
		t.Fatal("CodeNotFound does not map to serve.ErrNotFound")
	}
	if errors.Is(error(&RemoteError{Code: CodeInternal}), serve.ErrNotFound) {
		t.Fatal("CodeInternal must not map to serve.ErrNotFound")
	}
}
