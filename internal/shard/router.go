package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"esthera/internal/serve"
	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

// ShardSpec names one replica: its HTTP base URL (step/estimate
// forwarding via the retrying serve.Client) and its transport address
// (health pings, checkpoint transfer).
type ShardSpec struct {
	Name          string `json:"name"`
	BaseURL       string `json:"base_url"`
	TransportAddr string `json:"transport_addr"`
}

// RouterConfig shapes a Router.
type RouterConfig struct {
	// Shards is the replica set. Membership is fixed for the router's
	// lifetime; liveness is tracked per shard.
	Shards []ShardSpec
	// Vnodes is the consistent-hash ring's virtual node count per shard
	// (0 = DefaultVnodes).
	Vnodes int
	// ProbeInterval paces the health loop pinging every shard over the
	// transport (0 = 500ms; negative disables the loop — liveness then
	// moves only on step-path strikes).
	ProbeInterval time.Duration
	// FailAfter is how many consecutive failures (probe or step
	// transport errors) mark a shard down and trigger failover (0 = 3).
	FailAfter int
	// RebalanceThreshold enables load-based rebalancing: when the
	// busiest live shard holds more than threshold sessions above the
	// idlest, sessions migrate until the spread closes. 0 disables
	// automatic rebalancing (Rebalance can still be called).
	RebalanceThreshold int
	// RetryAfter is the back-off hint attached to retryable router
	// errors — a migrating session, a shard mid-failover (0 = 15ms).
	RetryAfter time.Duration
	// ClientMaxAttempts bounds the serve.Client's per-forward retries
	// against one replica (0 = 4). The router keeps this short: a
	// saturated replica's hint is worth honoring a few times, but a
	// dead one should fail over, not stall the caller.
	ClientMaxAttempts int
	// HTTPClient is the forwarding transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Name identifies the router in transport handshakes (0 = "router").
	Name string
	// Trace enables span recording at router start (toggleable over
	// POST /trace). Each forwarded step carries its trace downstream in
	// a traceparent header; migrations and failovers carry theirs in
	// the transport's control frames.
	Trace bool
	// LogLevel / LogSink shape the router's structured log (drained
	// over /logz; Sink mirrors warnings+ to a writer, typically stderr).
	LogLevel tlog.Level
	LogSink  io.Writer
	// StepSLO / SLOObjective shape the forwarded-step latency objective
	// (0 = the telemetry defaults: 50ms at 99%).
	StepSLO      time.Duration
	SLOObjective float64
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 15 * time.Millisecond
	}
	if c.ClientMaxAttempts <= 0 {
		c.ClientMaxAttempts = 4
	}
	if c.Name == "" {
		c.Name = "router"
	}
	return c
}

// Router errors. ErrMigrating and ErrShardDown are retryable — the
// HTTP front-end maps them to 503 with the Retry-After hint, and the
// serve.Client's retry loop rides them out while a migration or
// failover completes.
var (
	ErrMigrating         = errors.New("shard: session is migrating, retry")
	ErrShardDown         = errors.New("shard: shard unavailable, retry")
	ErrMigrationInFlight = errors.New("shard: migration already in flight for session")
	ErrNoLiveShards      = errors.New("shard: no live shards")
	ErrUnknownShard      = errors.New("shard: unknown shard")
)

// shardState is one replica's runtime state.
type shardState struct {
	spec   ShardSpec
	client *serve.Client
	peer   *Peer
	// down flips after FailAfter consecutive strikes and back on a
	// successful probe.
	down    atomic.Bool
	strikes atomic.Int32
	// failingOver collapses concurrent failover triggers to one run.
	failingOver atomic.Bool
	lastPong    atomic.Pointer[PongMsg]
	// clockOffsetNS/rttNS are EWMAs of the NTP-style estimates the
	// probe loop derives from ping/pong timestamps: offset is the
	// replica clock minus the router clock (what `esthera-trace merge`
	// subtracts to align timelines), rtt the probe round trip.
	// clockSeen guards the EWMA seed (an offset of exactly 0 is legal).
	clockSeen     atomic.Bool
	clockOffsetNS atomic.Int64
	rttNS         atomic.Int64
}

// observeClock folds one probe's offset/rtt sample into the EWMAs.
func (sh *shardState) observeClock(offset, rtt int64) {
	if !sh.clockSeen.Swap(true) {
		sh.clockOffsetNS.Store(offset)
		sh.rttNS.Store(rtt)
		return
	}
	old := sh.clockOffsetNS.Load()
	sh.clockOffsetNS.Store(old + (offset-old)/4)
	old = sh.rttNS.Load()
	sh.rttNS.Store(old + (rtt-old)/4)
}

// route is one public session's placement. Guarded by Router.mu.
type route struct {
	spec serve.FilterSpec
	// shard names the owning replica; "" parks the session (its state
	// lives only in lastCP until a live shard takes it).
	shard    string
	remoteID string
	// epoch counts placements; it salts the migration id so a retried
	// old transfer can never collide with a newer one.
	epoch int
	// migrating holds new steps (retryable) while a transfer is in
	// flight; it is the at-most-once gate for Migrate.
	migrating bool
	// lastCP is failover insurance: the freshest checkpoint the router
	// holds (from create, the last migration, or Snapshot). Failover of
	// a dead shard restores from it — rolling back to the checkpoint —
	// or recreates from spec when nil.
	lastCP *serve.Checkpoint
	steps  int64
}

// Router fronts N esthera-serve replicas as one serving surface:
// consistent-hash initial placement, forwarded steps with retryable
// backpressure, live migration, health-driven failover and load-driven
// rebalance. See the package documentation for the protocol.
type Router struct {
	cfg    RouterConfig
	shards map[string]*shardState
	names  []string // sorted shard names
	ring   *Ring

	tracer  *telemetry.Tracer
	log     *tlog.Logger
	sloStep *telemetry.SLOTracker

	mu     sync.Mutex
	routes map[string]*route
	nextID uint64

	quit chan struct{}
	wg   sync.WaitGroup

	// Counters (atomics: Stats reads them live).
	stepsForwarded  atomic.Int64
	stepsHeld       atomic.Int64
	stepsRerouted   atomic.Int64
	migrations      atomic.Int64
	migrationErrors atomic.Int64
	failovers       atomic.Int64
	restored        atomic.Int64
	recreated       atomic.Int64
	parked          atomic.Int64
	probes          atomic.Int64
	probeFailures   atomic.Int64
	rebalanced      atomic.Int64
}

// NewRouter builds a router over the given shard set and starts its
// health loop (unless ProbeInterval < 0). Callers own Close.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: router needs at least one shard")
	}
	r := &Router{
		cfg:     cfg,
		shards:  make(map[string]*shardState, len(cfg.Shards)),
		ring:    NewRing(cfg.Vnodes),
		routes:  make(map[string]*route),
		quit:    make(chan struct{}),
		tracer:  telemetry.New(telemetry.Config{}),
		log:     tlog.New(tlog.Config{Level: cfg.LogLevel, Process: cfg.Name, Sink: cfg.LogSink}),
		sloStep: telemetry.NewSLOTracker(telemetry.SLO{Objective: cfg.SLOObjective, Threshold: cfg.StepSLO}),
	}
	r.tracer.SetEnabled(cfg.Trace)
	r.tracer.SetProcess(cfg.Name)
	for _, sp := range cfg.Shards {
		if sp.Name == "" || sp.BaseURL == "" {
			return nil, fmt.Errorf("shard: shard spec needs name and base_url (got %+v)", sp)
		}
		if _, dup := r.shards[sp.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate shard name %q", sp.Name)
		}
		r.shards[sp.Name] = &shardState{
			spec: sp,
			client: serve.NewClient(serve.ClientConfig{
				BaseURL:     sp.BaseURL,
				HTTPClient:  cfg.HTTPClient,
				MaxAttempts: cfg.ClientMaxAttempts,
			}),
			peer: NewPeer(sp.TransportAddr, cfg.Name),
		}
		r.names = append(r.names, sp.Name)
		r.ring.Add(sp.Name)
	}
	sort.Strings(r.names)
	if cfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the health loop and drops transport connections. It does
// not touch the replicas or their sessions.
func (r *Router) Close() {
	select {
	case <-r.quit:
	default:
		close(r.quit)
	}
	r.wg.Wait()
	for _, sh := range r.shards {
		sh.peer.Close()
	}
}

// isLive reports whether a shard is accepting placements.
func (r *Router) isLive(name string) bool {
	sh, ok := r.shards[name]
	return ok && !sh.down.Load()
}

// Create builds a session on the shard its id hashes to and returns
// the router-scoped session id. The freshly created session is
// immediately checkpointed as failover insurance (best-effort: a
// replica without a transport endpoint still serves, it just recreates
// from spec on failover).
func (r *Router) Create(ctx context.Context, spec serve.FilterSpec) (string, error) {
	r.mu.Lock()
	r.nextID++
	id := "t-" + strconv.FormatUint(r.nextID, 10)
	r.mu.Unlock()
	target := r.ring.LookupFunc(id, r.isLive)
	if target == "" {
		return "", ErrNoLiveShards
	}
	sh := r.shards[target]
	remoteID, err := sh.client.Create(ctx, spec)
	if err != nil {
		return "", err
	}
	rt := &route{spec: spec, shard: target, remoteID: remoteID, epoch: 1}
	if sh.spec.TransportAddr != "" {
		if cp, err := r.exportFrom(ctx, sh, "", remoteID, false, ""); err == nil {
			rt.lastCP = cp
		}
	}
	r.mu.Lock()
	r.routes[id] = rt
	r.mu.Unlock()
	return id, nil
}

// lookupRoute snapshots a route's placement for a forwarded call.
func (r *Router) lookupRoute(id string) (shardName, remoteID string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[id]
	if !ok {
		return "", "", serve.ErrNotFound
	}
	if rt.migrating {
		r.stepsHeld.Add(1)
		return "", "", ErrMigrating
	}
	if rt.shard == "" {
		return "", "", ErrShardDown
	}
	return rt.shard, rt.remoteID, nil
}

// traceStep derives the router-side trace identity of one forwarded
// call: the propagated trace context (or a fresh trace when the tracer
// is on and none arrived), a new ingress span, and a child ctx whose
// traceparent header parents the replica's request span to the
// router's. span == 0 means the call is untraced.
func (r *Router) traceStep(ctx context.Context) (context.Context, telemetry.TraceContext, uint64) {
	tc, ok := telemetry.TraceFromContext(ctx)
	if !ok {
		if !r.tracer.Enabled() {
			return ctx, telemetry.TraceContext{}, 0
		}
		tc = telemetry.TraceContext{Trace: telemetry.NewTraceID()}
	}
	span := telemetry.NewSpanID()
	ctx = telemetry.ContextWithTrace(ctx, telemetry.TraceContext{Trace: tc.Trace, Span: span})
	return ctx, tc, span
}

// Step forwards one observation step to the session's shard. Failures
// of the shard surface as the retryable ErrShardDown while failover
// rehomes the session; the caller's retry loop (serve.Client honors
// the 503 + Retry-After the HTTP layer emits) rides out the move.
func (r *Router) Step(ctx context.Context, id string, u, z []float64) (serve.StepResult, error) {
	shardName, remoteID, err := r.lookupRoute(id)
	if err != nil {
		return serve.StepResult{}, err
	}
	sh := r.shards[shardName]
	if sh.down.Load() {
		r.kickFailover(sh)
		return serve.StepResult{}, ErrShardDown
	}
	ctx, tc, span := r.traceStep(ctx)
	start := time.Now()
	res, err := sh.client.Step(ctx, remoteID, u, z)
	elapsed := time.Since(start)
	r.sloStep.Observe(elapsed)
	if span != 0 && r.tracer.Enabled() {
		ev := telemetry.Event{Name: "route.step", Cat: "router", TS: r.tracer.Stamp(start), Dur: elapsed,
			Trace: tc.Trace, Span: span, Parent: tc.Span}
		if err != nil {
			ev.SetArg("failed", 1)
		}
		r.tracer.Record(ev)
	}
	if err == nil {
		r.stepsForwarded.Add(1)
		r.mu.Lock()
		if rt, ok := r.routes[id]; ok {
			rt.steps++
		}
		r.mu.Unlock()
		return res, nil
	}
	r.log.Warn("step forward failed", tlog.Trace(telemetry.TraceContext{Trace: tc.Trace, Span: span}),
		tlog.Str("session", id), tlog.Str("shard", shardName), tlog.Str("error", err.Error()))
	return serve.StepResult{}, r.stepError(ctx, id, sh, remoteID, err)
}

// stepError classifies a forwarded call's failure: context errors pass
// through, replica replies pass through (except a 404, which means the
// replica lost the session — a restart — and is handled like a dead
// shard for that session), and transport errors strike the shard
// toward failover.
func (r *Router) stepError(ctx context.Context, id string, sh *shardState, remoteID string, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	var api *serve.APIError
	if errors.As(err, &api) {
		if api.Status == http.StatusNotFound {
			r.parkRoute(id, sh.spec.Name, remoteID)
			r.stepsRerouted.Add(1)
			return ErrShardDown
		}
		return err
	}
	r.strike(sh)
	r.stepsRerouted.Add(1)
	return ErrShardDown
}

// Estimate forwards a read of the session's latest estimate.
func (r *Router) Estimate(ctx context.Context, id string) (serve.StepResult, error) {
	shardName, remoteID, err := r.lookupRoute(id)
	if err != nil {
		return serve.StepResult{}, err
	}
	sh := r.shards[shardName]
	res, err := sh.client.Estimate(ctx, remoteID)
	if err != nil {
		return serve.StepResult{}, r.stepError(ctx, id, sh, remoteID, err)
	}
	return res, nil
}

// CloseSession tears the session down on its shard and forgets the
// route.
func (r *Router) CloseSession(ctx context.Context, id string) error {
	shardName, remoteID, err := r.lookupRoute(id)
	if errors.Is(err, ErrShardDown) {
		// Parked: the remote copy is already gone; dropping the route
		// is the whole close.
		r.mu.Lock()
		delete(r.routes, id)
		r.mu.Unlock()
		return nil
	}
	if err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.routes, id)
	r.mu.Unlock()
	sh := r.shards[shardName]
	if cerr := sh.client.Close(ctx, remoteID); cerr != nil && !errors.Is(cerr, serve.ErrNotFound) {
		return cerr
	}
	return nil
}

// Checkpoint exports the session's current checkpoint over the
// transport without closing it, and refreshes the router's failover
// insurance with it.
func (r *Router) Checkpoint(ctx context.Context, id string) (*serve.Checkpoint, error) {
	shardName, remoteID, err := r.lookupRoute(id)
	if err != nil {
		return nil, err
	}
	sh := r.shards[shardName]
	cp, err := r.exportFrom(ctx, sh, "", remoteID, false, "")
	if err != nil {
		return nil, r.stepError(ctx, id, sh, remoteID, err)
	}
	r.mu.Lock()
	if rt, ok := r.routes[id]; ok && rt.shard == shardName && !rt.migrating {
		rt.lastCP = cp
	}
	r.mu.Unlock()
	return cp, nil
}

// Snapshot refreshes every routable session's failover-insurance
// checkpoint. It bounds how much history a crash-failover can roll
// back; the chaos harness runs it on a short period.
func (r *Router) Snapshot(ctx context.Context) (ok, failed int) {
	for _, id := range r.Sessions() {
		if ctx.Err() != nil {
			return ok, failed
		}
		if _, err := r.Checkpoint(ctx, id); err != nil {
			failed++
			continue
		}
		ok++
	}
	return ok, failed
}

// Sessions lists the router-scoped session ids, sorted.
func (r *Router) Sessions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.routes))
	for id := range r.routes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ShardOf reports the shard currently owning the session ("" while
// parked).
func (r *Router) ShardOf(id string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[id]
	if !ok {
		return "", serve.ErrNotFound
	}
	return rt.shard, nil
}

// exportFrom pulls a checkpoint over the transport. close selects the
// atomic export (migration drain) versus a plain snapshot. trace (a
// traceparent string, "" = untraced) rides the control frame so the
// replica's export span joins the caller's trace.
func (r *Router) exportFrom(ctx context.Context, sh *shardState, mid, remoteID string, close bool, trace string) (*serve.Checkpoint, error) {
	t, payload, err := sh.peer.Call(ctx, FrameExport, marshal(ExportMsg{MigrationID: mid, SessionID: remoteID, Close: close, Trace: trace}))
	if err != nil {
		return nil, err
	}
	if t != FrameCheckpoint {
		return nil, fmt.Errorf("shard: export reply was %s, want checkpoint", t)
	}
	var msg CheckpointMsg
	if err := unmarshal(t, payload, &msg); err != nil {
		return nil, err
	}
	if msg.Checkpoint == nil {
		return nil, errors.New("shard: export reply carried no checkpoint")
	}
	return msg.Checkpoint, nil
}

// restoreOn pushes a checkpoint over the transport and returns the
// restored session's replica-local id. At-most-once per migration id:
// a retry of a transfer the target already applied returns the
// original id.
func (r *Router) restoreOn(ctx context.Context, sh *shardState, mid string, cp *serve.Checkpoint, trace string) (string, error) {
	t, payload, err := sh.peer.Call(ctx, FrameRestore, marshal(RestoreMsg{MigrationID: mid, Checkpoint: cp, Trace: trace}))
	if err != nil {
		return "", err
	}
	if t != FrameRestored {
		return "", fmt.Errorf("shard: restore reply was %s, want restored", t)
	}
	var msg RestoredMsg
	if err := unmarshal(t, payload, &msg); err != nil {
		return "", err
	}
	return msg.SessionID, nil
}

// Migrate moves a live session from its current shard to target
// ("" picks the least-loaded live shard). The protocol:
//
//  1. Hold: the route flips to migrating — new steps get the retryable
//     ErrMigrating; a second Migrate gets ErrMigrationInFlight
//     (at-most-once).
//  2. Drain + export: the source replica checkpoints and closes the
//     session atomically (serve.Export); the in-flight step finishes
//     first, so the cut is a round boundary.
//  3. Transfer + restore: the checkpoint crosses the TCP transport and
//     restores on the target, deduplicated by migration id.
//  4. Repoint: the route atomically points at the target and steps
//     resume. The estimate stream is bit-identical to an unmigrated
//     run.
//
// If the restore cannot reach the target the session parks (its state
// is the exported checkpoint) and placement retries on the failover
// path; the session is never left half-moved with two live copies.
//
// The whole protocol runs under one trace: the caller's propagated
// context or a freshly minted trace ID. The hold window (step 1 until
// repoint) is the "migrate.hold" span; export and restore are child
// spans, and the trace crosses the transport so both replicas' agent
// spans land in the same trace.
func (r *Router) Migrate(ctx context.Context, id, target string) error {
	tc, traced := telemetry.TraceFromContext(ctx)
	if !traced && r.tracer.Enabled() {
		tc = telemetry.TraceContext{Trace: telemetry.NewTraceID()}
		traced = true
	}
	var migSpan uint64
	if traced {
		migSpan = telemetry.NewSpanID()
	}
	r.mu.Lock()
	rt, ok := r.routes[id]
	if !ok {
		r.mu.Unlock()
		return serve.ErrNotFound
	}
	if rt.migrating {
		r.mu.Unlock()
		return ErrMigrationInFlight
	}
	if rt.shard == "" {
		r.mu.Unlock()
		return ErrShardDown
	}
	source := rt.shard
	if target == "" {
		target = r.leastLoadedLocked(source)
	}
	if target == source {
		r.mu.Unlock()
		return nil
	}
	tsh, ok := r.shards[target]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownShard, target)
	}
	if tsh.down.Load() {
		r.mu.Unlock()
		return ErrShardDown
	}
	if r.shards[source].spec.TransportAddr == "" || tsh.spec.TransportAddr == "" {
		r.mu.Unlock()
		return fmt.Errorf("shard: migration needs transport endpoints on both %q and %q", source, target)
	}
	rt.migrating = true
	rt.epoch++
	mid := id + "#" + strconv.Itoa(rt.epoch)
	remoteID := rt.remoteID
	holdStart := time.Now()
	r.mu.Unlock()

	childTrace := ""
	if traced {
		childTrace = telemetry.TraceContext{Trace: tc.Trace, Span: migSpan}.HeaderValue()
	}
	holdSpan := func(failed bool) {
		r.recordSpan("migrate.hold", tc, migSpan, tc.Span, holdStart, failed)
	}

	ssh := r.shards[source]
	expStart := time.Now()
	cp, err := r.exportFrom(ctx, ssh, mid, remoteID, true, childTrace)
	r.recordSpan("migrate.export", tc, spanIf(traced), migSpan, expStart, err != nil)
	if err != nil {
		// Nothing moved: the source still owns the session (or lost it
		// to a crash, which the failover path will notice). Unwind.
		r.mu.Lock()
		rt.migrating = false
		r.mu.Unlock()
		holdSpan(true)
		r.migrationErrors.Add(1)
		r.log.Warn("migrate export failed", tlog.Trace(telemetry.TraceContext{Trace: tc.Trace, Span: migSpan}),
			tlog.Str("session", id), tlog.Str("source", source), tlog.Str("error", err.Error()))
		var rerr *RemoteError
		if !errors.As(err, &rerr) {
			r.strike(ssh)
		}
		return fmt.Errorf("shard: migrate %s: export from %s: %w", id, source, err)
	}

	resStart := time.Now()
	newID, err := r.restoreOn(ctx, tsh, mid, cp, childTrace)
	r.recordSpan("migrate.restore", tc, spanIf(traced), migSpan, resStart, err != nil)
	if err != nil {
		// The source copy is closed and the target unreachable: park
		// with the checkpoint and let placement retry elsewhere.
		r.mu.Lock()
		rt.shard = ""
		rt.remoteID = ""
		rt.lastCP = cp
		rt.migrating = false
		r.mu.Unlock()
		holdSpan(true)
		r.migrationErrors.Add(1)
		r.parked.Add(1)
		r.log.Warn("migrate restore failed, session parked", tlog.Trace(telemetry.TraceContext{Trace: tc.Trace, Span: migSpan}),
			tlog.Str("session", id), tlog.Str("target", target), tlog.Str("error", err.Error()))
		r.strike(tsh)
		go r.placeParked()
		return fmt.Errorf("shard: migrate %s: restore on %s: %w", id, target, err)
	}

	r.mu.Lock()
	rt.shard = target
	rt.remoteID = newID
	rt.lastCP = cp
	rt.migrating = false
	r.mu.Unlock()
	holdSpan(false)
	r.migrations.Add(1)
	r.log.Info("migrated", tlog.Trace(telemetry.TraceContext{Trace: tc.Trace, Span: migSpan}),
		tlog.Str("session", id), tlog.Str("source", source), tlog.Str("target", target),
		tlog.Dur("hold", time.Since(holdStart)))
	return nil
}

// recordSpan records one router span; a zero span ID (untraced call)
// or a disabled tracer makes it a no-op.
func (r *Router) recordSpan(name string, tc telemetry.TraceContext, span, parent uint64, start time.Time, failed bool) {
	if span == 0 || !r.tracer.Enabled() {
		return
	}
	ev := telemetry.Event{Name: name, Cat: "router", TS: r.tracer.Stamp(start), Dur: time.Since(start),
		Trace: tc.Trace, Span: span, Parent: parent}
	if failed {
		ev.SetArg("failed", 1)
	}
	r.tracer.Record(ev)
}

// spanIf mints a span ID for a traced operation (0 when untraced).
func spanIf(traced bool) uint64 {
	if !traced {
		return 0
	}
	return telemetry.NewSpanID()
}

// leastLoadedLocked picks the live shard owning the fewest routes,
// excluding exclude; caller holds r.mu. Ties break by name so the
// choice is deterministic.
func (r *Router) leastLoadedLocked(exclude string) string {
	counts := make(map[string]int, len(r.shards))
	for _, rt := range r.routes {
		if rt.shard != "" {
			counts[rt.shard]++
		}
	}
	best, bestN := "", -1
	for _, name := range r.names {
		if name == exclude || !r.isLive(name) {
			continue
		}
		if n := counts[name]; bestN < 0 || n < bestN {
			best, bestN = name, n
		}
	}
	return best
}

// parkRoute handles a replica that lost a session (a 404 from a shard
// the router still believes owns it — a replica restart): the route
// parks and placement retries from the failover-insurance checkpoint.
// The placement check inside guards against a racing migration having
// already repointed the route elsewhere.
func (r *Router) parkRoute(id, shardName, remoteID string) {
	r.mu.Lock()
	rt, ok := r.routes[id]
	if !ok || rt.migrating || rt.shard != shardName || rt.remoteID != remoteID {
		r.mu.Unlock()
		return
	}
	rt.migrating = true
	rt.shard = ""
	rt.remoteID = ""
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.placeRoute(id)
	}()
}

// strike records one failure against a shard; FailAfter consecutive
// strikes mark it down and trigger failover.
func (r *Router) strike(sh *shardState) {
	if n := sh.strikes.Add(1); int(n) >= r.cfg.FailAfter {
		if !sh.down.Swap(true) {
			r.log.Warn("shard marked down", tlog.Str("shard", sh.spec.Name), tlog.Int("strikes", int64(n)))
			r.kickFailover(sh)
		}
	}
}

// kickFailover starts (at most one concurrent) failover run for a down
// shard.
func (r *Router) kickFailover(sh *shardState) {
	if !sh.failingOver.CompareAndSwap(false, true) {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer sh.failingOver.Store(false)
		r.failoverShard(sh)
	}()
}

// failoverShard rehomes every session of a down shard: restore from
// the failover-insurance checkpoint where one exists (rolling back to
// it), recreate from spec where none does. Sessions that cannot be
// placed park until a shard comes back.
func (r *Router) failoverShard(sh *shardState) {
	name := sh.spec.Name
	r.mu.Lock()
	var victims []string
	for id, rt := range r.routes {
		if rt.shard == name && !rt.migrating {
			rt.migrating = true
			rt.epoch++
			rt.shard = ""
			rt.remoteID = ""
			victims = append(victims, id)
		}
	}
	r.mu.Unlock()
	if len(victims) == 0 {
		return
	}
	r.failovers.Add(1)
	r.log.Warn("shard failover", tlog.Str("shard", name), tlog.Int("sessions", int64(len(victims))))
	sort.Strings(victims)
	for _, id := range victims {
		r.placeRoute(id)
	}
}

// placeRoute homes one held route (migrating=true, shard="") on a live
// shard, or parks it when none can take it. It owns clearing the
// migrating flag.
//
// Placement runs under its own freshly minted trace (there is no
// request to inherit one from — failover is the router's initiative),
// carried through the restore frame so the surviving replica's
// agent.restore span shares it: the cross-process failover trace.
func (r *Router) placeRoute(id string) {
	r.mu.Lock()
	rt, ok := r.routes[id]
	if !ok {
		r.mu.Unlock()
		return
	}
	cp := rt.lastCP
	spec := rt.spec
	rt.epoch++
	mid := id + "#" + strconv.Itoa(rt.epoch)
	r.mu.Unlock()

	var tc telemetry.TraceContext
	var span uint64
	childTrace := ""
	if r.tracer.Enabled() {
		tc = telemetry.TraceContext{Trace: telemetry.NewTraceID()}
		span = telemetry.NewSpanID()
		childTrace = telemetry.TraceContext{Trace: tc.Trace, Span: span}.HeaderValue()
	}
	start := time.Now()

	target := r.ring.LookupFunc(id, r.isLive)
	finish := func(shard, remoteID, outcome string) {
		r.mu.Lock()
		rt.shard = shard
		rt.remoteID = remoteID
		rt.migrating = false
		r.mu.Unlock()
		r.recordSpan("failover.place", tc, span, 0, start, shard == "")
		r.log.Info("failover placement", tlog.Trace(telemetry.TraceContext{Trace: tc.Trace, Span: span}),
			tlog.Str("session", id), tlog.Str("shard", shard), tlog.Str("outcome", outcome))
	}
	if target == "" {
		finish("", "", "parked")
		r.parked.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sh := r.shards[target]
	if cp != nil && sh.spec.TransportAddr != "" {
		if remoteID, err := r.restoreOn(ctx, sh, mid, cp, childTrace); err == nil {
			finish(target, remoteID, "restored")
			r.restored.Add(1)
			return
		}
		r.strike(sh)
	} else if remoteID, err := sh.client.Create(ctx, spec); err == nil {
		finish(target, remoteID, "recreated")
		r.recreated.Add(1)
		return
	} else {
		r.strike(sh)
	}
	finish("", "", "parked")
	r.parked.Add(1)
}

// placeParked retries placement of every parked session.
func (r *Router) placeParked() {
	r.mu.Lock()
	var parked []string
	for id, rt := range r.routes {
		if rt.shard == "" && !rt.migrating {
			rt.migrating = true
			parked = append(parked, id)
		}
	}
	r.mu.Unlock()
	sort.Strings(parked)
	for _, id := range parked {
		r.placeRoute(id)
	}
}

// Rebalance migrates sessions from the busiest live shard to the
// idlest until the spread is within threshold (cfg.RebalanceThreshold,
// or 1 when unset). Returns how many sessions moved.
func (r *Router) Rebalance(ctx context.Context) int {
	threshold := r.cfg.RebalanceThreshold
	if threshold <= 0 {
		threshold = 1
	}
	moved := 0
	for i := 0; i < 1024; i++ { // hard bound: each pass moves one session
		maxShard, minShard, spread := r.loadSpread()
		if maxShard == "" || spread <= threshold {
			break
		}
		id := r.pickMovable(maxShard)
		if id == "" {
			break
		}
		if err := r.Migrate(ctx, id, minShard); err != nil {
			break
		}
		moved++
		r.rebalanced.Add(1)
	}
	return moved
}

// loadSpread returns the busiest and idlest live shards by route count
// and the count difference.
func (r *Router) loadSpread() (maxShard, minShard string, spread int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[string]int, len(r.shards))
	for _, rt := range r.routes {
		if rt.shard != "" && !rt.migrating {
			counts[rt.shard]++
		}
	}
	maxN, minN := -1, -1
	for _, name := range r.names {
		if !r.isLive(name) {
			continue
		}
		n := counts[name]
		if maxN < 0 || n > maxN {
			maxShard, maxN = name, n
		}
		if minN < 0 || n < minN {
			minShard, minN = name, n
		}
	}
	if maxN < 0 {
		return "", "", 0
	}
	return maxShard, minShard, maxN - minN
}

// pickMovable returns the lexically first non-migrating session homed
// on the shard ("" if none).
func (r *Router) pickMovable(shard string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	best := ""
	for id, rt := range r.routes {
		if rt.shard == shard && !rt.migrating && (best == "" || id < best) {
			best = id
		}
	}
	return best
}

// probeLoop pings every shard each interval, driving the liveness
// flags: FailAfter consecutive probe failures mark a shard down (and
// fail its sessions over); one success marks it back up, re-places
// parked sessions, and — when automatic rebalancing is enabled —
// levels load back onto it.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	seq := int64(0)
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
		}
		seq++
		for _, name := range r.names {
			if sh := r.shards[name]; sh.spec.TransportAddr != "" {
				r.probe(sh, seq)
			}
		}
	}
}

// probe pings one shard once and applies the outcome to its liveness.
// Each probe doubles as one NTP-style clock-offset exchange: t0/t3 are
// the router clock around the call, t1/t2 the replica clock inside it
// (PongMsg), and the derived offset/rtt feed the shard's EWMAs — the
// alignment data `esthera-trace merge` uses.
func (r *Router) probe(sh *shardState, seq int64) {
	r.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	t0 := time.Now().UnixNano()
	t, payload, err := sh.peer.Call(ctx, FramePing, marshal(PingMsg{Seq: seq, SentUnixNano: t0}))
	t3 := time.Now().UnixNano()
	if err == nil && t == FramePong {
		var pong PongMsg
		if uerr := unmarshal(t, payload, &pong); uerr == nil {
			if pong.RecvUnixNano > 0 && pong.SendUnixNano > 0 {
				offset := ((pong.RecvUnixNano - t0) + (pong.SendUnixNano - t3)) / 2
				rtt := (t3 - t0) - (pong.SendUnixNano - pong.RecvUnixNano)
				sh.observeClock(offset, rtt)
			}
			sh.lastPong.Store(&pong)
			sh.strikes.Store(0)
			if sh.down.Swap(false) {
				r.log.Info("shard recovered", tlog.Str("shard", sh.spec.Name))
				// The shard is back: give parked sessions a home and,
				// if enabled, level load onto it.
				r.wg.Add(1)
				go func() {
					defer r.wg.Done()
					r.placeParked()
					if r.cfg.RebalanceThreshold > 0 {
						ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
						defer cancel()
						r.Rebalance(ctx)
					}
				}()
			}
			return
		}
	}
	r.probeFailures.Add(1)
	r.strike(sh)
}

// RetryAfter is the back-off hint the HTTP layer attaches to retryable
// router errors.
func (r *Router) RetryAfter() time.Duration { return r.cfg.RetryAfter }

// ShardHealth is one shard's router-side view for /v1/shards and the
// aggregated metrics.
type ShardHealth struct {
	Name          string   `json:"name"`
	BaseURL       string   `json:"base_url"`
	TransportAddr string   `json:"transport_addr"`
	Down          bool     `json:"down"`
	Strikes       int      `json:"strikes"`
	Sessions      int      `json:"sessions"`
	LastPong      *PongMsg `json:"last_pong,omitempty"`
	// ClockOffsetNS is the EWMA of the replica clock minus the router
	// clock (NTP-style, from probe ping/pong timestamps); RTTNS the
	// probe round trip. Both 0 until the first timestamped pong.
	ClockOffsetNS int64 `json:"clock_offset_ns"`
	RTTNS         int64 `json:"rtt_ns"`
}

// RouterStats is the router's introspection record.
type RouterStats struct {
	Sessions        int           `json:"sessions"`
	Parked          int           `json:"parked_now"`
	Migrating       int           `json:"migrating_now"`
	StepsForwarded  int64         `json:"steps_forwarded"`
	StepsHeld       int64         `json:"steps_held"`
	StepsRerouted   int64         `json:"steps_rerouted"`
	Migrations      int64         `json:"migrations"`
	MigrationErrors int64         `json:"migration_errors"`
	Failovers       int64         `json:"failovers"`
	Restored        int64         `json:"sessions_restored"`
	Recreated       int64         `json:"sessions_recreated"`
	ParkEvents      int64         `json:"park_events"`
	Rebalanced      int64         `json:"sessions_rebalanced"`
	Probes          int64         `json:"probes"`
	ProbeFailures   int64         `json:"probe_failures"`
	Shards          []ShardHealth `json:"shards"`
}

// Stats snapshots the router's counters and per-shard liveness.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		StepsForwarded:  r.stepsForwarded.Load(),
		StepsHeld:       r.stepsHeld.Load(),
		StepsRerouted:   r.stepsRerouted.Load(),
		Migrations:      r.migrations.Load(),
		MigrationErrors: r.migrationErrors.Load(),
		Failovers:       r.failovers.Load(),
		Restored:        r.restored.Load(),
		Recreated:       r.recreated.Load(),
		ParkEvents:      r.parked.Load(),
		Rebalanced:      r.rebalanced.Load(),
		Probes:          r.probes.Load(),
		ProbeFailures:   r.probeFailures.Load(),
	}
	counts := make(map[string]int, len(r.shards))
	r.mu.Lock()
	st.Sessions = len(r.routes)
	for _, rt := range r.routes {
		if rt.migrating {
			st.Migrating++
		} else if rt.shard == "" {
			st.Parked++
		} else {
			counts[rt.shard]++
		}
	}
	r.mu.Unlock()
	for _, name := range r.names {
		sh := r.shards[name]
		st.Shards = append(st.Shards, ShardHealth{
			Name:          name,
			BaseURL:       sh.spec.BaseURL,
			TransportAddr: sh.spec.TransportAddr,
			Down:          sh.down.Load(),
			Strikes:       int(sh.strikes.Load()),
			Sessions:      counts[name],
			LastPong:      sh.lastPong.Load(),
			ClockOffsetNS: sh.clockOffsetNS.Load(),
			RTTNS:         sh.rttNS.Load(),
		})
	}
	return st
}

// ShardNames returns the configured shard names, sorted.
func (r *Router) ShardNames() []string {
	return append([]string(nil), r.names...)
}

// ShardStats fetches one replica's own /metrics snapshot through its
// client.
func (r *Router) ShardStats(ctx context.Context, name string) (serve.Stats, error) {
	sh, ok := r.shards[name]
	if !ok {
		return serve.Stats{}, fmt.Errorf("%w: %q", ErrUnknownShard, name)
	}
	return sh.client.Stats(ctx)
}

// Tracer returns the router's span tracer (drained over /trace).
func (r *Router) Tracer() *telemetry.Tracer { return r.tracer }

// Logger returns the router's structured logger (drained over /logz).
// Never nil.
func (r *Router) Logger() *tlog.Logger { return r.log }

// StepSLO returns the forwarded-step SLO tracker.
func (r *Router) StepSLO() *telemetry.SLOTracker { return r.sloStep }

// Ready reports whether the router can serve: at least one live shard.
func (r *Router) Ready() bool {
	for _, name := range r.names {
		if r.isLive(name) {
			return true
		}
	}
	return false
}
