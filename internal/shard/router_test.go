package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"esthera/internal/model"
	"esthera/internal/serve"
	"esthera/internal/telemetry"
)

func testModels() map[string]serve.ModelFactory {
	return map[string]serve.ModelFactory{
		"ungm": func() (model.Model, error) { return model.NewUNGM(), nil },
	}
}

// replica is one in-process esthera-serve stand-in: a serve.Server, its
// HTTP front-end, and its shard transport endpoint.
type replica struct {
	name string
	srv  *serve.Server
	web  *httptest.Server
	tl   *Listener
	spec ShardSpec
}

func startReplica(t *testing.T, name string) *replica {
	t.Helper()
	srv := serve.NewServer(serve.Config{Workers: 2}, testModels())
	web := httptest.NewServer(serve.NewHandler(srv))
	tl := NewListener(name, NewAgent(name, srv))
	if err := tl.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	r := &replica{
		name: name,
		srv:  srv,
		web:  web,
		tl:   tl,
		spec: ShardSpec{Name: name, BaseURL: web.URL, TransportAddr: tl.Addr().String()},
	}
	t.Cleanup(r.kill)
	return r
}

// kill tears the replica down hard (idempotent): HTTP refused, transport
// refused, device stopped.
func (r *replica) kill() {
	r.web.CloseClientConnections()
	r.web.Close()
	r.tl.Close()
	r.srv.Shutdown()
}

func newTestRouter(t *testing.T, cfg RouterConfig, reps ...*replica) *Router {
	t.Helper()
	for _, rep := range reps {
		cfg.Shards = append(cfg.Shards, rep.spec)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // most tests drive liveness from the step path
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// obs is the deterministic observation stream shared by routed and
// reference runs.
func obs(k int) []float64 {
	return []float64{math.Sin(float64(k)) * 5}
}

func sameResult(t *testing.T, k int, got, want serve.StepResult) {
	t.Helper()
	if got.Step != want.Step {
		t.Fatalf("step %d: counter %d, want %d", k, got.Step, want.Step)
	}
	if math.Float64bits(got.LogWeight) != math.Float64bits(want.LogWeight) {
		t.Fatalf("step %d: log-weight bits %016x, want %016x", k,
			math.Float64bits(got.LogWeight), math.Float64bits(want.LogWeight))
	}
	if len(got.State) != len(want.State) {
		t.Fatalf("step %d: state dim %d, want %d", k, len(got.State), len(want.State))
	}
	for i := range got.State {
		if math.Float64bits(got.State[i]) != math.Float64bits(want.State[i]) {
			t.Fatalf("step %d: state[%d] bits %016x, want %016x", k, i,
				math.Float64bits(got.State[i]), math.Float64bits(want.State[i]))
		}
	}
}

// TestMigrationDeterminism is the tentpole acceptance test: a session
// stepped K times on one replica, live-migrated over TCP to another,
// and stepped K more must produce an estimate stream bit-identical to
// the same spec stepped 2K times on one uninterrupted server.
func TestMigrationDeterminism(t *testing.T) {
	const K = 8
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	router := newTestRouter(t, RouterConfig{}, a, b)
	ctx := context.Background()

	spec := serve.FilterSpec{Model: "ungm", Seed: 7}
	id, err := router.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	source, err := router.ShardOf(id)
	if err != nil {
		t.Fatal(err)
	}
	target := "a"
	if source == "a" {
		target = "b"
	}

	var routed []serve.StepResult
	for k := 0; k < K; k++ {
		res, err := router.Step(ctx, id, nil, obs(k))
		if err != nil {
			t.Fatalf("pre-migration step %d: %v", k, err)
		}
		routed = append(routed, res)
	}
	if err := router.Migrate(ctx, id, target); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if got, _ := router.ShardOf(id); got != target {
		t.Fatalf("after migration session sits on %q, want %q", got, target)
	}
	for k := K; k < 2*K; k++ {
		res, err := router.Step(ctx, id, nil, obs(k))
		if err != nil {
			t.Fatalf("post-migration step %d: %v", k, err)
		}
		routed = append(routed, res)
	}

	// The source replica must no longer hold a copy (drain-on-export):
	// exactly one live copy exists, on the target.
	srcSrv := a.srv
	tgtSrv := b.srv
	if source == "b" {
		srcSrv, tgtSrv = b.srv, a.srv
	}
	if n := len(srcSrv.Sessions()); n != 0 {
		t.Fatalf("source replica still holds %d sessions after migration", n)
	}
	if n := len(tgtSrv.Sessions()); n != 1 {
		t.Fatalf("target replica holds %d sessions, want 1", n)
	}

	// Reference: one uninterrupted server, same spec, same observations.
	ref := serve.NewServer(serve.Config{Workers: 2}, testModels())
	defer ref.Shutdown()
	rid, err := ref.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2*K; k++ {
		want, err := ref.StepCtx(ctx, rid, nil, obs(k))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, k, routed[k], want)
	}

	if st := router.Stats(); st.Migrations != 1 {
		t.Fatalf("migrations counter = %d, want 1", st.Migrations)
	}
}

// TestMigrationAtMostOnce covers the duplicate-migration paths: a
// second Migrate while one is in flight is rejected at the router, and
// a replayed transfer is deduplicated at the agent.
func TestMigrationAtMostOnce(t *testing.T) {
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	router := newTestRouter(t, RouterConfig{}, a, b)
	ctx := context.Background()

	id, err := router.Create(ctx, serve.FilterSpec{Model: "ungm", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Freeze the route mid-migration (what a concurrent Migrate would
	// observe) and assert both surfaces of the hold.
	router.mu.Lock()
	router.routes[id].migrating = true
	router.mu.Unlock()
	if err := router.Migrate(ctx, id, "b"); !errors.Is(err, ErrMigrationInFlight) {
		t.Fatalf("second migrate: %v, want ErrMigrationInFlight", err)
	}
	if _, err := router.Step(ctx, id, nil, obs(0)); !errors.Is(err, ErrMigrating) {
		t.Fatalf("step during migration: %v, want ErrMigrating", err)
	}
	router.mu.Lock()
	router.routes[id].migrating = false
	router.mu.Unlock()

	// Agent-level dedup: replaying the export and restore halves of one
	// migration id must be idempotent.
	srcName, _ := router.ShardOf(id)
	src := a
	if srcName == "b" {
		src = b
	}
	remoteID := src.srv.Sessions()[0]
	peer := NewPeer(src.spec.TransportAddr, "test")
	defer peer.Close()

	const mid = "t-x#9"
	export := func() *CheckpointMsg {
		ft, payload, err := peer.Call(ctx, FrameExport, marshal(ExportMsg{MigrationID: mid, SessionID: remoteID, Close: true}))
		if err != nil || ft != FrameCheckpoint {
			t.Fatalf("export: %v %v", ft, err)
		}
		var msg CheckpointMsg
		if err := unmarshal(ft, payload, &msg); err != nil {
			t.Fatal(err)
		}
		return &msg
	}
	cp1 := export()
	cp2 := export() // the session is closed now; only the dedup log can answer
	if cp1.Checkpoint == nil || cp2.Checkpoint == nil || cp1.Checkpoint.Particles != cp2.Checkpoint.Particles {
		t.Fatal("replayed export did not return the original checkpoint")
	}

	tgtPeer := NewPeer(b.spec.TransportAddr, "test")
	defer tgtPeer.Close()
	restore := func() RestoredMsg {
		ft, payload, err := tgtPeer.Call(ctx, FrameRestore, marshal(RestoreMsg{MigrationID: mid, Checkpoint: cp1.Checkpoint}))
		if err != nil || ft != FrameRestored {
			t.Fatalf("restore: %v %v", ft, err)
		}
		var msg RestoredMsg
		if err := unmarshal(ft, payload, &msg); err != nil {
			t.Fatal(err)
		}
		return msg
	}
	before := len(b.srv.Sessions())
	r1 := restore()
	r2 := restore()
	if r1.SessionID != r2.SessionID {
		t.Fatalf("replayed restore installed a second copy: %q vs %q", r1.SessionID, r2.SessionID)
	}
	if r1.Duplicate || !r2.Duplicate {
		t.Fatalf("duplicate flags %v/%v, want false/true", r1.Duplicate, r2.Duplicate)
	}
	if after := len(b.srv.Sessions()); after != before+1 {
		t.Fatalf("restore replay changed session count %d → %d, want +1", before, after)
	}
}

// TestShardDeathMidStep kills a replica out from under its sessions:
// the step surfaces as the retryable ErrShardDown, failover rehomes the
// session onto the survivor, and stepping resumes.
func TestShardDeathMidStep(t *testing.T) {
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	router := newTestRouter(t, RouterConfig{FailAfter: 1}, a, b)
	ctx := context.Background()

	id, err := router.Create(ctx, serve.FilterSpec{Model: "ungm", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.Step(ctx, id, nil, obs(0)); err != nil {
		t.Fatal(err)
	}

	source, _ := router.ShardOf(id)
	victim, survivor := a, b
	if source == "b" {
		victim, survivor = b, a
	}
	victim.kill()

	if _, err := router.Step(ctx, id, nil, obs(1)); !errors.Is(err, ErrShardDown) && !errors.Is(err, ErrMigrating) {
		t.Fatalf("step against dead shard: %v, want ErrShardDown", err)
	}

	// Failover runs in the background; the session must land on the
	// survivor and accept steps again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sh, _ := router.ShardOf(id); sh == survivor.name {
			if _, err := router.Step(ctx, id, nil, obs(2)); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			sh, _ := router.ShardOf(id)
			t.Fatalf("session never recovered onto %q (still on %q)", survivor.name, sh)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := router.Stats()
	if st.Failovers < 1 {
		t.Fatalf("failover counter = %d, want ≥ 1", st.Failovers)
	}
	if st.Restored+st.Recreated < 1 {
		t.Fatalf("no session was restored or recreated: %+v", st)
	}
}

// TestRouterHTTPRetryableStates drives the HTTP front-end: a migrating
// session answers 503 with both Retry-After headers (so serve.Client
// retries transparently), a duplicate migration answers 409, and an
// unknown session 404.
func TestRouterHTTPRetryableStates(t *testing.T) {
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	router := newTestRouter(t, RouterConfig{}, a, b)
	front := httptest.NewServer(NewRouterHandler(router))
	defer front.Close()
	ctx := context.Background()

	id, err := router.Create(ctx, serve.FilterSpec{Model: "ungm", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	router.mu.Lock()
	router.routes[id].migrating = true
	router.mu.Unlock()

	resp, err := http.Post(front.URL+"/v1/sessions/"+id+"/step", "application/json", strings.NewReader(`{"z":[0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("step during migration: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After-Ms") == "" {
		t.Fatalf("503 without retry hints: %+v", resp.Header)
	}

	resp, err = http.Post(front.URL+"/v1/sessions/"+id+"/migrate", "application/json", strings.NewReader(`{"target":"b"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate migrate: status %d, want 409", resp.StatusCode)
	}

	router.mu.Lock()
	router.routes[id].migrating = false
	router.mu.Unlock()

	resp, err = http.Get(front.URL + "/v1/sessions/no-such-session")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}

	// With the hold released, a serve.Client steps through the router
	// exactly as it would against a single replica.
	client := serve.NewClient(serve.ClientConfig{BaseURL: front.URL})
	if _, err := client.Step(ctx, id, nil, obs(0)); err != nil {
		t.Fatalf("client step through router: %v", err)
	}
	if err := client.Close(ctx, id); err != nil {
		t.Fatalf("client close through router: %v", err)
	}
	if _, err := router.ShardOf(id); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("route survived close: %v", err)
	}
}

// TestRouterRebalance piles sessions onto an imbalanced router and
// checks Rebalance levels them with live migrations.
func TestRouterRebalance(t *testing.T) {
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	router := newTestRouter(t, RouterConfig{RebalanceThreshold: 1}, a, b)
	ctx := context.Background()

	var ids []string
	for i := 0; i < 6; i++ {
		id, err := router.Create(ctx, serve.FilterSpec{Model: "ungm", Seed: uint64(20 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Force every session onto shard a to create a maximal imbalance.
	for _, id := range ids {
		if sh, _ := router.ShardOf(id); sh != "a" {
			if err := router.Migrate(ctx, id, "a"); err != nil {
				t.Fatal(err)
			}
		}
	}
	moved := router.Rebalance(ctx)
	if moved == 0 {
		t.Fatal("rebalance moved nothing off a 6-0 split")
	}
	_, _, spread := router.loadSpread()
	if spread > 1 {
		t.Fatalf("spread %d after rebalance, want ≤ 1", spread)
	}
	// Rebalanced sessions must still step.
	for k, id := range ids {
		if _, err := router.Step(ctx, id, nil, obs(k)); err != nil {
			t.Fatalf("step %s after rebalance: %v", id, err)
		}
	}
}

// TestRouterProbeFailover exercises the transport health loop end to
// end: with probing enabled, killing a replica fails its sessions over
// without any step traffic provoking it.
func TestRouterProbeFailover(t *testing.T) {
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	router := newTestRouter(t, RouterConfig{ProbeInterval: 25 * time.Millisecond, FailAfter: 2}, a, b)
	ctx := context.Background()

	id, err := router.Create(ctx, serve.FilterSpec{Model: "ungm", Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	source, _ := router.ShardOf(id)
	victim, survivor := a, b
	if source == "b" {
		victim, survivor = b, a
	}
	victim.kill()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if sh, _ := router.ShardOf(id); sh == survivor.name {
			break
		}
		if time.Now().After(deadline) {
			sh, _ := router.ShardOf(id)
			t.Fatalf("probe loop never failed the session over (still on %q)", sh)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := router.Step(ctx, id, nil, obs(0)); err != nil {
		t.Fatalf("step after probe-driven failover: %v", err)
	}
	if st := router.Stats(); st.ProbeFailures == 0 {
		t.Fatalf("probe failures = 0 after killing a replica: %+v", st)
	}
}

// spansNamed filters drained events down to one span name.
func spansNamed(evs []telemetry.Event, name string) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range evs {
		if ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

// TestMigrationTraceContinuity is the span-continuity acceptance test:
// a session stepped under one propagated trace context, live-migrated
// mid-load, and stepped again must yield spans sharing that single
// trace ID in the router (route.step, the migrate.hold window, export
// and restore) and on both replicas (request spans before and after
// the move, plus the agent's export/restore spans) — one request
// identity across every process it touched.
func TestMigrationTraceContinuity(t *testing.T) {
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	a.srv.Tracer().SetEnabled(true)
	b.srv.Tracer().SetEnabled(true)
	router := newTestRouter(t, RouterConfig{Trace: true}, a, b)
	ctx := context.Background()

	id, err := router.Create(ctx, serve.FilterSpec{Model: "ungm", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	source, _ := router.ShardOf(id)
	target := "a"
	if source == "a" {
		target = "b"
	}

	// Every call below carries the same propagated trace context, as an
	// upstream caller with a traceparent header would.
	tc := telemetry.TraceContext{Trace: telemetry.NewTraceID(), Span: telemetry.NewSpanID()}
	tctx := telemetry.ContextWithTrace(ctx, tc)

	for k := 0; k < 4; k++ {
		if _, err := router.Step(tctx, id, nil, obs(k)); err != nil {
			t.Fatalf("pre-migration step %d: %v", k, err)
		}
	}

	// Migrate mid-load: a background loader keeps stepping (riding out
	// the hold window's ErrMigrating, as serve.Client's retry loop
	// would) while the migration runs.
	stop := make(chan struct{})
	var loader sync.WaitGroup
	loader.Add(1)
	go func() {
		defer loader.Done()
		for k := 4; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := router.Step(tctx, id, nil, obs(k)); err != nil && !errors.Is(err, ErrMigrating) {
				t.Errorf("mid-load step %d: %v", k, err)
				return
			}
		}
	}()
	if err := router.Migrate(tctx, id, target); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	close(stop)
	loader.Wait()
	if _, err := router.Step(tctx, id, nil, obs(100)); err != nil {
		t.Fatalf("post-migration step: %v", err)
	}

	// Router side: the forwarded steps and the whole migration protocol
	// share the propagated trace ID, and the hold window is a real span.
	revs := router.Tracer().Drain()
	for _, name := range []string{"route.step", "migrate.hold", "migrate.export", "migrate.restore"} {
		spans := spansNamed(revs, name)
		if len(spans) == 0 {
			t.Fatalf("router recorded no %q span", name)
		}
		for _, ev := range spans {
			if ev.Trace != tc.Trace {
				t.Fatalf("router %q span has trace %s, want %s", name, ev.Trace, tc.Trace)
			}
		}
	}
	hold := spansNamed(revs, "migrate.hold")[0]
	if hold.Dur <= 0 {
		t.Fatalf("migrate.hold span has non-positive duration %v", hold.Dur)
	}
	if hold.Parent != tc.Span {
		t.Fatalf("migrate.hold parent span %x, want the caller's %x", hold.Parent, tc.Span)
	}

	// Replica side: the source saw traced request spans and the export;
	// the target saw the restore and the post-migration request spans —
	// all under the same trace ID.
	src, tgt := a, b
	if source == "b" {
		src, tgt = b, a
	}
	sevs := src.srv.Tracer().Drain()
	tevs := tgt.srv.Tracer().Drain()
	for _, check := range []struct {
		proc string
		evs  []telemetry.Event
		span string
	}{
		{src.name, sevs, "request"},
		{src.name, sevs, "agent.export"},
		{tgt.name, tevs, "agent.restore"},
		{tgt.name, tevs, "request"},
	} {
		spans := spansNamed(check.evs, check.span)
		if len(spans) == 0 {
			t.Fatalf("replica %s recorded no %q span", check.proc, check.span)
		}
		found := false
		for _, ev := range spans {
			if ev.Trace == tc.Trace {
				found = true
			}
		}
		if !found {
			t.Fatalf("replica %s has no %q span with trace %s", check.proc, check.span, tc.Trace)
		}
	}
}

// TestCreateSpreadsByHash sanity-checks initial placement: with enough
// sessions both shards get some.
func TestCreateSpreadsByHash(t *testing.T) {
	a := startReplica(t, "a")
	b := startReplica(t, "b")
	router := newTestRouter(t, RouterConfig{}, a, b)
	ctx := context.Background()
	counts := map[string]int{}
	for i := 0; i < 12; i++ {
		id, err := router.Create(ctx, serve.FilterSpec{Model: "ungm", Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		sh, _ := router.ShardOf(id)
		counts[sh]++
	}
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("all 12 sessions landed on one shard: %v", counts)
	}
	if fmt.Sprint(router.ShardNames()) != "[a b]" {
		t.Fatalf("shard names %v", router.ShardNames())
	}
}
