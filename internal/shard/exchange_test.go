package shard

import (
	"math"
	"testing"

	"esthera/internal/cluster"
	"esthera/internal/model"
)

func newTestCluster(t *testing.T, seed uint64) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(model.NewUNGM(), cluster.Config{
		Nodes:             3,
		SubFiltersPerNode: 2,
		ParticlesPer:      16,
		ExchangeCount:     2,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterExchangeOverTCPBitExact runs the same cluster twice — once
// with the in-process exchange, once with every inter-node pull framed
// over a real TCP socket and reflected back — through a fault-injection
// schedule, and demands bit-identical estimate streams. This is the
// transport's core guarantee: the wire is invisible to the filter.
func TestClusterExchangeOverTCPBitExact(t *testing.T) {
	l := startListener(t, ExchangeReflector(nil))

	ref := newTestCluster(t, 99)
	tcp := newTestCluster(t, 99)
	ec := NewExchangeClient(l.Addr().String(), "cluster-test", 0)
	defer ec.Close()
	tcp.SetTransport(ec)

	step := func(c *cluster.Cluster, k int) (state []float64, lw float64) {
		est := c.Step(nil, []float64{math.Cos(float64(k)) * 3})
		return est.State, est.LogWeight
	}
	for k := 0; k < 24; k++ {
		// Inject the same failure schedule into both runs.
		switch k {
		case 8:
			ref.FailNode(1)
			tcp.FailNode(1)
		case 16:
			ref.RestoreNode(1)
			tcp.RestoreNode(1)
		}
		ws, wlw := step(ref, k)
		gs, glw := step(tcp, k)
		if math.Float64bits(glw) != math.Float64bits(wlw) {
			t.Fatalf("round %d: log-weight over TCP %016x, in-process %016x", k,
				math.Float64bits(glw), math.Float64bits(wlw))
		}
		for i := range ws {
			if math.Float64bits(gs[i]) != math.Float64bits(ws[i]) {
				t.Fatalf("round %d: state[%d] over TCP %016x, in-process %016x", k, i,
					math.Float64bits(gs[i]), math.Float64bits(ws[i]))
			}
		}
	}
	if n := tcp.TransportErrors(); n != 0 {
		t.Fatalf("healthy transport recorded %d errors", n)
	}
	if tcp.Health().CommMessages == 0 {
		t.Fatal("no inter-node messages crossed the transport")
	}
}

// TestClusterTransportFailureDegrades kills the transport endpoint
// mid-run: inter-node pulls drop (TransportErrors and DroppedEdges
// grow), but the filter keeps stepping every round — transport loss is
// degradation, never a stall.
func TestClusterTransportFailureDegrades(t *testing.T) {
	l := startListener(t, ExchangeReflector(nil))
	c := newTestCluster(t, 5)
	ec := NewExchangeClient(l.Addr().String(), "cluster-test", 0)
	defer ec.Close()
	c.SetTransport(ec)

	for k := 0; k < 4; k++ {
		c.Step(nil, []float64{1})
	}
	if c.TransportErrors() != 0 {
		t.Fatalf("errors before the kill: %d", c.TransportErrors())
	}
	l.Close()
	for k := 0; k < 4; k++ {
		est := c.Step(nil, []float64{1})
		if len(est.State) == 0 {
			t.Fatalf("round %d after transport death produced no estimate", k)
		}
	}
	h := c.Health()
	if h.TransportErrors == 0 {
		t.Fatal("dead transport recorded no errors")
	}
	if h.DroppedEdges < h.TransportErrors {
		t.Fatalf("dropped edges %d < transport errors %d: drops must be accounted", h.DroppedEdges, h.TransportErrors)
	}
	if h.Rounds != 8 {
		t.Fatalf("rounds = %d, want 8 (no stalls)", h.Rounds)
	}

	// Detaching the transport restores the pure in-process path.
	c.SetTransport(nil)
	before := c.TransportErrors()
	c.Step(nil, []float64{1})
	if c.TransportErrors() != before {
		t.Fatal("detached transport still recorded errors")
	}
}
