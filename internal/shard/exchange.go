package shard

import (
	"context"
	"fmt"
	"time"

	"esthera/internal/cluster"
)

// ExchangeClient carries a cluster's inter-node exchange pulls over the
// shard TCP transport: it implements cluster.Transport by framing each
// record block as a binary FrameExchange and applying whatever the far
// side answers. Against ExchangeReflector (or any peer that returns the
// records unchanged) the filter's estimate stream stays bit-identical
// to the in-process exchange — the records are raw IEEE-754 bit
// patterns end to end, never decimal-formatted.
//
// Transport failures return an error, which the cluster absorbs as a
// dropped edge for that round (the degraded-mode machinery, not a
// stall); the underlying Peer redials on the next pull.
type ExchangeClient struct {
	peer *Peer
	// timeout bounds one pull (0 = 2s): the exchange is on the hot
	// step path, so a dead peer must fail fast into the drop path
	// rather than hold the round.
	timeout time.Duration
}

// NewExchangeClient builds a transport pulling exchange records through
// the shard listener at addr, identifying as name.
func NewExchangeClient(addr, name string, timeout time.Duration) *ExchangeClient {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &ExchangeClient{peer: NewPeer(addr, name), timeout: timeout}
}

var _ cluster.Transport = (*ExchangeClient)(nil)

// Exchange implements cluster.Transport.
func (e *ExchangeClient) Exchange(round int64, from, to int, recs []float64) ([]float64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), e.timeout)
	defer cancel()
	payload := EncodeExchange(ExchangeMsg{Round: round, From: int32(from), To: int32(to), Recs: recs})
	t, reply, err := e.peer.Call(ctx, FrameExchange, payload)
	if err != nil {
		return nil, err
	}
	if t != FrameExchangeOK {
		return nil, fmt.Errorf("shard: exchange reply was %s, want exchange-ok", t)
	}
	msg, err := DecodeExchange(reply)
	if err != nil {
		return nil, err
	}
	if len(msg.Recs) != len(recs) {
		return nil, fmt.Errorf("shard: exchange reply carries %d records, sent %d", len(msg.Recs), len(recs))
	}
	return msg.Recs, nil
}

// Close drops the pooled connection.
func (e *ExchangeClient) Close() { e.peer.Close() }

// ExchangeFunc resolves one exchange pull on the listening side of the
// transport: given the decoded request it returns the records the
// receiver must apply. A nil ExchangeFunc reflects the request's own
// records — the loopback proving the framing is bit-exact over a real
// socket; a real node half would look the (round, from) block up in
// its own outbox instead.
type ExchangeFunc func(round int64, from, to int, recs []float64) ([]float64, error)

// ExchangeReflector builds a transport Handler serving FrameExchange
// with fn (nil = echo). Other frame types answer CodeBadRequest, so a
// reflector endpoint cannot be abused as a migration agent.
func ExchangeReflector(fn ExchangeFunc) Handler {
	return HandlerFunc(func(remote string, t FrameType, payload []byte) (FrameType, []byte, error) {
		if t != FrameExchange {
			return 0, nil, &RemoteError{Code: CodeBadRequest, Message: fmt.Sprintf("exchange endpoint does not serve %s frames", t)}
		}
		msg, err := DecodeExchange(payload)
		if err != nil {
			return 0, nil, err
		}
		recs := msg.Recs
		if fn != nil {
			if recs, err = fn(msg.Round, int(msg.From), int(msg.To), msg.Recs); err != nil {
				return 0, nil, &RemoteError{Code: CodeInternal, Message: err.Error()}
			}
		}
		return FrameExchangeOK, EncodeExchange(ExchangeMsg{Round: msg.Round, From: msg.From, To: msg.To, Recs: recs}), nil
	})
}
