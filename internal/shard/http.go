package shard

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"

	"esthera/internal/serve"
	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

// NewRouterHandler exposes a Router over the same JSON-over-HTTP
// surface as a single esthera-serve replica, plus the routing
// control plane:
//
//	POST   /v1/sessions                  {"spec": FilterSpec}   → {"id": ...}
//	GET    /v1/sessions                                         → {"sessions": [ids]}
//	GET    /v1/sessions/{id}                                    → last estimate
//	POST   /v1/sessions/{id}/step        {"u": [...], "z": [...]} → StepResult
//	DELETE /v1/sessions/{id}                                    → 204
//	GET    /v1/sessions/{id}/checkpoint                         → Checkpoint (over the shard transport)
//	POST   /v1/sessions/{id}/migrate     {"target": "name"}     → {"shard": ...} ("" = least-loaded)
//	POST   /v1/rebalance                                        → {"moved": n}
//	GET    /v1/shards                                           → per-shard liveness/placement
//	GET    /metrics                                             → {"router": ..., "shards": {...}} (JSON);
//	                                                              Prometheus text with ?format=prometheus
//	GET    /trace                                               → drain router spans (Chrome JSON; ?format=raw)
//	POST   /trace                        {"enabled": bool}      → toggle span recording
//	GET    /logz                                                → drain structured log ring (JSON lines)
//	POST   /logz                         {"level": "..."}       → set log level
//	GET    /healthz                                             → 200 while up (body carries the build string)
//	GET    /readyz                                              → 200 with ≥1 live shard, else 503
//
// A W3C traceparent request header on a step joins the caller's trace;
// absent one, the router mints a fresh trace ID per step when tracing
// is enabled, and either way forwards the context downstream so the
// replica's spans share the trace.
//
// A serve.Client pointed at a router works unchanged: step and
// estimate requests forward to the owning replica, and the transient
// states the router introduces — session mid-migration, shard
// mid-failover — surface as 503 + Retry-After(-Ms), which that
// client's retry loop already rides out (both guarantee the step was
// not applied). A duplicate migration request is 409; an unknown
// session or shard is 404.
func NewRouterHandler(r *Router) http.Handler {
	reg := telemetry.NewRegistry()
	reg.RegisterCollector(routerCollector(r))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Spec serve.FilterSpec `json:"spec"`
		}
		if !readJSON(w, req, &body) {
			return
		}
		id, err := r.Create(req.Context(), body.Spec)
		if err != nil {
			routerError(w, r, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": r.Sessions()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		res, err := r.Estimate(req.Context(), req.PathValue("id"))
		if err != nil {
			routerError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, sanitizeResult(res))
	})
	mux.HandleFunc("POST /v1/sessions/{id}/step", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			U []float64 `json:"u"`
			Z []float64 `json:"z"`
		}
		if !readJSON(w, req, &body) {
			return
		}
		ctx := req.Context()
		if tc, ok := telemetry.ParseTraceParent(req.Header.Get(telemetry.TraceHeader)); ok {
			ctx = telemetry.ContextWithTrace(ctx, tc)
		}
		res, err := r.Step(ctx, req.PathValue("id"), body.U, body.Z)
		if err != nil {
			routerError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, sanitizeResult(res))
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		if err := r.CloseSession(req.Context(), req.PathValue("id")); err != nil {
			routerError(w, r, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", func(w http.ResponseWriter, req *http.Request) {
		cp, err := r.Checkpoint(req.Context(), req.PathValue("id"))
		if err != nil {
			routerError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, cp)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/migrate", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Target string `json:"target"`
		}
		if !readJSON(w, req, &body) {
			return
		}
		id := req.PathValue("id")
		if err := r.Migrate(req.Context(), id, body.Target); err != nil {
			routerError(w, r, err)
			return
		}
		shard, _ := r.ShardOf(id)
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "shard": shard})
	})
	mux.HandleFunc("POST /v1/rebalance", func(w http.ResponseWriter, req *http.Request) {
		moved := r.Rebalance(req.Context())
		writeJSON(w, http.StatusOK, map[string]int{"moved": moved})
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"shards": r.Stats().Shards})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		if telemetry.WantsPrometheus(req) {
			reg.ServePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, aggregateStats(req.Context(), r))
	})
	mux.Handle("/trace", telemetry.TraceHandler(r.Tracer()))
	mux.Handle("/logz", tlog.Handler(r.Logger()))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "build": telemetry.BuildString()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		if !r.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no live shards"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// AggregatedStats is the router /metrics JSON shape: the router's own
// counters plus each reachable replica's full Stats snapshot.
type AggregatedStats struct {
	Router RouterStats            `json:"router"`
	Shards map[string]serve.Stats `json:"shards"`
}

func aggregateStats(ctx context.Context, r *Router) AggregatedStats {
	out := AggregatedStats{Router: r.Stats(), Shards: make(map[string]serve.Stats)}
	for _, name := range r.ShardNames() {
		st, err := r.ShardStats(ctx, name)
		if err != nil {
			continue // down shard: its liveness shows in Router.Shards
		}
		out.Shards[name] = st
	}
	return out
}

// routerCollector emits the router's counters as esthera_router_*
// Prometheus samples, with per-shard liveness labeled by shard name.
func routerCollector(r *Router) telemetry.Collector {
	return func(e *telemetry.Emitter) {
		telemetry.CollectBuildInfo(e)
		r.StepSLO().Collect(e, "route.step")
		st := r.Stats()
		e.Gauge("esthera_router_sessions", "Sessions routed by this router.", float64(st.Sessions))
		e.Gauge("esthera_router_sessions_parked", "Sessions with no live shard, held as checkpoints.", float64(st.Parked))
		e.Gauge("esthera_router_sessions_migrating", "Sessions with a transfer in flight.", float64(st.Migrating))
		e.Counter("esthera_router_steps_forwarded_total", "Steps forwarded to replicas.", float64(st.StepsForwarded))
		e.Counter("esthera_router_steps_held_total", "Steps answered retryable during a migration.", float64(st.StepsHeld))
		e.Counter("esthera_router_steps_rerouted_total", "Steps answered retryable because the owning shard failed.", float64(st.StepsRerouted))
		e.Counter("esthera_router_migrations_total", "Completed live migrations.", float64(st.Migrations))
		e.Counter("esthera_router_migration_errors_total", "Migrations that failed mid-protocol.", float64(st.MigrationErrors))
		e.Counter("esthera_router_failovers_total", "Shard failover events.", float64(st.Failovers))
		e.Counter("esthera_router_sessions_restored_total", "Sessions rehomed from a checkpoint.", float64(st.Restored))
		e.Counter("esthera_router_sessions_recreated_total", "Sessions rebuilt from spec (no checkpoint).", float64(st.Recreated))
		e.Counter("esthera_router_sessions_rebalanced_total", "Sessions moved by load rebalancing.", float64(st.Rebalanced))
		e.Counter("esthera_router_probes_total", "Transport health probes sent.", float64(st.Probes))
		e.Counter("esthera_router_probe_failures_total", "Transport health probes failed.", float64(st.ProbeFailures))
		for _, sh := range st.Shards {
			up := 1.0
			if sh.Down {
				up = 0
			}
			e.Gauge("esthera_router_shard_up", "Shard liveness (1 = accepting placements).", up, "shard", sh.Name)
			e.Gauge("esthera_router_shard_sessions", "Sessions homed on the shard.", float64(sh.Sessions), "shard", sh.Name)
			e.Gauge("esthera_router_shard_clock_offset_seconds", "EWMA of replica clock minus router clock (NTP-style probe estimate).", float64(sh.ClockOffsetNS)/1e9, "shard", sh.Name)
			e.Gauge("esthera_router_shard_rtt_seconds", "EWMA of transport probe round-trip time.", float64(sh.RTTNS)/1e9, "shard", sh.Name)
		}
	}
}

// routerError maps router and forwarded errors onto HTTP statuses.
// ErrMigrating/ErrShardDown are the router's own backpressure: 503
// with the Retry-After hint, shaped exactly like a replica's drain
// reply so serve.Client retries them transparently.
func routerError(w http.ResponseWriter, r *Router, err error) {
	var api *serve.APIError
	switch {
	case errors.Is(err, ErrMigrating), errors.Is(err, ErrShardDown), errors.Is(err, ErrNoLiveShards):
		hint := r.RetryAfter()
		secs := int64(hint.Seconds())
		if secs < 1 {
			secs = 1
		}
		ms := hint.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("Retry-After-Ms", strconv.FormatInt(ms, 10))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrMigrationInFlight):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrUnknownShard):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, serve.ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, context.Canceled):
		writeJSON(w, statusClientClosedRequest, map[string]string{"error": err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
	case errors.As(err, &api):
		// A replica's own reply (after the forwarding client's retries):
		// relay its status so the caller sees what the shard said.
		writeJSON(w, api.Status, map[string]string{"error": api.Message})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

// statusClientClosedRequest mirrors serve's non-standard 499.
const statusClientClosedRequest = 499

// readJSON / writeJSON / sanitizeResult mirror the serve package's
// helpers (unexported there); the router speaks the identical wire
// dialect, including the IEEE-754-bits log-weight field.

type stepReply struct {
	Step          int       `json:"step"`
	State         []float64 `json:"state"`
	LogWeight     *float64  `json:"log_weight,omitempty"`
	LogWeightBits uint64    `json:"log_weight_bits"`
}

func sanitizeResult(res serve.StepResult) stepReply {
	out := stepReply{
		Step:          res.Step,
		State:         res.State,
		LogWeightBits: math.Float64bits(res.LogWeight),
	}
	if !math.IsInf(res.LogWeight, 0) && !math.IsNaN(res.LogWeight) {
		lw := res.LogWeight
		out.LogWeight = &lw
	}
	return out
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
