package sortnet

import (
	"math"
	"testing"

	"esthera/internal/device"
)

// TestNetMatchesPackageSort drives the stateful Net against the
// package-level SortDescending on identical inputs across sizes (powers
// of two, odd lengths forcing sentinel padding, nil and non-nil index
// arrays) and requires identical keys, permutations, and accounting.
func TestNetMatchesPackageSort(t *testing.T) {
	nt := NewNet()
	for _, n := range []int{0, 1, 2, 3, 5, 8, 17, 100, 128, 513} {
		for _, withIdx := range []bool{true, false} {
			ks := randomKeys(n, uint64(n)*2+7)
			a := append([]float64(nil), ks...)
			b := append([]float64(nil), ks...)
			var ia, ib []int
			if withIdx {
				ia = make([]int, n)
				ib = make([]int, n)
				for i := range ia {
					ia[i], ib[i] = i, i
				}
			}
			SortDescending(device.Serial{N: n + 1}, a, ia)
			nt.SortDescending(device.Serial{N: n + 1}, b, ib)
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("n=%d idx=%v keys[%d]: %v vs %v", n, withIdx, i, a[i], b[i])
				}
			}
			for i := range ia {
				if ia[i] != ib[i] {
					t.Fatalf("n=%d idx[%d]: %d vs %d", n, i, ia[i], ib[i])
				}
			}
		}
	}
}

// TestNetOnDeviceGroup runs both implementations inside real device
// launches and compares cost accounting (pairs are deterministic; swap
// counts must match because the sequences of compare-exchanges match).
func TestNetOnDeviceGroup(t *testing.T) {
	const n = 200
	ks := randomKeys(n, 99)
	run := func(f func(ctx device.Ctx)) device.Counters {
		d := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
		stats := d.Launch("net-test", device.Grid{Groups: 1, GroupSize: 64}, func(g *device.Group) {
			f(g)
		})
		return stats.Count
	}
	a := append([]float64(nil), ks...)
	b := append([]float64(nil), ks...)
	ia := make([]int, n)
	ib := make([]int, n)
	for i := range ia {
		ia[i], ib[i] = i, i
	}
	wantStats := run(func(ctx device.Ctx) { SortDescending(ctx, a, ia) })
	nt := NewNet()
	gotStats := run(func(ctx device.Ctx) { nt.SortDescending(ctx, b, ib) })
	for i := range a {
		if a[i] != b[i] || ia[i] != ib[i] {
			t.Fatalf("row %d differs: (%v,%d) vs (%v,%d)", i, a[i], ia[i], b[i], ib[i])
		}
	}
	if wantStats.Ops != gotStats.Ops || wantStats.LocalReadBytes != gotStats.LocalReadBytes || wantStats.LocalWriteBytes != gotStats.LocalWriteBytes {
		t.Fatalf("accounting differs: package %+v net %+v", wantStats, gotStats)
	}
}
