package sortnet

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"esthera/internal/device"
	"esthera/internal/rng"
)

func randomKeys(n int, seed uint64) []float64 {
	r := rng.New(rng.NewPhilox(seed))
	ks := make([]float64, n)
	for i := range ks {
		ks[i] = r.Float64()
	}
	return ks
}

func isDescending(ks []float64) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] > ks[i-1] {
			return false
		}
	}
	return true
}

func TestSortDescendingVariousSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 100, 128, 513} {
		ks := randomKeys(n, uint64(n)+1)
		orig := append([]float64(nil), ks...)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		SortDescending(device.Serial{N: n + 1}, ks, idx)
		if !isDescending(ks) {
			t.Fatalf("n=%d: not descending: %v", n, ks)
		}
		// The index array must carry the same permutation.
		for i := range ks {
			if orig[idx[i]] != ks[i] {
				t.Fatalf("n=%d: idx[%d]=%d does not map to sorted key", n, i, idx[i])
			}
		}
		// Must be a permutation of the original multiset.
		a := append([]float64(nil), orig...)
		b := append([]float64(nil), ks...)
		sort.Float64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: multiset changed", n)
			}
		}
	}
}

func TestSortDescendingNilIndex(t *testing.T) {
	ks := randomKeys(37, 9)
	SortDescending(device.Serial{N: 64}, ks, nil)
	if !isDescending(ks) {
		t.Fatal("nil-index sort not descending")
	}
}

func TestSortDescendingOnDeviceGroup(t *testing.T) {
	d := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	const n = 512
	ks := randomKeys(n, 42)
	want := append([]float64(nil), ks...)
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	d.Launch("bitonic", device.Grid{Groups: 1, GroupSize: n}, func(g *device.Group) {
		SortDescending(g, ks, nil)
	})
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("device sort mismatch at %d: %v vs %v", i, ks[i], want[i])
		}
	}
}

func TestSortDescendingFewerLanes(t *testing.T) {
	// Grid-stride correctness: 8 lanes sorting 128 elements.
	ks := randomKeys(128, 5)
	SortDescending(device.Serial{N: 8}, ks, nil)
	if !isDescending(ks) {
		t.Fatal("few-lane sort not descending")
	}
}

func TestArgsortDescending(t *testing.T) {
	ks := []float64{3, 1, 4, 1, 5}
	idx := ArgsortDescending(ks)
	want := []int{4, 2, 0, 1, 3} // stable: the two 1s keep order
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
	// Input untouched.
	if ks[0] != 3 || ks[4] != 5 {
		t.Fatal("ArgsortDescending mutated input")
	}
}

func TestTopKMatchesArgsort(t *testing.T) {
	for _, n := range []int{1, 5, 16, 100} {
		ks := randomKeys(n, uint64(n)*7+3)
		full := ArgsortDescending(ks)
		for _, k := range []int{0, 1, 2, n / 2, n, n + 5} {
			got := TopK(ks, k)
			wantLen := k
			if wantLen > n {
				wantLen = n
			}
			if wantLen < 0 {
				wantLen = 0
			}
			if len(got) != wantLen {
				t.Fatalf("TopK(%d,%d) length %d, want %d", n, k, len(got), wantLen)
			}
			for i := 0; i < wantLen; i++ {
				if ks[got[i]] != ks[full[i]] {
					t.Fatalf("TopK(%d,%d)[%d]: key %v, want %v", n, k, i, ks[got[i]], ks[full[i]])
				}
			}
		}
	}
}

func TestTopKWithTies(t *testing.T) {
	ks := []float64{2, 2, 2, 1, 3}
	got := TopK(ks, 3)
	want := []int{4, 0, 1} // 3 first, then earliest 2s
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK ties = %v, want %v", got, want)
		}
	}
}

// Property: bitonic network equals the stdlib sort on arbitrary inputs.
func TestQuickBitonicEqualsStdlib(t *testing.T) {
	f := func(raw []float64) bool {
		ks := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				ks = append(ks, v)
			}
		}
		got := append([]float64(nil), ks...)
		SortDescending(device.Serial{N: len(got) + 1}, got, nil)
		want := append([]float64(nil), ks...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitonic512(b *testing.B) {
	base := randomKeys(512, 1)
	ks := make([]float64, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ks, base)
		SortDescending(device.Serial{N: 512}, ks, nil)
	}
}

func BenchmarkStdlibSort512(b *testing.B) {
	base := randomKeys(512, 1)
	ks := make([]float64, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ks, base)
		sort.Sort(sort.Reverse(sort.Float64Slice(ks)))
	}
}
