// Package sortnet provides sorting-network primitives in barrier-phased
// data-parallel form.
//
// Each sub-filter sorts its particles by weight every round (§VI-C). The
// paper uses a bitonic sort — a fixed sequence of parallel
// compare-exchanges, O(n log² n) comparisons — keeping only the weights
// and an index array in local memory and applying the resulting
// permutation to the particle payload in global memory afterwards
// (preferring non-contiguous reads over non-contiguous writes). This
// package implements exactly that: the network operates on a
// (keys, index) pair; payload permutation lives in the kernels.
package sortnet

import (
	"math"
	"sort"

	"esthera/internal/device"
)

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SortDescending sorts keys into descending order in place using a
// bitonic network, applying the identical permutation to idx. If idx is
// nil it is ignored; if present, equal keys are ordered by ascending idx
// (making the network stable with respect to the index array, and keeping
// padding sentinels out of the live region even when genuine -Inf keys
// are present). Non-power-of-two lengths are handled by padding with
// (-Inf, large-index) sentinels in a scratch buffer. NaN keys are not
// supported.
//
// The network is executed as barrier-phased steps on ctx; lanes cover the
// compare-exchange pairs in grid-stride fashion.
func SortDescending(ctx device.Ctx, keys []float64, idx []int) {
	n := len(keys)
	if n <= 1 {
		return
	}
	p := nextPow2(n)
	ks := keys
	ix := idx
	if p != n {
		ks = ctx.ScratchF64(p)
		copy(ks, keys)
		for i := n; i < p; i++ {
			ks[i] = math.Inf(-1)
		}
		// Padding always carries an index array so sentinels lose ties
		// against genuine -Inf keys (their near-MaxInt indices sort last
		// regardless of the caller's index values).
		const maxInt = int(^uint(0) >> 1)
		ix = ctx.ScratchInt(p)
		if idx != nil {
			copy(ix, idx)
			for i := n; i < p; i++ {
				ix[i] = maxInt - (p - 1 - i)
			}
		} else {
			for i := 0; i < n; i++ {
				ix[i] = 0 // ties irrelevant without a caller index array
			}
			for i := n; i < p; i++ {
				ix[i] = 1
			}
		}
	}
	bitonic(ctx, ks, ix)
	if p != n {
		copy(keys, ks[:n])
		if idx != nil {
			copy(idx, ix[:n])
		}
	}
}

// bitonic runs the classic bitonic network on a power-of-two buffer,
// producing descending order.
//
// The network executes 0.5·log²p barrier-phased steps; one closure
// (mutating its captured kk/jj stage parameters) is reused across all of
// them, and the per-compare-exchange cost accounting is flushed once at
// the end — the totals are exactly those of per-exchange accounting,
// without an interface call per pair. Pair counts are deterministic (a
// stage compares exactly p/2 disjoint pairs: ixj > i iff bit j of i is
// clear) and accumulate host-side; swap counts are data-dependent, so
// each lane tallies its own swaps in a lane-indexed scratch slot that
// the host sums after the barrier — no cross-lane writes in the closure.
func bitonic(ctx device.Ctx, keys []float64, idx []int) {
	p := len(keys)
	// Stage parameters share one struct so the reused closure costs a
	// single heap cell, not one per captured var. Each stage runs as one
	// StepSpan covering every lane's pair (the pairs of a stage are
	// disjoint, so lane order is immaterial).
	var st struct{ k, j int }
	laneSwaps := ctx.ScratchInt(p)
	step := func(lo, hi int) {
		for i := 0; i < p; i++ {
			ixj := i ^ st.j
			if ixj <= i {
				continue
			}
			// For a descending final order, blocks with i&k == 0
			// sort descending.
			desc := i&st.k == 0
			a, b := keys[i], keys[ixj]
			swap := false
			if desc {
				swap = a < b || (a == b && idx != nil && idx[i] > idx[ixj])
			} else {
				swap = a > b || (a == b && idx != nil && idx[i] < idx[ixj])
			}
			if swap {
				keys[i], keys[ixj] = b, a
				if idx != nil {
					idx[i], idx[ixj] = idx[ixj], idx[i]
				}
				laneSwaps[i]++
			}
		}
	}
	stages := 0
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			st.k, st.j = k, j
			ctx.StepSpan(step)
			stages++
		}
	}
	pairs := stages * (p / 2)
	swaps := 0
	for _, c := range laneSwaps {
		swaps += c
	}
	// A compare-exchange costs the comparison plus the partner-index
	// arithmetic, predication and bank-conflict-prone local accesses
	// (~12 ops, keys and index array traffic); swaps write both entries
	// of both arrays back.
	ctx.Ops(12 * pairs)
	ctx.LocalRead(24 * pairs)
	ctx.LocalWrite(24 * swaps)
}

// ArgsortDescending returns the permutation that sorts keys descending,
// leaving keys untouched. It is the sequential reference used by the
// centralized filter and by tests validating the bitonic network. The
// sort is stable, so equal keys keep their original relative order.
func ArgsortDescending(keys []float64) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] > keys[idx[b]] })
	return idx
}

// TopK returns the indices of the k largest keys in descending key order,
// without sorting the rest (selection via partial heap). k is clamped to
// len(keys). It backs the "local maximum instead of full sort" variant
// the paper suggests as a cheaper alternative (§VI-C).
func TopK(keys []float64, k int) []int {
	n := len(keys)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// Min-heap of size k over (key, index).
	heapKeys := make([]float64, 0, k)
	heapIdx := make([]int, 0, k)
	less := func(a, b int) bool {
		if heapKeys[a] != heapKeys[b] {
			return heapKeys[a] < heapKeys[b]
		}
		return heapIdx[a] > heapIdx[b] // larger index = "smaller" for ties
	}
	down := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < n && less(l, s) {
				s = l
			}
			if r < n && less(r, s) {
				s = r
			}
			if s == i {
				return
			}
			heapKeys[i], heapKeys[s] = heapKeys[s], heapKeys[i]
			heapIdx[i], heapIdx[s] = heapIdx[s], heapIdx[i]
			i = s
		}
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(i, parent) {
				return
			}
			heapKeys[i], heapKeys[parent] = heapKeys[parent], heapKeys[i]
			heapIdx[i], heapIdx[parent] = heapIdx[parent], heapIdx[i]
			i = parent
		}
	}
	for i, v := range keys {
		if len(heapKeys) < k {
			heapKeys = append(heapKeys, v)
			heapIdx = append(heapIdx, i)
			up(len(heapKeys) - 1)
			continue
		}
		if v > heapKeys[0] {
			heapKeys[0], heapIdx[0] = v, i
			down(0, k)
		}
	}
	// Drain the heap into descending order.
	out := make([]int, k)
	for size := k; size > 0; size-- {
		out[size-1] = heapIdx[0]
		heapKeys[0], heapIdx[0] = heapKeys[size-1], heapIdx[size-1]
		heapKeys = heapKeys[:size-1]
		heapIdx = heapIdx[:size-1]
		down(0, size-1)
	}
	return out
}
