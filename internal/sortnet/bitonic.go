// Package sortnet provides sorting-network primitives in barrier-phased
// data-parallel form.
//
// Each sub-filter sorts its particles by weight every round (§VI-C). The
// paper uses a bitonic sort — a fixed sequence of parallel
// compare-exchanges, O(n log² n) comparisons — keeping only the weights
// and an index array in local memory and applying the resulting
// permutation to the particle payload in global memory afterwards
// (preferring non-contiguous reads over non-contiguous writes). This
// package implements exactly that: the network operates on a
// (keys, index) pair; payload permutation lives in the kernels.
package sortnet

import (
	"math"
	"sort"

	"esthera/internal/device"
)

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// floatSortKeys writes order-preserving integer images of keys into iks:
// comparing images as ints gives exactly the float order of the keys (the
// radix-sort float trick — negative floats have their magnitude bits
// flipped so their bit patterns ascend with their values). The network's
// compare-exchange then runs entirely on integers, which the compiler
// lowers to flag materialization and masked selects instead of
// data-dependent branches — the branch predictor has a ~50% miss rate on
// sort comparisons, and each miss costs more than the whole exchange.
//
// -0.0 is normalized to +0.0 first so equal floats map to equal images
// (±0 is the only pair of distinct bit patterns that compare equal; NaN
// keys are unsupported, as documented on SortDescending). The transform
// preserves the sign bit and is therefore an involution: applying it to
// an image restores the key bits.
func floatSortKeys(iks []int, keys []float64) {
	KeyImages(iks, keys)
}

// KeyImage returns the order-preserving integer image of f: for non-NaN
// a, b, a < b ⇔ KeyImage(a) < KeyImage(b) and a == b ⇔ KeyImage(a) ==
// KeyImage(b). Kernels use it to replace hot float comparisons (sort
// networks, cdf binary searches) with integer ones, which compile to
// branchless flag materialization instead of mispredict-prone jumps.
//
//esthera:hotpath noalloc bce
func KeyImage(f float64) int {
	f += 0 // -0.0 + 0 = +0.0; every other value is unchanged
	b := int64(math.Float64bits(f))
	return int(b ^ int64(uint64(b>>63)>>1))
}

// KeyImages fills dst with KeyImage of each element of src.
//
//esthera:hotpath noalloc bce
func KeyImages(dst []int, src []float64) {
	dst = dst[:len(src)]
	for i, f := range src {
		f += 0
		b := int64(math.Float64bits(f))
		dst[i] = int(b ^ int64(uint64(b>>63)>>1))
	}
}

// sortKeysFloat inverts floatSortKeys, writing the float keys for the
// images in iks back into keys.
func sortKeysFloat(keys []float64, iks []int) {
	keys = keys[:len(iks)]
	for i, k := range iks {
		b := int64(k)
		b ^= int64(uint64(b>>63) >> 1)
		keys[i] = math.Float64frombits(uint64(b))
	}
}

// SortDescending sorts keys into descending order in place using a
// bitonic network, applying the identical permutation to idx. If idx is
// nil it is ignored; if present, equal keys are ordered by ascending idx
// (making the network stable with respect to the index array, and keeping
// padding sentinels out of the live region even when genuine -Inf keys
// are present). Non-power-of-two lengths are handled by padding with
// (-Inf, large-index) sentinels in a scratch buffer. NaN keys are not
// supported.
//
// The network is executed as barrier-phased steps on ctx; lanes cover the
// compare-exchange pairs in grid-stride fashion.
func SortDescending(ctx device.Ctx, keys []float64, idx []int) {
	n := len(keys)
	if n <= 1 {
		return
	}
	p := nextPow2(n)
	ks := keys
	ix := idx
	if p != n {
		ks = ctx.ScratchF64(p)
		copy(ks, keys)
		for i := n; i < p; i++ {
			ks[i] = math.Inf(-1)
		}
		// Padding always carries an index array so sentinels lose ties
		// against genuine -Inf keys (their near-MaxInt indices sort last
		// regardless of the caller's index values).
		const maxInt = int(^uint(0) >> 1)
		ix = ctx.ScratchInt(p)
		if idx != nil {
			copy(ix, idx)
			for i := n; i < p; i++ {
				ix[i] = maxInt - (p - 1 - i)
			}
		} else {
			for i := 0; i < n; i++ {
				ix[i] = 0 // ties irrelevant without a caller index array
			}
			for i := n; i < p; i++ {
				ix[i] = 1
			}
		}
	}
	bitonic(ctx, ks, ix)
	if p != n {
		copy(keys, ks[:n])
		if idx != nil {
			copy(idx, ix[:n])
		}
	}
}

// Net is a reusable execution context for the bitonic network: it
// pre-binds the compare-exchange closure once, so repeated SortDescending
// calls on hot kernel paths allocate nothing (the package function
// re-creates its closure — and thus a heap cell — per call, because it
// escapes through the device.Ctx interface).
//
// A Net carries per-call mutable state and must not be shared between
// concurrently executing work-groups; create one per group context (the
// kernel pipeline keeps one per sub-filter).
type Net struct {
	keys      []int // integer sort-key images (see floatSortKeys)
	idx       []int
	laneSwaps []int
	st        struct{ k, j int }
	step      func(lo, hi int)
}

// NewNet returns a Net with its compare-exchange closure bound.
//
// The closure walks the stage's pairs directly instead of scanning all p
// lanes and skipping the upper partners: a stage's pairs are (i, i+j)
// for every i whose j bit is clear, i.e. runs of j consecutive lanes
// every 2j lanes. The sort direction bit (i & k) is constant within a
// run (all of off < j's bits sit below bit log2(k)), so it hoists out of
// the inner loop. Each compare-exchange is branchless: the swap flag is
// materialized from integer comparisons of the key images and applied as
// an XOR mask, so the loop body carries no data-dependent branches. The
// compare-exchange sequence — and therefore the resulting permutation
// and the data-dependent swap counts — is identical to the naive scan.
func NewNet() *Net {
	nt := &Net{}
	nt.step = func(lo, hi int) {
		keys, idx, laneSwaps := nt.keys, nt.idx, nt.laneSwaps
		k, j := nt.st.k, nt.st.j
		p := len(keys)
		j2 := j << 1
		for base := 0; base < p; base += j2 {
			desc := base&k == 0
			end := base + j
			if idx == nil {
				if desc {
					for i := base; i < end; i++ {
						a, b := keys[i], keys[i+j]
						s := 0
						if a < b {
							s = 1
						}
						x := (a ^ b) & -s
						keys[i], keys[i+j] = a^x, b^x
						laneSwaps[i] += s
					}
				} else {
					for i := base; i < end; i++ {
						a, b := keys[i], keys[i+j]
						s := 0
						if a > b {
							s = 1
						}
						x := (a ^ b) & -s
						keys[i], keys[i+j] = a^x, b^x
						laneSwaps[i] += s
					}
				}
				continue
			}
			if desc {
				for i := base; i < end; i++ {
					a, b := keys[i], keys[i+j]
					ia, ib := idx[i], idx[i+j]
					lt, eq, tb := 0, 0, 0
					if a < b {
						lt = 1
					}
					if a == b {
						eq = 1
					}
					if ia > ib {
						tb = 1
					}
					s := lt | eq&tb
					m := -s
					xk := (a ^ b) & m
					xi := (ia ^ ib) & m
					keys[i], keys[i+j] = a^xk, b^xk
					idx[i], idx[i+j] = ia^xi, ib^xi
					laneSwaps[i] += s
				}
			} else {
				for i := base; i < end; i++ {
					a, b := keys[i], keys[i+j]
					ia, ib := idx[i], idx[i+j]
					gt, eq, tb := 0, 0, 0
					if a > b {
						gt = 1
					}
					if a == b {
						eq = 1
					}
					if ia < ib {
						tb = 1
					}
					s := gt | eq&tb
					m := -s
					xk := (a ^ b) & m
					xi := (ia ^ ib) & m
					keys[i], keys[i+j] = a^xk, b^xk
					idx[i], idx[i+j] = ia^xi, ib^xi
					laneSwaps[i] += s
				}
			}
		}
	}
	return nt
}

// SortDescending is the method form of the package-level SortDescending,
// reusing the net's bound closure. Identical results and cost accounting.
//
//esthera:hotpath noalloc bce
func (nt *Net) SortDescending(ctx device.Ctx, keys []float64, idx []int) {
	n := len(keys)
	if n <= 1 {
		return
	}
	p := nextPow2(n)
	ks := keys
	ix := idx
	if p != n {
		ks = ctx.ScratchF64(p)
		copy(ks, keys)
		for i := n; i < p; i++ {
			ks[i] = math.Inf(-1)
		}
		const maxInt = int(^uint(0) >> 1)
		ix = ctx.ScratchInt(p)
		if idx != nil {
			copy(ix, idx)
			for i := n; i < p; i++ {
				ix[i] = maxInt - (p - 1 - i)
			}
		} else {
			for i := 0; i < n; i++ {
				ix[i] = 0
			}
			for i := n; i < p; i++ {
				ix[i] = 1
			}
		}
	}
	nt.bitonic(ctx, ks, ix)
	if p != n {
		copy(keys, ks[:n])
		if idx != nil {
			copy(idx, ix[:n])
		}
	}
}

// bitonic mirrors the package-level bitonic on the net's bound state.
//
//esthera:hotpath noalloc bce
func (nt *Net) bitonic(ctx device.Ctx, keys []float64, idx []int) {
	p := len(keys)
	iks := ctx.ScratchInt(p)
	floatSortKeys(iks, keys)
	nt.keys, nt.idx = iks, idx
	nt.laneSwaps = ctx.ScratchInt(p)
	stages := 0
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			nt.st.k, nt.st.j = k, j
			ctx.StepSpan(nt.step)
			stages++
		}
	}
	sortKeysFloat(keys, iks)
	pairs := stages * (p / 2)
	swaps := 0
	for _, c := range nt.laneSwaps {
		swaps += c
	}
	ctx.Ops(12 * pairs)
	ctx.LocalRead(24 * pairs)
	ctx.LocalWrite(24 * swaps)
}

// bitonic runs the classic bitonic network on a power-of-two buffer,
// producing descending order.
//
// The network executes 0.5·log²p barrier-phased steps; one closure
// (mutating its captured kk/jj stage parameters) is reused across all of
// them, and the per-compare-exchange cost accounting is flushed once at
// the end — the totals are exactly those of per-exchange accounting,
// without an interface call per pair. Pair counts are deterministic (a
// stage compares exactly p/2 disjoint pairs: ixj > i iff bit j of i is
// clear) and accumulate host-side; swap counts are data-dependent, so
// each lane tallies its own swaps in a lane-indexed scratch slot that
// the host sums after the barrier — no cross-lane writes in the closure.
func bitonic(ctx device.Ctx, keys []float64, idx []int) {
	p := len(keys)
	// The network runs on integer images of the keys (floatSortKeys), so
	// each compare-exchange is branchless: flag materialization plus
	// XOR-mask selects, no data-dependent branches for the predictor to
	// miss. The images are transformed back once after the last stage.
	iks := ctx.ScratchInt(p)
	floatSortKeys(iks, keys)
	// Stage parameters share one struct so the reused closure costs a
	// single heap cell, not one per captured var. Each stage runs as one
	// StepSpan covering every lane's pair (the pairs of a stage are
	// disjoint, so lane order is immaterial).
	var st struct{ k, j int }
	laneSwaps := ctx.ScratchInt(p)
	// A stage's pairs are (i, i+j) for every i whose j bit is clear:
	// runs of j consecutive lanes every 2j lanes. The direction bit
	// (i & k, deciding descending vs ascending blocks of the final
	// descending order) is constant within a run, so it hoists out of
	// the inner loop. The compare-exchange sequence is identical to a
	// full-lane scan that skips upper partners.
	step := func(lo, hi int) {
		k, j := st.k, st.j
		j2 := j << 1
		for base := 0; base < p; base += j2 {
			desc := base&k == 0
			end := base + j
			if idx == nil {
				if desc {
					for i := base; i < end; i++ {
						a, b := iks[i], iks[i+j]
						s := 0
						if a < b {
							s = 1
						}
						x := (a ^ b) & -s
						iks[i], iks[i+j] = a^x, b^x
						laneSwaps[i] += s
					}
				} else {
					for i := base; i < end; i++ {
						a, b := iks[i], iks[i+j]
						s := 0
						if a > b {
							s = 1
						}
						x := (a ^ b) & -s
						iks[i], iks[i+j] = a^x, b^x
						laneSwaps[i] += s
					}
				}
				continue
			}
			if desc {
				for i := base; i < end; i++ {
					a, b := iks[i], iks[i+j]
					ia, ib := idx[i], idx[i+j]
					lt, eq, tb := 0, 0, 0
					if a < b {
						lt = 1
					}
					if a == b {
						eq = 1
					}
					if ia > ib {
						tb = 1
					}
					s := lt | eq&tb
					m := -s
					xk := (a ^ b) & m
					xi := (ia ^ ib) & m
					iks[i], iks[i+j] = a^xk, b^xk
					idx[i], idx[i+j] = ia^xi, ib^xi
					laneSwaps[i] += s
				}
			} else {
				for i := base; i < end; i++ {
					a, b := iks[i], iks[i+j]
					ia, ib := idx[i], idx[i+j]
					gt, eq, tb := 0, 0, 0
					if a > b {
						gt = 1
					}
					if a == b {
						eq = 1
					}
					if ia < ib {
						tb = 1
					}
					s := gt | eq&tb
					m := -s
					xk := (a ^ b) & m
					xi := (ia ^ ib) & m
					iks[i], iks[i+j] = a^xk, b^xk
					idx[i], idx[i+j] = ia^xi, ib^xi
					laneSwaps[i] += s
				}
			}
		}
	}
	stages := 0
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			st.k, st.j = k, j
			ctx.StepSpan(step)
			stages++
		}
	}
	sortKeysFloat(keys, iks)
	pairs := stages * (p / 2)
	swaps := 0
	for _, c := range laneSwaps {
		swaps += c
	}
	// A compare-exchange costs the comparison plus the partner-index
	// arithmetic, predication and bank-conflict-prone local accesses
	// (~12 ops, keys and index array traffic); swaps write both entries
	// of both arrays back.
	ctx.Ops(12 * pairs)
	ctx.LocalRead(24 * pairs)
	ctx.LocalWrite(24 * swaps)
}

// ArgsortDescending returns the permutation that sorts keys descending,
// leaving keys untouched. It is the sequential reference used by the
// centralized filter and by tests validating the bitonic network. The
// sort is stable, so equal keys keep their original relative order.
func ArgsortDescending(keys []float64) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] > keys[idx[b]] })
	return idx
}

// TopK returns the indices of the k largest keys in descending key order,
// without sorting the rest (selection via partial heap). k is clamped to
// len(keys). It backs the "local maximum instead of full sort" variant
// the paper suggests as a cheaper alternative (§VI-C).
func TopK(keys []float64, k int) []int {
	n := len(keys)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// Min-heap of size k over (key, index).
	heapKeys := make([]float64, 0, k)
	heapIdx := make([]int, 0, k)
	less := func(a, b int) bool {
		if heapKeys[a] != heapKeys[b] {
			return heapKeys[a] < heapKeys[b]
		}
		return heapIdx[a] > heapIdx[b] // larger index = "smaller" for ties
	}
	down := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < n && less(l, s) {
				s = l
			}
			if r < n && less(r, s) {
				s = r
			}
			if s == i {
				return
			}
			heapKeys[i], heapKeys[s] = heapKeys[s], heapKeys[i]
			heapIdx[i], heapIdx[s] = heapIdx[s], heapIdx[i]
			i = s
		}
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(i, parent) {
				return
			}
			heapKeys[i], heapKeys[parent] = heapKeys[parent], heapKeys[i]
			heapIdx[i], heapIdx[parent] = heapIdx[parent], heapIdx[i]
			i = parent
		}
	}
	for i, v := range keys {
		if len(heapKeys) < k {
			heapKeys = append(heapKeys, v)
			heapIdx = append(heapIdx, i)
			up(len(heapKeys) - 1)
			continue
		}
		if v > heapKeys[0] {
			heapKeys[0], heapIdx[0] = v, i
			down(0, k)
		}
	}
	// Drain the heap into descending order.
	out := make([]int, k)
	for size := k; size > 0; size-- {
		out[size-1] = heapIdx[0]
		heapKeys[0], heapIdx[0] = heapKeys[size-1], heapIdx[size-1]
		heapKeys = heapKeys[:size-1]
		heapIdx = heapIdx[:size-1]
		down(0, size-1)
	}
	return out
}
