package sortnet

import (
	"math"
	"sort"
	"testing"

	"esthera/internal/device"
)

// FuzzBitonicSort checks the network against the stdlib sort for
// arbitrary inputs, including negatives, ties and infinities.
func FuzzBitonicSort(f *testing.F) {
	f.Add([]byte{5, 3, 9, 1})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 0, 0, 128})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 1024 {
			t.Skip()
		}
		ks := make([]float64, len(raw))
		for i, b := range raw {
			switch {
			case b == 255:
				ks[i] = math.Inf(1)
			case b == 254:
				ks[i] = math.Inf(-1)
			default:
				ks[i] = float64(b) - 128
			}
		}
		got := append([]float64(nil), ks...)
		idx := make([]int, len(ks))
		for i := range idx {
			idx[i] = i
		}
		SortDescending(device.Serial{N: len(ks)}, got, idx)

		want := append([]float64(nil), ks...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d: %v vs %v (input %v)", i, got[i], want[i], ks)
			}
			// The index array must map back to an equal key.
			if ks[idx[i]] != got[i] {
				t.Fatalf("index array broken at %d", i)
			}
		}
	})
}
