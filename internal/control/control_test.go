package control_test

import (
	"math"
	"testing"

	"esthera/internal/control"
	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/model/arm"
)

func newArmFilter(t *testing.T, m *arm.Model, seed uint64) filter.Filter {
	t.Helper()
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	f, err := filter.NewParallel(dev, m, filter.ParallelConfig{
		SubFilters: 32, ParticlesPer: 32, Scheme: exchange.Ring, ExchangeCount: 1,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func closedLoopModel(t *testing.T) (*arm.Model, arm.Lemniscate) {
	t.Helper()
	// Offset path: bearings from the base stay well-conditioned.
	path := arm.Lemniscate{A: 0.4, Period: 200, CenterX: 0.55}
	m, _, err := arm.NewScenario(arm.Config{}, path)
	if err != nil {
		t.Fatal(err)
	}
	return m, path
}

func TestPDClampsAndTracks(t *testing.T) {
	pd := control.NewPD(2, 0.05)
	u := make([]float64, 2)
	pd.Command(u, []float64{10, -10})
	if u[0] != pd.MaxRate || u[1] != -pd.MaxRate {
		t.Fatalf("commands not clamped: %v", u)
	}
	// A fresh controller with a small constant error: proportional term
	// dominates, sign follows the error.
	pd2 := control.NewPD(2, 0.05)
	pd2.Command(u, []float64{0.1, -0.1})
	pd2.Command(u, []float64{0.1, -0.1}) // steady: derivative term zero
	if u[0] <= 0 || u[1] >= 0 {
		t.Fatalf("steady-state commands have wrong sign: %v", u)
	}
	if math.Abs(u[0]-pd2.Kp*0.1) > 1e-9 {
		t.Fatalf("steady command %v, want Kp·err = %v", u[0], pd2.Kp*0.1)
	}
}

func TestLoopValidation(t *testing.T) {
	m, path := closedLoopModel(t)
	if _, err := control.NewLoop(nil, path, nil); err == nil {
		t.Fatal("nil args accepted")
	}
	if _, err := control.NewLoop(m, path, newArmFilter(t, m, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestClosedLoopKeepsObjectInView(t *testing.T) {
	m, path := closedLoopModel(t)

	loop, err := control.NewLoop(m, path, newArmFilter(t, m, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := loop.Run(150, 7)
	if len(res.PointingErr) != 150 || len(res.EstErr) != 150 {
		t.Fatalf("result lengths %d/%d", len(res.PointingErr), len(res.EstErr))
	}
	closed := res.MeanPointingAfter(50)

	// Oracle baseline: controller fed the true state.
	oracleLoop, err := control.NewLoop(m, path, newArmFilter(t, m, 2))
	if err != nil {
		t.Fatal(err)
	}
	oracleLoop.Oracle = true
	oracle := oracleLoop.Run(150, 7).MeanPointingAfter(50)

	// Dead-arm baseline: a filter-driven loop with zero controller gains
	// leaves the arm in its initial posture.
	deadLoop, err := control.NewLoop(m, path, newArmFilter(t, m, 3))
	if err != nil {
		t.Fatal(err)
	}
	deadLoop.SetGains(0, 0)
	dead := deadLoop.Run(150, 7).MeanPointingAfter(50)

	if math.IsNaN(closed) || math.IsNaN(oracle) || math.IsNaN(dead) {
		t.Fatal("NaN pointing errors")
	}
	// Estimate-driven control must approach the oracle and clearly beat
	// no control.
	if closed > 2.5*oracle+0.05 {
		t.Fatalf("filter-in-the-loop pointing %v rad far above oracle %v rad", closed, oracle)
	}
	if closed >= dead {
		t.Fatalf("closed loop (%v rad) no better than a dead arm (%v rad)", closed, dead)
	}
	// And the filter must keep estimating well despite the feedback.
	est := 0.0
	for _, e := range res.EstErr[50:] {
		est += e
	}
	if est/100 > 0.25 {
		t.Fatalf("estimation error %v m in closed loop", est/100)
	}
}
