// Package control closes the loop around the particle filter: the
// paper's companion work ([30], Chitchian et al., IEEE TCST 2013) drives
// an actual robotic arm from the filter's estimates in real time; this
// package reproduces that setting in simulation. A PD controller reads
// the estimated object position and joint angles from the filter and
// commands joint rates so the arm's camera keeps pointing at the object,
// while the *true* arm integrates those commands with actuator noise —
// so estimation errors feed back into the plant, the regime where
// estimation rate and accuracy actually matter (§I: real-time estimation
// problems).
package control

import (
	"fmt"
	"math"

	"esthera/internal/filter"
	"esthera/internal/model/arm"
	"esthera/internal/rng"
)

// PD is a proportional-derivative joint-rate controller with output
// clamping.
type PD struct {
	// Kp and Kd are the gains (defaults 2.0 and 0.2).
	Kp, Kd float64
	// MaxRate clamps each joint-rate command, rad/s (default 1.5).
	MaxRate float64

	prevErr []float64
	dt      float64
}

// NewPD returns a controller for n joints with sampling time dt.
func NewPD(n int, dt float64) *PD {
	return &PD{Kp: 2.0, Kd: 0.2, MaxRate: 1.5, prevErr: make([]float64, n), dt: dt}
}

// Command writes joint-rate commands into u from the angle errors
// (desired - current).
func (c *PD) Command(u, angleErr []float64) {
	for i := range u {
		d := (angleErr[i] - c.prevErr[i]) / c.dt
		v := c.Kp*angleErr[i] + c.Kd*d
		if v > c.MaxRate {
			v = c.MaxRate
		}
		if v < -c.MaxRate {
			v = -c.MaxRate
		}
		u[i] = v
		c.prevErr[i] = angleErr[i]
	}
}

// Result holds the closed-loop run outcome.
type Result struct {
	// PointingErr is the per-step angle (rad) between the true camera
	// axis and the true direction to the object.
	PointingErr []float64
	// EstErr is the per-step object-position estimation error (m).
	EstErr []float64
}

// MeanPointingAfter returns the mean pointing error after a burn-in.
func (r Result) MeanPointingAfter(burn int) float64 {
	if burn >= len(r.PointingErr) {
		return math.NaN()
	}
	s := 0.0
	for _, e := range r.PointingErr[burn:] {
		s += e
	}
	return s / float64(len(r.PointingErr)-burn)
}

// Loop is the closed-loop simulation: true arm + moving object, particle
// filter, PD controller.
type Loop struct {
	m    *arm.Model
	path arm.Lemniscate
	f    filter.Filter
	pd   *PD
	// Oracle feeds the controller the true state instead of the
	// filter's estimate (the perfect-estimation baseline).
	Oracle bool
	// EstimateEvery runs the filter only every k-th plant step (k > 1
	// models an estimator slower than the control loop; the controller
	// acts on stale estimates in between). 0 or 1 is every step. This is
	// the knob that makes the paper's update-rate argument measurable:
	// "achievable update rate is more important for real-time systems"
	// (§III-A).
	EstimateEvery int
}

// NewLoop builds the closed loop around an existing filter for the given
// arm model.
func NewLoop(m *arm.Model, path arm.Lemniscate, f filter.Filter) (*Loop, error) {
	if m == nil || f == nil {
		return nil, fmt.Errorf("control: nil model or filter")
	}
	return &Loop{m: m, path: path, f: f, pd: NewPD(m.Config().Joints, m.Config().Hs)}, nil
}

// SetGains overrides the PD gains (0, 0 disables actuation — the
// dead-arm baseline).
func (l *Loop) SetGains(kp, kd float64) {
	l.pd.Kp, l.pd.Kd = kp, kd
}

// desiredAngles computes the posture that keeps the object in the arm's
// vertical plane: the base yaw turns toward the (estimated) object
// bearing while the pitch joints hold the horizontal reference posture.
// This is the part of the pose the camera geometry actually constrains —
// the lateral image coordinate z_C is zero exactly when the bearing is
// matched.
func (l *Loop) desiredAngles(dst []float64, ox, oy float64) {
	dst[0] = math.Atan2(oy, ox)
	for i := 1; i < len(dst); i++ {
		dst[i] = 0
	}
}

// pointingError returns the true bearing misalignment: the absolute
// angle between the object's bearing from the base and the arm's yaw.
// Zero means the object lies exactly in the arm's vertical plane (the
// lateral image coordinate z_C vanishes). It is ill-conditioned only in
// the instant the object crosses the base origin.
func (l *Loop) pointingError(truth []float64) float64 {
	j := l.m.Config().Joints
	bearing := math.Atan2(truth[j+1], truth[j])
	d := bearing - truth[0]
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	return math.Abs(d)
}

// Run executes the closed loop for steps rounds.
func (l *Loop) Run(steps int, seed uint64) Result {
	cfg := l.m.Config()
	j := cfg.Joints
	dim := l.m.StateDim()

	truth := make([]float64, dim)
	// Object starts on the lemniscate.
	truth[j], truth[j+1] = l.path.Pos(0)
	truth[j+2], truth[j+3] = l.path.Vel(0, cfg.Hs)

	plantR := rng.New(rng.NewPhiloxStream(seed, 0xA1))
	measR := rng.New(rng.NewPhiloxStream(seed, 0xA2))
	z := make([]float64, l.m.MeasurementDim())
	u := make([]float64, j)
	desired := make([]float64, j)
	angleErr := make([]float64, j)

	res := Result{
		PointingErr: make([]float64, steps),
		EstErr:      make([]float64, steps),
	}
	est := make([]float64, dim) // last estimate (starts at prior mean: zeros-ish)
	for k := 1; k <= steps; k++ {
		// Controller acts on the previous estimate (or the truth in
		// oracle mode).
		src := est
		if l.Oracle {
			src = truth
		}
		l.desiredAngles(desired, src[j], src[j+1])
		for i := 0; i < j; i++ {
			angleErr[i] = desired[i] - src[i]
		}
		l.pd.Command(u, angleErr)

		// True plant: joints integrate the command with actuator noise;
		// the object follows the lemniscate.
		sTheta := cfg.SigmaThetaRate * cfg.Hs
		for i := 0; i < j; i++ {
			truth[i] += cfg.Hs*u[i] + plantR.Normal(0, 0.25*sTheta)
		}
		truth[j], truth[j+1] = l.path.Pos(k)
		truth[j+2], truth[j+3] = l.path.Vel(k, cfg.Hs)

		// Measure and filter (possibly at a reduced estimation rate; the
		// controller then reuses the stale estimate in between).
		every := l.EstimateEvery
		if every < 1 {
			every = 1
		}
		if k%every == 0 {
			l.m.Measure(z, truth, measR)
			e := l.f.Step(u, z)
			copy(est, e.State)
		}
		ex, ey := l.m.TrackedPosition(est)
		res.EstErr[k-1] = math.Hypot(ex-truth[j], ey-truth[j+1])
		res.PointingErr[k-1] = l.pointingError(truth)
	}
	return res
}
