package exchange

import (
	"testing"
	"testing/quick"
)

func TestSchemeRoundTrip(t *testing.T) {
	for _, s := range []Scheme{None, AllToAll, Ring, Torus2D, Hypercube} {
		got, err := SchemeByName(s.String())
		if err != nil {
			t.Fatalf("SchemeByName(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	if s := Scheme(99).String(); s == "" {
		t.Fatal("unknown scheme must still stringify")
	}
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(Ring, 0); err == nil {
		t.Fatal("size 0 must error")
	}
	if _, err := NewTopology(Hypercube, 6); err == nil {
		t.Fatal("non-power-of-two hypercube must error")
	}
	if _, err := NewTopology(Hypercube, 8); err != nil {
		t.Fatalf("hypercube 8: %v", err)
	}
}

func TestRingNeighbors(t *testing.T) {
	top, _ := NewTopology(Ring, 5)
	got := top.Neighbors(nil, 0)
	want := map[int]bool{4: true, 1: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("ring neighbors of 0 = %v", got)
	}
	// Size 2: single mutual neighbor, no duplicates.
	top2, _ := NewTopology(Ring, 2)
	if got := top2.Neighbors(nil, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("2-ring neighbors of 0 = %v", got)
	}
	// Size 1: no neighbors.
	top1, _ := NewTopology(Ring, 1)
	if got := top1.Neighbors(nil, 0); len(got) != 0 {
		t.Fatalf("1-ring neighbors = %v", got)
	}
}

func TestTorusFactorization(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{16, 4, 4}, {64, 8, 8}, {12, 3, 4}, {100, 10, 10}, {2, 1, 2}, {7, 1, 7},
	}
	for _, c := range cases {
		top, _ := NewTopology(Torus2D, c.n)
		r, cc := top.GridDims()
		if r != c.rows || cc != c.cols {
			t.Errorf("n=%d: grid %dx%d, want %dx%d", c.n, r, cc, c.rows, c.cols)
		}
	}
}

func TestTorusNeighbors4x4(t *testing.T) {
	top, _ := NewTopology(Torus2D, 16)
	got := top.Neighbors(nil, 5) // row 1, col 1
	want := map[int]bool{1: true, 9: true, 4: true, 6: true}
	if len(got) != 4 {
		t.Fatalf("torus neighbors of 5 = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("unexpected neighbor %d in %v", n, got)
		}
	}
	// Wraparound corner.
	got0 := top.Neighbors(nil, 0)
	want0 := map[int]bool{12: true, 4: true, 3: true, 1: true}
	for _, n := range got0 {
		if !want0[n] {
			t.Fatalf("corner wraparound wrong: %v", got0)
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	top, _ := NewTopology(Hypercube, 8)
	got := top.Neighbors(nil, 5) // 101 -> 100,111,001
	want := map[int]bool{4: true, 7: true, 1: true}
	if len(got) != 3 {
		t.Fatalf("hypercube neighbors of 5 = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("unexpected hypercube neighbor %d", n)
		}
	}
	if top.MaxDegree() != 3 {
		t.Fatalf("hypercube-8 degree = %d, want 3", top.MaxDegree())
	}
}

func TestNoneAndAllToAllHaveNoPairwiseNeighbors(t *testing.T) {
	for _, s := range []Scheme{None, AllToAll} {
		top, _ := NewTopology(s, 10)
		if got := top.Neighbors(nil, 3); len(got) != 0 {
			t.Fatalf("%v must have no pairwise neighbors, got %v", s, got)
		}
		if top.MaxDegree() != 0 {
			t.Fatalf("%v degree must be 0", s)
		}
	}
}

func TestNeighborsOutOfRangePanics(t *testing.T) {
	top, _ := NewTopology(Ring, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	top.Neighbors(nil, 4)
}

// Property: neighbor relations are symmetric for all pairwise schemes and
// never include self.
func TestQuickNeighborSymmetry(t *testing.T) {
	f := func(rawN uint8, rawI uint8, schemeSel uint8) bool {
		n := int(rawN)%63 + 2
		scheme := []Scheme{Ring, Torus2D, Hypercube}[int(schemeSel)%3]
		if scheme == Hypercube {
			// Round n to a power of two.
			p := 2
			for p*2 <= n {
				p *= 2
			}
			n = p
		}
		top, err := NewTopology(scheme, n)
		if err != nil {
			return false
		}
		i := int(rawI) % n
		for _, j := range top.Neighbors(nil, i) {
			if j == i {
				return false // self loop
			}
			back := top.Neighbors(nil, j)
			found := false
			for _, k := range back {
				if k == i {
					found = true
				}
			}
			if !found {
				return false // asymmetric
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDegreeRing(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {100, 2}} {
		top, _ := NewTopology(Ring, c.n)
		if got := top.MaxDegree(); got != c.want {
			t.Errorf("ring-%d degree = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDirections(t *testing.T) {
	cases := []struct {
		scheme Scheme
		n      int
		want   int
	}{
		{Ring, 8, 2}, {Ring, 2, 2}, {Ring, 1, 0},
		{Torus2D, 16, 4}, {Torus2D, 2, 4},
		{None, 8, 0}, {AllToAll, 8, 0}, {Hypercube, 8, 0}, {RandomPairs, 8, 0},
	}
	for _, c := range cases {
		top, err := NewTopology(c.scheme, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got := top.Directions(); got != c.want {
			t.Errorf("%v-%d directions = %d, want %d", c.scheme, c.n, got, c.want)
		}
	}
}

func TestWalkRing(t *testing.T) {
	top, _ := NewTopology(Ring, 5)
	if got := top.Walk(0, 0); got != 4 {
		t.Fatalf("ring walk back from 0 = %d, want 4", got)
	}
	if got := top.Walk(0, 1); got != 1 {
		t.Fatalf("ring walk forward from 0 = %d, want 1", got)
	}
	// Walking one direction traverses the full cycle back to the start.
	j, hops := top.Walk(2, 1), 1
	for ; j != 2; j = top.Walk(j, 1) {
		hops++
	}
	if hops != 5 {
		t.Fatalf("ring cycle length %d, want 5", hops)
	}
}

func TestWalkTorus(t *testing.T) {
	top, _ := NewTopology(Torus2D, 16) // 4×4
	// Sub-filter 5 is row 1, col 1.
	want := []int{1, 9, 4, 6} // up, down, left, right
	for dir, w := range want {
		if got := top.Walk(5, dir); got != w {
			t.Errorf("torus walk(5, %d) = %d, want %d", dir, got, w)
		}
	}
	// Degenerate 1×2 grid: the vertical axis steps to self.
	deg, _ := NewTopology(Torus2D, 2)
	if got := deg.Walk(0, 0); got != 0 {
		t.Fatalf("1×2 torus vertical walk = %d, want self", got)
	}
}

func TestRouteLive(t *testing.T) {
	top, _ := NewTopology(Ring, 6)
	allLive := func(int) bool { return true }
	// Fully live: routing is exactly the immediate neighbor.
	for i := 0; i < 6; i++ {
		for dir := 0; dir < top.Directions(); dir++ {
			if got, want := top.RouteLive(i, dir, allLive), top.Walk(i, dir); got != want {
				t.Fatalf("all-live route(%d,%d) = %d, want neighbor %d", i, dir, got, want)
			}
		}
	}
	// Dead immediate neighbor: skip to the next live one in the same
	// direction, deterministically.
	dead := map[int]bool{5: true, 4: true}
	live := func(j int) bool { return !dead[j] }
	if got := top.RouteLive(0, 0, live); got != 3 {
		t.Fatalf("route around dead 5,4 = %d, want 3", got)
	}
	// All other sub-filters dead: no live sender, -1.
	only := func(j int) bool { return false }
	if got := top.RouteLive(0, 1, only); got != -1 {
		t.Fatalf("route with no live sender = %d, want -1", got)
	}
	// Degenerate torus axis: no sender on a length-1 cycle.
	deg, _ := NewTopology(Torus2D, 3) // 1×3
	if got := deg.RouteLive(1, 0, allLive); got != -1 {
		t.Fatalf("degenerate torus axis route = %d, want -1", got)
	}
	if got := deg.RouteLive(1, 3, allLive); got != 2 {
		t.Fatalf("1×3 torus right route = %d, want 2", got)
	}
}

func TestWalkOutOfRangePanics(t *testing.T) {
	top, _ := NewTopology(Ring, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	top.Walk(0, 2)
}

func TestPairingIsSymmetricMatching(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17, 64} {
		for round := 0; round < 5; round++ {
			p := Pairing(n, 42, round)
			if len(p) != n {
				t.Fatalf("n=%d: pairing length %d", n, len(p))
			}
			unmatched := 0
			for i, j := range p {
				if j < 0 || j >= n {
					t.Fatalf("n=%d: partner out of range", n)
				}
				if p[j] != i {
					t.Fatalf("n=%d round=%d: asymmetric pairing %d<->%d", n, round, i, j)
				}
				if j == i {
					unmatched++
				}
			}
			if want := n % 2; unmatched != want {
				t.Fatalf("n=%d: %d unmatched, want %d", n, unmatched, want)
			}
		}
	}
}

func TestPairingDeterministicAndVaries(t *testing.T) {
	a := Pairing(16, 7, 3)
	b := Pairing(16, 7, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pairing not deterministic")
		}
	}
	c := Pairing(16, 7, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("pairing identical across rounds")
	}
}

func TestRandomPairsScheme(t *testing.T) {
	s, err := SchemeByName("gossip")
	if err != nil || s != RandomPairs {
		t.Fatalf("gossip alias: %v %v", s, err)
	}
	top, err := NewTopology(RandomPairs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := top.Neighbors(nil, 3); len(got) != 0 {
		t.Fatal("random-pairs must have no static neighbors")
	}
	if top.MaxDegree() != 1 {
		t.Fatalf("random-pairs degree %d, want 1", top.MaxDegree())
	}
}
