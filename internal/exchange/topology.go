// Package exchange implements the particle-exchange topologies of the
// distributed filter.
//
// After each round, every sub-filter sends its best t particles to its
// neighbors under an exchange scheme (§IV, §VI-E, Fig. 1):
//
//   - All-to-All: every sub-filter contributes t particles to a shared
//     pool; all read back the same t best of the pool. Cheap on shared
//     memory but, as Fig. 6 shows, the worst for accuracy — the same
//     particles flood every sub-filter and diversity collapses.
//   - Ring: sub-filter i exchanges with i±1 (mod N).
//   - 2D Torus: sub-filters form a rows×cols grid with wraparound;
//     4 neighbors each. Better for large networks (Fig. 6c).
//   - Hypercube (an extension beyond the paper): log₂N neighbors,
//     provided for the connectivity-scaling ablation.
//
// Incoming particles replace the receiver's worst-weighted slots, which
// is why sub-filters sort by weight before exchanging (§VI-C).
package exchange

import "fmt"

// Scheme identifies an exchange topology.
type Scheme int

// The supported schemes.
const (
	None Scheme = iota // no exchange (t = 0 or isolated sub-filters)
	AllToAll
	Ring
	Torus2D
	Hypercube
	// RandomPairs matches sub-filters into fresh random pairs every
	// round (gossip-style; one of the "various exchange schemes [that]
	// can be envisioned", §III-A). Degree 1, so the per-round
	// communication is the lowest of the pairwise schemes, but over time
	// every pair of sub-filters eventually communicates directly.
	// Supported by the sequential distributed filter; the device pipeline
	// uses static topologies.
	RandomPairs
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case AllToAll:
		return "all-to-all"
	case Ring:
		return "ring"
	case Torus2D:
		return "torus"
	case Hypercube:
		return "hypercube"
	case RandomPairs:
		return "random-pairs"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// SchemeByName parses a scheme name.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "none":
		return None, nil
	case "all-to-all", "alltoall", "a2a":
		return AllToAll, nil
	case "ring":
		return Ring, nil
	case "torus", "torus2d", "2d-torus":
		return Torus2D, nil
	case "hypercube", "cube":
		return Hypercube, nil
	case "random-pairs", "random", "gossip":
		return RandomPairs, nil
	}
	return None, fmt.Errorf("exchange: unknown scheme %q", name)
}

// Topology is an instantiated exchange graph over n sub-filters.
type Topology struct {
	scheme     Scheme
	n          int
	rows, cols int // torus factorization
}

// NewTopology builds the topology for scheme over n sub-filters.
// Torus2D factorizes n into the most-square rows×cols grid (n must not be
// prime > 3 for a non-degenerate grid, but any n works — a 1×n grid
// degenerates to a ring). Hypercube requires n to be a power of two.
func NewTopology(scheme Scheme, n int) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("exchange: non-positive network size %d", n)
	}
	t := &Topology{scheme: scheme, n: n}
	if scheme == Torus2D {
		t.rows, t.cols = squarestFactors(n)
	}
	if scheme == Hypercube && n&(n-1) != 0 {
		return nil, fmt.Errorf("exchange: hypercube requires power-of-two size, got %d", n)
	}
	return t, nil
}

// Scheme returns the topology's scheme.
func (t *Topology) Scheme() Scheme { return t.scheme }

// Size returns the number of sub-filters.
func (t *Topology) Size() int { return t.n }

// GridDims returns the torus factorization (0,0 for other schemes).
func (t *Topology) GridDims() (rows, cols int) { return t.rows, t.cols }

// Neighbors appends the neighbor ids of sub-filter i to dst and returns
// it. For AllToAll it returns nil: the pool pattern is handled specially
// by the exchange kernels (neighbors are not pairwise).
func (t *Topology) Neighbors(dst []int, i int) []int {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("exchange: sub-filter %d out of range [0,%d)", i, t.n))
	}
	switch t.scheme {
	case None, AllToAll, RandomPairs:
		// All-to-All uses the shared pool; RandomPairs derives fresh
		// pairings per round via Pairing.
		return dst
	case Ring:
		if t.n == 1 {
			return dst
		}
		prev := (i - 1 + t.n) % t.n
		next := (i + 1) % t.n
		dst = append(dst, prev)
		if next != prev {
			dst = append(dst, next)
		}
		return dst
	case Torus2D:
		r, c := i/t.cols, i%t.cols
		seen := map[int]bool{i: true}
		add := func(rr, cc int) []int {
			j := ((rr+t.rows)%t.rows)*t.cols + (cc+t.cols)%t.cols
			if !seen[j] {
				seen[j] = true
				dst = append(dst, j)
			}
			return dst
		}
		dst = add(r-1, c)
		dst = add(r+1, c)
		dst = add(r, c-1)
		dst = add(r, c+1)
		return dst
	case Hypercube:
		for b := 1; b < t.n; b <<= 1 {
			dst = append(dst, i^b)
		}
		return dst
	}
	return dst
}

// MaxDegree returns the maximum neighbor count over all sub-filters,
// useful for sizing exchange buffers.
func (t *Topology) MaxDegree() int {
	switch t.scheme {
	case None, AllToAll:
		return 0
	case RandomPairs:
		if t.n > 1 {
			return 1
		}
		return 0
	case Ring:
		if t.n <= 2 {
			return t.n - 1
		}
		return 2
	case Torus2D:
		d := 0
		var buf []int
		for i := 0; i < t.n; i++ {
			buf = t.Neighbors(buf[:0], i)
			if len(buf) > d {
				d = len(buf)
			}
		}
		return d
	case Hypercube:
		d := 0
		for b := 1; b < t.n; b <<= 1 {
			d++
		}
		return d
	}
	return 0
}

// Directions returns the number of directed exchange lanes per
// sub-filter for the pairwise grid schemes: 2 for Ring (previous, next)
// and 4 for Torus2D (up, down, left, right). Directed lanes underlie
// degraded-mode rerouting (see RouteLive): a receiver that cannot pull
// from its immediate neighbor in a direction keeps walking that
// direction until it finds a live sender. Schemes without a directional
// structure (None, AllToAll, RandomPairs, Hypercube) report 0, as does a
// single-sub-filter network.
func (t *Topology) Directions() int {
	if t.n <= 1 {
		return 0
	}
	switch t.scheme {
	case Ring:
		return 2
	case Torus2D:
		return 4
	}
	return 0
}

// Walk returns the sub-filter one hop from i along direction dir
// (0 ≤ dir < Directions()). Walking a direction repeatedly traverses a
// closed cycle back to i: the whole ring, or one torus row/column. A
// degenerate torus axis of length 1 steps to i itself.
func (t *Topology) Walk(i, dir int) int {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("exchange: sub-filter %d out of range [0,%d)", i, t.n))
	}
	if dir < 0 || dir >= t.Directions() {
		panic(fmt.Sprintf("exchange: direction %d out of range [0,%d)", dir, t.Directions()))
	}
	switch t.scheme {
	case Ring:
		if dir == 0 {
			return (i - 1 + t.n) % t.n
		}
		return (i + 1) % t.n
	case Torus2D:
		r, c := i/t.cols, i%t.cols
		switch dir {
		case 0:
			r = (r - 1 + t.rows) % t.rows
		case 1:
			r = (r + 1) % t.rows
		case 2:
			c = (c - 1 + t.cols) % t.cols
		default:
			c = (c + 1) % t.cols
		}
		return r*t.cols + c
	}
	panic(fmt.Sprintf("exchange: scheme %v has no directions", t.scheme))
}

// RouteLive returns the first live sub-filter along direction dir from
// i, skipping dead senders deterministically: it walks the direction's
// cycle hop by hop and stops at the first j with live(j). When the walk
// returns to i without finding a live sender — every other sub-filter on
// the cycle is dead, or the axis is degenerate — it returns -1 and the
// caller keeps its native particles for that lane. With every sender
// live, RouteLive(i, dir) is exactly the immediate neighbor Walk(i, dir),
// so the no-fault path is unchanged by routing through this helper.
func (t *Topology) RouteLive(i, dir int, live func(int) bool) int {
	for j := t.Walk(i, dir); j != i; j = t.Walk(j, dir) {
		if live(j) {
			return j
		}
	}
	return -1
}

// Pairing returns the RandomPairs matching for one round: partner[i] is
// the sub-filter i exchanges with, or i itself when unmatched (odd n
// leaves one out per round). The matching is a deterministic function of
// (seed, round), symmetric (partner[partner[i]] == i), and changes every
// round.
func Pairing(n int, seed uint64, round int) []int {
	partner := make([]int, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Seeded Fisher-Yates via SplitMix-style mixing, then pair adjacent
	// entries of the permutation.
	state := seed ^ (uint64(round)+1)*0x9E3779B97F4A7C15
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := range partner {
		partner[i] = i
	}
	for i := 0; i+1 < n; i += 2 {
		a, b := perm[i], perm[i+1]
		partner[a] = b
		partner[b] = a
	}
	return partner
}

// squarestFactors returns (rows, cols) with rows*cols == n and rows the
// largest divisor of n not exceeding √n.
func squarestFactors(n int) (rows, cols int) {
	rows = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return rows, n / rows
}
