package device

import (
	"fmt"
	"time"
)

// Ctx is the data-parallel execution context a barrier-phased algorithm
// runs against. The parallel primitives (internal/scan, internal/sortnet)
// and the kernels are written once against Ctx; *Group provides the
// instrumented device implementation and Serial a plain sequential one for
// the reference filters.
type Ctx interface {
	// Lanes returns the number of parallel lanes (work-group size).
	Lanes() int
	// Step executes fn once for each lane in [0, Lanes()), with an
	// implicit barrier after the last lane. Within a Step, lanes must not
	// communicate: fn(i) may not read data written by fn(j) of the same
	// step (on a real device the lanes run concurrently).
	Step(fn func(lane int))
	// StepSpan is Step with the per-lane dispatch hoisted out: fn is
	// invoked once and must itself loop lane over [lo, hi) in ascending
	// order, performing exactly the work Step's per-lane body would. It
	// costs the same barrier and lane-invocation accounting as Step and
	// carries the same non-communication contract; it exists so tight
	// inner bodies (a sorting network's compare-exchange stage, a scan's
	// tree level) avoid an indirect call per lane on the simulation host.
	StepSpan(fn func(lo, hi int))
	// StepVec executes one barrier-delimited step over the lane range as
	// contiguous row spans of structure-of-arrays columns: fn receives a
	// half-open row range [lo, hi) and must process exactly those rows of
	// every column it touches, writing no row outside the range. Unlike
	// StepSpan — whose body is a hoisted per-lane loop — a StepVec body
	// operates on whole spans (block RNG fills, fused per-dimension
	// arithmetic), which is what lets the compiler keep the inner loops
	// bounds-check-free and auto-vectorizable. A device may partition the
	// lane range and invoke fn several times with disjoint sub-ranges;
	// correctness must not depend on receiving [0, Lanes()) in one call.
	// The barrier and accounting cost equals Step's.
	StepVec(fn func(lo, hi int))
	// Ops accounts n arithmetic operations (for the cost model).
	Ops(n int)
	// GlobalRead / GlobalWrite account off-chip memory traffic in bytes.
	GlobalRead(bytes int)
	GlobalWrite(bytes int)
	// LocalRead / LocalWrite account scratch-pad traffic in bytes.
	LocalRead(bytes int)
	LocalWrite(bytes int)
	// ScratchF64 / ScratchInt return zeroed length-n temporary buffers
	// for primitive-internal working state (padding, reduction trees).
	// Unlike AllocLocal*, scratch is NOT accounted against the group's
	// local-memory capacity — it models register/unified space a real
	// kernel would already hold — but like local memory it is recycled,
	// so the barrier-phased primitives run allocation-free.
	ScratchF64(n int) []float64
	ScratchInt(n int) []int
}

// Counters aggregates the accounted work of one or more kernel executions.
type Counters struct {
	Steps            int64 `json:"steps"`            // barrier-delimited phases
	LaneInvocations  int64 `json:"lane_invocations"` // total fn(lane) calls
	Ops              int64 `json:"ops"`              // accounted arithmetic operations (data-parallel)
	SerialOps        int64 `json:"serial_ops"`       // ops executed by a single lane (StepSerial)
	GlobalReadBytes  int64 `json:"global_read_bytes"`
	GlobalWriteBytes int64 `json:"global_write_bytes"`
	LocalReadBytes   int64 `json:"local_read_bytes"`
	LocalWriteBytes  int64 `json:"local_write_bytes"`
	LocalAllocBytes  int64 `json:"local_alloc_bytes"` // peak local-memory allocation over groups
}

// Add accumulates o into c (LocalAllocBytes takes the max, since it is a
// capacity, not a flow).
func (c *Counters) Add(o *Counters) {
	c.Steps += o.Steps
	c.LaneInvocations += o.LaneInvocations
	c.Ops += o.Ops
	c.SerialOps += o.SerialOps
	c.GlobalReadBytes += o.GlobalReadBytes
	c.GlobalWriteBytes += o.GlobalWriteBytes
	c.LocalReadBytes += o.LocalReadBytes
	c.LocalWriteBytes += o.LocalWriteBytes
	if o.LocalAllocBytes > c.LocalAllocBytes {
		c.LocalAllocBytes = o.LocalAllocBytes
	}
}

// GlobalBytes returns total off-chip traffic.
func (c *Counters) GlobalBytes() int64 { return c.GlobalReadBytes + c.GlobalWriteBytes }

// Group is one work-group of a kernel launch: a block of lanes sharing
// local memory and barriers. It implements Ctx with full instrumentation.
//
// Group objects are pooled by the Device and recycled across launches:
// local-memory buffers are carved out of per-Group arenas that persist
// between kernel executions (and are re-zeroed on allocation), so steady-
// state kernel rounds run allocation-free.
type Group struct {
	id          int
	size        int
	localMemCap int // bytes; negative = unlimited
	localAlloc  int
	inSerial    bool

	// cur is the accounting target: &count for plain launches, or the
	// active phase's counters inside a fused launch.
	cur   *Counters
	count Counters

	// steps/lanes batch the per-Step barrier bookkeeping; they are folded
	// into cur once per phase transition / kernel completion instead of
	// touching the Counters struct on every Step.
	steps int64
	lanes int64

	// Fused-launch phase attribution. Phase wall-clock is sampled: only
	// every eighth group (by ID, always including group 0) reads the
	// clock, keeping the fused hot path free of per-phase timer calls;
	// the sampled per-phase shares are representative because groups run
	// the same kernel body.
	fused       bool
	timed       bool
	phase       int
	phaseStart  time.Time
	phaseCounts []Counters
	phaseTimes  []time.Duration

	// Local-memory arenas, recycled across kernel executions.
	arenaF64               []float64
	arenaInt               []int
	arenaU32               []uint32
	offF64, offInt, offU32 int

	// Scratch arenas (unaccounted temporary space; see Ctx.ScratchF64).
	scratchF64           []float64
	scratchInt           []int
	scrOffF64, scrOffInt int
}

// reset prepares a pooled Group for one kernel execution.
func (g *Group) reset(id, size, localMemCap, phases int) {
	g.id = id
	g.size = size
	g.localMemCap = localMemCap
	g.localAlloc = 0
	g.inSerial = false
	g.count = Counters{}
	g.steps, g.lanes = 0, 0
	g.offF64, g.offInt, g.offU32 = 0, 0, 0
	g.scrOffF64, g.scrOffInt = 0, 0
	g.fused = phases > 0
	if !g.fused {
		g.cur = &g.count
		return
	}
	if cap(g.phaseCounts) < phases {
		g.phaseCounts = make([]Counters, phases)
		g.phaseTimes = make([]time.Duration, phases)
	}
	g.phaseCounts = g.phaseCounts[:phases]
	g.phaseTimes = g.phaseTimes[:phases]
	for i := range g.phaseCounts {
		g.phaseCounts[i] = Counters{}
		g.phaseTimes[i] = 0
	}
	g.phase = 0
	g.cur = &g.phaseCounts[0]
	g.timed = id&7 == 0
	if g.timed {
		g.phaseStart = time.Now()
	}
}

// flushSteps folds the batched barrier counters into the active target.
func (g *Group) flushSteps() {
	g.cur.Steps += g.steps
	g.cur.LaneInvocations += g.lanes
	g.steps, g.lanes = 0, 0
}

// Phase switches accounting to phase i of a fused launch (see
// Device.LaunchFused). Work accounted before the first Phase call lands
// in phase 0. Phases may be revisited; their counters accumulate.
func (g *Group) Phase(i int) {
	if !g.fused {
		panic("device: Group.Phase outside LaunchFused")
	}
	if i < 0 || i >= len(g.phaseCounts) {
		panic(fmt.Sprintf("device: phase %d out of range (fused launch has %d phases)", i, len(g.phaseCounts)))
	}
	g.flushSteps()
	if g.timed {
		now := time.Now()
		g.phaseTimes[g.phase] += now.Sub(g.phaseStart)
		g.phaseStart = now
	}
	g.phase = i
	g.cur = &g.phaseCounts[i]
}

// finish closes out one kernel execution, folding this group's accounting
// into the participant-local accumulators.
func (g *Group) finish(local *Counters, lp []Counters, lt []time.Duration) {
	g.flushSteps()
	if !g.fused {
		local.Add(&g.count)
		return
	}
	if g.timed {
		g.phaseTimes[g.phase] += time.Since(g.phaseStart)
	}
	for i := range g.phaseCounts {
		local.Add(&g.phaseCounts[i])
		lp[i].Add(&g.phaseCounts[i])
		if g.timed {
			lt[i] += g.phaseTimes[i]
		}
	}
}

// ID returns the work-group index within the launch grid.
func (g *Group) ID() int { return g.id }

// Lanes returns the work-group size.
func (g *Group) Lanes() int { return g.size }

// Step executes fn for every lane with an implicit trailing barrier.
//
// Lanes are executed sequentially within the group (groups themselves run
// concurrently across compute units); the barrier-phased discipline is
// what makes the written algorithms valid on a real SIMT device.
func (g *Group) Step(fn func(lane int)) {
	for lane := 0; lane < g.size; lane++ {
		fn(lane)
	}
	g.steps++
	g.lanes += int64(g.size)
}

// StepSpan executes fn once over the full lane range [0, Lanes()) with a
// trailing barrier; see Ctx.StepSpan.
func (g *Group) StepSpan(fn func(lo, hi int)) {
	fn(0, g.size)
	g.steps++
	g.lanes += int64(g.size)
}

// StepVec executes fn over the group's full row range [0, Lanes()) with a
// trailing barrier; see Ctx.StepVec. The simulated device hands the body
// one span per group (real hardware would split it across vector units).
func (g *Group) StepVec(fn func(lo, hi int)) {
	fn(0, g.size)
	g.steps++
	g.lanes += int64(g.size)
}

// StepOne executes fn on lane 0 only (the "if (tid == 0)" idiom), still
// costing a barrier. Work accounted inside fn is treated as
// data-parallel (use StepOne for bookkeeping or for work that a real
// kernel would distribute across lanes, such as block PRNG generation).
func (g *Group) StepOne(fn func()) {
	fn()
	g.steps++
	g.lanes++
}

// StepSerial executes fn on lane 0 with all other lanes idle, and
// accounts its Ops as *serial* work: on a wide device this region runs at
// single-lane throughput (Vose's alias-table construction is the
// prototypical case — §VI-F: "concurrency usually drops steeply towards
// one"). The platform cost model charges SerialOps accordingly.
func (g *Group) StepSerial(fn func()) {
	g.inSerial = true
	fn()
	g.inSerial = false
	g.steps++
	g.lanes++
}

// Ops accounts n arithmetic operations (serial ops inside StepSerial).
func (g *Group) Ops(n int) {
	if g.inSerial {
		g.cur.SerialOps += int64(n)
		return
	}
	g.cur.Ops += int64(n)
}

// GlobalRead accounts bytes read from global memory.
func (g *Group) GlobalRead(bytes int) { g.cur.GlobalReadBytes += int64(bytes) }

// GlobalWrite accounts bytes written to global memory.
func (g *Group) GlobalWrite(bytes int) { g.cur.GlobalWriteBytes += int64(bytes) }

// LocalRead accounts bytes read from local memory.
func (g *Group) LocalRead(bytes int) { g.cur.LocalReadBytes += int64(bytes) }

// LocalWrite accounts bytes written to local memory.
func (g *Group) LocalWrite(bytes int) { g.cur.LocalWriteBytes += int64(bytes) }

// allocLocal accounts a local-memory allocation of n bytes, panicking if
// the group's capacity is exceeded — the same hard failure a CUDA kernel
// hits when its static shared-memory demand exceeds the SM's scratch pad.
func (g *Group) allocLocal(n int) {
	g.localAlloc += n
	if g.cur.LocalAllocBytes < int64(g.localAlloc) {
		g.cur.LocalAllocBytes = int64(g.localAlloc)
	}
	if g.localMemCap >= 0 && g.localAlloc > g.localMemCap {
		panic(fmt.Sprintf("device: local memory overflow: %d bytes requested, capacity %d",
			g.localAlloc, g.localMemCap))
	}
}

// AllocLocalF64 allocates a zeroed local-memory float64 buffer of length
// n, carved from the group's recycled arena.
func (g *Group) AllocLocalF64(n int) []float64 {
	g.allocLocal(8 * n)
	if len(g.arenaF64)-g.offF64 < n {
		// Previously returned slices keep referencing the old backing
		// array; allocations continue in the fresh, larger one.
		g.arenaF64 = make([]float64, arenaSize(len(g.arenaF64), n))
		g.offF64 = 0
	}
	s := g.arenaF64[g.offF64 : g.offF64+n : g.offF64+n]
	g.offF64 += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// AllocLocalU32 allocates a zeroed local-memory uint32 buffer of length n.
func (g *Group) AllocLocalU32(n int) []uint32 {
	g.allocLocal(4 * n)
	if len(g.arenaU32)-g.offU32 < n {
		g.arenaU32 = make([]uint32, arenaSize(len(g.arenaU32), n))
		g.offU32 = 0
	}
	s := g.arenaU32[g.offU32 : g.offU32+n : g.offU32+n]
	g.offU32 += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// AllocLocalInt allocates a zeroed local-memory index buffer of length n,
// accounted at 4 bytes per element (device indices are 32-bit).
func (g *Group) AllocLocalInt(n int) []int {
	g.allocLocal(4 * n)
	if len(g.arenaInt)-g.offInt < n {
		g.arenaInt = make([]int, arenaSize(len(g.arenaInt), n))
		g.offInt = 0
	}
	s := g.arenaInt[g.offInt : g.offInt+n : g.offInt+n]
	g.offInt += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// ScratchF64 returns a zeroed length-n temporary buffer from the group's
// recycled (unaccounted) scratch arena.
func (g *Group) ScratchF64(n int) []float64 {
	if len(g.scratchF64)-g.scrOffF64 < n {
		g.scratchF64 = make([]float64, arenaSize(len(g.scratchF64), n))
		g.scrOffF64 = 0
	}
	s := g.scratchF64[g.scrOffF64 : g.scrOffF64+n : g.scrOffF64+n]
	g.scrOffF64 += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// ScratchInt returns a zeroed length-n temporary buffer from the group's
// recycled (unaccounted) scratch arena.
func (g *Group) ScratchInt(n int) []int {
	if len(g.scratchInt)-g.scrOffInt < n {
		g.scratchInt = make([]int, arenaSize(len(g.scratchInt), n))
		g.scrOffInt = 0
	}
	s := g.scratchInt[g.scrOffInt : g.scrOffInt+n : g.scrOffInt+n]
	g.scrOffInt += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// arenaSize picks the next arena capacity: at least double, at least the
// request, and never trivially small.
func arenaSize(have, need int) int {
	n := 2 * have
	if n < need {
		n = need
	}
	if n < 64 {
		n = 64
	}
	return n
}

// Serial is a plain sequential Ctx with no instrumentation and no local
// memory limit, used by the sequential reference filters to share the
// exact same algorithm implementations as the device kernels.
type Serial struct {
	N int
}

// Lanes returns the lane count.
func (s Serial) Lanes() int { return s.N }

// Step executes fn for every lane in order.
func (s Serial) Step(fn func(lane int)) {
	for lane := 0; lane < s.N; lane++ {
		fn(lane)
	}
}

// StepSpan executes fn once over the full lane range.
func (s Serial) StepSpan(fn func(lo, hi int)) { fn(0, s.N) }

// StepVec executes fn once over the full row range.
func (s Serial) StepVec(fn func(lo, hi int)) { fn(0, s.N) }

// Ops is a no-op.
func (s Serial) Ops(int) {}

// GlobalRead is a no-op.
func (s Serial) GlobalRead(int) {}

// GlobalWrite is a no-op.
func (s Serial) GlobalWrite(int) {}

// LocalRead is a no-op.
func (s Serial) LocalRead(int) {}

// LocalWrite is a no-op.
func (s Serial) LocalWrite(int) {}

// ScratchF64 returns a fresh zeroed buffer (no recycling sequentially).
func (s Serial) ScratchF64(n int) []float64 { return make([]float64, n) }

// ScratchInt returns a fresh zeroed buffer.
func (s Serial) ScratchInt(n int) []int { return make([]int, n) }

var (
	_ Ctx = (*Group)(nil)
	_ Ctx = Serial{}
)
