package device

import "fmt"

// Ctx is the data-parallel execution context a barrier-phased algorithm
// runs against. The parallel primitives (internal/scan, internal/sortnet)
// and the kernels are written once against Ctx; *Group provides the
// instrumented device implementation and Serial a plain sequential one for
// the reference filters.
type Ctx interface {
	// Lanes returns the number of parallel lanes (work-group size).
	Lanes() int
	// Step executes fn once for each lane in [0, Lanes()), with an
	// implicit barrier after the last lane. Within a Step, lanes must not
	// communicate: fn(i) may not read data written by fn(j) of the same
	// step (on a real device the lanes run concurrently).
	Step(fn func(lane int))
	// Ops accounts n arithmetic operations (for the cost model).
	Ops(n int)
	// GlobalRead / GlobalWrite account off-chip memory traffic in bytes.
	GlobalRead(bytes int)
	GlobalWrite(bytes int)
	// LocalRead / LocalWrite account scratch-pad traffic in bytes.
	LocalRead(bytes int)
	LocalWrite(bytes int)
}

// Counters aggregates the accounted work of one or more kernel executions.
type Counters struct {
	Steps            int64 `json:"steps"`            // barrier-delimited phases
	LaneInvocations  int64 `json:"lane_invocations"` // total fn(lane) calls
	Ops              int64 `json:"ops"`              // accounted arithmetic operations (data-parallel)
	SerialOps        int64 `json:"serial_ops"`       // ops executed by a single lane (StepSerial)
	GlobalReadBytes  int64 `json:"global_read_bytes"`
	GlobalWriteBytes int64 `json:"global_write_bytes"`
	LocalReadBytes   int64 `json:"local_read_bytes"`
	LocalWriteBytes  int64 `json:"local_write_bytes"`
	LocalAllocBytes  int64 `json:"local_alloc_bytes"` // peak local-memory allocation over groups
}

// Add accumulates o into c (LocalAllocBytes takes the max, since it is a
// capacity, not a flow).
func (c *Counters) Add(o *Counters) {
	c.Steps += o.Steps
	c.LaneInvocations += o.LaneInvocations
	c.Ops += o.Ops
	c.SerialOps += o.SerialOps
	c.GlobalReadBytes += o.GlobalReadBytes
	c.GlobalWriteBytes += o.GlobalWriteBytes
	c.LocalReadBytes += o.LocalReadBytes
	c.LocalWriteBytes += o.LocalWriteBytes
	if o.LocalAllocBytes > c.LocalAllocBytes {
		c.LocalAllocBytes = o.LocalAllocBytes
	}
}

// GlobalBytes returns total off-chip traffic.
func (c *Counters) GlobalBytes() int64 { return c.GlobalReadBytes + c.GlobalWriteBytes }

// Group is one work-group of a kernel launch: a block of lanes sharing
// local memory and barriers. It implements Ctx with full instrumentation.
type Group struct {
	id          int
	size        int
	localMemCap int // bytes; negative = unlimited
	localAlloc  int
	inSerial    bool
	count       Counters
}

// ID returns the work-group index within the launch grid.
func (g *Group) ID() int { return g.id }

// Lanes returns the work-group size.
func (g *Group) Lanes() int { return g.size }

// Step executes fn for every lane with an implicit trailing barrier.
//
// Lanes are executed sequentially within the group (groups themselves run
// concurrently across compute units); the barrier-phased discipline is
// what makes the written algorithms valid on a real SIMT device.
func (g *Group) Step(fn func(lane int)) {
	for lane := 0; lane < g.size; lane++ {
		fn(lane)
	}
	g.count.Steps++
	g.count.LaneInvocations += int64(g.size)
}

// StepOne executes fn on lane 0 only (the "if (tid == 0)" idiom), still
// costing a barrier. Work accounted inside fn is treated as
// data-parallel (use StepOne for bookkeeping or for work that a real
// kernel would distribute across lanes, such as block PRNG generation).
func (g *Group) StepOne(fn func()) {
	fn()
	g.count.Steps++
	g.count.LaneInvocations++
}

// StepSerial executes fn on lane 0 with all other lanes idle, and
// accounts its Ops as *serial* work: on a wide device this region runs at
// single-lane throughput (Vose's alias-table construction is the
// prototypical case — §VI-F: "concurrency usually drops steeply towards
// one"). The platform cost model charges SerialOps accordingly.
func (g *Group) StepSerial(fn func()) {
	g.inSerial = true
	fn()
	g.inSerial = false
	g.count.Steps++
	g.count.LaneInvocations++
}

// Ops accounts n arithmetic operations (serial ops inside StepSerial).
func (g *Group) Ops(n int) {
	if g.inSerial {
		g.count.SerialOps += int64(n)
		return
	}
	g.count.Ops += int64(n)
}

// GlobalRead accounts bytes read from global memory.
func (g *Group) GlobalRead(bytes int) { g.count.GlobalReadBytes += int64(bytes) }

// GlobalWrite accounts bytes written to global memory.
func (g *Group) GlobalWrite(bytes int) { g.count.GlobalWriteBytes += int64(bytes) }

// LocalRead accounts bytes read from local memory.
func (g *Group) LocalRead(bytes int) { g.count.LocalReadBytes += int64(bytes) }

// LocalWrite accounts bytes written to local memory.
func (g *Group) LocalWrite(bytes int) { g.count.LocalWriteBytes += int64(bytes) }

// allocLocal accounts a local-memory allocation of n bytes, panicking if
// the group's capacity is exceeded — the same hard failure a CUDA kernel
// hits when its static shared-memory demand exceeds the SM's scratch pad.
func (g *Group) allocLocal(n int) {
	g.localAlloc += n
	if g.count.LocalAllocBytes < int64(g.localAlloc) {
		g.count.LocalAllocBytes = int64(g.localAlloc)
	}
	if g.localMemCap >= 0 && g.localAlloc > g.localMemCap {
		panic(fmt.Sprintf("device: local memory overflow: %d bytes requested, capacity %d",
			g.localAlloc, g.localMemCap))
	}
}

// AllocLocalF64 allocates a local-memory float64 buffer of length n.
func (g *Group) AllocLocalF64(n int) []float64 {
	g.allocLocal(8 * n)
	return make([]float64, n)
}

// AllocLocalU32 allocates a local-memory uint32 buffer of length n.
func (g *Group) AllocLocalU32(n int) []uint32 {
	g.allocLocal(4 * n)
	return make([]uint32, n)
}

// AllocLocalInt allocates a local-memory index buffer of length n,
// accounted at 4 bytes per element (device indices are 32-bit).
func (g *Group) AllocLocalInt(n int) []int {
	g.allocLocal(4 * n)
	return make([]int, n)
}

// Serial is a plain sequential Ctx with no instrumentation and no local
// memory limit, used by the sequential reference filters to share the
// exact same algorithm implementations as the device kernels.
type Serial struct {
	N int
}

// Lanes returns the lane count.
func (s Serial) Lanes() int { return s.N }

// Step executes fn for every lane in order.
func (s Serial) Step(fn func(lane int)) {
	for lane := 0; lane < s.N; lane++ {
		fn(lane)
	}
}

// Ops is a no-op.
func (s Serial) Ops(int) {}

// GlobalRead is a no-op.
func (s Serial) GlobalRead(int) {}

// GlobalWrite is a no-op.
func (s Serial) GlobalWrite(int) {}

// LocalRead is a no-op.
func (s Serial) LocalRead(int) {}

// LocalWrite is a no-op.
func (s Serial) LocalWrite(int) {}

var (
	_ Ctx = (*Group)(nil)
	_ Ctx = Serial{}
)
