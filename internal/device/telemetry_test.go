package device

import (
	"testing"
	"time"

	"esthera/internal/telemetry"
)

// TestLaunchRecordsSpans asserts the device emits one span per launch
// with the launch's name and grid args, and nothing when the tracer is
// disabled or detached.
func TestLaunchRecordsSpans(t *testing.T) {
	d := New(Config{Workers: 2})
	defer d.Close()

	d.Launch("untraced", Grid{Groups: 2, GroupSize: 4}, func(g *Group) {})

	tr := telemetry.New(telemetry.Config{})
	d.SetTracer(tr)
	d.Launch("disabled", Grid{Groups: 2, GroupSize: 4}, func(g *Group) {})
	if evs := tr.Drain(); len(evs) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(evs))
	}

	tr.SetEnabled(true)
	d.Launch("traced", Grid{Groups: 3, GroupSize: 8}, func(g *Group) {})
	evs := tr.Drain()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "traced" || ev.Cat != "launch" {
		t.Fatalf("span %q/%q, want traced/launch", ev.Name, ev.Cat)
	}
	if ev.Dur <= 0 {
		t.Errorf("span duration %v, want > 0", ev.Dur)
	}
	args := map[string]int64{}
	for _, a := range ev.Args {
		args[a.Name] = a.Value
	}
	if args["groups"] != 3 || args["lanes"] != 8 {
		t.Errorf("span args %v, want groups=3 lanes=8", ev.Args)
	}
}

// TestLaunchFusedRecordsNestedPhases asserts a fused launch emits a
// parent span plus one child per phase, all on the same track (so trace
// viewers nest them), with the children tiling the parent exactly: the
// phase spans are the profiler's attributed shares, not re-measured.
func TestLaunchFusedRecordsNestedPhases(t *testing.T) {
	d := New(Config{Workers: 2})
	defer d.Close()
	tr := telemetry.New(telemetry.Config{})
	tr.SetEnabled(true)
	d.SetTracer(tr)

	phases := []string{"alpha", "beta", "gamma"}
	d.LaunchFused(phases, Grid{Groups: 4, GroupSize: 8}, func(g *Group) {
		for i := range phases {
			g.Phase(i)
			g.StepOne(func() { time.Sleep(100 * time.Microsecond) })
		}
	})

	evs := tr.Drain()
	if len(evs) != 1+len(phases) {
		t.Fatalf("got %d events, want %d", len(evs), 1+len(phases))
	}
	var parent *telemetry.Event
	children := map[string]telemetry.Event{}
	for i := range evs {
		if evs[i].Name == "fused" {
			parent = &evs[i]
		} else {
			children[evs[i].Name] = evs[i]
		}
	}
	if parent == nil {
		t.Fatal("no fused parent span")
	}
	var sum time.Duration
	for _, name := range phases {
		c, ok := children[name]
		if !ok {
			t.Fatalf("missing phase span %q", name)
		}
		if c.Cat != "phase" {
			t.Errorf("phase %q cat %q", name, c.Cat)
		}
		if c.TID != parent.TID {
			t.Errorf("phase %q on track %d, parent on %d: children must share the parent's track", name, c.TID, parent.TID)
		}
		if c.TS < parent.TS || c.TS+c.Dur > parent.TS+parent.Dur {
			t.Errorf("phase %q [%v,%v] outside parent [%v,%v]", name, c.TS, c.TS+c.Dur, parent.TS, parent.TS+parent.Dur)
		}
		sum += c.Dur
	}
	if sum != parent.Dur {
		t.Errorf("phase durations sum to %v, parent %v: children must tile the parent", sum, parent.Dur)
	}
}
