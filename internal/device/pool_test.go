package device

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestConcurrentLaunchesIsolateCounters drives many launches from
// concurrent goroutines (the serving layer's access pattern) and checks
// that every launch's returned stats reflect exactly its own grid's work
// — the persistent pool must never interleave accounting across
// in-flight launches. Run under -race by scripts/verify.sh.
func TestConcurrentLaunchesIsolateCounters(t *testing.T) {
	d := New(Config{Workers: 4, LocalMemBytes: -1})
	defer d.Close()
	const launchers = 8
	const rounds = 25
	var wg sync.WaitGroup
	for l := 0; l < launchers; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			// Each launcher uses a distinct per-lane op count so cross-talk
			// between launches would change some launch's total.
			opsPerLane := l + 1
			groups := 3 + l
			size := 4 + l
			for r := 0; r < rounds; r++ {
				stats := d.Launch("iso-"+strconv.Itoa(l), Grid{Groups: groups, GroupSize: size}, func(g *Group) {
					g.Step(func(lane int) {
						g.Ops(opsPerLane)
						g.GlobalRead(8)
					})
				})
				wantOps := int64(groups * size * opsPerLane)
				if stats.Count.Ops != wantOps {
					t.Errorf("launcher %d round %d: ops = %d, want %d", l, r, stats.Count.Ops, wantOps)
					return
				}
				if stats.Count.GlobalReadBytes != int64(groups*size*8) {
					t.Errorf("launcher %d: global reads = %d", l, stats.Count.GlobalReadBytes)
					return
				}
				if stats.Count.Steps != int64(groups) {
					t.Errorf("launcher %d: steps = %d, want %d", l, stats.Count.Steps, groups)
					return
				}
			}
		}(l)
	}
	wg.Wait()
}

// TestLaunchFewerGroupsThanWorkers exercises repeated launches whose
// grids are smaller than the pool — each launch must still run every
// group exactly once and aggregate exact counters.
func TestLaunchFewerGroupsThanWorkers(t *testing.T) {
	d := New(Config{Workers: 16})
	defer d.Close()
	for round := 0; round < 50; round++ {
		for _, groups := range []int{1, 2, 3} {
			var mu sync.Mutex
			hits := make([]int, groups)
			stats := d.Launch("small", Grid{Groups: groups, GroupSize: 2}, func(g *Group) {
				mu.Lock()
				hits[g.ID()]++
				mu.Unlock()
				g.Step(func(lane int) { g.Ops(1) })
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("groups=%d: group %d executed %d times", groups, i, h)
				}
			}
			if stats.Count.Ops != int64(groups*2) {
				t.Fatalf("groups=%d: ops = %d, want %d", groups, stats.Count.Ops, groups*2)
			}
		}
	}
}

// TestLaunchAfterClose verifies the degraded mode: with the pool stopped,
// the launching goroutine drains the whole grid itself.
func TestLaunchAfterClose(t *testing.T) {
	d := New(Config{Workers: 4})
	d.Close()
	d.Close() // idempotent
	var mu sync.Mutex
	seen := 0
	stats := d.Launch("after-close", Grid{Groups: 9, GroupSize: 3}, func(g *Group) {
		mu.Lock()
		seen++
		mu.Unlock()
		g.Step(func(lane int) { g.Ops(1) })
	})
	if seen != 9 {
		t.Fatalf("executed %d groups, want 9", seen)
	}
	if stats.Count.Ops != 27 {
		t.Fatalf("ops = %d, want 27", stats.Count.Ops)
	}
}

// TestConcurrentClose races many Close calls (the double-stop case the
// finalizer can add to an explicit shutdown): exactly one must win, none
// may panic on the already-closed quit channel, and the device must keep
// serving launches caller-side afterwards.
func TestConcurrentClose(t *testing.T) {
	d := New(Config{Workers: 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Close()
		}()
	}
	wg.Wait()
	stats := d.Launch("after-racing-close", Grid{Groups: 2, GroupSize: 2}, func(g *Group) {
		g.Step(func(lane int) { g.Ops(1) })
	})
	if stats.Count.Ops != 4 {
		t.Fatalf("ops = %d, want 4", stats.Count.Ops)
	}
}

// TestPanicDoesNotKillPool asserts that a kernel panic propagates to the
// launcher while the persistent workers survive to run later launches.
func TestPanicDoesNotKillPool(t *testing.T) {
	d := New(Config{Workers: 4, LocalMemBytes: 64})
	defer d.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected overflow panic to propagate")
			}
		}()
		d.Launch("boom", Grid{Groups: 8, GroupSize: 4}, func(g *Group) {
			g.AllocLocalF64(64) // 512 bytes > 64-byte capacity
		})
	}()
	// The pool must still be fully functional.
	stats := d.Launch("alive", Grid{Groups: 8, GroupSize: 4}, func(g *Group) {
		g.Step(func(lane int) { g.Ops(1) })
	})
	if stats.Count.Ops != 32 {
		t.Fatalf("post-panic launch ops = %d, want 32", stats.Count.Ops)
	}
}

// TestPooledLocalMemoryIsZeroed writes garbage into local allocations and
// verifies that recycled arena memory is handed out zeroed, like a fresh
// make — kernels may rely on zero initialization.
func TestPooledLocalMemoryIsZeroed(t *testing.T) {
	d := New(Config{Workers: 1, LocalMemBytes: -1})
	defer d.Close()
	for round := 0; round < 5; round++ {
		d.Launch("dirty", Grid{Groups: 4, GroupSize: 8}, func(g *Group) {
			f := g.AllocLocalF64(32)
			n := g.AllocLocalInt(32)
			u := g.AllocLocalU32(32)
			for i := range f {
				if f[i] != 0 || n[i] != 0 || u[i] != 0 {
					t.Errorf("round %d: recycled local memory not zeroed at %d: %v %v %v",
						round, i, f[i], n[i], u[i])
					return
				}
				f[i] = 3.25
				n[i] = -7
				u[i] = 0xDEADBEEF
			}
		})
	}
}

// TestLaunchFusedPhaseAttribution checks that a fused launch records one
// profiler entry per phase with that phase's exact work counters, and
// that the phase elapsed times sum to the launch wall time.
func TestLaunchFusedPhaseAttribution(t *testing.T) {
	d := New(Config{Workers: 3, LocalMemBytes: -1})
	defer d.Close()
	const groups, size = 6, 8
	stats := d.LaunchFused([]string{"alpha", "beta"}, Grid{Groups: groups, GroupSize: size}, func(g *Group) {
		g.Phase(0)
		g.Step(func(lane int) {
			g.Ops(2)
			g.GlobalRead(8)
		})
		g.Phase(1)
		g.Step(func(lane int) { g.Ops(5) })
		g.Step(func(lane int) { g.LocalWrite(4) })
	})
	if len(stats) != 2 {
		t.Fatalf("got %d phase stats, want 2", len(stats))
	}
	if stats[0].Name != "alpha" || stats[1].Name != "beta" {
		t.Fatalf("phase names = %q, %q", stats[0].Name, stats[1].Name)
	}
	if got, want := stats[0].Count.Ops, int64(groups*size*2); got != want {
		t.Errorf("alpha ops = %d, want %d", got, want)
	}
	if got, want := stats[1].Count.Ops, int64(groups*size*5); got != want {
		t.Errorf("beta ops = %d, want %d", got, want)
	}
	if got, want := stats[0].Count.Steps, int64(groups); got != want {
		t.Errorf("alpha steps = %d, want %d", got, want)
	}
	if got, want := stats[1].Count.Steps, int64(groups*2); got != want {
		t.Errorf("beta steps = %d, want %d", got, want)
	}
	if stats[0].Count.GlobalReadBytes != int64(groups*size*8) {
		t.Errorf("alpha global reads = %d", stats[0].Count.GlobalReadBytes)
	}
	if stats[1].Count.GlobalReadBytes != 0 {
		t.Errorf("beta global reads = %d, want 0", stats[1].Count.GlobalReadBytes)
	}

	// Both phases appear in the profiler, and their summed elapsed equals
	// the total the profiler accumulated for this device.
	snap := d.Profiler().Snapshot()
	names := map[string]KernelStats{}
	for _, e := range snap {
		names[e.Name] = e
	}
	for _, want := range []string{"alpha", "beta"} {
		e, ok := names[want]
		if !ok {
			t.Fatalf("profiler missing fused phase %q", want)
		}
		if e.Launches != 1 {
			t.Errorf("%s launches = %d, want 1", want, e.Launches)
		}
	}
	var sum time.Duration
	for _, s := range stats {
		if s.Elapsed < 0 {
			t.Errorf("%s elapsed negative: %v", s.Name, s.Elapsed)
		}
		sum += s.Elapsed
	}
	if total := d.Profiler().Total(); total != sum {
		t.Errorf("phase elapsed sum %v != profiler total %v", sum, total)
	}
}

// TestFusedPanicPropagates ensures fused launches keep the panic
// contract.
func TestFusedPanicPropagates(t *testing.T) {
	d := New(Config{Workers: 2, LocalMemBytes: 32})
	defer d.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected fused overflow panic")
		}
	}()
	d.LaunchFused([]string{"a", "b"}, Grid{Groups: 2, GroupSize: 2}, func(g *Group) {
		g.Phase(1)
		g.AllocLocalF64(16)
	})
}
