package device

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"esthera/internal/telemetry"
)

// Profiler accumulates per-kernel launch statistics. It backs the Fig. 4
// kernel-breakdown experiments and supplies the work counts consumed by
// the analytic platform model (Fig. 3).
type Profiler struct {
	mu      sync.Mutex
	entries map[string]*KernelStats
	order   []string // first-launch order, for stable reporting
}

// KernelStats is the accumulated record for one kernel name. It is plain
// copyable data and marshals to JSON (Elapsed as integer nanoseconds),
// so snapshots can be published by introspection endpoints.
type KernelStats struct {
	Name     string        `json:"name"`
	Launches int64         `json:"launches"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Count    Counters      `json:"counters"`
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{entries: make(map[string]*KernelStats)}
}

func (p *Profiler) record(s LaunchStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[s.Name]
	if e == nil {
		e = &KernelStats{Name: s.Name}
		p.entries[s.Name] = e
		p.order = append(p.order, s.Name)
	}
	e.Launches++
	e.Elapsed += s.Elapsed
	e.Count.Add(&s.Count)
}

// Reset clears all accumulated statistics.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[string]*KernelStats)
	p.order = nil
}

// Snapshot returns a copy of the per-kernel statistics in first-launch
// order.
func (p *Profiler) Snapshot() []KernelStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]KernelStats, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.entries[name])
	}
	return out
}

// Stats is the copyable, JSON-marshalable export of a profiler: every
// kernel's accumulated record plus the totals, taken atomically. This is
// the struct the serve introspection endpoint publishes.
type Stats struct {
	// TotalElapsed is the summed kernel time (integer nanoseconds in
	// JSON).
	TotalElapsed time.Duration `json:"total_elapsed_ns"`
	// TotalLaunches is the summed launch count.
	TotalLaunches int64 `json:"total_launches"`
	// Kernels lists per-kernel records in first-launch order.
	Kernels []KernelStats `json:"kernels"`
}

// Stats returns the profiler's full accumulated statistics as one
// consistent, detached copy.
func (p *Profiler) Stats() Stats {
	snap := p.Snapshot()
	st := Stats{Kernels: snap}
	for _, e := range snap {
		st.TotalElapsed += e.Elapsed
		st.TotalLaunches += e.Launches
	}
	return st
}

// Collect emits the profiler's accumulated state into a telemetry
// registry gather: per-kernel elapsed time and launch counts under the
// esthera_kernel_* names, so device profiling joins the unified
// /metrics exposition.
func (p *Profiler) Collect(e *telemetry.Emitter) {
	st := p.Stats()
	e.Counter("esthera_kernel_launches_total", "Kernel launches by kernel name.",
		float64(st.TotalLaunches))
	e.Counter("esthera_kernel_elapsed_seconds_total", "Accumulated kernel wall time.",
		st.TotalElapsed.Seconds())
	for _, k := range st.Kernels {
		e.Counter("esthera_kernel_seconds_total", "Accumulated wall time per kernel.",
			k.Elapsed.Seconds(), "kernel", k.Name)
		e.Counter("esthera_kernel_runs_total", "Launches per kernel.",
			float64(k.Launches), "kernel", k.Name)
	}
}

// Total returns the summed elapsed time over all kernels.
func (p *Profiler) Total() time.Duration {
	var t time.Duration
	for _, e := range p.Snapshot() {
		t += e.Elapsed
	}
	return t
}

// Breakdown returns each kernel's fraction of the total elapsed time,
// sorted descending. This is the quantity plotted in Fig. 4.
func (p *Profiler) Breakdown() []Fraction {
	snap := p.Snapshot()
	var total time.Duration
	for _, e := range snap {
		total += e.Elapsed
	}
	out := make([]Fraction, 0, len(snap))
	for _, e := range snap {
		f := 0.0
		if total > 0 {
			f = float64(e.Elapsed) / float64(total)
		}
		out = append(out, Fraction{Name: e.Name, Fraction: f, Elapsed: e.Elapsed})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Fraction > out[j].Fraction })
	return out
}

// Fraction is one kernel's share of a breakdown.
type Fraction struct {
	Name     string
	Fraction float64
	Elapsed  time.Duration
}

// String renders the breakdown as a compact single-line summary.
func (p *Profiler) String() string {
	var b strings.Builder
	for i, f := range p.Breakdown() {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s=%.1f%%", f.Name, 100*f.Fraction)
	}
	return b.String()
}
