// Package device provides the many-core execution substrate that stands in
// for the paper's CUDA/OpenCL devices (substitution recorded in DESIGN.md §2).
//
// The paper maps one particle to one GPU thread and one sub-filter to one
// work-group (§VI); work-groups run concurrently on the device's streaming
// multiprocessors / compute units, communicate through global memory only
// across kernel launches, and use fast local memory plus barriers within a
// group. This package reproduces that model in Go:
//
//   - A Device has a number of compute units, realized as persistent worker
//     goroutines started once in New (the GPU's persistent-thread idiom);
//     work-groups of a launch are scheduled across them.
//   - A kernel body is written in barrier-phased data-parallel form: a
//     sequence of Step(fn) calls, where each Step runs fn once per lane
//     and an implicit group-wide barrier separates consecutive steps —
//     exactly the discipline CUDA kernels with __syncthreads follow.
//   - Per-group local memory is allocated against a configurable capacity
//     (48 KiB by default, as on the paper's NVIDIA SMs), so kernels are
//     forced to size their working sets like real GPU kernels.
//   - Every launch is timed and its lane-operations and memory traffic are
//     counted, feeding both the Fig. 4 kernel-breakdown experiments and
//     the analytic platform cost model (internal/platform) used for Fig. 3.
//
// Kernel launches are globally synchronizing, as in CUDA's default stream:
// Launch returns only when every work-group has finished, so a kernel may
// read global data written by the previous kernel without further
// synchronization, but never data written by another group in the same
// launch. LaunchFused additionally lets a kernel body run several
// logically distinct phases back to back per work-group — the kernel
// fusion the GPU particle-filter literature applies to group-local phases
// — while still attributing time and work to per-phase profiler entries.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"esthera/internal/telemetry"
)

// DefaultLocalMemBytes is the per-group local memory capacity used when a
// Device is created with LocalMemBytes == 0. It matches the 48 KiB
// scratch-pad of the paper's NVIDIA SMs (Table III).
const DefaultLocalMemBytes = 48 * 1024

// Device models a many-core accelerator: a set of compute units executing
// work-groups, with per-group local memory and a launch profiler.
//
// The zero value is not ready to use; call New.
type Device struct {
	workers       int
	localMemBytes int
	prof          *Profiler

	// The persistent compute-unit pool: worker goroutines started once in
	// New, fed launches through tasks. Launch never blocks on the pool —
	// the launching goroutine always participates in draining its own
	// grid, so a saturated (or closed) pool degrades to caller-side
	// execution instead of deadlocking, and nested/concurrent launches
	// from independent goroutines make progress unconditionally.
	tasks chan *launchTask
	quit  chan struct{}
	once  sync.Once

	// groups recycles Group objects (and their local-memory arenas)
	// across launches, eliminating the per-launch per-group allocations
	// the original spawn-per-launch scheme paid.
	groups sync.Pool

	// free recycles launchTask objects (with their completion channel and
	// phase-accounting slices), so steady-state launches allocate nothing.
	// A task is only reused once no stale submission-queue reference to it
	// remains (tracked by launchTask.refs).
	free chan *launchTask

	// tracer, when set and enabled, receives one span per launch plus
	// per-phase child spans for fused launches. Launch timing is
	// measured regardless; the tracer only re-records the already
	// measured intervals, so enabling it cannot change kernel results.
	tracer atomic.Pointer[telemetry.Tracer]
}

// Config configures a Device.
type Config struct {
	// Workers is the number of compute units (concurrently executing
	// work-groups). 0 means GOMAXPROCS.
	Workers int
	// LocalMemBytes is the per-group local-memory capacity. 0 means
	// DefaultLocalMemBytes; negative means unlimited.
	LocalMemBytes int
}

// New creates a Device and starts its persistent compute units.
func New(cfg Config) *Device {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	lm := cfg.LocalMemBytes
	if lm == 0 {
		lm = DefaultLocalMemBytes
	}
	d := &Device{
		workers:       w,
		localMemBytes: lm,
		prof:          NewProfiler(),
		tasks:         make(chan *launchTask, 2*w),
		quit:          make(chan struct{}),
		free:          make(chan *launchTask, 4*w),
	}
	d.groups.New = func() interface{} { return &Group{} }
	// The compute units reference only the two channels, never the Device
	// itself, so an abandoned Device becomes unreachable, its finalizer
	// closes quit, and the workers exit instead of leaking.
	for i := 0; i < w; i++ {
		go computeUnit(d.tasks, d.quit)
	}
	runtime.SetFinalizer(d, (*Device).Close)
	return d
}

// Close stops the persistent compute units. It is idempotent — any mix of
// explicit double-Close and a later finalizer run resolves to exactly one
// shutdown — and optional (an unreachable Device is closed by a
// finalizer; explicit Close clears it). Launch remains valid after Close:
// the launching goroutine executes all work-groups itself.
func (d *Device) Close() {
	d.once.Do(func() {
		runtime.SetFinalizer(d, nil)
		close(d.quit)
	})
}

// computeUnit is one persistent worker: it drains whole launches, one at
// a time, until the device is closed.
func computeUnit(tasks <-chan *launchTask, quit <-chan struct{}) {
	for {
		select {
		case t := <-tasks:
			t.drain()
			t.refs.Add(-1)
		case <-quit:
			return
		}
	}
}

// Workers returns the number of compute units.
func (d *Device) Workers() int { return d.workers }

// SetTracer attaches a span tracer; launches record one span each (and
// fused launches one child span per phase). Pass nil to detach. Safe
// to call concurrently with launches.
func (d *Device) SetTracer(tr *telemetry.Tracer) { d.tracer.Store(tr) }

// Tracer returns the attached span tracer, or nil.
func (d *Device) Tracer() *telemetry.Tracer { return d.tracer.Load() }

// Profiler returns the device's launch profiler.
func (d *Device) Profiler() *Profiler { return d.prof }

// Grid describes the shape of a kernel launch: Groups work-groups of
// GroupSize lanes each.
type Grid struct {
	Groups    int
	GroupSize int
}

// KernelFunc is a kernel body, executed once per work-group.
type KernelFunc func(g *Group)

// LaunchStats reports the measured cost of one kernel launch (or, for
// LaunchFused, one phase of a fused launch).
type LaunchStats struct {
	Name    string
	Grid    Grid
	Elapsed time.Duration
	Count   Counters
}

// launchTask is one in-flight kernel launch. Work-groups are claimed via
// the atomic next counter, so any number of compute units (plus the
// launching goroutine) can cooperatively drain one grid; every counter
// below is task-local, so concurrent launches never interleave their
// accounting.
type launchTask struct {
	dev    *Device
	grid   Grid
	kern   KernelFunc
	phases int // 0 for plain launches

	next    atomic.Int64 // next unclaimed group id
	pending atomic.Int64 // groups whose results are not yet folded in
	refs    atomic.Int64 // outstanding submission-queue references

	mu          sync.Mutex
	total       Counters
	phaseTotals []Counters
	phaseTimes  []time.Duration
	panics      []interface{}

	// statsBuf backs LaunchFused's returned per-phase stats; it is owned
	// by the (recycled) task, so the returned slice is only valid until a
	// later launch reuses this task.
	statsBuf []LaunchStats

	done chan struct{} // receives one token when pending reaches zero
}

// drainScratch holds one drain participant's phase accumulators. The
// slices are recycled through a pool so steady-state fused launches do
// not allocate per participant per launch.
type drainScratch struct {
	phases []Counters
	times  []time.Duration
}

var drainScratchPool = sync.Pool{New: func() interface{} { return &drainScratch{} }}

// phaseSlices returns zeroed accumulators of length n.
func (sc *drainScratch) phaseSlices(n int) ([]Counters, []time.Duration) {
	if cap(sc.phases) < n {
		sc.phases = make([]Counters, n)
		sc.times = make([]time.Duration, n)
	}
	sc.phases = sc.phases[:n]
	sc.times = sc.times[:n]
	for i := range sc.phases {
		sc.phases[i] = Counters{}
		sc.times[i] = 0
	}
	return sc.phases, sc.times
}

// drain claims and executes work-groups until the grid is exhausted,
// folding this participant's accounting into the task once at the end.
func (t *launchTask) drain() {
	var (
		local       Counters
		localPhases []Counters
		localTimes  []time.Duration
		ran         int64
	)
	if t.phases > 0 {
		sc := drainScratchPool.Get().(*drainScratch)
		defer drainScratchPool.Put(sc)
		localPhases, localTimes = sc.phaseSlices(t.phases)
	}
	for {
		gid := int(t.next.Add(1)) - 1
		if gid >= t.grid.Groups {
			break
		}
		t.runGroup(gid, &local, localPhases, localTimes)
		ran++
	}
	if ran == 0 {
		return
	}
	t.mu.Lock()
	t.total.Add(&local)
	for i := range localPhases {
		t.phaseTotals[i].Add(&localPhases[i])
		t.phaseTimes[i] += localTimes[i]
	}
	t.mu.Unlock()
	// Completion is signaled only after this participant's counters are
	// visible, so the launcher reads a consistent total after <-done.
	// Exactly one participant observes zero, so the buffered send never
	// blocks, and the channel is drained by finish — ready for reuse.
	if t.pending.Add(-ran) == 0 {
		t.done <- struct{}{}
	}
}

// runGroup executes the kernel for one work-group on a pooled Group,
// recovering panics (e.g. local-memory overflow) so a kernel failure is
// propagated to the launching goroutine without killing the persistent
// worker that happened to execute it.
func (t *launchTask) runGroup(gid int, local *Counters, lp []Counters, lt []time.Duration) {
	g := t.dev.groups.Get().(*Group)
	g.reset(gid, t.grid.GroupSize, t.dev.localMemBytes, t.phases)
	defer func() {
		if r := recover(); r != nil {
			t.mu.Lock()
			t.panics = append(t.panics, r)
			t.mu.Unlock()
		}
		g.finish(local, lp, lt)
		t.dev.groups.Put(g)
	}()
	t.kern(g)
}

// getTask pops a recycled launchTask, or allocates one. A recycled task
// whose submission-queue references have not all been consumed yet is
// dropped to the garbage collector rather than reused under a live
// reference (rare: it requires a queued helper that never woke up before
// the next launch started).
func (d *Device) getTask() *launchTask {
	select {
	case t := <-d.free:
		if t.refs.Load() == 0 {
			return t
		}
	default:
	}
	return &launchTask{dev: d, done: make(chan struct{}, 1)}
}

// putTask returns a finished, fully-read task to the freelist.
func (d *Device) putTask(t *launchTask) {
	t.kern = nil
	select {
	case d.free <- t:
	default:
	}
}

// start validates the grid, builds the task, and wakes up to
// min(workers, groups) - 1 pool workers; the caller is always the final
// participant and must call t.drain() followed by <-t.done.
func (d *Device) start(grid Grid, phases int, k KernelFunc) *launchTask {
	if grid.Groups <= 0 || grid.GroupSize <= 0 {
		panic(fmt.Sprintf("device: invalid grid %+v", grid))
	}
	t := d.getTask()
	t.grid, t.kern, t.phases = grid, k, phases
	t.next.Store(0)
	t.pending.Store(int64(grid.Groups))
	t.total = Counters{}
	t.panics = t.panics[:0]
	if phases > 0 {
		if cap(t.phaseTotals) < phases {
			t.phaseTotals = make([]Counters, phases)
			t.phaseTimes = make([]time.Duration, phases)
			t.statsBuf = make([]LaunchStats, phases)
		}
		t.phaseTotals = t.phaseTotals[:phases]
		t.phaseTimes = t.phaseTimes[:phases]
		t.statsBuf = t.statsBuf[:phases]
		for i := range t.phaseTotals {
			t.phaseTotals[i] = Counters{}
			t.phaseTimes[i] = 0
		}
	}
	helpers := d.workers - 1
	if helpers > grid.Groups-1 {
		helpers = grid.Groups - 1
	}
	for i := 0; i < helpers; i++ {
		t.refs.Add(1)
		select {
		case d.tasks <- t:
		default:
			// Pool submission queue is full (deep concurrent launches):
			// the remaining groups are drained by the caller and by
			// whichever workers free up to take the queued references.
			t.refs.Add(-1)
			return t
		}
	}
	return t
}

// finish waits for completion and propagates the first kernel panic. A
// panicking task is never recycled, so the panic value stays intact.
func (t *launchTask) finish() {
	t.drain()
	<-t.done
	if len(t.panics) > 0 {
		panic(t.panics[0])
	}
}

// Launch runs the kernel over the grid, blocking until all work-groups
// complete, and records the launch under name in the profiler.
//
// Work-groups may be executed in any order and concurrently; a kernel must
// only write global data that no other group of the same launch touches.
// Launch is safe to call from concurrent goroutines: each launch's
// accounting is isolated, and the launching goroutine always participates
// in executing its own grid, so progress never depends on pool capacity.
func (d *Device) Launch(name string, grid Grid, k KernelFunc) LaunchStats {
	start := time.Now()
	t := d.start(grid, 0, k)
	t.finish()
	stats := LaunchStats{Name: name, Grid: grid, Elapsed: time.Since(start), Count: t.total}
	d.putTask(t)
	d.prof.record(stats)
	if tr := d.tracer.Load(); tr.Enabled() {
		ev := telemetry.Event{Name: name, Cat: "launch", TS: tr.Stamp(start), Dur: stats.Elapsed}
		ev.SetArg("groups", int64(grid.Groups))
		ev.SetArg("lanes", int64(grid.GroupSize))
		tr.Record(ev)
	}
	return stats
}

// LaunchFused runs one kernel body that executes several logically
// distinct phases back to back per work-group — the kernel-fusion
// optimization for group-local pipelines, where only the trailing global
// barrier is semantically required and the intermediate launch
// boundaries were pure overhead. The body selects the active phase with
// Group.Phase(i); work accounted before the first Phase call lands in
// phase 0.
//
// The launch is recorded in the profiler as one entry per phase name:
// each phase receives its exact work counters and a share of the
// launch's wall-clock time proportional to the CPU time its sections
// consumed across all groups, so kernel-breakdown experiments (Fig. 4)
// see the same per-phase attribution as with separate launches. The
// returned slice holds the per-phase stats in phase order; it is backed
// by recycled launch state and only valid until a later launch on this
// device — copy it to retain it.
func (d *Device) LaunchFused(phases []string, grid Grid, k KernelFunc) []LaunchStats {
	if len(phases) == 0 {
		panic("device: LaunchFused requires at least one phase name")
	}
	start := time.Now()
	t := d.start(grid, len(phases), k)
	t.finish()
	wall := time.Since(start)

	var busy time.Duration
	for _, pt := range t.phaseTimes {
		busy += pt
	}
	out := t.statsBuf
	var attributed time.Duration
	for i, name := range phases {
		share := wall / time.Duration(len(phases))
		if busy > 0 {
			share = time.Duration(float64(wall) * (float64(t.phaseTimes[i]) / float64(busy)))
		}
		if i == len(phases)-1 {
			share = wall - attributed // exact: shares sum to the wall time
		}
		attributed += share
		out[i] = LaunchStats{Name: name, Grid: grid, Elapsed: share, Count: t.phaseTotals[i]}
		d.prof.record(out[i])
	}
	if tr := d.tracer.Load(); tr.Enabled() {
		// One parent span for the fused launch plus one child per phase,
		// laid end to end using the profiler's attributed shares; batched
		// so they land on one track and nest by containment in viewers.
		evs := make([]telemetry.Event, 0, len(phases)+1)
		parent := telemetry.Event{Name: "fused", Cat: "launch", TS: tr.Stamp(start), Dur: wall}
		parent.SetArg("groups", int64(grid.Groups))
		parent.SetArg("phases", int64(len(phases)))
		evs = append(evs, parent)
		off := tr.Stamp(start)
		for i, name := range phases {
			evs = append(evs, telemetry.Event{Name: name, Cat: "phase", TS: off, Dur: out[i].Elapsed})
			off += out[i].Elapsed
		}
		tr.RecordBatch(evs)
	}
	d.putTask(t)
	return out
}
