// Package device provides the many-core execution substrate that stands in
// for the paper's CUDA/OpenCL devices (substitution recorded in DESIGN.md §2).
//
// The paper maps one particle to one GPU thread and one sub-filter to one
// work-group (§VI); work-groups run concurrently on the device's streaming
// multiprocessors / compute units, communicate through global memory only
// across kernel launches, and use fast local memory plus barriers within a
// group. This package reproduces that model in Go:
//
//   - A Device has a number of compute units, realized as worker
//     goroutines; work-groups of a launch are scheduled across them.
//   - A kernel body is written in barrier-phased data-parallel form: a
//     sequence of Step(fn) calls, where each Step runs fn once per lane
//     and an implicit group-wide barrier separates consecutive steps —
//     exactly the discipline CUDA kernels with __syncthreads follow.
//   - Per-group local memory is allocated against a configurable capacity
//     (48 KiB by default, as on the paper's NVIDIA SMs), so kernels are
//     forced to size their working sets like real GPU kernels.
//   - Every launch is timed and its lane-operations and memory traffic are
//     counted, feeding both the Fig. 4 kernel-breakdown experiments and
//     the analytic platform cost model (internal/platform) used for Fig. 3.
//
// Kernel launches are globally synchronizing, as in CUDA's default stream:
// Launch returns only when every work-group has finished, so a kernel may
// read global data written by the previous kernel without further
// synchronization, but never data written by another group in the same
// launch.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLocalMemBytes is the per-group local memory capacity used when a
// Device is created with LocalMemBytes == 0. It matches the 48 KiB
// scratch-pad of the paper's NVIDIA SMs (Table III).
const DefaultLocalMemBytes = 48 * 1024

// Device models a many-core accelerator: a set of compute units executing
// work-groups, with per-group local memory and a launch profiler.
//
// The zero value is not ready to use; call New.
type Device struct {
	workers       int
	localMemBytes int
	prof          *Profiler
}

// Config configures a Device.
type Config struct {
	// Workers is the number of compute units (concurrently executing
	// work-groups). 0 means GOMAXPROCS.
	Workers int
	// LocalMemBytes is the per-group local-memory capacity. 0 means
	// DefaultLocalMemBytes; negative means unlimited.
	LocalMemBytes int
}

// New creates a Device.
func New(cfg Config) *Device {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	lm := cfg.LocalMemBytes
	if lm == 0 {
		lm = DefaultLocalMemBytes
	}
	return &Device{workers: w, localMemBytes: lm, prof: NewProfiler()}
}

// Workers returns the number of compute units.
func (d *Device) Workers() int { return d.workers }

// Profiler returns the device's launch profiler.
func (d *Device) Profiler() *Profiler { return d.prof }

// Grid describes the shape of a kernel launch: Groups work-groups of
// GroupSize lanes each.
type Grid struct {
	Groups    int
	GroupSize int
}

// KernelFunc is a kernel body, executed once per work-group.
type KernelFunc func(g *Group)

// LaunchStats reports the measured cost of one kernel launch.
type LaunchStats struct {
	Name    string
	Grid    Grid
	Elapsed time.Duration
	Count   Counters
}

// Launch runs the kernel over the grid, blocking until all work-groups
// complete, and records the launch under name in the profiler.
//
// Work-groups may be executed in any order and concurrently; a kernel must
// only write global data that no other group of the same launch touches.
func (d *Device) Launch(name string, grid Grid, k KernelFunc) LaunchStats {
	if grid.Groups <= 0 || grid.GroupSize <= 0 {
		panic(fmt.Sprintf("device: invalid grid %+v", grid))
	}
	var (
		next   int64 = 0
		total  Counters
		mu     sync.Mutex
		wg     sync.WaitGroup
		panics []interface{}
	)
	start := time.Now()
	workers := d.workers
	if workers > grid.Groups {
		workers = grid.Groups
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			var local Counters
			defer func() {
				// Propagate kernel panics (e.g. local-memory overflow)
				// to the launching goroutine instead of crashing the
				// process from a worker.
				r := recover()
				mu.Lock()
				total.Add(&local)
				if r != nil {
					panics = append(panics, r)
				}
				mu.Unlock()
				wg.Done()
			}()
			for {
				gid := int(atomic.AddInt64(&next, 1)) - 1
				if gid >= grid.Groups {
					break
				}
				g := &Group{id: gid, size: grid.GroupSize, localMemCap: d.localMemBytes}
				k(g)
				local.Add(&g.count)
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		panic(panics[0])
	}
	stats := LaunchStats{Name: name, Grid: grid, Elapsed: time.Since(start), Count: total}
	d.prof.record(stats)
	return stats
}
