package device

import (
	"sync/atomic"
	"testing"
)

func TestLaunchRunsEveryGroupOnce(t *testing.T) {
	d := New(Config{Workers: 4})
	const groups, size = 37, 16
	var hits [groups]int64
	d.Launch("mark", Grid{Groups: groups, GroupSize: size}, func(g *Group) {
		atomic.AddInt64(&hits[g.ID()], 1)
		if g.Lanes() != size {
			t.Errorf("group %d lanes = %d, want %d", g.ID(), g.Lanes(), size)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("group %d executed %d times", i, h)
		}
	}
}

func TestStepVisitsEveryLane(t *testing.T) {
	d := New(Config{Workers: 2})
	d.Launch("lanes", Grid{Groups: 3, GroupSize: 8}, func(g *Group) {
		seen := make([]bool, g.Lanes())
		g.Step(func(lane int) {
			if seen[lane] {
				t.Errorf("lane %d visited twice in one step", lane)
			}
			seen[lane] = true
		})
		for l, s := range seen {
			if !s {
				t.Errorf("lane %d not visited", l)
			}
		}
	})
}

func TestCountersAggregate(t *testing.T) {
	d := New(Config{Workers: 3})
	const groups, size = 5, 4
	stats := d.Launch("count", Grid{Groups: groups, GroupSize: size}, func(g *Group) {
		g.Step(func(lane int) {
			g.Ops(2)
			g.GlobalRead(8)
			g.GlobalWrite(4)
		})
		g.Step(func(lane int) {
			g.LocalRead(8)
			g.LocalWrite(8)
		})
	})
	c := stats.Count
	if c.Steps != groups*2 {
		t.Errorf("steps = %d, want %d", c.Steps, groups*2)
	}
	if c.LaneInvocations != groups*size*2 {
		t.Errorf("lane invocations = %d, want %d", c.LaneInvocations, groups*size*2)
	}
	if c.Ops != groups*size*2 {
		t.Errorf("ops = %d, want %d", c.Ops, groups*size*2)
	}
	if c.GlobalReadBytes != groups*size*8 || c.GlobalWriteBytes != groups*size*4 {
		t.Errorf("global traffic = %d/%d", c.GlobalReadBytes, c.GlobalWriteBytes)
	}
	if c.LocalReadBytes != groups*size*8 || c.LocalWriteBytes != groups*size*8 {
		t.Errorf("local traffic = %d/%d", c.LocalReadBytes, c.LocalWriteBytes)
	}
	if c.GlobalBytes() != c.GlobalReadBytes+c.GlobalWriteBytes {
		t.Errorf("GlobalBytes inconsistent")
	}
}

func TestLocalMemoryOverflowPanics(t *testing.T) {
	d := New(Config{Workers: 1, LocalMemBytes: 1024})
	defer func() {
		if recover() == nil {
			t.Fatal("expected local-memory overflow panic")
		}
	}()
	d.Launch("overflow", Grid{Groups: 1, GroupSize: 1}, func(g *Group) {
		g.AllocLocalF64(200) // 1600 bytes > 1024
	})
}

func TestLocalMemoryWithinCapacity(t *testing.T) {
	d := New(Config{Workers: 1, LocalMemBytes: 4096})
	stats := d.Launch("alloc", Grid{Groups: 2, GroupSize: 1}, func(g *Group) {
		_ = g.AllocLocalF64(256) // 2048 bytes
		_ = g.AllocLocalU32(256) // 1024 bytes
		_ = g.AllocLocalInt(64)  // 256 bytes
	})
	if stats.Count.LocalAllocBytes != 2048+1024+256 {
		t.Fatalf("peak local alloc = %d", stats.Count.LocalAllocBytes)
	}
}

func TestUnlimitedLocalMemory(t *testing.T) {
	d := New(Config{Workers: 1, LocalMemBytes: -1})
	d.Launch("big", Grid{Groups: 1, GroupSize: 1}, func(g *Group) {
		_ = g.AllocLocalF64(1 << 20) // 8 MiB: fine when unlimited
	})
}

func TestDefaultLocalMemCapacity(t *testing.T) {
	d := New(Config{Workers: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow at default 48 KiB capacity")
		}
	}()
	d.Launch("default-cap", Grid{Groups: 1, GroupSize: 1}, func(g *Group) {
		_ = g.AllocLocalF64(7000) // 56 KB > 48 KiB
	})
}

func TestInvalidGridPanics(t *testing.T) {
	d := New(Config{Workers: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected invalid-grid panic")
		}
	}()
	d.Launch("bad", Grid{Groups: 0, GroupSize: 4}, func(g *Group) {})
}

func TestProfilerAccumulatesAndResets(t *testing.T) {
	d := New(Config{Workers: 2})
	run := func() {
		d.Launch("a", Grid{Groups: 2, GroupSize: 2}, func(g *Group) {
			g.Step(func(int) { g.Ops(1) })
		})
	}
	run()
	run()
	d.Launch("b", Grid{Groups: 1, GroupSize: 1}, func(g *Group) {
		g.Step(func(int) { g.Ops(5) })
	})
	snap := d.Profiler().Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if snap[0].Name != "a" || snap[0].Launches != 2 || snap[0].Count.Ops != 8 {
		t.Fatalf("kernel a stats wrong: %+v", snap[0])
	}
	if snap[1].Name != "b" || snap[1].Count.Ops != 5 {
		t.Fatalf("kernel b stats wrong: %+v", snap[1])
	}
	bd := d.Profiler().Breakdown()
	sum := 0.0
	for _, f := range bd {
		sum += f.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown fractions sum to %v", sum)
	}
	if s := d.Profiler().String(); s == "" {
		t.Fatal("profiler string empty")
	}
	d.Profiler().Reset()
	if len(d.Profiler().Snapshot()) != 0 {
		t.Fatal("reset did not clear profiler")
	}
}

func TestSerialCtxMatchesGroupSemantics(t *testing.T) {
	// An algorithm over Ctx must produce identical results under Serial
	// and Group execution. Use a tiny prefix-sum as the probe.
	prefix := func(ctx Ctx, data []float64) {
		n := ctx.Lanes()
		for stride := 1; stride < n; stride *= 2 {
			tmp := make([]float64, n)
			st := stride
			ctx.Step(func(l int) {
				if l >= st {
					tmp[l] = data[l] + data[l-st]
				} else {
					tmp[l] = data[l]
				}
			})
			ctx.Step(func(l int) { data[l] = tmp[l] })
		}
	}
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := append([]float64(nil), in...)
	b := append([]float64(nil), in...)
	prefix(Serial{N: len(a)}, a)
	d := New(Config{Workers: 1})
	d.Launch("probe", Grid{Groups: 1, GroupSize: len(b)}, func(g *Group) { prefix(g, b) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("serial/group divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
	want := 0.0
	for i, v := range in {
		want += v
		if a[i] != want {
			t.Fatalf("prefix sum wrong at %d: %v want %v", i, a[i], want)
		}
	}
}

func TestStepOneCostsOneBarrier(t *testing.T) {
	d := New(Config{Workers: 1})
	stats := d.Launch("one", Grid{Groups: 1, GroupSize: 32}, func(g *Group) {
		g.StepOne(func() { g.Ops(1) })
	})
	if stats.Count.Steps != 1 || stats.Count.LaneInvocations != 1 {
		t.Fatalf("StepOne accounting wrong: %+v", stats.Count)
	}
}

func TestWorkersDefault(t *testing.T) {
	d := New(Config{})
	if d.Workers() <= 0 {
		t.Fatal("default workers must be positive")
	}
}

func TestStepSerialRoutesOps(t *testing.T) {
	d := New(Config{Workers: 1})
	stats := d.Launch("serial", Grid{Groups: 2, GroupSize: 8}, func(g *Group) {
		g.Step(func(int) { g.Ops(1) })      // 8 parallel ops per group
		g.StepSerial(func() { g.Ops(100) }) // 100 serial ops per group
		g.Step(func(int) { g.Ops(1) })      // serial flag must be cleared
	})
	if stats.Count.Ops != 2*16 {
		t.Fatalf("parallel ops = %d, want 32", stats.Count.Ops)
	}
	if stats.Count.SerialOps != 200 {
		t.Fatalf("serial ops = %d, want 200", stats.Count.SerialOps)
	}
}
