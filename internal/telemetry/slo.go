package telemetry

import (
	"sync"
	"time"
)

// SLO accounting: each serving endpoint declares a latency objective
// ("99% of steps complete within 50ms") and the tracker keeps rolling
// per-second good/bad counts so the registry can export burn rates —
// the rate error budget is being consumed at, where 1.0 means exactly
// on budget and N means the budget burns N× too fast. Burn rate over
// two windows (1m and 5m) is the standard multi-window alert input.

// SLO is one latency objective.
type SLO struct {
	// Objective is the target good fraction, e.g. 0.99. Values outside
	// (0,1) default to 0.99.
	Objective float64
	// Threshold is the latency bound a request must meet to count as
	// good. 0 defaults to 50ms.
	Threshold time.Duration
}

// sloWindowSeconds bounds the rolling history; 5 minutes covers the
// longest exported burn window.
const sloWindowSeconds = 300

type sloSlot struct {
	sec        int64
	total, bad int64
}

// SLOTracker counts requests against one SLO. All methods are safe for
// concurrent use; a nil tracker ignores observations.
type SLOTracker struct {
	slo SLO

	mu       sync.Mutex
	slots    [sloWindowSeconds]sloSlot
	total    int64
	breached int64
}

// NewSLOTracker builds a tracker, applying defaults for zero fields.
func NewSLOTracker(slo SLO) *SLOTracker {
	if slo.Objective <= 0 || slo.Objective >= 1 {
		slo.Objective = 0.99
	}
	if slo.Threshold <= 0 {
		slo.Threshold = 50 * time.Millisecond
	}
	return &SLOTracker{slo: slo}
}

// Observe records one request latency.
func (t *SLOTracker) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.observeAt(time.Now().Unix(), d)
}

func (t *SLOTracker) observeAt(sec int64, d time.Duration) {
	bad := d > t.slo.Threshold
	t.mu.Lock()
	s := &t.slots[sec%sloWindowSeconds]
	if s.sec != sec {
		*s = sloSlot{sec: sec}
	}
	s.total++
	t.total++
	if bad {
		s.bad++
		t.breached++
	}
	t.mu.Unlock()
}

// SLOSnapshot is one tracker's exported state.
type SLOSnapshot struct {
	Objective float64       `json:"objective"`
	Threshold time.Duration `json:"threshold_ns"`
	Total     int64         `json:"total"`
	Breached  int64         `json:"breached"`
	Burn1m    float64       `json:"burn_rate_1m"`
	Burn5m    float64       `json:"burn_rate_5m"`
}

// Snapshot returns lifetime counters and current burn rates.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{}
	}
	return t.snapshotAt(time.Now().Unix())
}

func (t *SLOTracker) snapshotAt(sec int64) SLOSnapshot {
	snap := SLOSnapshot{Objective: t.slo.Objective, Threshold: t.slo.Threshold}
	var tot1, bad1, tot5, bad5 int64
	t.mu.Lock()
	snap.Total, snap.Breached = t.total, t.breached
	for i := range t.slots {
		s := &t.slots[i]
		if s.sec == 0 || s.sec <= sec-sloWindowSeconds {
			continue
		}
		tot5 += s.total
		bad5 += s.bad
		if s.sec > sec-60 {
			tot1 += s.total
			bad1 += s.bad
		}
	}
	t.mu.Unlock()
	snap.Burn1m = burnRate(tot1, bad1, t.slo.Objective)
	snap.Burn5m = burnRate(tot5, bad5, t.slo.Objective)
	return snap
}

// burnRate is (observed bad fraction) / (allowed bad fraction).
func burnRate(total, bad int64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - objective)
}

// Collect emits the tracker's state through a registry collector,
// labeled by endpoint.
func (t *SLOTracker) Collect(e *Emitter, endpoint string) {
	if t == nil {
		return
	}
	snap := t.Snapshot()
	e.Counter("esthera_slo_requests_total", "requests counted against the endpoint's latency SLO", float64(snap.Total), "endpoint", endpoint)
	e.Counter("esthera_slo_breaches_total", "requests that missed the endpoint's latency threshold", float64(snap.Breached), "endpoint", endpoint)
	e.Gauge("esthera_slo_threshold_seconds", "latency threshold of the endpoint's SLO", snap.Threshold.Seconds(), "endpoint", endpoint)
	e.Gauge("esthera_slo_objective", "target good fraction of the endpoint's SLO", snap.Objective, "endpoint", endpoint)
	e.Gauge("esthera_slo_burn_rate", "error-budget burn rate over the labeled window (1.0 = exactly on budget)", snap.Burn1m, "endpoint", endpoint, "window", "1m")
	e.Gauge("esthera_slo_burn_rate", "error-budget burn rate over the labeled window (1.0 = exactly on budget)", snap.Burn5m, "endpoint", endpoint, "window", "5m")
}
