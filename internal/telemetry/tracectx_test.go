package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	hdr := tc.HeaderValue()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("header = %q", hdr)
	}
	back, ok := ParseTraceParent(hdr)
	if !ok || back != tc {
		t.Fatalf("round trip: %q -> %+v (ok=%v), want %+v", hdr, back, ok, tc)
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-zz-11-01",
		"00-0123456789abcdef-0123456789abcdef-01",                  // short trace id
		"00-0123456789abcdef0123456789abcdef-0123-01",              // short span id
		"00-00000000000000000000000000000000-0123456789abcdef-01",  // zero trace id
		"x-0123456789abcdef0123456789abcdef-0123456789abcdef-01",   // bad version field width
		"00-0123456789abcdeg0123456789abcdef-0123456789abcdef-01",  // non-hex
		"00 0123456789abcdef0123456789abcdef 0123456789abcdef 01",  // wrong separator
		"00-0123456789abcdef0123456789abcdef-0123456789abcdeg-01",  // non-hex span
		"traceparent: 00-0123456789abcdef0123456789abcdef-0123-01", // junk prefix
	}
	for _, s := range bad {
		if tc, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted: %+v", s, tc)
		}
	}
	good := "00-0123456789abcdef0123456789abcdef-00000000000000ff-01"
	tc, ok := ParseTraceParent(good)
	if !ok || tc.Span != 0xff {
		t.Fatalf("ParseTraceParent(%q) = %+v, %v", good, tc, ok)
	}
}

func TestTraceIDJSON(t *testing.T) {
	id := NewTraceID()
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"` + id.String() + `"`; string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil || back != id {
		t.Fatalf("unmarshal = %v, %v", back, err)
	}
	// Zero marshals as "" and events omit it entirely.
	var zero TraceID
	if b, _ := json.Marshal(zero); string(b) != `""` {
		t.Fatalf("zero marshal = %s", b)
	}
	evJSON, err := json.Marshal(Event{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(evJSON), "trace") {
		t.Fatalf("untraced event JSON carries trace field: %s", evJSON)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &back); err == nil {
		t.Fatal("unmarshal accepted short hex")
	}
}

func TestNewSpanIDUniqueNonzero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 || seen[id] {
			t.Fatalf("span id %d: zero or duplicate %#x", i, id)
		}
		seen[id] = true
	}
}

func TestContextCarriesTrace(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
	tc := TraceContext{Trace: NewTraceID(), Span: 7}
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v", got, ok)
	}
}

func TestAmbientStampsRecordedEvents(t *testing.T) {
	tr := New(Config{Shards: 1, ShardCap: 16})
	tr.SetEnabled(true)
	tc := TraceContext{Trace: NewTraceID(), Span: 42}
	tr.SetAmbient(tc)
	tr.Record(Event{Name: "kernel"})
	tr.RecordBatch([]Event{{Name: "phase"}})
	explicit := TraceContext{Trace: NewTraceID(), Span: 9}
	tr.Record(Event{Name: "other", Trace: explicit.Trace, Span: 11, Parent: explicit.Span})
	tr.ClearAmbient()
	tr.Record(Event{Name: "after"})

	byName := map[string]Event{}
	for _, ev := range tr.Drain() {
		byName[ev.Name] = ev
	}
	if ev := byName["kernel"]; ev.Trace != tc.Trace || ev.Parent != tc.Span {
		t.Fatalf("ambient not applied to Record: %+v", ev)
	}
	if ev := byName["phase"]; ev.Trace != tc.Trace || ev.Parent != tc.Span {
		t.Fatalf("ambient not applied to RecordBatch: %+v", ev)
	}
	if ev := byName["other"]; ev.Trace != explicit.Trace || ev.Parent != explicit.Span || ev.Span != 11 {
		t.Fatalf("explicit trace overwritten: %+v", ev)
	}
	if ev := byName["after"]; !ev.Trace.IsZero() {
		t.Fatalf("ambient leaked past ClearAmbient: %+v", ev)
	}
}

func TestSpanWithTraceChromeRoundTrip(t *testing.T) {
	tr := New(Config{Shards: 1, ShardCap: 16})
	tr.SetEnabled(true)
	tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	child := NewSpanID()
	sp := tr.Begin("serve", "request").WithTrace(tc.Trace, child, tc.Span).Arg("step", 3)
	time.Sleep(time.Millisecond)
	sp.End()

	var buf strings.Builder
	if err := WriteChromeTrace(&buf, tr.Drain()); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEvents([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("parsed %d events", len(back))
	}
	ev := back[0]
	if ev.Trace != tc.Trace || ev.Span != child || ev.Parent != tc.Span {
		t.Fatalf("trace identity lost in chrome round trip: %+v", ev)
	}
	if ev.Args[0] != (Arg{Name: "step", Value: 3}) {
		t.Fatalf("args lost: %+v", ev.Args)
	}
}

func TestRawTraceMetaRoundTrip(t *testing.T) {
	tr := New(Config{Shards: 1, ShardCap: 4})
	tr.SetProcess("r1")
	tr.SetEnabled(true)
	tr.Record(Event{Name: "e", TS: 5})
	var buf strings.Builder
	meta := TraceMeta{Process: tr.Process(), EpochUnixNano: tr.EpochUnixNano(), Dropped: tr.Dropped()}
	if err := EncodeTrace(&buf, meta, tr.Drain()); err != nil {
		t.Fatal(err)
	}
	gotMeta, events, err := ParseTrace([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Process != "r1" || gotMeta.EpochUnixNano != tr.EpochUnixNano() {
		t.Fatalf("meta = %+v", gotMeta)
	}
	if len(events) != 1 || events[0].Name != "e" {
		t.Fatalf("events = %+v", events)
	}
}
