package telemetry

import "runtime"

// Version is the build identity, stamped at link time:
//
//	go build -ldflags "-X esthera/internal/telemetry.Version=$(git describe --always --dirty)"
//
// The Makefile's build targets do this; a plain `go build` reports
// "dev".
var Version = "dev"

// BuildString is the human-readable build identity served by /healthz.
func BuildString() string {
	return "esthera " + Version + " " + runtime.Version()
}

// CollectBuildInfo emits the esthera_build_info gauge: constant 1,
// carrying the build identity in its labels (the Prometheus idiom for
// joining version info onto other series).
func CollectBuildInfo(e *Emitter) {
	e.Gauge("esthera_build_info", "build identity: constant 1 labeled by version and Go runtime",
		1, "version", Version, "go_version", runtime.Version())
}
