package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newRequest(t *testing.T, target, accept string) *http.Request {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	return req
}

func TestTraceHandler(t *testing.T) {
	tr := New(Config{Shards: 1, ShardCap: 64})
	h := TraceHandler(tr)

	// Enable via POST.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/trace", strings.NewReader(`{"enabled":true}`)))
	if rec.Code != http.StatusOK || !tr.Enabled() {
		t.Fatalf("enable: code=%d enabled=%v", rec.Code, tr.Enabled())
	}

	tr.Record(Event{Name: "round", Cat: "filter", TS: time.Microsecond, Dur: time.Millisecond})

	// Chrome format by default.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/trace", nil))
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("GET /trace not chrome JSON: %v", err)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want metadata + 1 span", len(chrome.TraceEvents))
	}

	// Drained: second GET is empty; raw format parses.
	tr.Record(Event{Name: "again", TS: 2 * time.Microsecond, Dur: time.Microsecond})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/trace?format=raw", nil))
	events, err := ParseEvents(rec.Body.Bytes())
	if err != nil || len(events) != 1 || events[0].Name != "again" {
		t.Fatalf("raw trace = %+v err=%v", events, err)
	}

	// Disable again.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/trace", strings.NewReader(`{"enabled":false}`)))
	if rec.Code != http.StatusOK || tr.Enabled() {
		t.Fatalf("disable: code=%d enabled=%v", rec.Code, tr.Enabled())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/trace", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE = %d", rec.Code)
	}
}

func TestServePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("esthera_demo_total", "demo").Add(2)
	rec := httptest.NewRecorder()
	reg.ServePrometheus(rec)
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type = %q", ct)
	}
	if err := LintPrometheus(rec.Body); err != nil {
		t.Fatalf("lint: %v", err)
	}
}
