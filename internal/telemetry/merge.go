package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Multi-process trace merging. Each process in a swarm drains its own
// tracer; its raw trace file carries the tracer's epoch (wall clock)
// and process name. The router additionally estimates every replica's
// clock offset from transport pings (see shard.Router). Merging maps
// each process's epoch-relative timestamps onto the reference (router)
// clock:
//
//	unified(ev) = (EpochUnixNano - OffsetNS) + ev.TS
//
// where OffsetNS = remote_clock - reference_clock, so subtracting it
// re-expresses remote wall-clock instants in reference time. The
// earliest unified instant becomes t=0 of the merged timeline.

// ProcessTrace is one process's contribution to a merged timeline.
// Multiple ProcessTraces may share a Meta.Process name (periodic drains
// of the same tracer); they land on the same merged track.
type ProcessTrace struct {
	Meta TraceMeta
	// OffsetNS is the estimated clock offset of this process relative
	// to the reference clock (remote minus reference), as reported by
	// the router's ping-based estimator. 0 for the reference process.
	OffsetNS int64
	Events   []Event
}

// MergeStats summarizes a merged timeline.
type MergeStats struct {
	Processes          int `json:"processes"`
	Events             int `json:"events"`
	Traces             int `json:"traces"`
	CrossProcessTraces int `json:"cross_process_traces"`
}

// CrossTrace describes one trace ID observed in two or more processes —
// the signature of a request that actually crossed the transport.
type CrossTrace struct {
	Trace     TraceID  `json:"trace"`
	Processes []string `json:"processes"`
	Spans     []string `json:"spans"`
}

// MergeTraces aligns per-process traces onto one timeline and writes a
// single Chrome trace with one pid (and process_name metadata) per
// process. It returns summary stats plus every cross-process trace,
// which the chaos drill asserts on.
func MergeTraces(w io.Writer, procs []ProcessTrace) (MergeStats, []CrossTrace, error) {
	if len(procs) == 0 {
		return MergeStats{}, nil, fmt.Errorf("telemetry: merge of zero traces")
	}
	// Track assignment: one pid per distinct process name, in first-seen
	// order. Unnamed inputs get positional names so nothing collapses
	// silently.
	pids := map[string]int{}
	var names []string
	nameOf := func(i int, p ProcessTrace) string {
		if p.Meta.Process != "" {
			return p.Meta.Process
		}
		return fmt.Sprintf("proc-%d", i+1)
	}
	for i, p := range procs {
		name := nameOf(i, p)
		if _, ok := pids[name]; !ok {
			pids[name] = len(names) + 1
			names = append(names, name)
		}
	}

	// Reference instant: the earliest offset-corrected epoch. Files
	// without an epoch (hand-converted Chrome input) keep their own
	// zero, which leaves them overlaid at the timeline origin rather
	// than rejected.
	var base int64
	haveBase := false
	for _, p := range procs {
		if p.Meta.EpochUnixNano == 0 {
			continue
		}
		u := p.Meta.EpochUnixNano - p.OffsetNS
		if !haveBase || u < base {
			base, haveBase = u, true
		}
	}

	out := chromeTrace{}
	for _, name := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pids[name],
			Args: map[string]any{"name": name},
		})
	}

	stats := MergeStats{Processes: len(names)}
	byTrace := map[TraceID]*CrossTrace{}
	seenIn := map[TraceID]map[string]bool{}
	var merged []chromeEvent
	for i, p := range procs {
		name := nameOf(i, p)
		shift := int64(0)
		if p.Meta.EpochUnixNano != 0 && haveBase {
			shift = (p.Meta.EpochUnixNano - p.OffsetNS) - base
		}
		for _, ev := range p.Events {
			ev.TS += time.Duration(shift)
			ce := toChromeEvent(ev, pids[name])
			merged = append(merged, ce)
			stats.Events++
			if ev.Trace.IsZero() {
				continue
			}
			ct := byTrace[ev.Trace]
			if ct == nil {
				ct = &CrossTrace{Trace: ev.Trace}
				byTrace[ev.Trace] = ct
				seenIn[ev.Trace] = map[string]bool{}
			}
			if !seenIn[ev.Trace][name] {
				seenIn[ev.Trace][name] = true
				ct.Processes = append(ct.Processes, name)
			}
			ct.Spans = append(ct.Spans, ev.Name)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].TS != merged[j].TS {
			return merged[i].TS < merged[j].TS
		}
		return merged[i].Name < merged[j].Name
	})
	out.TraceEvents = append(out.TraceEvents, merged...)

	stats.Traces = len(byTrace)
	var cross []CrossTrace
	for _, ct := range byTrace {
		if len(ct.Processes) < 2 {
			continue
		}
		sort.Strings(ct.Processes)
		ct.Spans = dedupSorted(ct.Spans)
		cross = append(cross, *ct)
	}
	sort.Slice(cross, func(i, j int) bool { return cross[i].Trace.String() < cross[j].Trace.String() })
	stats.CrossProcessTraces = len(cross)

	if w != nil {
		if err := json.NewEncoder(w).Encode(out); err != nil {
			return stats, cross, err
		}
	}
	return stats, cross, nil
}

// dedupSorted sorts and uniques a string slice in place.
func dedupSorted(s []string) []string {
	sort.Strings(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
