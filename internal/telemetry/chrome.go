package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export. The format is the Trace Event JSON the
// Chrome tracing UI and Perfetto both load: an object with a
// "traceEvents" array of complete events (ph "X") carrying
// microsecond-resolution ts/dur. We emit one process (pid 1) whose
// threads are the tracer's ring shards, so spans recorded together via
// RecordBatch stack by containment on one track.

// chromeEvent is one Trace Event JSON entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace serializes events as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)+1)}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "esthera"},
	})
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			TS:   float64(ev.TS) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  int(ev.TID),
		}
		for _, a := range ev.Args {
			if a.Name == "" {
				continue
			}
			if ce.Args == nil {
				ce.Args = make(map[string]any, maxArgs)
			}
			ce.Args[a.Name] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// rawTrace is the wire format served by GET /trace?format=raw: events
// with full nanosecond resolution plus the tracer's drop counter.
type rawTrace struct {
	Events  []Event `json:"events"`
	Dropped int64   `json:"dropped,omitempty"`
}

// EncodeEvents serializes events in the raw nanosecond wire format.
func EncodeEvents(w io.Writer, events []Event, dropped int64) error {
	return json.NewEncoder(w).Encode(rawTrace{Events: events, Dropped: dropped})
}

// ParseEvents decodes a trace from any of the three shapes the tooling
// produces: the raw wire format ({"events": [...]}), Chrome trace-event
// JSON ({"traceEvents": [...]}), or a bare JSON array of raw events.
func ParseEvents(data []byte) ([]Event, error) {
	var probe struct {
		Events      []Event           `json:"events"`
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		var bare []Event
		if err2 := json.Unmarshal(data, &bare); err2 == nil {
			return bare, nil
		}
		return nil, fmt.Errorf("telemetry: unrecognized trace format: %w", err)
	}
	if probe.TraceEvents != nil {
		events := make([]Event, 0, len(probe.TraceEvents))
		for _, raw := range probe.TraceEvents {
			var ce chromeEvent
			if err := json.Unmarshal(raw, &ce); err != nil {
				return nil, fmt.Errorf("telemetry: bad trace event: %w", err)
			}
			if ce.Ph != "X" {
				continue // metadata and instant events carry no interval
			}
			ev := Event{
				Name: ce.Name,
				Cat:  ce.Cat,
				TS:   time.Duration(ce.TS * float64(time.Microsecond)),
				Dur:  time.Duration(ce.Dur * float64(time.Microsecond)),
				TID:  int32(ce.TID),
			}
			names := make([]string, 0, len(ce.Args))
			for k := range ce.Args {
				names = append(names, k)
			}
			sort.Strings(names)
			for _, k := range names {
				if v, ok := ce.Args[k].(float64); ok {
					ev.SetArg(k, int64(v))
				}
			}
			events = append(events, ev)
		}
		return events, nil
	}
	return probe.Events, nil
}

// NameSummary aggregates all spans sharing one name.
type NameSummary struct {
	Name  string        `json:"name"`
	Cat   string        `json:"cat"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Mean returns the average span duration.
func (s NameSummary) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Summarize groups events by name, ordered by descending total time.
func Summarize(events []Event) []NameSummary {
	idx := make(map[string]int)
	var out []NameSummary
	for _, ev := range events {
		i, ok := idx[ev.Name]
		if !ok {
			i = len(out)
			idx[ev.Name] = i
			out = append(out, NameSummary{Name: ev.Name, Cat: ev.Cat})
		}
		out[i].Count++
		out[i].Total += ev.Dur
		if ev.Dur > out[i].Max {
			out[i].Max = ev.Dur
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Top returns the n longest spans, descending by duration.
func Top(events []Event, n int) []Event {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dur != sorted[j].Dur {
			return sorted[i].Dur > sorted[j].Dur
		}
		return sorted[i].TS < sorted[j].TS
	})
	if n > 0 && n < len(sorted) {
		sorted = sorted[:n]
	}
	return sorted
}
