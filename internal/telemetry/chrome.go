package telemetry

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export. The format is the Trace Event JSON the
// Chrome tracing UI and Perfetto both load: an object with a
// "traceEvents" array of complete events (ph "X") carrying
// microsecond-resolution ts/dur. We emit one process (pid 1) whose
// threads are the tracer's ring shards, so spans recorded together via
// RecordBatch stack by containment on one track.

// chromeEvent is one Trace Event JSON entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace serializes events as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)+1)}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "esthera"},
	})
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, toChromeEvent(ev, 1))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// toChromeEvent converts one raw event. Trace identity rides as string
// args (hex), so a merged trace can be grepped for one trace ID and the
// Perfetto flow UI can correlate spans.
func toChromeEvent(ev Event, pid int) chromeEvent {
	ce := chromeEvent{
		Name: ev.Name,
		Cat:  ev.Cat,
		Ph:   "X",
		TS:   float64(ev.TS) / float64(time.Microsecond),
		Dur:  float64(ev.Dur) / float64(time.Microsecond),
		PID:  pid,
		TID:  int(ev.TID),
	}
	n := maxArgs
	if !ev.Trace.IsZero() {
		n += 3
	}
	for _, a := range ev.Args {
		if a.Name == "" {
			continue
		}
		if ce.Args == nil {
			ce.Args = make(map[string]any, n)
		}
		ce.Args[a.Name] = a.Value
	}
	if !ev.Trace.IsZero() {
		if ce.Args == nil {
			ce.Args = make(map[string]any, n)
		}
		ce.Args["trace"] = ev.Trace.String()
		if ev.Span != 0 {
			ce.Args["span"] = spanHex(ev.Span)
		}
		if ev.Parent != 0 {
			ce.Args["parent"] = spanHex(ev.Parent)
		}
	}
	return ce
}

// spanHex renders a span ID the way traceparent spells it: 16 hex.
func spanHex(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

func parseSpanHex(s string) uint64 {
	var b [8]byte
	if len(s) != 16 {
		return 0
	}
	if _, err := hex.Decode(b[:], []byte(s)); err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b[:])
}

// TraceMeta is the per-process identity attached to a raw trace file:
// which process drained it and where its epoch sits on the wall clock,
// the two facts esthera-trace merge needs to align N files onto one
// timeline.
type TraceMeta struct {
	Process       string `json:"process,omitempty"`
	EpochUnixNano int64  `json:"epoch_unix_nano,omitempty"`
	Dropped       int64  `json:"dropped,omitempty"`
}

// rawTrace is the wire format served by GET /trace?format=raw: events
// with full nanosecond resolution plus the tracer's identity and drop
// counter.
type rawTrace struct {
	Events        []Event `json:"events"`
	Process       string  `json:"process,omitempty"`
	EpochUnixNano int64   `json:"epoch_unix_nano,omitempty"`
	Dropped       int64   `json:"dropped,omitempty"`
}

// EncodeEvents serializes events in the raw nanosecond wire format.
func EncodeEvents(w io.Writer, events []Event, dropped int64) error {
	return EncodeTrace(w, TraceMeta{Dropped: dropped}, events)
}

// EncodeTrace serializes events plus process metadata in the raw
// nanosecond wire format.
func EncodeTrace(w io.Writer, meta TraceMeta, events []Event) error {
	return json.NewEncoder(w).Encode(rawTrace{
		Events:        events,
		Process:       meta.Process,
		EpochUnixNano: meta.EpochUnixNano,
		Dropped:       meta.Dropped,
	})
}

// ParseEvents decodes a trace from any of the three shapes the tooling
// produces: the raw wire format ({"events": [...]}), Chrome trace-event
// JSON ({"traceEvents": [...]}), or a bare JSON array of raw events.
func ParseEvents(data []byte) ([]Event, error) {
	_, events, err := ParseTrace(data)
	return events, err
}

// ParseTrace decodes a trace like ParseEvents and additionally returns
// the process metadata when the file carries it (raw wire format, or
// the process_name metadata record of a Chrome trace).
func ParseTrace(data []byte) (TraceMeta, []Event, error) {
	var probe struct {
		Events        []Event           `json:"events"`
		Process       string            `json:"process"`
		EpochUnixNano int64             `json:"epoch_unix_nano"`
		Dropped       int64             `json:"dropped"`
		TraceEvents   []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		var bare []Event
		if err2 := json.Unmarshal(data, &bare); err2 == nil {
			return TraceMeta{}, bare, nil
		}
		return TraceMeta{}, nil, fmt.Errorf("telemetry: unrecognized trace format: %w", err)
	}
	meta := TraceMeta{Process: probe.Process, EpochUnixNano: probe.EpochUnixNano, Dropped: probe.Dropped}
	if probe.TraceEvents != nil {
		events := make([]Event, 0, len(probe.TraceEvents))
		for _, raw := range probe.TraceEvents {
			var ce chromeEvent
			if err := json.Unmarshal(raw, &ce); err != nil {
				return meta, nil, fmt.Errorf("telemetry: bad trace event: %w", err)
			}
			if ce.Ph != "X" {
				if ce.Ph == "M" && ce.Name == "process_name" && meta.Process == "" {
					if name, ok := ce.Args["name"].(string); ok {
						meta.Process = name
					}
				}
				continue // metadata and instant events carry no interval
			}
			events = append(events, fromChromeEvent(ce))
		}
		return meta, events, nil
	}
	return meta, probe.Events, nil
}

// fromChromeEvent converts one Chrome entry back to a raw event,
// recovering the trace identity from its string args.
func fromChromeEvent(ce chromeEvent) Event {
	ev := Event{
		Name: ce.Name,
		Cat:  ce.Cat,
		TS:   time.Duration(ce.TS * float64(time.Microsecond)),
		Dur:  time.Duration(ce.Dur * float64(time.Microsecond)),
		TID:  int32(ce.TID),
	}
	names := make([]string, 0, len(ce.Args))
	for k := range ce.Args {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		switch v := ce.Args[k].(type) {
		case float64:
			ev.SetArg(k, int64(v))
		case string:
			switch k {
			case "trace":
				ev.Trace.parseHex(v)
			case "span":
				ev.Span = parseSpanHex(v)
			case "parent":
				ev.Parent = parseSpanHex(v)
			}
		}
	}
	return ev
}

// NameSummary aggregates all spans sharing one name.
type NameSummary struct {
	Name  string        `json:"name"`
	Cat   string        `json:"cat"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Mean returns the average span duration.
func (s NameSummary) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Summarize groups events by name, ordered by descending total time.
func Summarize(events []Event) []NameSummary {
	idx := make(map[string]int)
	var out []NameSummary
	for _, ev := range events {
		i, ok := idx[ev.Name]
		if !ok {
			i = len(out)
			idx[ev.Name] = i
			out = append(out, NameSummary{Name: ev.Name, Cat: ev.Cat})
		}
		out[i].Count++
		out[i].Total += ev.Dur
		if ev.Dur > out[i].Max {
			out[i].Max = ev.Dur
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Top returns the n longest spans, descending by duration.
func Top(events []Event, n int) []Event {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dur != sorted[j].Dur {
			return sorted[i].Dur > sorted[j].Dur
		}
		return sorted[i].TS < sorted[j].TS
	})
	if n > 0 && n < len(sorted) {
		sorted = sorted[:n]
	}
	return sorted
}
