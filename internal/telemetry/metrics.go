package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics registry: a dependency-free unification layer over the
// repo's existing introspection sources (device Profiler.Stats, serve
// latency histograms, cluster HealthSnapshot). Long-lived counters,
// gauges and histograms are owned by the registry; snapshot-style
// sources plug in as Collectors that emit samples at gather time.
// Gather produces one merged, sorted family list that both the JSON
// and the Prometheus text exposition render from.

// Metric family types, matching Prometheus exposition TYPE values.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into explicit buckets. Bounds are the
// inclusive upper edges of the finite buckets; an implicit +Inf bucket
// catches the rest.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64
	sum    float64
	count  int64
}

// NewHistogramBuckets validates and copies a bound list: strictly
// increasing, finite.
func newHistogramBounds(bounds []float64) []float64 {
	out := make([]float64, len(bounds))
	copy(out, bounds)
	for i, b := range out {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic(fmt.Sprintf("telemetry: histogram bound %d not finite", i))
		}
		if i > 0 && out[i-1] >= b {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d", i))
		}
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts (per finite bound, then
// +Inf), sum and count.
func (h *Histogram) snapshot() (cum []int64, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.count
}

// HistBucket is one cumulative histogram bucket in a gathered Family.
type HistBucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Sample is one exposed series: a label set plus either a scalar value
// or a histogram snapshot.
type Sample struct {
	Labels  []Label      `json:"labels,omitempty"`
	Value   float64      `json:"value"`
	Buckets []HistBucket `json:"buckets,omitempty"`
	Sum     float64      `json:"sum,omitempty"`
	Count   int64        `json:"count,omitempty"`
}

// Label is one name/value pair on a Sample.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Family is every sample sharing one metric name.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help"`
	Type    string   `json:"type"`
	Samples []Sample `json:"samples"`
}

// Collector emits point-in-time samples into an Emitter at gather
// time; snapshot-style sources (profiler stats, health snapshots)
// implement exposition this way instead of mirroring state into owned
// instruments.
type Collector func(e *Emitter)

// Registry holds owned instruments and gather-time collectors.
type Registry struct {
	mu         sync.Mutex
	owned      []*ownedFamily
	ownedByKey map[string]*ownedFamily
	collectors []Collector
}

type ownedFamily struct {
	name, help string
	typ        string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{ownedByKey: make(map[string]*ownedFamily)}
}

// NewCounter registers and returns an owned counter. Registering the
// same name twice returns the original instrument.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.ownedByKey[name]; ok {
		return f.counter
	}
	f := &ownedFamily{name: name, help: help, typ: TypeCounter, counter: &Counter{}}
	r.owned = append(r.owned, f)
	r.ownedByKey[name] = f
	return f.counter
}

// NewGauge registers and returns an owned gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.ownedByKey[name]; ok {
		return f.gauge
	}
	f := &ownedFamily{name: name, help: help, typ: TypeGauge, gauge: &Gauge{}}
	r.owned = append(r.owned, f)
	r.ownedByKey[name] = f
	return f.gauge
}

// NewHistogram registers and returns an owned histogram with the given
// finite bucket bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.ownedByKey[name]; ok {
		return f.hist
	}
	b := newHistogramBounds(bounds)
	f := &ownedFamily{name: name, help: help, typ: TypeHistogram,
		hist: &Histogram{bounds: b, counts: make([]int64, len(b)+1)}}
	r.owned = append(r.owned, f)
	r.ownedByKey[name] = f
	return f.hist
}

// RegisterCollector adds a gather-time sample source.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Emitter receives samples during a gather. Methods may be called with
// repeated names (different label sets); samples merge into one family
// per name.
type Emitter struct {
	idx      map[string]int
	families []Family
}

func (e *Emitter) family(name, help, typ string) *Family {
	if i, ok := e.idx[name]; ok {
		return &e.families[i]
	}
	e.idx[name] = len(e.families)
	e.families = append(e.families, Family{Name: name, Help: help, Type: typ})
	return &e.families[len(e.families)-1]
}

// labelPairs converts alternating name,value strings.
func labelPairs(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("telemetry: odd label list")
	}
	if len(kv) == 0 {
		return nil
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: kv[i], Value: kv[i+1]})
	}
	return out
}

// Counter emits one counter sample. labels are alternating name,value.
func (e *Emitter) Counter(name, help string, v float64, labels ...string) {
	f := e.family(name, help, TypeCounter)
	f.Samples = append(f.Samples, Sample{Labels: labelPairs(labels), Value: v})
}

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name, help string, v float64, labels ...string) {
	f := e.family(name, help, TypeGauge)
	f.Samples = append(f.Samples, Sample{Labels: labelPairs(labels), Value: v})
}

// Histogram emits one histogram sample from cumulative bucket counts.
// bounds are the finite upper edges; cum must have len(bounds)+1
// entries, the last being the +Inf (total) count.
func (e *Emitter) Histogram(name, help string, bounds []float64, cum []int64, sum float64, count int64, labels ...string) {
	if len(cum) != len(bounds)+1 {
		panic("telemetry: histogram cum/bounds length mismatch")
	}
	f := e.family(name, help, TypeHistogram)
	buckets := make([]HistBucket, 0, len(cum))
	for i, b := range bounds {
		buckets = append(buckets, HistBucket{UpperBound: b, Count: cum[i]})
	}
	buckets = append(buckets, HistBucket{UpperBound: math.Inf(1), Count: cum[len(cum)-1]})
	f.Samples = append(f.Samples, Sample{Labels: labelPairs(labels), Buckets: buckets, Sum: sum, Count: count})
}

// Gather snapshots every owned instrument, runs every collector, and
// returns the merged families sorted by name.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	owned := make([]*ownedFamily, len(r.owned))
	copy(owned, r.owned)
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	e := &Emitter{idx: make(map[string]int)}
	for _, f := range owned {
		switch f.typ {
		case TypeCounter:
			e.Counter(f.name, f.help, float64(f.counter.Value()))
		case TypeGauge:
			e.Gauge(f.name, f.help, f.gauge.Value())
		case TypeHistogram:
			cum, sum, count := f.hist.snapshot()
			e.Histogram(f.name, f.help, f.hist.bounds, cum, sum, count)
		}
	}
	for _, c := range collectors {
		c(e)
	}
	out := e.families
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for fi := range out {
		sort.SliceStable(out[fi].Samples, func(i, j int) bool {
			return labelKey(out[fi].Samples[i].Labels) < labelKey(out[fi].Samples[j].Labels)
		})
	}
	return out
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}
