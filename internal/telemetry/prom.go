package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): # HELP and # TYPE
// lines per family, then one sample line per series. Histograms expand
// into _bucket{le=...} cumulative series plus _sum and _count.

// PrometheusContentType is the Content-Type for the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in Prometheus text exposition
// format. Families are sorted by name, samples by label set, so output
// is deterministic for a fixed state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteFamilies(w, r.Gather())
}

// WriteFamilies renders pre-gathered families as Prometheus text.
func WriteFamilies(w io.Writer, families []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			if f.Type == TypeHistogram {
				writeHistogramSample(bw, f.Name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.Name, labelString(s.Labels, "", ""), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

func writeHistogramSample(w io.Writer, name string, s Sample) {
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(s.Labels, "le", le), b.Count)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.Labels, "", ""), formatValue(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.Labels, "", ""), s.Count)
}

// labelString renders {a="x",b="y"}, appending an extra pair when
// extraName is non-empty; empty label sets render as nothing.
func labelString(ls []Label, extraName, extraValue string) string {
	if len(ls) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, escapeLabel(l.Value))
	}
	if extraName != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel handles backslash and newline; %q adds the quote
// escaping.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// LintPrometheus parses text exposition output and reports format
// violations: bad metric/label names, samples without a preceding
// TYPE, duplicate series, non-cumulative or +Inf-less histograms, and
// _count/_bucket{+Inf} disagreement. It is the validator behind the
// /metrics acceptance tests.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	types := make(map[string]string) // family name -> TYPE
	seen := make(map[string]bool)    // full series key -> present
	type histSeries struct {
		le    []float64
		count []int64
	}
	hists := make(map[string]*histSeries) // family|labels(sans le)
	counts := make(map[string]int64)      // family|labels -> _count value
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			rest := strings.TrimPrefix(text, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !promMetricName.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q in HELP", line, name)
			}
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line", line)
			}
			name, typ := fields[0], fields[1]
			if !promMetricName.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q in TYPE", line, name)
			}
			switch typ {
			case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q", line, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // other comments are legal
		}
		name, labels, value, err := parsePromSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		base, suffix := splitPromSuffix(name, types)
		if _, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", line, name)
		}
		if types[base] == TypeHistogram && suffix == "" {
			return fmt.Errorf("line %d: histogram %s exposes a bare series", line, base)
		}
		key := name + "|" + promLabelKey(labels, "")
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s", line, key)
		}
		seen[key] = true
		switch suffix {
		case "_bucket":
			leStr, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: %s without le label", line, name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %w", line, leStr, err)
				}
			}
			hk := base + "|" + promLabelKey(labels, "le")
			h := hists[hk]
			if h == nil {
				h = &histSeries{}
				hists[hk] = h
			}
			h.le = append(h.le, le)
			h.count = append(h.count, int64(value))
		case "_count":
			counts[base+"|"+promLabelKey(labels, "")] = int64(value)
		}
		if counterType := types[base]; counterType == TypeCounter && suffix == "" {
			if !strings.HasSuffix(base, "_total") {
				return fmt.Errorf("line %d: counter %s should end in _total", line, base)
			}
			if value < 0 {
				return fmt.Errorf("line %d: counter %s is negative", line, base)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for hk, h := range hists {
		if len(h.le) == 0 || !math.IsInf(h.le[len(h.le)-1], 1) {
			return fmt.Errorf("histogram %s missing +Inf bucket", hk)
		}
		for i := 1; i < len(h.le); i++ {
			if h.le[i] <= h.le[i-1] {
				return fmt.Errorf("histogram %s: le not increasing", hk)
			}
			if h.count[i] < h.count[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", hk)
			}
		}
		if c, ok := counts[hk]; ok && c != h.count[len(h.count)-1] {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", hk, c, h.count[len(h.count)-1])
		}
	}
	return nil
}

// splitPromSuffix maps a series name back to its family: histogram
// child series use _bucket/_sum/_count suffixes.
func splitPromSuffix(name string, types map[string]string) (base, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, sfx)
		if trimmed != name {
			if t, ok := types[trimmed]; ok && t == TypeHistogram {
				return trimmed, sfx
			}
		}
	}
	return name, ""
}

// parsePromSample parses `name{l1="v1",...} value`.
func parsePromSample(text string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		if err := parsePromLabels(rest[i+1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", text)
		}
		name = fields[0]
		rest = fields[1]
	}
	if !promMetricName.MatchString(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, 0, fmt.Errorf("sample %s has no value", name)
	}
	if fields[0] == "+Inf" || fields[0] == "-Inf" || fields[0] == "NaN" {
		value = math.Inf(1)
		if fields[0] == "-Inf" {
			value = math.Inf(-1)
		}
		if fields[0] == "NaN" {
			value = math.NaN()
		}
		return name, labels, value, nil
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	return name, labels, value, nil
}

func parsePromLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !promLabelName.MatchString(lname) {
			return fmt.Errorf("bad label name %q", lname)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s value not quoted", lname)
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		var val strings.Builder
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					return fmt.Errorf("bad escape in label %s", lname)
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if i >= len(s) || s[i] != '"' {
			return fmt.Errorf("unterminated label value for %s", lname)
		}
		if _, dup := out[lname]; dup {
			return fmt.Errorf("duplicate label %s", lname)
		}
		out[lname] = val.String()
		s = strings.TrimSpace(s[i+1:])
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	return nil
}

// promLabelKey builds a deterministic label-set key, skipping one
// label name (pass "" to keep all).
func promLabelKey(labels map[string]string, skip string) string {
	names := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}
