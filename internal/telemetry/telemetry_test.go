package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerZeroAlloc(t *testing.T) {
	tr := New(Config{Shards: 2, ShardCap: 16})
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Begin("cat", "name").Arg("k", 1).Arg("n", 2)
		sp.End()
		tr.Record(Event{Name: "pre", Cat: "c", Dur: time.Millisecond})
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v per op, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(100, func() {
		sp := nilTr.Begin("cat", "name").Arg("k", 1)
		sp.End()
		nilTr.Record(Event{Name: "x"})
		nilTr.SetEnabled(true)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %v per op, want 0", allocs)
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Fatalf("disabled tracer buffered %d events", len(got))
	}
}

func TestTracerRecordsAndDrains(t *testing.T) {
	tr := New(Config{Shards: 1, ShardCap: 64})
	tr.SetEnabled(true)
	sp := tr.Begin("filter", "round").Arg("k", 7)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Record(Event{Name: "launch", Cat: "device", TS: 5, Dur: 10})
	got := tr.Drain()
	if len(got) != 2 {
		t.Fatalf("drained %d events, want 2", len(got))
	}
	// Sorted by TS: the pre-measured event at TS=5ns comes first only if
	// the span's TS is later — spans stamp wall offsets from epoch, which
	// are positive and large compared to 5ns.
	if got[0].Name != "launch" || got[1].Name != "round" {
		t.Fatalf("order = %s,%s", got[0].Name, got[1].Name)
	}
	if got[1].Dur < time.Millisecond {
		t.Fatalf("span dur = %v, want >= 1ms", got[1].Dur)
	}
	if got[1].Args[0] != (Arg{Name: "k", Value: 7}) {
		t.Fatalf("args = %+v", got[1].Args)
	}
	if got[0].TID == 0 || got[1].TID == 0 {
		t.Fatalf("events missing track ids: %+v", got)
	}
	if again := tr.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events", len(again))
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := New(Config{Shards: 1, ShardCap: 4})
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Name: "e", TS: time.Duration(i)})
	}
	got := tr.Drain()
	if len(got) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(got))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// The newest events survive.
	for i, ev := range got {
		if want := time.Duration(6 + i); ev.TS != want {
			t.Fatalf("event %d TS = %d, want %d", i, ev.TS, want)
		}
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := New(Config{Shards: 4, ShardCap: 1024})
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin("c", "n").Arg("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	got := tr.Drain()
	if len(got)+int(tr.Dropped()) != 1600 {
		t.Fatalf("kept %d + dropped %d != 1600", len(got), tr.Dropped())
	}
}

func TestRecordBatchSharesTrack(t *testing.T) {
	tr := New(Config{Shards: 4, ShardCap: 64})
	tr.SetEnabled(true)
	tr.RecordBatch([]Event{
		{Name: "fused", Cat: "device", TS: 0, Dur: 30},
		{Name: "rand", Cat: "phase", TS: 0, Dur: 10},
		{Name: "sampling", Cat: "phase", TS: 10, Dur: 20},
	})
	got := tr.Drain()
	if len(got) != 3 {
		t.Fatalf("drained %d, want 3", len(got))
	}
	if got[0].TID != got[1].TID || got[1].TID != got[2].TID {
		t.Fatalf("batch events on different tracks: %+v", got)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	events := []Event{
		{Name: "round", Cat: "filter", TS: 1500 * time.Nanosecond, Dur: 2 * time.Millisecond, TID: 3,
			Args: [maxArgs]Arg{{Name: "k", Value: 4}}},
		{Name: "launch", Cat: "device", TS: 2 * time.Microsecond, Dur: time.Microsecond, TID: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	// Valid Chrome trace-event JSON: object with traceEvents, every
	// complete event has ph "X" and numeric ts/dur in microseconds.
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("output is not chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) != 3 { // metadata + 2 spans
		t.Fatalf("traceEvents len = %d, want 3", len(trace.TraceEvents))
	}
	back, err := ParseEvents(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("parsed %d events, want 2 (metadata skipped)", len(back))
	}
	if back[0].Name != "round" || back[0].Args[0].Value != 4 {
		t.Fatalf("round trip lost data: %+v", back[0])
	}
	// Chrome ts is microseconds: 1500ns rounds to 1.5us and back.
	if back[0].TS != 1500*time.Nanosecond {
		t.Fatalf("TS round trip = %v", back[0].TS)
	}
}

func TestRawEncodeParse(t *testing.T) {
	events := []Event{{Name: "a", Cat: "c", TS: 1, Dur: 2, TID: 1}}
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, events, 5); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEvents(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != events[0] {
		t.Fatalf("raw round trip = %+v", back)
	}
}

func TestSummarizeAndTop(t *testing.T) {
	events := []Event{
		{Name: "a", Cat: "x", Dur: 10},
		{Name: "b", Cat: "x", Dur: 100},
		{Name: "a", Cat: "x", Dur: 30},
	}
	sum := Summarize(events)
	if len(sum) != 2 || sum[0].Name != "b" || sum[1].Name != "a" {
		t.Fatalf("summary order: %+v", sum)
	}
	if sum[1].Count != 2 || sum[1].Total != 40 || sum[1].Max != 30 || sum[1].Mean() != 20 {
		t.Fatalf("summary a: %+v", sum[1])
	}
	top := Top(events, 2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Dur != 30 {
		t.Fatalf("top: %+v", top)
	}
}

func TestRegistryGatherAndPrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("esthera_test_ops_total", "ops so far")
	g := reg.NewGauge("esthera_test_depth", "queue depth")
	h := reg.NewHistogram("esthera_test_latency_seconds", "latency", []float64{0.001, 0.01, 0.1})
	c.Add(3)
	g.Set(7.5)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	reg.RegisterCollector(func(e *Emitter) {
		e.Gauge("esthera_test_ess", "per-session ess", 42.5, "session", "s-1")
		e.Gauge("esthera_test_ess", "per-session ess", 17.25, "session", "s-2")
	})

	fams := reg.Gather()
	if len(fams) != 4 {
		t.Fatalf("gathered %d families, want 4", len(fams))
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["esthera_test_ess"]; len(f.Samples) != 2 || f.Samples[0].Labels[0].Value != "s-1" {
		t.Fatalf("collector family: %+v", f)
	}
	hist := byName["esthera_test_latency_seconds"].Samples[0]
	if hist.Count != 3 || hist.Buckets[3].Count != 3 || hist.Buckets[0].Count != 1 {
		t.Fatalf("histogram sample: %+v", hist)
	}
	if !math.IsInf(hist.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v", hist.Buckets[3].UpperBound)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE esthera_test_ops_total counter",
		"esthera_test_ops_total 3",
		"esthera_test_depth 7.5",
		`esthera_test_ess{session="s-1"} 42.5`,
		`esthera_test_latency_seconds_bucket{le="+Inf"} 3`,
		"esthera_test_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	if err := LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "some_metric 1\n",
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"duplicate series": "# TYPE m gauge\nm 1\nm 2\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
			"h_sum 1\nh_count 3\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + "h_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\nh_count 4\n",
		"counter without _total": "# TYPE ops counter\nops 1\n",
	}
	for name, text := range cases {
		if err := LintPrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, text)
		}
	}
	valid := "# HELP ok_total fine\n# TYPE ok_total counter\n" +
		`ok_total{a="x",b="y z"} 12` + "\n"
	if err := LintPrometheus(strings.NewReader(valid)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}

func TestHealthFromLogWeights(t *testing.T) {
	// Uniform weights: ESS = N, max ratio = 1.
	uniform := []float64{-1, -1, -1, -1}
	h := HealthFromLogWeights(uniform, 2, 4)
	if math.Abs(h.ESS-4) > 1e-12 || math.Abs(h.ESSFrac-1) > 1e-12 {
		t.Fatalf("uniform ESS = %v (frac %v), want 4 (1)", h.ESS, h.ESSFrac)
	}
	if math.Abs(h.MaxWeightRatio-1) > 1e-12 {
		t.Fatalf("uniform max ratio = %v, want 1", h.MaxWeightRatio)
	}
	if h.ResampleAccept != 0.5 {
		t.Fatalf("resample accept = %v, want 0.5", h.ResampleAccept)
	}

	// One dominant particle: ESS -> 1, max ratio -> N.
	collapsed := []float64{0, -800, -800, -800}
	h = HealthFromLogWeights(collapsed, 0, 0)
	if math.Abs(h.ESS-1) > 1e-6 {
		t.Fatalf("collapsed ESS = %v, want ~1", h.ESS)
	}
	if math.Abs(h.MaxWeightRatio-4) > 1e-6 {
		t.Fatalf("collapsed max ratio = %v, want ~4", h.MaxWeightRatio)
	}

	// Fully degenerate weights report zeros rather than NaN.
	degenerate := []float64{math.Inf(-1), math.Inf(-1)}
	h = HealthFromLogWeights(degenerate, 0, 0)
	if h.ESS != 0 || h.MaxWeightRatio != 0 {
		t.Fatalf("degenerate health = %+v, want zeros", h)
	}
	if h.Particles != 2 {
		t.Fatalf("degenerate particles = %d", h.Particles)
	}

	// Empty input.
	if h := HealthFromLogWeights(nil, 0, 0); h != (FilterHealth{}) {
		t.Fatalf("empty health = %+v", h)
	}
}

// TestHealthFromLogWeightsNonFinite pins the poisoned-filter clamp: NaN
// or +Inf log-weights must yield the explicit fully-degenerate reading
// (ESS/ESSFrac/MaxWeightRatio all exactly 0 — never NaN, which some
// Prometheus scrapers reject in text exposition) and be counted in
// NonFiniteWeights so poisoning is distinguishable from benign
// all-underflow degeneracy.
func TestHealthFromLogWeightsNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name       string
		logw       []float64
		wantNonFin int
	}{
		{"one-nan", []float64{0, nan, -1}, 1},
		{"all-nan", []float64{nan, nan}, 2},
		{"plus-inf", []float64{0, math.Inf(1)}, 1},
		{"nan-and-inf", []float64{nan, math.Inf(1), -2}, 2},
	}
	for _, c := range cases {
		h := HealthFromLogWeights(c.logw, 1, 2)
		if h.ESS != 0 || h.ESSFrac != 0 || h.MaxWeightRatio != 0 {
			t.Errorf("%s: health = %+v, want degenerate zeros", c.name, h)
		}
		if math.IsNaN(h.ESS) || math.IsNaN(h.ESSFrac) || math.IsNaN(h.MaxWeightRatio) {
			t.Errorf("%s: NaN leaked into health %+v", c.name, h)
		}
		if h.NonFiniteWeights != c.wantNonFin {
			t.Errorf("%s: NonFiniteWeights = %d, want %d", c.name, h.NonFiniteWeights, c.wantNonFin)
		}
		if h.Particles != len(c.logw) {
			t.Errorf("%s: particles = %d, want %d", c.name, h.Particles, len(c.logw))
		}
	}
	// Benign all-underflow stays distinguishable: degenerate but clean.
	h := HealthFromLogWeights([]float64{math.Inf(-1), math.Inf(-1)}, 0, 0)
	if h.NonFiniteWeights != 0 {
		t.Fatalf("-Inf underflow miscounted as poisoning: %+v", h)
	}
}

func TestWantsPrometheus(t *testing.T) {
	cases := []struct {
		target, accept string
		want           bool
	}{
		{"/metrics", "", false},
		{"/metrics?format=prometheus", "", true},
		{"/metrics?format=json", "text/plain", false},
		{"/metrics", "text/plain", true},
		{"/metrics", "application/openmetrics-text; version=1.0.0", true},
		{"/metrics", "application/json", false},
		{"/metrics", "application/json, text/plain", false},
	}
	for _, tc := range cases {
		req := newRequest(t, tc.target, tc.accept)
		if got := WantsPrometheus(req); got != tc.want {
			t.Errorf("WantsPrometheus(%q, Accept=%q) = %v, want %v", tc.target, tc.accept, got, tc.want)
		}
	}
}
