// Package telemetry is the repo's observability layer: a low-overhead
// span tracer with fixed-size sharded ring buffers (drained on demand,
// exported as Chrome trace-event JSON), a dependency-free metrics
// registry with Prometheus text exposition, and filter-health summaries
// (ESS, weight degeneracy, resample acceptance) computed from particle
// log-weights.
//
// The package is a leaf: it imports nothing from the rest of the
// module, so every layer (device, kernels, cluster, serve) can record
// into it without cycles. All recording paths are strictly read-only
// with respect to filter state — telemetry observes, it never perturbs
// RNG streams or float operation order, so golden traces stay
// bit-identical whether tracing is enabled or not.
//
// Tracing is off by default and free when off: Begin/End/Record on a
// nil or disabled Tracer read one atomic and allocate nothing.
package telemetry

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one integer key/value attached to an Event. Events carry a
// fixed-size argument array instead of a map so recording never
// allocates.
type Arg struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// maxArgs is the per-event argument capacity. Three covers every
// current call site (e.g. step+cost_laneops, rerouted+dropped); raising
// it is a wire-compatible change.
const maxArgs = 3

// Event is one completed span: a named interval relative to the owning
// Tracer's epoch. TID groups events onto the same track in trace
// viewers; events recorded together via RecordBatch share a TID so
// viewers nest them by containment.
//
// Trace/Span/Parent carry the distributed trace identity (see
// tracectx.go): Trace is the request's 16-byte ID, Span this span's
// process-unique ID (0 for anonymous leaf spans), Parent the span ID
// this one nests under. Events recorded while the tracer has an
// ambient context (SetAmbient) inherit Trace and Parent automatically.
type Event struct {
	Name   string        `json:"name"`
	Cat    string        `json:"cat"`
	TS     time.Duration `json:"ts_ns"`
	Dur    time.Duration `json:"dur_ns"`
	TID    int32         `json:"tid"`
	Trace  TraceID       `json:"trace,omitzero"`
	Span   uint64        `json:"span,omitempty"`
	Parent uint64        `json:"parent,omitempty"`
	Args   [maxArgs]Arg  `json:"args"`
}

// SetArg attaches an integer argument, filling the first free slot.
// Extra arguments beyond the event's capacity are dropped.
func (e *Event) SetArg(name string, v int64) {
	for i := range e.Args {
		if e.Args[i].Name == "" {
			e.Args[i] = Arg{Name: name, Value: v}
			return
		}
	}
}

// Config shapes a Tracer.
type Config struct {
	// Shards is the number of independent ring buffers; contention-free
	// recording wants roughly one per recording goroutine. 0 means the
	// next power of two at or above GOMAXPROCS. Non-power-of-two values
	// are rounded up.
	Shards int
	// ShardCap is the event capacity of each ring; when a ring is full
	// the oldest event is overwritten and Dropped is incremented.
	// 0 means 4096.
	ShardCap int
}

type shard struct {
	mu      sync.Mutex
	id      int32 // 1-based track id stamped on events recorded here
	buf     []Event
	head    int // next overwrite position once len(buf) == cap(buf)
	dropped int64
	_       [4]uint64 // padding to keep shard locks off one cache line
}

// Tracer collects spans into sharded fixed-capacity ring buffers.
// Recording picks a shard round-robin, takes that shard's mutex only
// (lock-cheap: no global lock, no channel), and copies the event into
// preallocated storage. Drain gathers, sorts and clears all shards.
//
// A nil *Tracer is valid everywhere and records nothing, so call sites
// can hold one unconditionally.
type Tracer struct {
	epoch   time.Time
	enabled atomic.Bool
	next    atomic.Uint32
	mask    uint32
	ambient atomic.Pointer[TraceContext]
	process atomic.Pointer[string]
	shards  []shard
}

// New builds a Tracer. The tracer starts disabled; flip it with
// SetEnabled.
func New(cfg Config) *Tracer {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	capEv := cfg.ShardCap
	if capEv <= 0 {
		capEv = 4096
	}
	t := &Tracer{epoch: time.Now(), mask: uint32(pow - 1), shards: make([]shard, pow)}
	for i := range t.shards {
		t.shards[i].id = int32(i + 1)
		t.shards[i].buf = make([]Event, 0, capEv)
	}
	return t
}

// SetEnabled turns recording on or off. Toggling is safe at any time
// from any goroutine; spans begun while enabled but ended after
// disabling are dropped.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether recording is on. False for a nil Tracer.
//
//esthera:hotpath noalloc
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetProcess names the process owning this tracer (router name, shard
// name). The name rides in the raw trace export so esthera-trace merge
// can put each process on its own track.
func (t *Tracer) SetProcess(name string) {
	if t != nil {
		t.process.Store(&name)
	}
}

// Process returns the name set by SetProcess, or "".
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	if p := t.process.Load(); p != nil {
		return *p
	}
	return ""
}

// EpochUnixNano is the wall-clock instant event timestamps are relative
// to; merge tooling uses it (plus the transport's clock-offset
// estimate) to align traces from different processes.
func (t *Tracer) EpochUnixNano() int64 {
	if t == nil {
		return 0
	}
	return t.epoch.UnixNano()
}

// SetAmbient installs a trace context inherited by every event recorded
// until ClearAmbient: events with a zero Trace get the ambient trace ID
// and, when they carry no explicit parent, the ambient span as parent.
// The serving scheduler brackets each batched kernel round with this so
// device/kernel spans land on the driving request's trace.
func (t *Tracer) SetAmbient(tc TraceContext) {
	if t != nil {
		t.ambient.Store(&tc)
	}
}

// ClearAmbient removes the ambient trace context.
func (t *Tracer) ClearAmbient() {
	if t != nil {
		t.ambient.Store(nil)
	}
}

// stamp applies the ambient trace context to an event that carries no
// explicit trace.
//
//esthera:hotpath noalloc
func (t *Tracer) stamp(ev *Event) {
	if !ev.Trace.IsZero() {
		return
	}
	if amb := t.ambient.Load(); amb != nil {
		ev.Trace = amb.Trace
		if ev.Parent == 0 {
			ev.Parent = amb.Span
		}
	}
}

// Stamp converts an absolute time into this tracer's epoch-relative
// timestamp, for call sites that already measured their own interval.
func (t *Tracer) Stamp(at time.Time) time.Duration {
	if t == nil {
		return 0
	}
	return at.Sub(t.epoch)
}

// Record appends one pre-measured event. No-op when nil or disabled;
// never allocates.
//
//esthera:hotpath noalloc
func (t *Tracer) Record(ev Event) {
	if !t.Enabled() {
		return
	}
	t.stamp(&ev)
	sh := &t.shards[t.next.Add(1)&t.mask]
	sh.mu.Lock()
	sh.put(ev)
	sh.mu.Unlock()
}

// RecordBatch appends related events into one shard so they share a
// TID: trace viewers nest same-track "X" events by containment, which
// is how a fused launch and its per-phase children render as one stack.
func (t *Tracer) RecordBatch(evs []Event) {
	if !t.Enabled() || len(evs) == 0 {
		return
	}
	sh := &t.shards[t.next.Add(1)&t.mask]
	sh.mu.Lock()
	for _, ev := range evs {
		t.stamp(&ev)
		sh.put(ev)
	}
	sh.mu.Unlock()
}

// put stores ev in the ring, overwriting the oldest event when full.
// Caller holds sh.mu.
func (sh *shard) put(ev Event) {
	if ev.TID == 0 {
		ev.TID = sh.id
	}
	if len(sh.buf) < cap(sh.buf) {
		sh.buf = append(sh.buf, ev)
		return
	}
	sh.buf[sh.head] = ev
	sh.head++
	if sh.head == cap(sh.buf) {
		sh.head = 0
	}
	sh.dropped++
}

// Drain removes and returns every buffered event, ordered by start
// time (ties broken by name for deterministic output). Dropped counts
// are preserved across drains.
func (t *Tracer) Drain() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.buf...)
		sh.buf = sh.buf[:0]
		sh.head = 0
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Dropped returns the cumulative number of events overwritten because
// a ring was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += sh.dropped
		sh.mu.Unlock()
	}
	return n
}

// Span is an in-progress interval returned by Begin. The zero Span
// (from a nil or disabled tracer) is inert: Arg and End are no-ops.
// Span is a value type so the common path allocates nothing.
type Span struct {
	tr    *Tracer
	start time.Time
	ev    Event
}

// Begin opens a span. When the tracer is nil or disabled this returns
// the zero Span without reading the clock.
//
//esthera:hotpath noalloc
func (t *Tracer) Begin(cat, name string) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{tr: t, start: time.Now(), ev: Event{Name: name, Cat: cat}}
}

// Arg attaches an integer argument and returns the span for chaining.
//
//esthera:hotpath noalloc
func (s Span) Arg(name string, v int64) Span {
	if s.tr != nil {
		s.ev.SetArg(name, v)
	}
	return s
}

// WithTrace stamps the span with an explicit trace identity: the
// request's trace ID, this span's own ID (mint with NewSpanID), and the
// parent span it nests under. Spans without an explicit identity
// inherit the tracer's ambient context at Record time.
//
//esthera:hotpath noalloc
func (s Span) WithTrace(trace TraceID, span, parent uint64) Span {
	if s.tr != nil {
		s.ev.Trace, s.ev.Span, s.ev.Parent = trace, span, parent
	}
	return s
}

// End closes and records the span.
//
//esthera:hotpath noalloc
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.ev.TS = s.start.Sub(s.tr.epoch)
	s.ev.Dur = time.Since(s.start)
	s.tr.Record(s.ev)
}
