package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSLOTrackerBurnRates(t *testing.T) {
	tr := NewSLOTracker(SLO{Objective: 0.99, Threshold: 50 * time.Millisecond})
	now := int64(10_000)
	// 100 requests in the last minute, 2 bad: burn = (2/100)/(0.01) = 2.
	for i := 0; i < 98; i++ {
		tr.observeAt(now, 10*time.Millisecond)
	}
	tr.observeAt(now, 80*time.Millisecond)
	tr.observeAt(now, 200*time.Millisecond)
	// Old traffic outside the 5m window must not count.
	tr.observeAt(now-400, time.Second)

	snap := tr.snapshotAt(now)
	if snap.Total != 101 || snap.Breached != 3 {
		t.Fatalf("lifetime counters = %+v", snap)
	}
	if math.Abs(snap.Burn1m-2.0) > 1e-9 {
		t.Fatalf("burn1m = %v, want 2.0", snap.Burn1m)
	}
	if math.Abs(snap.Burn5m-2.0) > 1e-9 {
		t.Fatalf("burn5m = %v, want 2.0 (stale slot leaked in?)", snap.Burn5m)
	}

	// A breach 3 minutes ago shows in the 5m burn but not the 1m burn.
	tr2 := NewSLOTracker(SLO{Objective: 0.99, Threshold: 50 * time.Millisecond})
	tr2.observeAt(now-180, time.Second)
	for i := 0; i < 99; i++ {
		tr2.observeAt(now, time.Millisecond)
	}
	snap = tr2.snapshotAt(now)
	if snap.Burn1m != 0 {
		t.Fatalf("burn1m = %v, want 0", snap.Burn1m)
	}
	if math.Abs(snap.Burn5m-1.0) > 1e-9 {
		t.Fatalf("burn5m = %v, want 1.0", snap.Burn5m)
	}
}

func TestSLOTrackerDefaultsAndNil(t *testing.T) {
	tr := NewSLOTracker(SLO{})
	if tr.slo.Objective != 0.99 || tr.slo.Threshold != 50*time.Millisecond {
		t.Fatalf("defaults = %+v", tr.slo)
	}
	var nilTr *SLOTracker
	nilTr.Observe(time.Second) // must not panic
	if snap := nilTr.Snapshot(); snap != (SLOSnapshot{}) {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestSLOCollectExposition(t *testing.T) {
	reg := NewRegistry()
	tr := NewSLOTracker(SLO{Objective: 0.95, Threshold: 10 * time.Millisecond})
	tr.Observe(time.Millisecond)
	tr.Observe(time.Second)
	reg.RegisterCollector(func(e *Emitter) { tr.Collect(e, "step") })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`esthera_slo_requests_total{endpoint="step"} 2`,
		`esthera_slo_breaches_total{endpoint="step"} 1`,
		`esthera_slo_burn_rate{endpoint="step",window="1m"}`,
		`esthera_slo_burn_rate{endpoint="step",window="5m"}`,
		`esthera_slo_objective{endpoint="step"} 0.95`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestBuildInfoGauge(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterCollector(CollectBuildInfo)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `esthera_build_info{version="`) || !strings.Contains(text, `go_version="go`) {
		t.Fatalf("build info missing:\n%s", text)
	}
	if err := LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("lint: %v", err)
	}
	if BuildString() == "" {
		t.Fatal("empty build string")
	}
}
