package telemetry

import "math"

// FilterHealth summarizes particle-weight quality for one filter at
// one round. All quantities are computed from the normalized weights
// w_i = exp(logw_i - max logw), read after weighting and before
// resampling — the point where degeneracy is visible.
type FilterHealth struct {
	// Round is the filter round the sample was taken at.
	Round int64 `json:"round"`
	// Particles is the total particle count the sample covers.
	Particles int `json:"particles"`
	// ESS is the effective sample size (sum w)^2 / sum w^2, in
	// [1, Particles] for non-degenerate weights; 0 when all weights
	// underflow.
	ESS float64 `json:"ess"`
	// ESSFrac is ESS / Particles, the scale-free degeneracy signal.
	ESSFrac float64 `json:"ess_frac"`
	// MaxWeightRatio is max w_i / mean w_i, i.e. how many times
	// over-weighted the heaviest particle is; 1 means uniform, N means
	// total collapse onto one particle.
	MaxWeightRatio float64 `json:"max_weight_ratio"`
	// ResampleAccept is the fraction of sub-filters whose resampling
	// policy fired on the previous round's decision (resampling runs
	// after the health sample point).
	ResampleAccept float64 `json:"resample_accept"`
	// NonFiniteWeights counts log-weights that were NaN or +Inf at the
	// sample point. Any positive count forces the fully-degenerate
	// reading (ESS 0) — a poisoned filter must look maximally unhealthy,
	// not silently healthy — and distinguishes numerical poisoning from
	// benign all-underflow (which also reads ESS 0 but with a 0 here).
	NonFiniteWeights int `json:"non_finite_weights,omitempty"`
	// MinWindow and MaxWindow are the smallest and largest per-sub-filter
	// particle windows at the sample point; equal under uniform (fixed)
	// allocation. Zero when the filter does not expose windows.
	MinWindow int `json:"min_window,omitempty"`
	MaxWindow int `json:"max_window,omitempty"`
	// Reallocations counts adaptive-allocator window resizes applied so
	// far (cumulative over the filter's lifetime).
	Reallocations int64 `json:"reallocations,omitempty"`
}

// HealthFromLogWeights computes a FilterHealth from raw log-weights.
// resampledGroups out of groups is the most recent resample-policy
// acceptance count (pass 0,0 when unknown). The computation is
// read-only and deterministic; it never reorders or rescales the
// input.
func HealthFromLogWeights(logw []float64, resampledGroups, groups int) FilterHealth {
	h := FilterHealth{Particles: len(logw)}
	if groups > 0 {
		h.ResampleAccept = float64(resampledGroups) / float64(groups)
	}
	if len(logw) == 0 {
		return h
	}
	maxLW := math.Inf(-1)
	for _, lw := range logw {
		// NaN and +Inf log-weights are counted and excluded here, then
		// force the degenerate-zero reading below. Without the explicit
		// clamp the NaN would ride through exp() into the sums, and
		// whether the output is 0 or NaN would hinge on the accident of
		// which guard's NaN comparison happens to be false — the same
		// signal-that-lies hole as resample.ESS. (-Inf is a legitimate
		// underflowed weight, not poisoning.)
		if math.IsNaN(lw) || math.IsInf(lw, 1) {
			h.NonFiniteWeights++
			continue
		}
		if lw > maxLW {
			maxLW = lw
		}
	}
	if h.NonFiniteWeights > 0 {
		return h // poisoned: fully degenerate, ESS pinned to 0
	}
	if math.IsInf(maxLW, -1) {
		return h // fully degenerate: every weight underflowed
	}
	var sum, sumSq, maxW float64
	for _, lw := range logw {
		w := math.Exp(lw - maxLW)
		sum += w
		sumSq += w * w
		if w > maxW {
			maxW = w
		}
	}
	if sumSq > 0 {
		h.ESS = sum * sum / sumSq
		h.ESSFrac = h.ESS / float64(len(logw))
	}
	if sum > 0 {
		h.MaxWeightRatio = maxW * float64(len(logw)) / sum
	}
	return h
}
