package telemetry

import "math"

// FilterHealth summarizes particle-weight quality for one filter at
// one round. All quantities are computed from the normalized weights
// w_i = exp(logw_i - max logw), read after weighting and before
// resampling — the point where degeneracy is visible.
type FilterHealth struct {
	// Round is the filter round the sample was taken at.
	Round int64 `json:"round"`
	// Particles is the total particle count the sample covers.
	Particles int `json:"particles"`
	// ESS is the effective sample size (sum w)^2 / sum w^2, in
	// [1, Particles] for non-degenerate weights; 0 when all weights
	// underflow.
	ESS float64 `json:"ess"`
	// ESSFrac is ESS / Particles, the scale-free degeneracy signal.
	ESSFrac float64 `json:"ess_frac"`
	// MaxWeightRatio is max w_i / mean w_i, i.e. how many times
	// over-weighted the heaviest particle is; 1 means uniform, N means
	// total collapse onto one particle.
	MaxWeightRatio float64 `json:"max_weight_ratio"`
	// ResampleAccept is the fraction of sub-filters whose resampling
	// policy fired on the previous round's decision (resampling runs
	// after the health sample point).
	ResampleAccept float64 `json:"resample_accept"`
}

// HealthFromLogWeights computes a FilterHealth from raw log-weights.
// resampledGroups out of groups is the most recent resample-policy
// acceptance count (pass 0,0 when unknown). The computation is
// read-only and deterministic; it never reorders or rescales the
// input.
func HealthFromLogWeights(logw []float64, resampledGroups, groups int) FilterHealth {
	h := FilterHealth{Particles: len(logw)}
	if groups > 0 {
		h.ResampleAccept = float64(resampledGroups) / float64(groups)
	}
	if len(logw) == 0 {
		return h
	}
	maxLW := math.Inf(-1)
	for _, lw := range logw {
		if lw > maxLW {
			maxLW = lw
		}
	}
	if math.IsInf(maxLW, -1) || math.IsNaN(maxLW) {
		return h // fully degenerate: every weight underflowed
	}
	var sum, sumSq, maxW float64
	for _, lw := range logw {
		w := math.Exp(lw - maxLW)
		sum += w
		sumSq += w * w
		if w > maxW {
			maxW = w
		}
	}
	if sumSq > 0 {
		h.ESS = sum * sum / sumSq
		h.ESSFrac = h.ESS / float64(len(logw))
	}
	if sum > 0 {
		h.MaxWeightRatio = maxW * float64(len(logw)) / sum
	}
	return h
}
