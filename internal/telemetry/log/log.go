// Package log is the serving stack's structured logger: leveled,
// ring-buffered JSON lines with trace/session/shard correlation
// fields. It follows the telemetry package's discipline — a disabled
// call site costs one atomic load and zero allocations, so loggers can
// sit on request paths — while keeping the dependency footprint at
// stdlib only.
//
// Records land in a fixed-capacity ring drained on demand (the /logz
// endpoint), so a quiet process holds no log I/O at all; an optional
// sink additionally mirrors records at or above a level to a writer
// (stderr in the binaries) as they happen.
//
// Import as tlog to avoid shadowing the stdlib log package:
//
//	tlog "esthera/internal/telemetry/log"
package log

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"esthera/internal/telemetry"
)

// Level orders log severities. The zero value is Info, so a zero
// Config logs at the conventional default.
type Level int32

const (
	LevelDebug Level = -1
	LevelInfo  Level = 0
	LevelWarn  Level = 1
	LevelError Level = 2
	// LevelOff is above every severity; setting it silences the logger.
	LevelOff Level = 3
)

// String renders the level the way the JSON schema spells it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel parses the String spelling.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("log: unknown level %q (debug, info, warn, error, off)", s)
}

// Field kinds. Fields are plain values (no interface boxing) so
// building them below the enabled level allocates nothing.
const (
	kindStr = iota
	kindInt
	kindUint
	kindBool
	kindDur
	kindTrace
)

// Field is one key/value attached to a record.
type Field struct {
	Key  string
	kind uint8
	str  string
	num  int64
	tc   telemetry.TraceContext
}

// Str is a string field.
//
//esthera:hotpath noalloc
func Str(k, v string) Field { return Field{Key: k, kind: kindStr, str: v} }

// Int is an integer field.
//
//esthera:hotpath noalloc
func Int(k string, v int64) Field { return Field{Key: k, kind: kindInt, num: v} }

// Uint is an unsigned integer field.
//
//esthera:hotpath noalloc
func Uint(k string, v uint64) Field { return Field{Key: k, kind: kindUint, num: int64(v)} }

// Bool is a boolean field.
//
//esthera:hotpath noalloc
func Bool(k string, v bool) Field {
	f := Field{Key: k, kind: kindBool}
	if v {
		f.num = 1
	}
	return f
}

// Dur is a duration field, rendered in nanoseconds as <key>_ns.
//
//esthera:hotpath noalloc
func Dur(k string, d time.Duration) Field { return Field{Key: k, kind: kindDur, num: int64(d)} }

// Trace correlates the record with a distributed trace: it expands to
// "trace" and "span" keys in the JSON line.
//
//esthera:hotpath noalloc
func Trace(tc telemetry.TraceContext) Field { return Field{Key: "trace", kind: kindTrace, tc: tc} }

// maxFields caps per-record fields (scope plus call site); extras are
// dropped rather than allocated for.
const maxFields = 10

// Entry is one buffered record.
type Entry struct {
	TimeUnixNano int64
	Level        Level
	Msg          string
	N            int
	Fields       [maxFields]Field
}

// Config shapes a Logger.
type Config struct {
	// Level is the minimum severity recorded. Zero means Info.
	Level Level
	// Cap is the ring capacity in records; 0 means 2048.
	Cap int
	// Process is stamped on every drained JSON line.
	Process string
	// Sink, when non-nil, receives the JSON line of every record at or
	// above SinkLevel as it is logged (the binaries pass stderr).
	Sink io.Writer
	// SinkLevel defaults to Warn.
	SinkLevel Level
}

// core is the ring shared by a logger and its With-derived children.
type core struct {
	mu        sync.Mutex
	buf       []Entry
	head      int
	dropped   int64
	process   string
	sink      io.Writer
	sinkLevel Level
	level     atomic.Int32
}

// Logger records structured entries. A nil *Logger is valid and
// discards everything, so call sites can hold one unconditionally.
type Logger struct {
	c     *core
	scope []Field
}

// New builds a Logger.
func New(cfg Config) *Logger {
	capN := cfg.Cap
	if capN <= 0 {
		capN = 2048
	}
	sinkLv := cfg.SinkLevel
	if sinkLv == 0 {
		sinkLv = LevelWarn
	}
	c := &core{
		buf:       make([]Entry, 0, capN),
		process:   cfg.Process,
		sink:      cfg.Sink,
		sinkLevel: sinkLv,
	}
	c.level.Store(int32(cfg.Level))
	return &Logger{c: c}
}

// With returns a child logger whose records carry the given fields in
// addition to its parent's. The child shares the parent's ring and
// level.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	scope := make([]Field, 0, len(l.scope)+len(fields))
	scope = append(scope, l.scope...)
	scope = append(scope, fields...)
	return &Logger{c: l.c, scope: scope}
}

// SetLevel changes the minimum recorded severity for this logger and
// everything sharing its ring.
func (l *Logger) SetLevel(v Level) {
	if l != nil {
		l.c.level.Store(int32(v))
	}
}

// Level returns the current minimum severity (Off for a nil logger).
func (l *Logger) Level() Level {
	if l == nil {
		return LevelOff
	}
	return Level(l.c.level.Load())
}

// Enabled reports whether records at lv would be kept. One atomic
// load; false for a nil logger.
//
//esthera:hotpath noalloc
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.c.level.Load())
}

// Debug records at debug level. Below the enabled level the call
// allocates nothing.
//
//esthera:hotpath noalloc
func (l *Logger) Debug(msg string, fields ...Field) {
	if l.Enabled(LevelDebug) {
		l.write(LevelDebug, msg, fields)
	}
}

// Info records at info level.
//
//esthera:hotpath noalloc
func (l *Logger) Info(msg string, fields ...Field) {
	if l.Enabled(LevelInfo) {
		l.write(LevelInfo, msg, fields)
	}
}

// Warn records at warn level.
//
//esthera:hotpath noalloc
func (l *Logger) Warn(msg string, fields ...Field) {
	if l.Enabled(LevelWarn) {
		l.write(LevelWarn, msg, fields)
	}
}

// Error records at error level.
//
//esthera:hotpath noalloc
func (l *Logger) Error(msg string, fields ...Field) {
	if l.Enabled(LevelError) {
		l.write(LevelError, msg, fields)
	}
}

// write copies the record into the ring (and mirrors it to the sink
// when configured). Fields are copied by value; the variadic slice
// never escapes, which is what keeps disabled call sites
// allocation-free.
func (l *Logger) write(lv Level, msg string, fields []Field) {
	e := Entry{TimeUnixNano: time.Now().UnixNano(), Level: lv, Msg: msg}
	for _, f := range l.scope {
		if e.N == maxFields {
			break
		}
		e.Fields[e.N] = f
		e.N++
	}
	for _, f := range fields {
		if e.N == maxFields {
			break
		}
		e.Fields[e.N] = f
		e.N++
	}
	c := l.c
	c.mu.Lock()
	if len(c.buf) < cap(c.buf) {
		c.buf = append(c.buf, e)
	} else {
		c.buf[c.head] = e
		c.head++
		if c.head == cap(c.buf) {
			c.head = 0
		}
		c.dropped++
	}
	if c.sink != nil && lv >= c.sinkLevel {
		var line bytes.Buffer
		appendJSONLine(&line, c.process, &e)
		c.sink.Write(line.Bytes())
	}
	c.mu.Unlock()
}

// Drain removes and returns the buffered records in order.
func (l *Logger) Drain() []Entry {
	if l == nil {
		return nil
	}
	c := l.c
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.buf))
	out = append(out, c.buf[c.head:]...)
	out = append(out, c.buf[:c.head]...)
	c.buf = c.buf[:0]
	c.head = 0
	return out
}

// Dropped is the cumulative count of records overwritten because the
// ring was full.
func (l *Logger) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.c.dropped
}

// Process returns the configured process name.
func (l *Logger) Process() string {
	if l == nil {
		return ""
	}
	return l.c.process
}

// WriteJSONLines renders entries as one JSON object per line:
//
//	{"ts":"...","level":"info","proc":"r1","msg":"...","session":"s-1",...}
func WriteJSONLines(w io.Writer, process string, entries []Entry) error {
	var buf bytes.Buffer
	for i := range entries {
		buf.Reset()
		appendJSONLine(&buf, process, &entries[i])
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

func appendJSONLine(buf *bytes.Buffer, process string, e *Entry) {
	buf.WriteString(`{"ts":"`)
	buf.WriteString(time.Unix(0, e.TimeUnixNano).UTC().Format(time.RFC3339Nano))
	buf.WriteString(`","level":"`)
	buf.WriteString(e.Level.String())
	buf.WriteByte('"')
	if process != "" {
		buf.WriteString(`,"proc":`)
		appendJSONString(buf, process)
	}
	buf.WriteString(`,"msg":`)
	appendJSONString(buf, e.Msg)
	for i := 0; i < e.N; i++ {
		f := &e.Fields[i]
		switch f.kind {
		case kindTrace:
			buf.WriteString(`,"trace":"`)
			buf.WriteString(f.tc.Trace.String())
			buf.WriteString(`","span":"`)
			buf.WriteString(strconv.FormatUint(f.tc.Span, 16))
			buf.WriteByte('"')
			continue
		case kindDur:
			buf.WriteByte(',')
			appendJSONString(buf, f.Key+"_ns")
		default:
			buf.WriteByte(',')
			appendJSONString(buf, f.Key)
		}
		buf.WriteByte(':')
		switch f.kind {
		case kindStr:
			appendJSONString(buf, f.str)
		case kindInt, kindDur:
			buf.WriteString(strconv.FormatInt(f.num, 10))
		case kindUint:
			buf.WriteString(strconv.FormatUint(uint64(f.num), 10))
		case kindBool:
			if f.num != 0 {
				buf.WriteString("true")
			} else {
				buf.WriteString("false")
			}
		}
	}
	buf.WriteString("}\n")
}

// appendJSONString writes a quoted, escaped JSON string.
func appendJSONString(buf *bytes.Buffer, s string) {
	buf.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			buf.WriteString(`\"`)
		case '\\':
			buf.WriteString(`\\`)
		case '\n':
			buf.WriteString(`\n`)
		case '\r':
			buf.WriteString(`\r`)
		case '\t':
			buf.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(buf, `\u%04x`, r)
			} else {
				buf.WriteRune(r)
			}
		}
	}
	buf.WriteByte('"')
}
