package log

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"esthera/internal/telemetry"
)

func TestDisabledLevelZeroAlloc(t *testing.T) {
	l := New(Config{Level: LevelInfo, Cap: 16})
	allocs := testing.AllocsPerRun(100, func() {
		l.Debug("below level", Str("session", "s-1"), Int("step", 7), Dur("lat", time.Millisecond))
	})
	if allocs != 0 {
		t.Fatalf("below-level log allocated %v per op, want 0", allocs)
	}
	var nilL *Logger
	allocs = testing.AllocsPerRun(100, func() {
		nilL.Error("nil logger", Str("k", "v"))
		nilL.Info("nil logger")
	})
	if allocs != 0 {
		t.Fatalf("nil logger allocated %v per op, want 0", allocs)
	}
	if got := l.Drain(); len(got) != 0 {
		t.Fatalf("below-level call buffered %d records", len(got))
	}
}

func TestRingBufferAndDrain(t *testing.T) {
	l := New(Config{Level: LevelDebug, Cap: 4})
	for i := int64(0); i < 10; i++ {
		l.Info("e", Int("i", i))
	}
	got := l.Drain()
	if len(got) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(got))
	}
	// Oldest overwritten, newest survive, in order.
	for i, e := range got {
		if want := int64(6 + i); e.Fields[0].num != want {
			t.Fatalf("record %d i = %d, want %d", i, e.Fields[0].num, want)
		}
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
	if again := l.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d records", len(again))
	}
}

func TestLevelGateAndSetLevel(t *testing.T) {
	l := New(Config{Level: LevelWarn, Cap: 16})
	l.Info("dropped")
	l.Warn("kept")
	l.SetLevel(LevelDebug)
	l.Debug("now kept")
	got := l.Drain()
	if len(got) != 2 || got[0].Msg != "kept" || got[1].Msg != "now kept" {
		t.Fatalf("records = %+v", got)
	}
	if !l.Enabled(LevelDebug) || (*Logger)(nil).Enabled(LevelError) {
		t.Fatal("Enabled gate wrong")
	}
}

func TestWithScopesFields(t *testing.T) {
	l := New(Config{Level: LevelDebug, Cap: 16})
	child := l.With(Str("shard", "r1")).With(Str("session", "s-9"))
	child.Info("stepped", Int("step", 3))
	got := l.Drain()
	if len(got) != 1 || got[0].N != 3 {
		t.Fatalf("records = %+v", got)
	}
	if got[0].Fields[0].str != "r1" || got[0].Fields[1].str != "s-9" || got[0].Fields[2].num != 3 {
		t.Fatalf("fields = %+v", got[0].Fields)
	}
}

func TestJSONLinesSchema(t *testing.T) {
	l := New(Config{Level: LevelDebug, Cap: 16, Process: "router"})
	tc := telemetry.TraceContext{Trace: telemetry.NewTraceID(), Span: 0xabc}
	l.Info(`migrate "hold"`, Trace(tc), Str("session", "s-1"), Int("epoch", 2),
		Dur("hold", 3*time.Millisecond), Bool("duplicate", false), Uint("lanes", 16))
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, l.Process(), l.Drain()); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("not one line: %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, line)
	}
	if rec["level"] != "info" || rec["proc"] != "router" || rec["msg"] != `migrate "hold"` {
		t.Fatalf("record = %v", rec)
	}
	if rec["trace"] != tc.Trace.String() || rec["span"] != "abc" {
		t.Fatalf("trace correlation = %v", rec)
	}
	if rec["session"] != "s-1" || rec["epoch"] != float64(2) || rec["hold_ns"] != float64(3e6) {
		t.Fatalf("fields = %v", rec)
	}
	if rec["duplicate"] != false {
		t.Fatalf("bool field = %v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
		t.Fatalf("ts: %v", err)
	}
}

func TestSinkMirrorsAtLevel(t *testing.T) {
	var sink bytes.Buffer
	l := New(Config{Level: LevelDebug, Cap: 16, Sink: &sink, SinkLevel: LevelWarn, Process: "r1"})
	l.Info("quiet")
	l.Error("loud", Str("why", "boom"))
	if n := strings.Count(sink.String(), "\n"); n != 1 {
		t.Fatalf("sink lines = %d, want 1:\n%s", n, sink.String())
	}
	if !strings.Contains(sink.String(), `"msg":"loud"`) {
		t.Fatalf("sink = %s", sink.String())
	}
	// Both records still land in the ring.
	if got := l.Drain(); len(got) != 2 {
		t.Fatalf("ring records = %d", len(got))
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError, LevelOff} {
		got, err := ParseLevel(lv.String())
		if err != nil || got != lv {
			t.Fatalf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := ParseLevel("loudest"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
}

func TestHandlerDrainAndSetLevel(t *testing.T) {
	l := New(Config{Level: LevelInfo, Cap: 16, Process: "r2"})
	l.Info("hello", Str("k", "v"))
	h := Handler(l)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/logz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"msg":"hello"`) {
		t.Fatalf("GET /logz = %d %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/logz", strings.NewReader(`{"level":"debug"}`)))
	if rec.Code != 200 || l.Level() != LevelDebug {
		t.Fatalf("POST /logz = %d, level %v", rec.Code, l.Level())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/logz", strings.NewReader(`{"level":"nope"}`)))
	if rec.Code != 400 {
		t.Fatalf("bad level = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/logz", nil))
	if rec.Code != 405 {
		t.Fatalf("DELETE = %d", rec.Code)
	}
}
