package log

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler exposes a Logger over HTTP (the /logz endpoint): GET drains
// the ring as JSON lines; POST with {"level":"debug"} retunes the
// minimum severity at runtime.
func Handler(l *Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Esthera-Log-Dropped", strconv.FormatInt(l.Dropped(), 10))
			_ = WriteJSONLines(w, l.Process(), l.Drain())
		case http.MethodPost:
			var req struct {
				Level string `json:"level"`
			}
			dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			lv, err := ParseLevel(req.Level)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			l.SetLevel(lv)
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"level":"` + lv.String() + `"}` + "\n"))
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
