package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
)

func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// WantsPrometheus decides the /metrics response format for a request.
// The explicit ?format= query parameter wins ("prometheus" or "json");
// otherwise an Accept header preferring text/plain or OpenMetrics
// selects the Prometheus text exposition. The default stays JSON so
// existing scrapers keep working.
func WantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "text/plain", "application/openmetrics-text":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

// ServePrometheus writes the registry as a Prometheus text exposition
// HTTP response.
func (r *Registry) ServePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", PrometheusContentType)
	_ = r.WritePrometheus(w)
}

// TraceHandler exposes a Tracer over HTTP: GET drains the buffered
// spans (?format=raw for the nanosecond wire format, Chrome
// trace-event JSON otherwise); POST with {"enabled": true|false}
// toggles recording.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			events := t.Drain()
			w.Header().Set("Content-Type", "application/json")
			if r.URL.Query().Get("format") == "raw" {
				meta := TraceMeta{Process: t.Process(), EpochUnixNano: t.EpochUnixNano(), Dropped: t.Dropped()}
				_ = EncodeTrace(w, meta, events)
				return
			}
			_ = WriteChromeTrace(w, events)
		case http.MethodPost:
			var req struct {
				Enabled bool `json:"enabled"`
			}
			if err := decodeJSONBody(r, &req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			t.SetEnabled(req.Enabled)
			w.Header().Set("Content-Type", "application/json")
			if req.Enabled {
				_, _ = w.Write([]byte(`{"enabled":true}` + "\n"))
			} else {
				_, _ = w.Write([]byte(`{"enabled":false}` + "\n"))
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
