package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestMergeTracesAlignsAndFindsCrossProcess(t *testing.T) {
	trace := NewTraceID()
	base := int64(1_000_000_000_000) // router epoch, ns
	// The replica's clock runs 500µs ahead of the router's; its epoch
	// reads later than it actually was.
	offset := int64(500_000)
	procs := []ProcessTrace{
		{
			Meta: TraceMeta{Process: "router", EpochUnixNano: base},
			Events: []Event{
				{Name: "ingress", Trace: trace, Span: 1, TS: 0, Dur: 4 * time.Millisecond},
				{Name: "forward", Trace: trace, Span: 2, Parent: 1, TS: time.Millisecond, Dur: 2 * time.Millisecond},
			},
		},
		{
			Meta:     TraceMeta{Process: "r1", EpochUnixNano: base + offset},
			OffsetNS: offset,
			Events: []Event{
				{Name: "request", Trace: trace, Span: 3, Parent: 2, TS: 2 * time.Millisecond, Dur: time.Millisecond},
				{Name: "round", TS: 2500 * time.Microsecond, Dur: 300 * time.Microsecond},
			},
		},
	}
	var buf bytes.Buffer
	stats, cross, err := MergeTraces(&buf, procs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processes != 2 || stats.Events != 4 || stats.Traces != 1 || stats.CrossProcessTraces != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(cross) != 1 || cross[0].Trace != trace {
		t.Fatalf("cross = %+v", cross)
	}
	if len(cross[0].Processes) != 2 || cross[0].Processes[0] != "r1" || cross[0].Processes[1] != "router" {
		t.Fatalf("cross processes = %v", cross[0].Processes)
	}

	// The output is schema-valid Chrome JSON with two process_name
	// metadata records and offset-corrected timestamps: the replica's
	// "request" at local 2ms with a +500µs clock offset lands at 2ms on
	// the unified (router) timeline, not 2.5ms.
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("merged output is not chrome JSON: %v", err)
	}
	metaCount := 0
	var requestTS float64 = -1
	for _, ev := range out.TraceEvents {
		if ev["ph"] == "M" {
			metaCount++
			continue
		}
		if ev["name"] == "request" {
			requestTS = ev["ts"].(float64)
			if args, ok := ev["args"].(map[string]any); !ok || args["trace"] != trace.String() {
				t.Fatalf("request lost trace arg: %+v", ev)
			}
			if pid := ev["pid"].(float64); pid != 2 {
				t.Fatalf("request pid = %v, want 2", pid)
			}
		}
	}
	if metaCount != 2 {
		t.Fatalf("metadata records = %d, want 2", metaCount)
	}
	if requestTS != 2000 { // microseconds
		t.Fatalf("request unified ts = %vus, want 2000us", requestTS)
	}
}

func TestMergeTracesGroupsDrainsOfOneProcess(t *testing.T) {
	procs := []ProcessTrace{
		{Meta: TraceMeta{Process: "r1", EpochUnixNano: 100}, Events: []Event{{Name: "a"}}},
		{Meta: TraceMeta{Process: "r1", EpochUnixNano: 100}, Events: []Event{{Name: "b"}}},
	}
	stats, _, err := MergeTraces(nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processes != 1 || stats.Events != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestMergeTracesRejectsEmpty(t *testing.T) {
	if _, _, err := MergeTraces(nil, nil); err == nil {
		t.Fatal("merge of zero traces succeeded")
	}
}
