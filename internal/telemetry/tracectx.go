package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
)

// Distributed trace context. A request entering the sharded stack is
// minted a 16-byte trace ID at router ingress; every span the request
// touches — across processes — carries that ID plus a per-span 8-byte
// span ID and the span ID of its parent. The wire spelling follows the
// W3C traceparent header, version 00:
//
//	traceparent: 00-<32 hex trace id>-<16 hex span id>-01
//
// The same string rides in the HTTP header on router→replica forwards
// and in the Trace field of ESHD export/restore control frames, so
// migration and failover hops stay on the request's trace.

// TraceID is a 16-byte request identity, zero when absent. It marshals
// as a 32-character lowercase hex string in JSON.
type TraceID [16]byte

// IsZero reports whether the ID is unset. encoding/json's omitzero
// also consults this, keeping untraced events free of trace fields on
// the raw wire.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// MarshalJSON encodes the ID as a hex string ("" when zero).
func (id TraceID) MarshalJSON() ([]byte, error) {
	if id.IsZero() {
		return []byte(`""`), nil
	}
	buf := make([]byte, 0, 34)
	buf = append(buf, '"')
	buf = hex.AppendEncode(buf, id[:])
	return append(buf, '"'), nil
}

// UnmarshalJSON decodes a 32-hex-character string; "" and null yield
// the zero ID.
func (id *TraceID) UnmarshalJSON(data []byte) error {
	s := string(data)
	if s == "null" || s == `""` {
		*id = TraceID{}
		return nil
	}
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return fmt.Errorf("telemetry: trace id is not a JSON string: %s", s)
	}
	return id.parseHex(s[1 : len(s)-1])
}

func (id *TraceID) parseHex(s string) error {
	if len(s) != 32 {
		return fmt.Errorf("telemetry: trace id %q is not 32 hex characters", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return fmt.Errorf("telemetry: bad trace id %q: %v", s, err)
	}
	return nil
}

// TraceContext is the propagated pair: the request's trace ID and the
// span ID of the caller's span, which children record as their parent.
type TraceContext struct {
	Trace TraceID
	Span  uint64
}

// Valid reports whether the context carries a real trace.
func (tc TraceContext) Valid() bool { return !tc.Trace.IsZero() }

// TraceHeader is the HTTP header carrying the trace context.
const TraceHeader = "traceparent"

// HeaderValue renders the context in W3C traceparent form.
func (tc TraceContext) HeaderValue() string {
	var span [8]byte
	binary.BigEndian.PutUint64(span[:], tc.Span)
	return "00-" + tc.Trace.String() + "-" + hex.EncodeToString(span[:]) + "-01"
}

// ParseTraceParent parses a traceparent value. Unknown versions are
// accepted as long as the trace-id/span-id fields parse; malformed or
// all-zero values return ok=false.
func ParseTraceParent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 3 || len(parts[0]) != 2 {
		return TraceContext{}, false
	}
	var tc TraceContext
	if tc.Trace.parseHex(parts[1]) != nil {
		return TraceContext{}, false
	}
	var span [8]byte
	if len(parts[2]) != 16 {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(span[:], []byte(parts[2])); err != nil {
		return TraceContext{}, false
	}
	tc.Span = binary.BigEndian.Uint64(span[:])
	return tc, tc.Valid()
}

// NewTraceID mints a random 16-byte trace ID.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := crand.Read(id[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// counter so tracing degrades rather than panics.
		binary.BigEndian.PutUint64(id[:8], spanSalt)
		binary.BigEndian.PutUint64(id[8:], spanCounter.Add(1))
	}
	return id
}

// spanSalt perturbs span IDs per process so two processes minting the
// same counter values never collide on a merged timeline.
var spanSalt = func() uint64 {
	var b [8]byte
	crand.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}()

var spanCounter atomic.Uint64

// NewSpanID mints a process-unique, never-zero span ID. Cheap (one
// atomic add plus a mix) and allocation-free, so callers may mint
// before checking whether tracing is enabled.
//
//esthera:hotpath noalloc
func NewSpanID() uint64 {
	for {
		if id := mix64(spanCounter.Add(1) ^ spanSalt); id != 0 {
			return id
		}
	}
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over the
// counter, so sequential mints look random without a generator lock.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// traceKey is the context key for the propagated TraceContext. The
// boxed form is hoisted to a package variable because a literal
// traceKey{} argument reports "escapes to heap" under escape analysis
// (zero-size boxes never allocate at runtime, but the noalloc ratchet
// counts diagnostics, not bytes).
type traceKey struct{}

var traceKeyBoxed any = traceKey{}

// ContextWithTrace returns a context carrying tc; requests thread it
// from HTTP ingress down to the scheduler.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKeyBoxed, tc)
}

// TraceFromContext extracts the propagated trace context, if any.
//
//esthera:hotpath noalloc
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceKeyBoxed).(TraceContext)
	return tc, ok && tc.Valid()
}
