// Package metrics evaluates filter estimation accuracy against scenario
// ground truth. The accuracy experiments (Figs. 6, 7, 9) report "averages
// from runs over time steps for each configuration"; this package
// provides the per-run tracking loop, the error series statistics, and
// multi-run averaging with common random numbers (the same measurement
// noise realization is replayed for every filter configuration under the
// same run seed, isolating configuration effects — DESIGN.md §7).
package metrics

import (
	"fmt"
	"math"

	"esthera/internal/filter"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// Series is the per-step tracked-position error of one run.
type Series struct {
	Err []float64
}

// Mean returns the mean error over all steps.
func (s Series) Mean() float64 { return s.MeanAfter(0) }

// MeanAfter returns the mean error over steps after a burn-in prefix.
func (s Series) MeanAfter(burn int) float64 {
	if burn >= len(s.Err) {
		return math.NaN()
	}
	sum := 0.0
	for _, e := range s.Err[burn:] {
		sum += e
	}
	return sum / float64(len(s.Err)-burn)
}

// RMSE returns the root-mean-square error over all steps.
func (s Series) RMSE() float64 {
	if len(s.Err) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, e := range s.Err {
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(s.Err)))
}

// Final returns the last-step error.
func (s Series) Final() float64 {
	if len(s.Err) == 0 {
		return math.NaN()
	}
	return s.Err[len(s.Err)-1]
}

// Converged reports whether the mean error over the trailing window is
// below threshold — the Fig. 8 convergence criterion.
func (s Series) Converged(threshold float64, window int) bool {
	if window > len(s.Err) {
		window = len(s.Err)
	}
	if window == 0 {
		return false
	}
	sum := 0.0
	for _, e := range s.Err[len(s.Err)-window:] {
		sum += e
	}
	return sum/float64(window) < threshold
}

// Run drives f through steps rounds of sc, synthesizing measurements from
// the ground truth with noise drawn from a stream derived from measSeed
// (so two filters evaluated with the same measSeed see identical data).
// It returns the per-step tracked-position error series.
func Run(f filter.Filter, sc model.Scenario, steps int, measSeed uint64) Series {
	m := sc.Model()
	measR := rng.New(rng.NewPhiloxStream(measSeed, 0x4D53)) // "MS"
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	errs := make([]float64, steps)
	for k := 1; k <= steps; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		m.Measure(z, truth, measR)
		est := f.Step(u, z)
		ex, ey := m.TrackedPosition(est.State)
		tx, ty := m.TrackedPosition(truth)
		errs[k-1] = math.Hypot(ex-tx, ey-ty)
	}
	return Series{Err: errs}
}

// Aggregate summarizes multiple runs.
type Aggregate struct {
	Runs      int
	MeanError float64 // mean over runs of per-run mean error
	RMSE      float64 // mean over runs of per-run RMSE
	StdDev    float64 // std dev across runs of the per-run mean error
}

// String renders the aggregate compactly.
func (a Aggregate) String() string {
	return fmt.Sprintf("runs=%d mean=%.4f rmse=%.4f sd=%.4f", a.Runs, a.MeanError, a.RMSE, a.StdDev)
}

// Average evaluates a filter configuration over several independent runs.
// newFilter is called once per run with a derived filter seed; the
// scenario and the measurement noise are also re-derived per run, but
// depend only on (baseSeed, run), so different configurations evaluated
// with the same baseSeed share ground truth and data (CRN).
func Average(
	newFilter func(seed uint64) (filter.Filter, error),
	newScenario func(run int) model.Scenario,
	steps, runs int,
	baseSeed uint64,
) (Aggregate, error) {
	if runs <= 0 || steps <= 0 {
		return Aggregate{}, fmt.Errorf("metrics: non-positive steps/runs %d/%d", steps, runs)
	}
	means := make([]float64, runs)
	rmses := make([]float64, runs)
	for run := 0; run < runs; run++ {
		f, err := newFilter(rng.StreamSeed(baseSeed, 2*run))
		if err != nil {
			return Aggregate{}, err
		}
		sc := newScenario(run)
		s := Run(f, sc, steps, rng.StreamSeed(baseSeed, 2*run+1))
		means[run] = s.Mean()
		rmses[run] = s.RMSE()
	}
	agg := Aggregate{Runs: runs}
	for run := 0; run < runs; run++ {
		agg.MeanError += means[run] / float64(runs)
		agg.RMSE += rmses[run] / float64(runs)
	}
	varSum := 0.0
	for run := 0; run < runs; run++ {
		d := means[run] - agg.MeanError
		varSum += d * d
	}
	if runs > 1 {
		agg.StdDev = math.Sqrt(varSum / float64(runs-1))
	}
	return agg, nil
}
