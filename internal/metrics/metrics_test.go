package metrics_test

import (
	"math"
	"testing"

	"esthera/internal/filter"
	"esthera/internal/metrics"
	"esthera/internal/model"
)

func TestSeriesStatistics(t *testing.T) {
	s := metrics.Series{Err: []float64{3, 4, 5}}
	if s.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", s.Mean())
	}
	if s.MeanAfter(1) != 4.5 {
		t.Fatalf("MeanAfter(1) = %v, want 4.5", s.MeanAfter(1))
	}
	if !math.IsNaN(s.MeanAfter(3)) {
		t.Fatal("MeanAfter past the end must be NaN")
	}
	wantRMSE := math.Sqrt((9.0 + 16 + 25) / 3)
	if math.Abs(s.RMSE()-wantRMSE) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", s.RMSE(), wantRMSE)
	}
	if s.Final() != 5 {
		t.Fatalf("Final = %v, want 5", s.Final())
	}
	empty := metrics.Series{}
	if !math.IsNaN(empty.RMSE()) || !math.IsNaN(empty.Final()) {
		t.Fatal("empty series stats must be NaN")
	}
}

func TestConverged(t *testing.T) {
	s := metrics.Series{Err: []float64{10, 10, 0.1, 0.1, 0.1}}
	if !s.Converged(0.5, 3) {
		t.Fatal("trailing window below threshold must converge")
	}
	if s.Converged(0.05, 3) {
		t.Fatal("threshold below trailing mean must not converge")
	}
	if s.Converged(0.5, 0) {
		t.Fatal("zero window must not converge")
	}
	// Window longer than series clamps.
	if s.Converged(1, 99) {
		t.Fatal("clamped window includes the bad prefix")
	}
}

func TestRunCommonRandomNumbers(t *testing.T) {
	// Two identical filters evaluated with the same measSeed see the same
	// data and produce identical series.
	mk := func() filter.Filter {
		f, err := filter.NewCentralized(model.NewUNGM(), 128, 5, filter.CentralizedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	scA := model.NewSimulated(model.NewUNGM(), 9)
	scB := model.NewSimulated(model.NewUNGM(), 9)
	a := metrics.Run(mk(), scA, 20, 77)
	b := metrics.Run(mk(), scB, 20, 77)
	for i := range a.Err {
		if a.Err[i] != b.Err[i] {
			t.Fatalf("CRN violated at step %d", i)
		}
	}
	// Different measurement seed → different series.
	scC := model.NewSimulated(model.NewUNGM(), 9)
	c := metrics.Run(mk(), scC, 20, 78)
	same := true
	for i := range a.Err {
		if a.Err[i] != c.Err[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different measurement seeds produced identical series")
	}
}

func TestAverage(t *testing.T) {
	agg, err := metrics.Average(
		func(seed uint64) (filter.Filter, error) {
			return filter.NewCentralized(model.NewUNGM(), 256, seed, filter.CentralizedOptions{})
		},
		func(run int) model.Scenario { return model.NewSimulated(model.NewUNGM(), uint64(run)) },
		30, 4, 11,
	)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 4 {
		t.Fatalf("runs = %d", agg.Runs)
	}
	if !(agg.MeanError > 0) || !(agg.RMSE >= agg.MeanError*0.5) {
		t.Fatalf("implausible aggregate %+v", agg)
	}
	if agg.String() == "" {
		t.Fatal("empty aggregate string")
	}
	if _, err := metrics.Average(nil, nil, 0, 0, 1); err == nil {
		t.Fatal("zero steps/runs must error")
	}
}
