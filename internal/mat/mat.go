// Package mat implements the small dense linear-algebra kernel set needed
// by the Kalman-filter baselines (EKF/UKF). The paper motivates particle
// filters by contrasting them with parametric filters "such as the
// extended or the unscented Kalman filter" (§I); the toolkit therefore
// ships both as baselines, and they need matrix products, Cholesky
// factorizations and SPD solves on state-dimension-sized matrices.
//
// Matrices are dense, row-major float64. Dimensions here are tiny
// (state dims ≤ ~50), so clarity wins over blocking/vectorization.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	checkSameShape(m, o)
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	checkSameShape(m, o)
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Mul returns the product m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("mat: incompatible product %d×%d · %d×%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("mat: incompatible MulVec %d×%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Symmetrize overwrites m with (m + mᵀ)/2, repairing the asymmetry that
// accumulates in covariance updates.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ. It
// returns an error if m is not (numerically) symmetric positive definite.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mat: Cholesky of non-square %d×%d", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("mat: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return l, nil
}

// SolveChol solves m·x = b for SPD m via Cholesky, for each column of b,
// returning x with the shape of b.
func (m *Matrix) SolveChol(b *Matrix) (*Matrix, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.Rows
	if b.Rows != n {
		return nil, fmt.Errorf("mat: rhs rows %d != %d", b.Rows, n)
	}
	x := b.Clone()
	// Forward substitution L·y = b.
	for col := 0; col < x.Cols; col++ {
		for i := 0; i < n; i++ {
			s := x.At(i, col)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * x.At(k, col)
			}
			x.Set(i, col, s/l.At(i, i))
		}
		// Back substitution Lᵀ·x = y.
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, col)
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x.At(k, col)
			}
			x.Set(i, col, s/l.At(i, i))
		}
	}
	return x, nil
}

// InverseSPD returns the inverse of an SPD matrix via Cholesky.
func (m *Matrix) InverseSPD() (*Matrix, error) {
	return m.SolveChol(Identity(m.Rows))
}

// LogDetSPD returns log(det(m)) for SPD m, computed stably from the
// Cholesky factor. Needed by Gaussian likelihood evaluations.
func (m *Matrix) LogDetSPD() (float64, error) {
	l, err := m.Cholesky()
	if err != nil {
		return 0, err
	}
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s, nil
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// OuterAdd accumulates s * (x·yᵀ) into m, the workhorse of covariance
// accumulation in the UKF.
func (m *Matrix) OuterAdd(s float64, x, y []float64) {
	if m.Rows != len(x) || m.Cols != len(y) {
		panic("mat: OuterAdd shape mismatch")
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		f := s * xv
		for j, yv := range y {
			row[j] += f * yv
		}
	}
}
