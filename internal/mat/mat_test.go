package mat

import (
	"math"
	"testing"
	"testing/quick"

	"esthera/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomSPD(n int, seed uint64) *Matrix {
	r := rng.New(rng.NewPhilox(seed))
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.Float64() - 0.5
	}
	// AᵀA + n·I is SPD.
	spd := a.T().Mul(a)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}

func TestMulIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.Mul(Identity(2))
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("M·I != M at %d", i)
		}
	}
	got2 := Identity(3).Mul(m)
	for i := range m.Data {
		if got2.Data[i] != m.Data[i] {
			t.Fatalf("I·M != M at %d", i)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("product wrong: %v, want %v", got.Data, want.Data)
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{7, 8, 9}
	got := a.MulVec(x)
	want := []float64{1*7 + 2*8 + 3*9, 4*7 + 5*8 + 6*9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T().T()
	if tt.Rows != m.Rows || tt.Cols != m.Cols {
		t.Fatal("double transpose changed shape")
	}
	for i := range m.Data {
		if tt.Data[i] != m.Data[i] {
			t.Fatal("double transpose changed data")
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	sum := a.Add(b)
	for _, v := range sum.Data {
		if v != 5 {
			t.Fatalf("Add wrong: %v", sum.Data)
		}
	}
	diff := sum.Sub(b)
	for i := range a.Data {
		if diff.Data[i] != a.Data[i] {
			t.Fatal("Sub(Add) != original")
		}
	}
	sc := a.Scale(2)
	for i := range a.Data {
		if sc.Data[i] != 2*a.Data[i] {
			t.Fatal("Scale wrong")
		}
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 4 {
		t.Fatal("operands mutated")
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 20} {
		m := randomSPD(n, uint64(n))
		l, err := m.Cholesky()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: L not lower triangular at (%d,%d)", n, i, j)
				}
			}
		}
		rec := l.Mul(l.T())
		for i := range m.Data {
			if !almostEqual(rec.Data[i], m.Data[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: L·Lᵀ != M at %d: %v vs %v", n, i, rec.Data[i], m.Data[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := m.Cholesky(); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	r := FromRows([][]float64{{1, 2, 3}})
	if _, err := r.Cholesky(); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveChol(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		m := randomSPD(n, uint64(100+n))
		r := rng.New(rng.NewPhilox(uint64(n)))
		xTrue := NewMatrix(n, 2)
		for i := range xTrue.Data {
			xTrue.Data[i] = r.Float64()*2 - 1
		}
		b := m.Mul(xTrue)
		x, err := m.SolveChol(b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range xTrue.Data {
			if !almostEqual(x.Data[i], xTrue.Data[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d: solve wrong at %d: %v vs %v", n, i, x.Data[i], xTrue.Data[i])
			}
		}
	}
}

func TestInverseSPD(t *testing.T) {
	m := randomSPD(6, 77)
	inv, err := m.InverseSPD()
	if err != nil {
		t.Fatal(err)
	}
	prod := m.Mul(inv)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-9) {
				t.Fatalf("M·M⁻¹ not identity at (%d,%d): %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestLogDetSPD(t *testing.T) {
	d := Diag([]float64{2, 3, 4})
	got, err := d.LogDetSPD()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Log(24), 1e-12) {
		t.Fatalf("logdet = %v, want %v", got, math.Log(24))
	}
}

func TestSymmetrize(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {4, 3}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("symmetrize wrong: %v", m.Data)
	}
}

func TestOuterAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.OuterAdd(2, []float64{1, 2}, []float64{3, 4, 5})
	want := []float64{6, 8, 10, 12, 16, 20}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("OuterAdd = %v, want %v", m.Data, want)
		}
	}
}

func TestDiagAndIdentity(t *testing.T) {
	d := Diag([]float64{1, 2})
	if d.At(0, 0) != 1 || d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatal("Diag wrong")
	}
	id := Identity(3)
	if id.At(2, 2) != 1 || id.At(0, 1) != 0 {
		t.Fatal("Identity wrong")
	}
}

func TestShapePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 2)
	mustPanic("Add", func() { a.Add(b) })
	mustPanic("Mul", func() { a.Mul(a) })
	mustPanic("MulVec", func() { a.MulVec([]float64{1}) })
	mustPanic("Symmetrize", func() { a.Symmetrize() })
	mustPanic("ragged FromRows", func() { FromRows([][]float64{{1}, {1, 2}}) })
	mustPanic("OuterAdd", func() { a.OuterAdd(1, []float64{1}, []float64{1}) })
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(rng.NewPhilox(seed))
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		p := 1 + r.Intn(5)
		a := NewMatrix(n, m)
		b := NewMatrix(m, p)
		for i := range a.Data {
			a.Data[i] = r.Float64() - 0.5
		}
		for i := range b.Data {
			b.Data[i] = r.Float64() - 0.5
		}
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
