package filter

import (
	"fmt"
	"math"

	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
)

// meanPropagator is the part of model.Linearizable the auxiliary particle
// filter needs: the deterministic one-step prediction.
type meanPropagator interface {
	model.Model
	StepMean(dst, src, u []float64, k int)
}

// APF is the auxiliary particle filter of Pitt & Shephard (1999), a
// classic refinement included as a baseline beyond the paper's scope: it
// "looks ahead" before resampling. Ancestors are selected with first-
// stage weights λᵢ ∝ wᵢ·p(z | μᵢ), where μᵢ is the deterministic
// prediction of particle i, so particles headed toward the measurement
// survive preferentially; the second-stage weights w = p(z|x)/p(z|μ_anc)
// correct the bias. On peaky likelihoods it needs markedly fewer
// particles than the bootstrap filter.
type APF struct {
	m   meanPropagator
	n   int
	dim int

	particles []float64
	next      []float64
	mu        []float64 // per-particle deterministic predictions
	lambda    []float64 // first-stage (auxiliary) weights
	muLL      []float64 // log p(z | μ_i)
	logw      []float64 // second-stage log-weights (carried)
	w         []float64
	idx       []int

	rs  resample.Resampler
	est Estimator
	r   *rng.Rand
	k   int
}

// NewAPF builds an auxiliary particle filter with n particles. The model
// must expose its deterministic prediction (StepMean); all bundled
// Linearizable models qualify.
func NewAPF(m model.Model, n int, seed uint64, est Estimator) (*APF, error) {
	mp, ok := m.(meanPropagator)
	if !ok {
		return nil, fmt.Errorf("filter: model %s does not expose StepMean (required by APF)", m.Name())
	}
	if n <= 0 {
		return nil, fmt.Errorf("filter: non-positive particle count %d", n)
	}
	f := &APF{m: mp, n: n, dim: m.StateDim(), rs: resample.Systematic{}, est: est}
	f.particles = make([]float64, n*f.dim)
	f.next = make([]float64, n*f.dim)
	f.mu = make([]float64, n*f.dim)
	f.lambda = make([]float64, n)
	f.muLL = make([]float64, n)
	f.logw = make([]float64, n)
	f.w = make([]float64, n)
	f.idx = make([]int, n)
	f.Reset(seed)
	return f, nil
}

// Name implements Filter.
func (f *APF) Name() string { return "apf" }

// Reset implements Filter.
func (f *APF) Reset(seed uint64) {
	f.r = rng.New(rng.NewPhiloxStream(seed, 0))
	f.k = 0
	initParticles(f.m, f.particles, f.r)
	for i := range f.logw {
		f.logw[i] = 0
	}
}

// Step implements Filter.
func (f *APF) Step(u, z []float64) Estimate {
	f.k++
	// First stage: look-ahead weights from the deterministic predictions.
	for i := 0; i < f.n; i++ {
		src := f.particles[i*f.dim : (i+1)*f.dim]
		mu := f.mu[i*f.dim : (i+1)*f.dim]
		f.m.StepMean(mu, src, u, f.k)
		f.muLL[i] = f.m.LogLikelihood(mu, z)
		f.lambda[i] = f.logw[i] + f.muLL[i]
	}
	maxL := math.Inf(-1)
	for _, l := range f.lambda {
		if l > maxL {
			maxL = l
		}
	}
	if math.IsInf(maxL, -1) || math.IsNaN(maxL) {
		for i := range f.lambda {
			f.lambda[i] = 1
		}
	} else {
		for i, l := range f.lambda {
			f.lambda[i] = math.Exp(l - maxL)
		}
	}
	// Select ancestors by the auxiliary weights.
	f.rs.Resample(f.idx, f.lambda, f.r)

	// Second stage: propagate the selected ancestors stochastically and
	// weight by the look-ahead correction.
	for i, anc := range f.idx {
		src := f.particles[anc*f.dim : (anc+1)*f.dim]
		dst := f.next[i*f.dim : (i+1)*f.dim]
		f.m.Step(dst, src, u, f.k, f.r)
		f.logw[i] = f.m.LogLikelihood(dst, z) - f.muLL[anc]
	}
	f.particles, f.next = f.next, f.particles
	maxLW := normalizeLogWeights(f.logw, f.w)
	est := estimateFrom(f.est, f.particles, f.w, f.dim, maxLW)

	// Second-stage weights carry into the next round's λ (no extra
	// resample: the ancestor selection already was one).
	return est
}
