package filter_test

import (
	"testing"

	"esthera/internal/filter"
	"esthera/internal/model"
)

func TestAPFValidation(t *testing.T) {
	// Stochastic volatility has no StepMean: APF must refuse it.
	if _, err := filter.NewAPF(model.NewStochasticVolatility(), 64, 1, filter.MaxWeight); err == nil {
		t.Fatal("APF accepted a model without StepMean")
	}
	if _, err := filter.NewAPF(model.NewUNGM(), 0, 1, filter.MaxWeight); err == nil {
		t.Fatal("APF accepted zero particles")
	}
}

func TestAPFTracksUNGM(t *testing.T) {
	f, err := filter.NewAPF(model.NewUNGM(), 512, 1, filter.MaxWeight)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const runs = 5
	for run := 0; run < runs; run++ {
		f.Reset(uint64(run + 1))
		sum += meanErr(t, f, 80, run)
	}
	if avg := sum / runs; avg > 5 {
		t.Fatalf("APF mean error %v on UNGM, want < 5", avg)
	}
}

func TestAPFBeatsBootstrapAtLowParticleCounts(t *testing.T) {
	// The look-ahead pays off when particles are scarce and the
	// likelihood peaky: compare at 32 particles, averaged over runs.
	const n, runs, steps = 32, 10, 60
	apf, err := filter.NewAPF(model.NewUNGM(), n, 1, filter.MaxWeight)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := filter.NewCentralized(model.NewUNGM(), n, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sumA, sumB float64
	for run := 0; run < runs; run++ {
		apf.Reset(uint64(run + 1))
		pf.Reset(uint64(run + 1))
		sumA += meanErr(t, apf, steps, run)
		sumB += meanErr(t, pf, steps, run)
	}
	// APF should not be worse; typically it is clearly better.
	if sumA > 1.15*sumB {
		t.Fatalf("APF error %v worse than bootstrap %v at %d particles", sumA/runs, sumB/runs, n)
	}
}

func TestAPFResetReproducible(t *testing.T) {
	f, err := filter.NewAPF(model.NewBearings(), 128, 9, filter.WeightedMean)
	if err != nil {
		t.Fatal(err)
	}
	a := meanErr(t, f, 30, 0)
	f.Reset(9)
	b := meanErr(t, f, 30, 0)
	if a != b {
		t.Fatalf("APF not reproducible: %v vs %v", a, b)
	}
}
