package filter

import (
	"math"
)

// Adaptive particle allocation (Demirel et al., arXiv:1310.4624,
// "adaptive distributed resampling"): instead of giving every sub-filter
// the same m particles, periodically re-divide the fixed particle budget
// by degeneracy — sub-filters whose effective sample size is healthy
// shrink, degenerating ones grow. The device pipeline realizes a
// reallocation by re-cutting the per-sub-filter windows of the SoA
// arena (kernels.Pipeline.Reallocate); total particle count, memory and
// wire formats are unchanged.

// AdaptConfig parameterizes the ESS-driven allocator.
type AdaptConfig struct {
	// Every triggers a reallocation check after every k-th round; 0 (the
	// default) disables adaptive allocation entirely.
	Every int
	// Gain in (0, 1] is the fraction of the distance to the ESS-derived
	// target allocation applied per reallocation (default 0.5). Lower
	// gains damp oscillation between competing sub-filters.
	Gain float64
	// MinWindow and MaxWindow clamp every window (defaults: a quarter of
	// and four times the configured per-sub-filter size). MinWindow is
	// additionally raised to hold the exchange traffic the topology
	// delivers (the pipeline rejects windows that cannot).
	MinWindow, MaxWindow int
}

// withDefaults resolves zero fields against the filter's shape:
// particlesPer is the configured uniform window, minFloor the smallest
// window the pipeline accepts (exchange incoming + 1).
func (c AdaptConfig) withDefaults(particlesPer, minFloor int) AdaptConfig {
	if c.Gain <= 0 || c.Gain > 1 {
		c.Gain = 0.5
	}
	if c.MinWindow <= 0 {
		c.MinWindow = particlesPer / 4
	}
	// The clamp range must contain the uniform window so every budget is
	// representable (the repair loop in AdaptiveWindows relies on it).
	if c.MinWindow > particlesPer {
		c.MinWindow = particlesPer
	}
	if c.MinWindow < minFloor {
		c.MinWindow = minFloor
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 4 * particlesPer
	}
	if c.MaxWindow < particlesPer {
		c.MaxWindow = particlesPer
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	return c
}

// AdaptiveWindows computes the next window partition from the current
// one and the per-sub-filter ESS fractions. Pure and deterministic — the
// same inputs always produce the same partition (the property the
// checkpoint/restore bit-exactness of adaptive runs rests on).
//
// Each sub-filter's need is its degeneracy 1 − essFrac, floored at 0.05
// so healthy sub-filters keep a survivable share; the target allocation
// divides the total budget proportionally to need; the new window moves
// a Gain-fraction of the way from current to target, clamps to
// [MinWindow, MaxWindow], and the remaining budget imbalance is repaired
// one particle at a time in sub-filter index order.
func AdaptiveWindows(cur []int, essFrac []float64, total int, cfg AdaptConfig) []int {
	n := len(cur)
	next := make([]int, n)
	need := make([]float64, n)
	sumNeed := 0.0
	for s := 0; s < n; s++ {
		f := essFrac[s]
		if math.IsNaN(f) || f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		d := 1 - f
		if d < 0.05 {
			d = 0.05
		}
		need[s] = d
		sumNeed += d
	}
	clamp := func(v int) int {
		if v < cfg.MinWindow {
			return cfg.MinWindow
		}
		if v > cfg.MaxWindow {
			return cfg.MaxWindow
		}
		return v
	}
	sum := 0
	for s := 0; s < n; s++ {
		target := float64(total) * need[s] / sumNeed
		moved := float64(cur[s]) + cfg.Gain*(target-float64(cur[s]))
		next[s] = clamp(int(math.Round(moved)))
		sum += next[s]
	}
	// Repair the budget in index order, one particle per pass step —
	// deterministic and clamp-respecting. Terminates: the clamped range
	// always admits sums on both sides of total (the uniform partition
	// is representable: validated MinWindow ≤ total/n ≤ MaxWindow).
	for sum != total {
		for s := 0; s < n && sum != total; s++ {
			if sum < total && next[s] < cfg.MaxWindow {
				next[s]++
				sum++
			} else if sum > total && next[s] > cfg.MinWindow {
				next[s]--
				sum--
			}
		}
	}
	return next
}

// maybeAdapt runs the allocator when the stride fires: reads the
// per-sub-filter ESS recorded inside the just-finished round at the
// resample decision point (the post-round log-weights are already reset
// and would lie), computes the next partition, and applies it to the
// pipeline. Called from Step after the round, so the resize happens
// between rounds — the next round's kernels see a consistent partition.
func (f *Parallel) maybeAdapt() {
	if f.adapt.Every <= 0 || f.k%f.adapt.Every != 0 {
		return
	}
	f.essScratch = f.p.ResampleESSFrac(f.essScratch[:0])
	next := AdaptiveWindows(f.p.Windows(), f.essScratch, f.TotalParticles(), f.adapt)
	// The partition is valid by construction; a rejection here would be
	// an allocator bug, and dropping the resize is strictly safer than
	// failing the round.
	_ = f.p.Reallocate(next)
}
