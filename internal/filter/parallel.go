package filter

import (
	"fmt"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/resample"
)

// Parallel is the many-core distributed particle filter — the paper's
// contribution — running on the device substrate with one work-group per
// sub-filter and the six kernels of §VI (see internal/kernels). Its
// algorithm is the same as Distributed; the two are cross-validated by
// tests.
type Parallel struct {
	p    *kernels.Pipeline
	dim  int
	k    int
	seed uint64
	// adapt is the resolved ESS-driven allocator config (Every == 0 when
	// disabled); essScratch is its reused SubESSFrac buffer.
	adapt      AdaptConfig
	essScratch []float64
}

// ParallelConfig maps DistributedConfig onto the kernel pipeline.
type ParallelConfig struct {
	// SubFilters (N), ParticlesPer (m), Scheme (X), ExchangeCount (t):
	// the Table I parameters.
	SubFilters    int
	ParticlesPer  int
	Scheme        exchange.Scheme
	ExchangeCount int
	// Resampler selects the resampling kernel (default RWS, the faster
	// choice at sub-filter sizes per Fig. 5).
	Resampler kernels.Algo
	// Policy defaults to Always.
	Policy resample.Policy
	// Streams selects "philox" (default) or "mtgp" sub-filter streams.
	Streams string
	// Estimator selects the global-estimate reduction (default
	// MaxWeight; WeightedMean uses the weighted-average kernel).
	Estimator Estimator
	// Adapt enables ESS-driven adaptive particle allocation when
	// Adapt.Every > 0: every k rounds the per-sub-filter windows are
	// re-divided by degeneracy (see AdaptConfig).
	Adapt AdaptConfig
}

// NewParallel builds the filter on dev.
func NewParallel(dev *device.Device, m model.Model, cfg ParallelConfig, seed uint64) (*Parallel, error) {
	scheme := cfg.Scheme
	if cfg.ExchangeCount == 0 {
		scheme = exchange.None
	}
	top, err := exchange.NewTopology(scheme, cfg.SubFilters)
	if err != nil {
		return nil, err
	}
	pipe, err := kernels.New(dev, m, kernels.Config{
		SubFilters:    cfg.SubFilters,
		ParticlesPer:  cfg.ParticlesPer,
		ExchangeCount: cfg.ExchangeCount,
		Topology:      top,
		Resampler:     cfg.Resampler,
		Policy:        cfg.Policy,
		Streams:       cfg.Streams,
		MeanEstimate:  cfg.Estimator == WeightedMean,
	}, seed)
	if err != nil {
		return nil, err
	}
	f := &Parallel{p: pipe, dim: m.StateDim(), seed: seed}
	if cfg.Adapt.Every > 0 {
		f.adapt = cfg.Adapt.withDefaults(cfg.ParticlesPer, pipe.MinWindowFloor())
	}
	return f, nil
}

// Name implements Filter.
func (f *Parallel) Name() string { return "parallel" }

// Reset implements Filter.
func (f *Parallel) Reset(seed uint64) {
	f.seed = seed
	f.k = 0
	f.p.Reset(seed)
}

// Step implements Filter. It drives the fused round (kernels.Pipeline.
// RoundFused): bit-identical to the unfused kernel-per-launch sequence,
// but with the group-local phases collapsed into one launch.
func (f *Parallel) Step(u, z []float64) Estimate {
	f.k++
	state, lw := f.p.RoundFused(u, z, f.k)
	f.maybeAdapt()
	// The pipeline reuses its estimate buffer; the Estimate escapes to
	// the caller, so copy.
	return Estimate{State: append([]float64(nil), state...), LogWeight: lw}
}

// Pipeline exposes the kernel pipeline (for the profiler-driven
// breakdown experiments and the serve layer's batch scheduler).
func (f *Parallel) Pipeline() *kernels.Pipeline { return f.p }

// StepIndex returns the number of rounds stepped since the last Reset.
func (f *Parallel) StepIndex() int { return f.k }

// Seed returns the seed of the last Reset (or construction).
func (f *Parallel) Seed() uint64 { return f.seed }

// ParallelSnapshot is a deep copy of a Parallel filter's state: the step
// counter plus the pipeline snapshot. Restoring it into a filter with the
// same configuration resumes the run bit-identically.
type ParallelSnapshot struct {
	Seed uint64            `json:"seed"`
	Step int               `json:"step"`
	Pipe *kernels.Snapshot `json:"pipe"`
}

// Snapshot captures the filter's state. Not safe to call concurrently
// with Step or Reset.
func (f *Parallel) Snapshot() *ParallelSnapshot {
	return &ParallelSnapshot{Seed: f.seed, Step: f.k, Pipe: f.p.Snapshot()}
}

// RestoreSnapshot overwrites the filter's state from a snapshot taken
// from an identically configured filter. Not safe to call concurrently
// with Step or Reset.
func (f *Parallel) RestoreSnapshot(s *ParallelSnapshot) error {
	if s == nil || s.Pipe == nil {
		return fmt.Errorf("filter: nil parallel snapshot")
	}
	if s.Step < 0 {
		return fmt.Errorf("filter: negative snapshot step %d", s.Step)
	}
	if err := f.p.Restore(s.Pipe); err != nil {
		return err
	}
	f.seed = s.Seed
	f.k = s.Step
	return nil
}

// StepBatch steps every filter in fs through one round with its own
// (u, z) inputs, coalescing the per-sub-filter kernels of all filters
// into shared launches on dev. Every filter must have been built on dev.
// Results are returned in input order. Long-lived callers (the serve
// scheduler) should hold a BatchStepper instead: this convenience
// wrapper rebuilds the batch scratch on every call.
func StepBatch(dev *device.Device, fs []*Parallel, us, zs [][]float64) ([]Estimate, error) {
	return NewBatchStepper(dev).StepBatch(fs, us, zs)
}

// BatchStepper carries the reusable scratch of the batched stepping
// path: the kernels.Batcher (merged-launch tables and closures) and the
// BatchRound entries with their estimate buffers. Steady-state batches
// allocate only the returned estimates. Not safe for concurrent use.
type BatchStepper struct {
	batcher *kernels.Batcher
	entries []kernels.BatchRound
	batch   []*kernels.BatchRound
}

// NewBatchStepper returns a stepper for filters built on dev.
func NewBatchStepper(dev *device.Device) *BatchStepper {
	return &BatchStepper{batcher: kernels.NewBatcher(dev)}
}

// StepBatch implements the package-level StepBatch contract with the
// stepper's reusable scratch.
func (bs *BatchStepper) StepBatch(fs []*Parallel, us, zs [][]float64) ([]Estimate, error) {
	if len(fs) != len(us) || len(fs) != len(zs) {
		return nil, fmt.Errorf("filter: batch length mismatch: %d filters, %d controls, %d measurements",
			len(fs), len(us), len(zs))
	}
	// Grow before taking entry pointers: append may move the backing
	// array, and the existing entries carry reusable State buffers.
	for len(bs.entries) < len(fs) {
		bs.entries = append(bs.entries, kernels.BatchRound{})
	}
	bs.batch = bs.batch[:0]
	for i, f := range fs {
		f.k++
		e := &bs.entries[i]
		e.P, e.U, e.Z, e.K = f.p, us[i], zs[i], f.k
		bs.batch = append(bs.batch, e)
	}
	if err := bs.batcher.Round(bs.batch); err != nil {
		// Roll the step counters back so a rejected batch is a no-op.
		for _, f := range fs {
			f.k--
		}
		return nil, err
	}
	out := make([]Estimate, len(fs))
	for i := range fs {
		e := &bs.entries[i]
		// Adaptive filters resize between rounds on this path too, so a
		// batched run tracks the solo Step sequence exactly. (The batcher
		// re-partitions by group size each round, so diverging window
		// shapes across filters are fine.)
		fs[i].maybeAdapt()
		// The entry's State buffer is reused next batch; the Estimate
		// escapes to the caller, so copy.
		out[i] = Estimate{State: append([]float64(nil), e.State...), LogWeight: e.LogW}
	}
	return out, nil
}

// TotalParticles returns N·m.
func (f *Parallel) TotalParticles() int {
	c := f.p.Config()
	return c.SubFilters * c.ParticlesPer
}
