package filter

import (
	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/resample"
)

// Parallel is the many-core distributed particle filter — the paper's
// contribution — running on the device substrate with one work-group per
// sub-filter and the six kernels of §VI (see internal/kernels). Its
// algorithm is the same as Distributed; the two are cross-validated by
// tests.
type Parallel struct {
	p    *kernels.Pipeline
	dim  int
	k    int
	seed uint64
}

// ParallelConfig maps DistributedConfig onto the kernel pipeline.
type ParallelConfig struct {
	// SubFilters (N), ParticlesPer (m), Scheme (X), ExchangeCount (t):
	// the Table I parameters.
	SubFilters    int
	ParticlesPer  int
	Scheme        exchange.Scheme
	ExchangeCount int
	// Resampler selects the resampling kernel (default RWS, the faster
	// choice at sub-filter sizes per Fig. 5).
	Resampler kernels.Algo
	// Policy defaults to Always.
	Policy resample.Policy
	// Streams selects "philox" (default) or "mtgp" sub-filter streams.
	Streams string
	// Estimator selects the global-estimate reduction (default
	// MaxWeight; WeightedMean uses the weighted-average kernel).
	Estimator Estimator
}

// NewParallel builds the filter on dev.
func NewParallel(dev *device.Device, m model.Model, cfg ParallelConfig, seed uint64) (*Parallel, error) {
	scheme := cfg.Scheme
	if cfg.ExchangeCount == 0 {
		scheme = exchange.None
	}
	top, err := exchange.NewTopology(scheme, cfg.SubFilters)
	if err != nil {
		return nil, err
	}
	pipe, err := kernels.New(dev, m, kernels.Config{
		SubFilters:    cfg.SubFilters,
		ParticlesPer:  cfg.ParticlesPer,
		ExchangeCount: cfg.ExchangeCount,
		Topology:      top,
		Resampler:     cfg.Resampler,
		Policy:        cfg.Policy,
		Streams:       cfg.Streams,
		MeanEstimate:  cfg.Estimator == WeightedMean,
	}, seed)
	if err != nil {
		return nil, err
	}
	return &Parallel{p: pipe, dim: m.StateDim(), seed: seed}, nil
}

// Name implements Filter.
func (f *Parallel) Name() string { return "parallel" }

// Reset implements Filter.
func (f *Parallel) Reset(seed uint64) {
	f.seed = seed
	f.k = 0
	f.p.Reset(seed)
}

// Step implements Filter.
func (f *Parallel) Step(u, z []float64) Estimate {
	f.k++
	state, lw := f.p.Round(u, z, f.k)
	return Estimate{State: state, LogWeight: lw}
}

// Pipeline exposes the kernel pipeline (for the profiler-driven
// breakdown experiments).
func (f *Parallel) Pipeline() *kernels.Pipeline { return f.p }

// TotalParticles returns N·m.
func (f *Parallel) TotalParticles() int {
	c := f.p.Config()
	return c.SubFilters * c.ParticlesPer
}
