package filter

import (
	"fmt"
	"math"

	"esthera/internal/exchange"
	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
	"esthera/internal/sortnet"
)

// DistributedConfig collects the distributed-filter parameters of
// Table I plus the algorithmic choices of §IV.
type DistributedConfig struct {
	// SubFilters is N, the network size (Table I).
	SubFilters int
	// ParticlesPer is m, the sub-filter size (Table I).
	ParticlesPer int
	// Scheme is X, the exchange topology (Table I).
	Scheme exchange.Scheme
	// ExchangeCount is t, particles sent per neighbor pair (Table I).
	ExchangeCount int
	// Resampler defaults to RWS (the paper's parallel choice; Vose is
	// never faster at sub-filter sizes, Fig. 5).
	Resampler resample.Resampler
	// Policy defaults to Always (§IV: "frequent resampling generally
	// yields better results").
	Policy resample.Policy
	// Estimator defaults to MaxWeight.
	Estimator Estimator
}

// withDefaults validates cfg and fills defaults.
func (cfg DistributedConfig) withDefaults() (DistributedConfig, *exchange.Topology, error) {
	if cfg.SubFilters <= 0 {
		return cfg, nil, fmt.Errorf("filter: non-positive sub-filter count %d", cfg.SubFilters)
	}
	if cfg.ParticlesPer <= 0 {
		return cfg, nil, fmt.Errorf("filter: non-positive sub-filter size %d", cfg.ParticlesPer)
	}
	if cfg.ExchangeCount < 0 {
		return cfg, nil, fmt.Errorf("filter: negative exchange count %d", cfg.ExchangeCount)
	}
	if cfg.ExchangeCount == 0 {
		cfg.Scheme = exchange.None
	}
	if cfg.Resampler == nil {
		cfg.Resampler = resample.RWS{}
	}
	if cfg.Policy == nil {
		cfg.Policy = resample.Always{}
	}
	top, err := exchange.NewTopology(cfg.Scheme, cfg.SubFilters)
	if err != nil {
		return cfg, nil, err
	}
	// Incoming replacements must leave at least one native particle.
	incoming := top.MaxDegree() * cfg.ExchangeCount
	if cfg.Scheme == exchange.AllToAll {
		incoming = cfg.ExchangeCount
	}
	if incoming >= cfg.ParticlesPer {
		return cfg, nil, fmt.Errorf("filter: %d incoming exchange particles >= sub-filter size %d",
			incoming, cfg.ParticlesPer)
	}
	return cfg, top, nil
}

// Distributed is the sequential reference implementation of the paper's
// distributed particle filter (Algorithm 2): N independent sub-filters of
// m particles each; per round every sub-filter samples, weights, sorts,
// contributes to the global estimate, exchanges its best t particles with
// its topological neighbors, and resamples locally.
type Distributed struct {
	m   model.Model
	cfg DistributedConfig
	top *exchange.Topology
	dim int

	particles []float64 // N*m*dim
	next      []float64
	logw      []float64 // N*m, accumulated since last local resample
	w         []float64 // scratch linear weights per sub-filter round
	sortIdx   []int     // N*m permutation scratch
	drawIdx   []int     // m resample scratch
	outbox    []float64 // N*t*(dim+1): top-t states + logw per sub-filter
	poolIdx   []int     // all-to-all selection scratch

	streams  []*rng.Rand // one per sub-filter
	hostR    *rng.Rand   // host-side randomness (policy draws for all-to-all etc.)
	pairSeed uint64      // RandomPairs pairing seed
	k        int
}

// NewDistributed builds the sequential distributed filter.
func NewDistributed(m model.Model, cfg DistributedConfig, seed uint64) (*Distributed, error) {
	cfg, top, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Distributed{m: m, cfg: cfg, top: top, dim: m.StateDim()}
	n := cfg.SubFilters * cfg.ParticlesPer
	d.particles = make([]float64, n*d.dim)
	d.next = make([]float64, n*d.dim)
	d.logw = make([]float64, n)
	d.w = make([]float64, cfg.ParticlesPer)
	d.sortIdx = make([]int, n)
	d.drawIdx = make([]int, cfg.ParticlesPer)
	d.outbox = make([]float64, cfg.SubFilters*cfg.ExchangeCount*(d.dim+1))
	d.streams = make([]*rng.Rand, cfg.SubFilters)
	d.Reset(seed)
	return d, nil
}

// Name implements Filter.
func (d *Distributed) Name() string { return "distributed" }

// Config returns the validated configuration.
func (d *Distributed) Config() DistributedConfig { return d.cfg }

// TotalParticles returns N·m.
func (d *Distributed) TotalParticles() int { return d.cfg.SubFilters * d.cfg.ParticlesPer }

// Reset implements Filter.
func (d *Distributed) Reset(seed uint64) {
	d.k = 0
	d.pairSeed = seed
	d.hostR = rng.New(rng.NewPhiloxStream(seed, 0))
	for i := range d.streams {
		d.streams[i] = rng.New(rng.NewPhiloxStream(seed, i+1))
	}
	for s := 0; s < d.cfg.SubFilters; s++ {
		base := s * d.cfg.ParticlesPer * d.dim
		for i := 0; i < d.cfg.ParticlesPer; i++ {
			d.m.InitParticle(d.particles[base+i*d.dim:base+(i+1)*d.dim], d.streams[s])
		}
	}
	for i := range d.logw {
		d.logw[i] = 0
	}
}

// block returns sub-filter s's particle and log-weight slices.
func (d *Distributed) block(s int) (p []float64, logw []float64) {
	m := d.cfg.ParticlesPer
	return d.particles[s*m*d.dim : (s+1)*m*d.dim], d.logw[s*m : (s+1)*m]
}

// Step implements Filter, running Algorithm 2 once for every sub-filter.
func (d *Distributed) Step(u, z []float64) Estimate {
	d.k++
	m := d.cfg.ParticlesPer
	N := d.cfg.SubFilters

	// 1. Sample + weight (Algorithm 2 lines 3–7).
	for s := 0; s < N; s++ {
		r := d.streams[s]
		base := s * m * d.dim
		for i := 0; i < m; i++ {
			src := d.particles[base+i*d.dim : base+(i+1)*d.dim]
			dst := d.next[base+i*d.dim : base+(i+1)*d.dim]
			d.m.Step(dst, src, u, d.k, r)
			d.logw[s*m+i] += d.m.LogLikelihood(dst, z)
		}
	}
	d.particles, d.next = d.next, d.particles

	// 2. Sort each sub-filter by weight, descending (line 8), applying
	// the permutation to the particle payload.
	for s := 0; s < N; s++ {
		p, lw := d.block(s)
		idx := sortnet.ArgsortDescending(lw)
		nxt := d.next[s*m*d.dim : (s+1)*m*d.dim]
		nlw := d.w[:m]
		for i, src := range idx {
			copy(nxt[i*d.dim:(i+1)*d.dim], p[src*d.dim:(src+1)*d.dim])
			nlw[i] = lw[src]
		}
		copy(p, nxt)
		copy(lw, nlw)
	}

	// 3. Global estimate (line 9): best particle across sub-filters.
	est := d.estimate()

	// 4. Particle exchange (lines 10–14).
	d.exchangeParticles()

	// 5. Local resampling (lines 15–19).
	for s := 0; s < N; s++ {
		p, lw := d.block(s)
		normalizeLogWeights(lw, d.w[:m])
		if !d.cfg.Policy.ShouldResample(d.w[:m], d.streams[s]) {
			continue
		}
		d.cfg.Resampler.Resample(d.drawIdx, d.w[:m], d.streams[s])
		nxt := d.next[s*m*d.dim : (s+1)*m*d.dim]
		for i, src := range d.drawIdx {
			copy(nxt[i*d.dim:(i+1)*d.dim], p[src*d.dim:(src+1)*d.dim])
		}
		copy(p, nxt)
		for i := range lw {
			lw[i] = 0
		}
	}
	return est
}

// estimate condenses the (sorted) network state into the global estimate.
func (d *Distributed) estimate() Estimate {
	m := d.cfg.ParticlesPer
	if d.cfg.Estimator == WeightedMean {
		w := make([]float64, len(d.logw))
		maxLW := normalizeLogWeights(d.logw, w)
		return estimateFrom(WeightedMean, d.particles, w, d.dim, maxLW)
	}
	// Max weight: after sorting, each sub-filter's best is its slot 0.
	bestSub, bestLW := 0, math.Inf(-1)
	for s := 0; s < d.cfg.SubFilters; s++ {
		if lw := d.logw[s*m]; lw > bestLW {
			bestSub, bestLW = s, lw
		}
	}
	out := make([]float64, d.dim)
	base := bestSub * m * d.dim
	copy(out, d.particles[base:base+d.dim])
	return Estimate{State: out, LogWeight: bestLW}
}

// exchangeParticles implements the exchange schemes of §VI-E over the
// sorted particle blocks.
func (d *Distributed) exchangeParticles() {
	t := d.cfg.ExchangeCount
	if t == 0 || d.cfg.SubFilters == 1 || d.cfg.Scheme == exchange.None {
		return
	}
	m := d.cfg.ParticlesPer
	N := d.cfg.SubFilters
	stride := d.dim + 1

	// Stage every sub-filter's top-t particles (with their log-weights)
	// in the outbox; senders publish the same best set to every neighbor.
	for s := 0; s < N; s++ {
		p, lw := d.block(s)
		for i := 0; i < t; i++ {
			rec := d.outbox[(s*t+i)*stride : (s*t+i+1)*stride]
			copy(rec[:d.dim], p[i*d.dim:(i+1)*d.dim])
			rec[d.dim] = lw[i]
		}
	}

	if d.cfg.Scheme == exchange.RandomPairs {
		// Fresh gossip pairing every round: matched pairs swap their
		// best t particles into each other's worst slots.
		partner := exchange.Pairing(N, d.pairSeed, d.k)
		for s := 0; s < N; s++ {
			q := partner[s]
			if q == s {
				continue
			}
			p, lw := d.block(s)
			slot := m - t
			for i := 0; i < t; i++ {
				rec := d.outbox[(q*t+i)*stride : (q*t+i+1)*stride]
				copy(p[slot*d.dim:(slot+1)*d.dim], rec[:d.dim])
				lw[slot] = rec[d.dim]
				slot++
			}
		}
		return
	}

	if d.cfg.Scheme == exchange.AllToAll {
		// Select the globally best t of the pooled N·t and give the same
		// set to everyone (replacing each receiver's worst t).
		poolW := make([]float64, N*t)
		for i := range poolW {
			poolW[i] = d.outbox[i*stride+d.dim]
		}
		best := sortnet.TopK(poolW, t)
		for s := 0; s < N; s++ {
			p, lw := d.block(s)
			for i, src := range best {
				slot := m - t + i
				rec := d.outbox[src*stride : (src+1)*stride]
				copy(p[slot*d.dim:(slot+1)*d.dim], rec[:d.dim])
				lw[slot] = rec[d.dim]
			}
		}
		return
	}

	// Pairwise schemes: each receiver pulls t particles from every
	// neighbor into its worst slots.
	var nbuf []int
	for s := 0; s < N; s++ {
		nbuf = d.top.Neighbors(nbuf[:0], s)
		p, lw := d.block(s)
		slot := m - len(nbuf)*t
		for _, q := range nbuf {
			for i := 0; i < t; i++ {
				rec := d.outbox[(q*t+i)*stride : (q*t+i+1)*stride]
				copy(p[slot*d.dim:(slot+1)*d.dim], rec[:d.dim])
				lw[slot] = rec[d.dim]
				slot++
			}
		}
	}
}
