package filter_test

import (
	"strconv"
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/model"
	"esthera/internal/model/arm"
	"esthera/internal/rng"
)

// Filter-layer microbenchmarks: one Step of each implementation at equal
// total particle counts on the arm model (9 state variables).

func benchFilter(b *testing.B, mk func(m model.Model) (filter.Filter, error)) {
	b.Helper()
	m, sc, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
	if err != nil {
		b.Fatal(err)
	}
	f, err := mk(m)
	if err != nil {
		b.Fatal(err)
	}
	measR := rng.New(rng.NewPhilox(7))
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.TrueState(i+1, truth)
		sc.Control(i+1, u)
		m.Measure(z, truth, measR)
		f.Step(u, z)
	}
}

func BenchmarkCentralizedStep4096(b *testing.B) {
	benchFilter(b, func(m model.Model) (filter.Filter, error) {
		return filter.NewCentralized(m, 4096, 1, filter.CentralizedOptions{})
	})
}

func BenchmarkDistributedStep4096(b *testing.B) {
	benchFilter(b, func(m model.Model) (filter.Filter, error) {
		return filter.NewDistributed(m, filter.DistributedConfig{
			SubFilters: 32, ParticlesPer: 128, Scheme: exchange.Ring, ExchangeCount: 1,
		}, 1)
	})
}

func BenchmarkParallelStep4096(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		w := workers
		b.Run(itoa(w)+"workers", func(b *testing.B) {
			benchFilter(b, func(m model.Model) (filter.Filter, error) {
				dev := device.New(device.Config{Workers: w, LocalMemBytes: -1})
				return filter.NewParallel(dev, m, filter.ParallelConfig{
					SubFilters: 32, ParticlesPer: 128, Scheme: exchange.Ring, ExchangeCount: 1,
				}, 1)
			})
		})
	}
}

func BenchmarkGaussianStep4096(b *testing.B) {
	benchFilter(b, func(m model.Model) (filter.Filter, error) {
		return filter.NewGaussian(m, 4096, 1)
	})
}

func BenchmarkAPFStep4096(b *testing.B) {
	benchFilter(b, func(m model.Model) (filter.Filter, error) {
		return filter.NewAPF(m, 4096, 1, filter.MaxWeight)
	})
}

func BenchmarkEKFStep(b *testing.B) {
	benchFilter(b, func(m model.Model) (filter.Filter, error) {
		return filter.NewEKF(m.(model.Linearizable), 1), nil
	})
}

func BenchmarkUKFStep(b *testing.B) {
	benchFilter(b, func(m model.Model) (filter.Filter, error) {
		return filter.NewUKF(m.(model.Linearizable), 1), nil
	})
}

func itoa(n int) string { return strconv.Itoa(n) }
