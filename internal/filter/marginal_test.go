package filter_test

import (
	"math"
	"testing"

	"esthera/internal/filter"
	"esthera/internal/metrics"
	"esthera/internal/model"
)

// TestMarginalLikelihoodSelectsTrueParameters: the particle estimate of
// log p(z_1:k | θ) must be higher for the data-generating parameters than
// for badly wrong ones — the property that makes the filter a simulated-
// likelihood engine for parameter inference (Flury & Shephard).
func TestMarginalLikelihoodSelectsTrueParameters(t *testing.T) {
	wins := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		truthModel := model.NewStochasticVolatility() // φ = 0.98, σ = 0.16
		sc := model.NewSimulated(truthModel, seed)

		right, err := filter.NewCentralized(model.NewStochasticVolatility(), 512, seed, filter.CentralizedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wrongModel := model.NewStochasticVolatility()
		wrongModel.Phi = 0.2
		wrongModel.SigmaEta = 0.8
		wrong, err := filter.NewCentralized(wrongModel, 512, seed, filter.CentralizedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Same data for both (CRN via the same measSeed).
		metrics.Run(right, sc, 120, seed+100)
		metrics.Run(wrong, sc, 120, seed+100)
		if right.MarginalLogLikelihood() > wrong.MarginalLogLikelihood() {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("true parameters won only %d/%d likelihood comparisons", wins, trials)
	}
}

func TestMarginalLikelihoodFiniteAndResets(t *testing.T) {
	f, err := filter.NewCentralized(model.NewUNGM(), 256, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := model.NewSimulated(model.NewUNGM(), 3)
	metrics.Run(f, sc, 40, 5)
	ll := f.MarginalLogLikelihood()
	if math.IsNaN(ll) || math.IsInf(ll, 0) || ll == 0 {
		t.Fatalf("marginal log-likelihood %v", ll)
	}
	f.Reset(1)
	if f.MarginalLogLikelihood() != 0 {
		t.Fatal("Reset did not clear the marginal likelihood")
	}
	// Deterministic given seed and data.
	metrics.Run(f, sc, 40, 5)
	a := f.MarginalLogLikelihood()
	f.Reset(1)
	metrics.Run(f, sc, 40, 5)
	if b := f.MarginalLogLikelihood(); a != b {
		t.Fatalf("marginal likelihood not reproducible: %v vs %v", a, b)
	}
}
