package filter

import (
	"esthera/internal/model"
	"esthera/internal/rng"
)

// FRIM implements the finite-redraw importance-maximizing sampling of
// Chao et al. (SiPS 2010), discussed in the paper's related work
// (§III-B): during the sampling step, a drawn particle is rejected and
// redrawn until it satisfies a minimum weight, with the number of redraws
// bounded — the bound being "critical for real-time systems". FRIM
// reduces the total number of particles needed at the cost of extra
// (bounded) model evaluations per particle.
//
// The acceptance threshold is adaptive: a particle is accepted when its
// log-likelihood is within LogWindow of the previous round's best
// log-likelihood (so the threshold tracks the measurement scale without
// tuning).
type FRIM struct {
	// MaxRedraws bounds the redraw attempts per particle (0 disables
	// FRIM).
	MaxRedraws int
	// LogWindow is the acceptance band below the previous round's best
	// log-likelihood (default 3, ≈ e³ ≈ 20× weight ratio).
	LogWindow float64
}

// window returns the effective acceptance band.
func (f FRIM) window() float64 {
	if f.LogWindow == 0 {
		return 3
	}
	return f.LogWindow
}

// frimSampler tracks the adaptive threshold across rounds and performs
// the redraw loop for one filter instance.
type frimSampler struct {
	cfg        FRIM
	prevBestLW float64
	havePrev   bool
	// Redraws counts total extra model evaluations (diagnostics).
	Redraws int64
}

func newFRIMSampler(cfg FRIM) *frimSampler {
	return &frimSampler{cfg: cfg}
}

// reset clears the learned threshold (on filter Reset).
func (s *frimSampler) reset() {
	s.havePrev = false
	s.Redraws = 0
}

// enabled reports whether FRIM is active.
func (s *frimSampler) enabled() bool { return s != nil && s.cfg.MaxRedraws > 0 }

// step samples dst from the transition model, redrawing up to MaxRedraws
// times until the log-likelihood clears the adaptive threshold, and
// returns the accepted particle's log-likelihood.
func (s *frimSampler) step(m model.Model, dst, src, u, z []float64, k int, r *rng.Rand) float64 {
	m.Step(dst, src, u, k, r)
	lw := m.LogLikelihood(dst, z)
	if !s.havePrev {
		return lw
	}
	threshold := s.prevBestLW - s.cfg.window()
	for attempt := 0; attempt < s.cfg.MaxRedraws && lw < threshold; attempt++ {
		m.Step(dst, src, u, k, r)
		lw = m.LogLikelihood(dst, z)
		s.Redraws++
	}
	return lw
}

// observeRound records the round's best log-likelihood for the next
// round's threshold.
func (s *frimSampler) observeRound(bestLW float64) {
	s.prevBestLW = bestLW
	s.havePrev = true
}
