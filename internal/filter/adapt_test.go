package filter_test

import (
	"math"
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/model"
)

func adaptCfg() filter.AdaptConfig {
	return filter.AdaptConfig{Every: 2, Gain: 0.5, MinWindow: 4, MaxWindow: 64}
}

func newAdaptiveParallel(t *testing.T, algo kernels.Algo, seed uint64) *filter.Parallel {
	t.Helper()
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	f, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters:    8,
		ParticlesPer:  16,
		Scheme:        exchange.Ring,
		ExchangeCount: 1,
		Resampler:     algo,
		Adapt:         adaptCfg(),
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestAdaptiveWindowsComputation pins the allocator rule on hand-picked
// signals: the budget is exactly conserved, clamps hold, degenerate
// sub-filters gain particles from healthy ones, and the function is a
// pure deterministic map of its inputs.
func TestAdaptiveWindowsComputation(t *testing.T) {
	cfg := adaptCfg()
	cur := []int{16, 16, 16, 16}
	ess := []float64{1, 1, 0.05, 1} // sub-filter 2 is degenerating
	next := filter.AdaptiveWindows(cur, ess, 64, cfg)

	sum := 0
	for s, l := range next {
		sum += l
		if l < cfg.MinWindow || l > cfg.MaxWindow {
			t.Fatalf("window %d = %d outside [%d, %d]", s, l, cfg.MinWindow, cfg.MaxWindow)
		}
	}
	if sum != 64 {
		t.Fatalf("allocator leaked particles: sum %d, want 64", sum)
	}
	if next[2] <= cur[2] {
		t.Fatalf("degenerate sub-filter shrank: %d -> %d", cur[2], next[2])
	}
	for _, s := range []int{0, 1, 3} {
		if next[s] >= cur[s] {
			t.Fatalf("healthy sub-filter %d grew: %d -> %d", s, cur[s], next[s])
		}
	}

	again := filter.AdaptiveWindows(cur, ess, 64, cfg)
	for s := range next {
		if next[s] != again[s] {
			t.Fatal("AdaptiveWindows is not deterministic")
		}
	}
}

// TestAdaptiveWindowsDefensiveInputs feeds the allocator out-of-range
// and non-finite ESS fractions (the degeneracy signals that lie): NaN
// and negative read as fully degenerate, >1 as fully healthy, and the
// budget still balances under hard clamp pressure.
func TestAdaptiveWindowsDefensiveInputs(t *testing.T) {
	cfg := adaptCfg()
	cur := []int{16, 16, 16, 16}
	ess := []float64{math.NaN(), -0.3, 2.5, 0.9}
	next := filter.AdaptiveWindows(cur, ess, 64, cfg)
	sum := 0
	for s, l := range next {
		sum += l
		if l < cfg.MinWindow || l > cfg.MaxWindow {
			t.Fatalf("window %d = %d outside clamp", s, l)
		}
	}
	if sum != 64 {
		t.Fatalf("sum %d, want 64", sum)
	}
	if next[0] <= next[2] {
		t.Fatalf("NaN-ESS sub-filter (%d) must out-allocate the healthy one (%d)", next[0], next[2])
	}

	// Extreme clamp pressure: everything wants to shrink to MinWindow,
	// but the budget must still be placed somewhere.
	allHealthy := []float64{1, 1, 1, 1}
	next = filter.AdaptiveWindows([]int{4, 4, 4, 52}, allHealthy, 64, cfg)
	sum = 0
	for _, l := range next {
		sum += l
	}
	if sum != 64 {
		t.Fatalf("clamped repair lost particles: sum %d", sum)
	}
}

// TestParallelAdaptiveReallocates runs the full adaptive filter and
// checks the allocator actually fires, conserves the particle budget,
// and keeps the filter finite — for both the sorted (RWS) and
// sort-free (Metropolis) local schemes.
func TestParallelAdaptiveReallocates(t *testing.T) {
	for _, algo := range []kernels.Algo{kernels.AlgoRWS, kernels.AlgoMetropolis} {
		f := newAdaptiveParallel(t, algo, 1)
		for k := 1; k <= 20; k++ {
			z := []float64{0.4*float64(k) - 2}
			est := f.Step(nil, z)
			if math.IsNaN(est.State[0]) {
				t.Fatalf("%v: NaN estimate at step %d", algo, k)
			}
			sum := 0
			for _, l := range f.Pipeline().Windows() {
				sum += l
			}
			if sum != f.TotalParticles() {
				t.Fatalf("%v: step %d windows sum to %d, want %d", algo, k, sum, f.TotalParticles())
			}
		}
		if f.Pipeline().Reallocations() == 0 {
			t.Fatalf("%v: adaptive allocator never reallocated in 20 rounds", algo)
		}
		min, max := math.MaxInt, 0
		for _, l := range f.Pipeline().Windows() {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		cfg := adaptCfg()
		if min < cfg.MinWindow || max > cfg.MaxWindow {
			t.Fatalf("%v: windows [%d, %d] escaped clamp [%d, %d]", algo, min, max, cfg.MinWindow, cfg.MaxWindow)
		}
	}
}

// TestParallelAdaptiveSnapshotRoundTrip checks adaptive runs restore
// bit-exactly: the snapshot carries the resized windows and the restored
// filter re-derives the same reallocation decisions at the same rounds.
func TestParallelAdaptiveSnapshotRoundTrip(t *testing.T) {
	f := newAdaptiveParallel(t, kernels.AlgoMetropolis, 2)
	for k := 1; k <= 7; k++ {
		f.Step(nil, []float64{0.4*float64(k) - 2})
	}
	snap := f.Snapshot()

	g := newAdaptiveParallel(t, kernels.AlgoMetropolis, 99)
	if err := g.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for s, l := range g.Pipeline().Windows() {
		if l != f.Pipeline().Windows()[s] {
			t.Fatalf("restored window %d = %d, want %d", s, l, f.Pipeline().Windows()[s])
		}
	}
	for k := 8; k <= 16; k++ {
		z := []float64{0.4*float64(k) - 2}
		ef, eg := f.Step(nil, z), g.Step(nil, z)
		if ef.LogWeight != eg.LogWeight {
			t.Fatalf("step %d: log-weight diverged after restore: %v vs %v", k, ef.LogWeight, eg.LogWeight)
		}
		for d := range ef.State {
			if ef.State[d] != eg.State[d] {
				t.Fatalf("step %d: estimate diverged after restore", k)
			}
		}
		for s, l := range f.Pipeline().Windows() {
			if g.Pipeline().Windows()[s] != l {
				t.Fatalf("step %d: window partition diverged after restore", k)
			}
		}
	}
}

// TestParallelAdaptiveBatchMatchesSolo pins the serve-path contract:
// an adaptive filter stepped through the batcher produces the same
// trajectory (estimates and window partitions) as one stepped solo.
func TestParallelAdaptiveBatchMatchesSolo(t *testing.T) {
	solo := newAdaptiveParallel(t, kernels.AlgoRWS, 3)
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	batched, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters:    8,
		ParticlesPer:  16,
		Scheme:        exchange.Ring,
		ExchangeCount: 1,
		Resampler:     kernels.AlgoRWS,
		Adapt:         adaptCfg(),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	bs := filter.NewBatchStepper(dev)
	for k := 1; k <= 12; k++ {
		z := []float64{0.4*float64(k) - 2}
		es := solo.Step(nil, z)
		out, err := bs.StepBatch([]*filter.Parallel{batched}, [][]float64{nil}, [][]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		if es.LogWeight != out[0].LogWeight {
			t.Fatalf("step %d: batched log-weight diverged", k)
		}
		for d := range es.State {
			if es.State[d] != out[0].State[d] {
				t.Fatalf("step %d: batched estimate diverged", k)
			}
		}
		for s, l := range solo.Pipeline().Windows() {
			if batched.Pipeline().Windows()[s] != l {
				t.Fatalf("step %d: batched window partition diverged", k)
			}
		}
	}
	if batched.Pipeline().Reallocations() != solo.Pipeline().Reallocations() {
		t.Fatalf("reallocation counts diverged: batched %d, solo %d",
			batched.Pipeline().Reallocations(), solo.Pipeline().Reallocations())
	}
}
