package filter

import (
	"math"

	"esthera/internal/mat"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// UKF is the unscented Kalman filter baseline (scaled unscented
// transform, additive-noise form). Like the EKF it assumes a unimodal,
// near-Gaussian posterior; unlike the EKF it propagates 2n+1 sigma points
// through the full non-linear functions instead of linearizing.
type UKF struct {
	m model.Linearizable
	n int

	x []float64
	p *mat.Matrix
	k int

	alpha, beta, kappa float64
	wm, wc             []float64 // sigma-point weights
}

// NewUKF builds a UKF with the conventional scaled-UT parameters
// (α = 0.5, β = 2, κ = 0), moment-matching the model prior like NewEKF.
func NewUKF(m model.Linearizable, seed uint64) *UKF {
	f := &UKF{m: m, n: m.StateDim(), alpha: 0.5, beta: 2, kappa: 0}
	f.x = make([]float64, f.n)
	nSig := 2*f.n + 1
	f.wm = make([]float64, nSig)
	f.wc = make([]float64, nSig)
	lambda := f.alpha*f.alpha*(float64(f.n)+f.kappa) - float64(f.n)
	denom := float64(f.n) + lambda
	f.wm[0] = lambda / denom
	f.wc[0] = lambda/denom + (1 - f.alpha*f.alpha + f.beta)
	for i := 1; i < nSig; i++ {
		f.wm[i] = 1 / (2 * denom)
		f.wc[i] = f.wm[i]
	}
	f.Reset(seed)
	return f
}

// Name implements Filter.
func (f *UKF) Name() string { return "ukf" }

// Reset implements Filter.
func (f *UKF) Reset(seed uint64) {
	f.k = 0
	r := rng.New(rng.NewPhiloxStream(seed, 0))
	const samples = 256
	parts := make([]float64, samples*f.n)
	initParticles(f.m, parts, r)
	for d := range f.x {
		f.x[d] = 0
	}
	for i := 0; i < samples; i++ {
		for d := 0; d < f.n; d++ {
			f.x[d] += parts[i*f.n+d] / samples
		}
	}
	cov := mat.NewMatrix(f.n, f.n)
	diff := make([]float64, f.n)
	for i := 0; i < samples; i++ {
		for d := 0; d < f.n; d++ {
			diff[d] = parts[i*f.n+d] - f.x[d]
		}
		cov.OuterAdd(1.0/samples, diff, diff)
	}
	for d := 0; d < f.n; d++ {
		cov.Set(d, d, cov.At(d, d)+1e-9)
	}
	f.p = cov
}

// State returns the current mean estimate (aliased).
func (f *UKF) State() []float64 { return f.x }

// sigmaPoints generates the 2n+1 scaled sigma points around (x, p),
// returning them as rows of a (2n+1)×n matrix.
func (f *UKF) sigmaPoints() (*mat.Matrix, error) {
	n := f.n
	lambda := f.alpha*f.alpha*(float64(n)+f.kappa) - float64(n)
	scaled := f.p.Scale(float64(n) + lambda)
	scaled.Symmetrize()
	for d := 0; d < n; d++ {
		scaled.Set(d, d, scaled.At(d, d)+1e-12)
	}
	l, err := scaled.Cholesky()
	if err != nil {
		return nil, err
	}
	pts := mat.NewMatrix(2*n+1, n)
	for d := 0; d < n; d++ {
		pts.Set(0, d, f.x[d])
	}
	for i := 0; i < n; i++ {
		for d := 0; d < n; d++ {
			pts.Set(1+i, d, f.x[d]+l.At(d, i))
			pts.Set(1+n+i, d, f.x[d]-l.At(d, i))
		}
	}
	return pts, nil
}

// Step implements Filter.
func (f *UKF) Step(u, z []float64) Estimate {
	f.k++
	n := f.n
	zd := f.m.MeasurementDim()
	nSig := 2*n + 1

	pts, err := f.sigmaPoints()
	if err != nil {
		return f.estimate() // hold the previous state on breakdown
	}
	// Propagate sigma points through the dynamics.
	prop := mat.NewMatrix(nSig, n)
	row := make([]float64, n)
	for i := 0; i < nSig; i++ {
		f.m.StepMean(row, pts.Data[i*n:(i+1)*n], u, f.k)
		copy(prop.Data[i*n:(i+1)*n], row)
	}
	// Predicted mean and covariance.
	xPred := make([]float64, n)
	for i := 0; i < nSig; i++ {
		for d := 0; d < n; d++ {
			xPred[d] += f.wm[i] * prop.At(i, d)
		}
	}
	pPred := f.m.ProcessCov().Clone()
	diff := make([]float64, n)
	for i := 0; i < nSig; i++ {
		for d := 0; d < n; d++ {
			diff[d] = prop.At(i, d) - xPred[d]
		}
		pPred.OuterAdd(f.wc[i], diff, diff)
	}
	pPred.Symmetrize()

	// Transform through the measurement function.
	zPts := mat.NewMatrix(nSig, zd)
	zRow := make([]float64, zd)
	for i := 0; i < nSig; i++ {
		f.m.MeasureMean(zRow, prop.Data[i*n:(i+1)*n])
		copy(zPts.Data[i*zd:(i+1)*zd], zRow)
	}
	zPred := make([]float64, zd)
	for i := 0; i < nSig; i++ {
		for d := 0; d < zd; d++ {
			zPred[d] += f.wm[i] * zPts.At(i, d)
		}
	}
	s := f.m.MeasureCov().Clone()
	pxz := mat.NewMatrix(n, zd)
	zDiff := make([]float64, zd)
	for i := 0; i < nSig; i++ {
		for d := 0; d < zd; d++ {
			zDiff[d] = zPts.At(i, d) - zPred[d]
		}
		if w, ok := f.m.(residualWrapper); ok {
			w.WrapResidual(zDiff)
		}
		for d := 0; d < n; d++ {
			diff[d] = prop.At(i, d) - xPred[d]
		}
		s.OuterAdd(f.wc[i], zDiff, zDiff)
		pxz.OuterAdd(f.wc[i], diff, zDiff)
	}
	s.Symmetrize()

	res := make([]float64, zd)
	for d := 0; d < zd; d++ {
		res[d] = z[d] - zPred[d]
	}
	if w, ok := f.m.(residualWrapper); ok {
		w.WrapResidual(res)
	}
	kGainT, err := s.SolveChol(pxz.T()) // zd×n
	if err != nil {
		copy(f.x, xPred)
		f.p = pPred
		return f.estimate()
	}
	kGain := kGainT.T()
	dx := kGain.MulVec(res)
	for d := 0; d < n; d++ {
		f.x[d] = xPred[d] + dx[d]
	}
	f.p = pPred.Sub(kGain.Mul(s).Mul(kGain.T()))
	f.p.Symmetrize()
	for d := 0; d < n; d++ {
		if f.p.At(d, d) < 1e-12 || math.IsNaN(f.p.At(d, d)) {
			f.p.Set(d, d, 1e-12)
		}
	}
	return f.estimate()
}

func (f *UKF) estimate() Estimate {
	out := make([]float64, f.n)
	copy(out, f.x)
	return Estimate{State: out}
}
