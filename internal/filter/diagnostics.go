package filter

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// UniqueParticleFraction returns the fraction of distinct states in a
// flat particle array (n × dim). Resampling and particle exchange
// introduce duplicates; this is the direct measurement of the diversity
// loss the paper blames for All-to-All's poor accuracy (§VII-D1: "a loss
// of diversity among the whole particle population as the same particles
// are fed into all sub-filters").
func UniqueParticleFraction(particles []float64, dim int) float64 {
	if dim <= 0 || len(particles) == 0 {
		return 0
	}
	n := len(particles) / dim
	seen := make(map[uint64]struct{}, n)
	var buf [8]byte
	for i := 0; i < n; i++ {
		h := fnv.New64a()
		for _, v := range particles[i*dim : (i+1)*dim] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		seen[h.Sum64()] = struct{}{}
	}
	return float64(len(seen)) / float64(n)
}

// Particles exposes the current particle population of the sequential
// distributed filter (N·m × dim) for diagnostics.
func (d *Distributed) Particles() []float64 { return d.particles }

// Diversity returns the unique-particle fraction of the current
// population.
func (d *Distributed) Diversity() float64 {
	return UniqueParticleFraction(d.particles, d.dim)
}

// Diversity returns the unique-particle fraction of the parallel filter's
// current population.
func (f *Parallel) Diversity() float64 {
	return UniqueParticleFraction(f.p.Particles(), f.dim)
}
