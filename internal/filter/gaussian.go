package filter

import (
	"fmt"

	"esthera/internal/mat"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// Gaussian is the Gaussian particle filter (Kotecha & Djurić; compared in
// the paper's related work §III-B): the posterior is re-approximated by a
// single Gaussian each round, so no resampling step is needed at all —
// particles are redrawn from N(μ, Σ) instead. On (near-)Gaussian problems
// it matches the standard PF's accuracy at lower cost (Bolić et al.); on
// multimodal problems (UNGM) it degrades, which the variants ablation
// demonstrates.
type Gaussian struct {
	m   model.Model
	n   int
	dim int

	mu    []float64
	cov   *mat.Matrix
	chol  *mat.Matrix
	parts []float64
	logw  []float64
	w     []float64
	r     *rng.Rand
	k     int
}

// NewGaussian builds a Gaussian particle filter with n particles.
func NewGaussian(m model.Model, n int, seed uint64) (*Gaussian, error) {
	if n <= 1 {
		return nil, fmt.Errorf("filter: gaussian PF needs n > 1, got %d", n)
	}
	g := &Gaussian{m: m, n: n, dim: m.StateDim()}
	g.mu = make([]float64, g.dim)
	g.parts = make([]float64, n*g.dim)
	g.logw = make([]float64, n)
	g.w = make([]float64, n)
	g.Reset(seed)
	return g, nil
}

// Name implements Filter.
func (g *Gaussian) Name() string { return "gaussian" }

// Reset implements Filter: the initial Gaussian is fit to a prior sample.
func (g *Gaussian) Reset(seed uint64) {
	g.r = rng.New(rng.NewPhiloxStream(seed, 0))
	g.k = 0
	initParticles(g.m, g.parts, g.r)
	for i := range g.logw {
		g.logw[i] = 0
	}
	uniform := make([]float64, g.n)
	for i := range uniform {
		uniform[i] = 1
	}
	g.fitGaussian(uniform)
}

// fitGaussian sets (mu, cov, chol) to the weighted moments of parts.
func (g *Gaussian) fitGaussian(w []float64) {
	total := 0.0
	for _, v := range w {
		total += v
	}
	if !(total > 0) {
		for i := range w {
			w[i] = 1
		}
		total = float64(len(w))
	}
	for d := range g.mu {
		g.mu[d] = 0
	}
	for i := 0; i < g.n; i++ {
		wi := w[i] / total
		p := g.parts[i*g.dim : (i+1)*g.dim]
		for d, v := range p {
			g.mu[d] += wi * v
		}
	}
	cov := mat.NewMatrix(g.dim, g.dim)
	diff := make([]float64, g.dim)
	for i := 0; i < g.n; i++ {
		wi := w[i] / total
		p := g.parts[i*g.dim : (i+1)*g.dim]
		for d, v := range p {
			diff[d] = v - g.mu[d]
		}
		cov.OuterAdd(wi, diff, diff)
	}
	// Regularize so the Cholesky always exists.
	for d := 0; d < g.dim; d++ {
		cov.Set(d, d, cov.At(d, d)+1e-9)
	}
	g.cov = cov
	chol, err := cov.Cholesky()
	if err != nil {
		// Fall back to a diagonal fit.
		diag := mat.NewMatrix(g.dim, g.dim)
		for d := 0; d < g.dim; d++ {
			diag.Set(d, d, cov.At(d, d))
		}
		chol, _ = diag.Cholesky()
	}
	g.chol = chol
}

// Mean returns the current posterior mean (aliased; copy before keeping).
func (g *Gaussian) Mean() []float64 { return g.mu }

// Cov returns the current posterior covariance.
func (g *Gaussian) Cov() *mat.Matrix { return g.cov }

// Step implements Filter.
func (g *Gaussian) Step(u, z []float64) Estimate {
	g.k++
	// Redraw the particle cloud from the Gaussian posterior, propagate,
	// and weight.
	src := make([]float64, g.dim)
	for i := 0; i < g.n; i++ {
		g.drawGaussian(src)
		dst := g.parts[i*g.dim : (i+1)*g.dim]
		g.m.Step(dst, src, u, g.k, g.r)
		g.logw[i] = g.m.LogLikelihood(dst, z)
	}
	maxLW := normalizeLogWeights(g.logw, g.w)
	_ = maxLW
	g.fitGaussian(g.w)
	out := make([]float64, g.dim)
	copy(out, g.mu)
	return Estimate{State: out}
}

// drawGaussian samples dst ~ N(mu, cov) via the cached Cholesky factor.
func (g *Gaussian) drawGaussian(dst []float64) {
	for d := range dst {
		dst[d] = g.r.NormFloat64()
	}
	// dst = mu + L·dst, computed in place (lower-triangular, back to front).
	for i := g.dim - 1; i >= 0; i-- {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += g.chol.At(i, j) * dst[j]
		}
		dst[i] = g.mu[i] + s
	}
}
