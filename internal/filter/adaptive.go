package filter

import (
	"fmt"
	"math"

	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
)

// Adaptive is a KLD-sampling particle filter (Fox 2003): instead of a
// fixed particle count it draws, each round, just enough particles that
// the Kullback-Leibler divergence between the sample-based posterior and
// the true posterior is below Epsilon with confidence 1-δ. The bound
// depends on k, the number of histogram bins with support:
//
//	n ≥ (k-1)/(2ε) · (1 - 2/(9(k-1)) + sqrt(2/(9(k-1)))·z_{1-δ})³
//
// When the posterior is concentrated (few occupied bins) the filter runs
// with a fraction of MaxParticles — the "adaptive number of particles"
// efficiency idea, included here as a toolkit extension complementing the
// paper's fixed-size design (its real-time argument, §III-A, is exactly
// that data-dependent sizes are awkward on GPUs; this sequential
// implementation quantifies what that choice leaves on the table).
type Adaptive struct {
	m   model.Model
	dim int

	// Epsilon is the KLD bound (default 0.05); Z is z_{1-δ} (default
	// 2.326, δ = 0.01).
	epsilon, z float64
	minN, maxN int
	binWidths  []float64

	particles []float64 // capacity maxN × dim, first n valid
	next      []float64
	logw      []float64
	w         []float64
	n         int // current particle count

	rs  resample.Resampler
	r   *rng.Rand
	est Estimator
	k   int
}

// AdaptiveOptions configures NewAdaptive.
type AdaptiveOptions struct {
	// MinParticles / MaxParticles bound the adaptive size (defaults 64
	// and 8192).
	MinParticles, MaxParticles int
	// Epsilon is the KLD error bound (default 0.05).
	Epsilon float64
	// Z is the standard-normal quantile z_{1-δ} (default 2.326 ≈ 99%).
	Z float64
	// BinWidths sets the per-dimension histogram bin width for the
	// support count; nil uses 0.5 for every dimension.
	BinWidths []float64
	// Resampler defaults to systematic (the usual KLD pairing).
	Resampler resample.Resampler
	// Estimator defaults to MaxWeight.
	Estimator Estimator
}

// NewAdaptive builds a KLD-sampling filter for m.
func NewAdaptive(m model.Model, seed uint64, opts AdaptiveOptions) (*Adaptive, error) {
	a := &Adaptive{m: m, dim: m.StateDim()}
	a.minN = opts.MinParticles
	if a.minN == 0 {
		a.minN = 64
	}
	a.maxN = opts.MaxParticles
	if a.maxN == 0 {
		a.maxN = 8192
	}
	if a.minN <= 0 || a.maxN < a.minN {
		return nil, fmt.Errorf("filter: invalid adaptive bounds [%d,%d]", a.minN, a.maxN)
	}
	a.epsilon = opts.Epsilon
	if a.epsilon == 0 {
		a.epsilon = 0.05
	}
	a.z = opts.Z
	if a.z == 0 {
		a.z = 2.326
	}
	a.binWidths = opts.BinWidths
	if a.binWidths == nil {
		a.binWidths = make([]float64, a.dim)
		for i := range a.binWidths {
			a.binWidths[i] = 0.5
		}
	}
	if len(a.binWidths) != a.dim {
		return nil, fmt.Errorf("filter: %d bin widths for state dim %d", len(a.binWidths), a.dim)
	}
	a.rs = opts.Resampler
	if a.rs == nil {
		a.rs = resample.Systematic{}
	}
	a.est = opts.Estimator
	a.particles = make([]float64, a.maxN*a.dim)
	a.next = make([]float64, a.maxN*a.dim)
	a.logw = make([]float64, a.maxN)
	a.w = make([]float64, a.maxN)
	a.Reset(seed)
	return a, nil
}

// Name implements Filter.
func (a *Adaptive) Name() string { return "kld-adaptive" }

// Reset implements Filter.
func (a *Adaptive) Reset(seed uint64) {
	a.r = rng.New(rng.NewPhiloxStream(seed, 0))
	a.k = 0
	a.n = a.maxN
	initParticles(a.m, a.particles[:a.n*a.dim], a.r)
	for i := range a.logw {
		a.logw[i] = 0
	}
}

// N returns the current particle count (for diagnostics and tests).
func (a *Adaptive) N() int { return a.n }

// kldBound returns the particle count the KLD criterion requires for k
// occupied bins.
func (a *Adaptive) kldBound(k int) int {
	if k <= 1 {
		return a.minN
	}
	km1 := float64(k - 1)
	t := 1 - 2/(9*km1) + math.Sqrt(2/(9*km1))*a.z
	n := km1 / (2 * a.epsilon) * t * t * t
	if n < float64(a.minN) {
		return a.minN
	}
	if n > float64(a.maxN) {
		return a.maxN
	}
	return int(n)
}

// binKey quantizes a state into its histogram bin.
func (a *Adaptive) binKey(x []float64) string {
	// Fixed-width integer key; states live in modest ranges here.
	var buf [16]byte
	key := make([]byte, 0, a.dim*4)
	for d, v := range x {
		b := int64(math.Floor(v / a.binWidths[d]))
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		key = append(key, buf[:8]...)
	}
	return string(key)
}

// Step implements Filter: propagate and weight the current set, estimate,
// then resample with KLD-adapted size — new particles are drawn (with
// replacement, weight-proportional) until the bound for the occupied-bin
// count is met.
func (a *Adaptive) Step(u, z []float64) Estimate {
	a.k++
	for i := 0; i < a.n; i++ {
		src := a.particles[i*a.dim : (i+1)*a.dim]
		dst := a.next[i*a.dim : (i+1)*a.dim]
		a.m.Step(dst, src, u, a.k, a.r)
		a.logw[i] += a.m.LogLikelihood(dst, z)
	}
	a.particles, a.next = a.next, a.particles
	maxLW := normalizeLogWeights(a.logw[:a.n], a.w[:a.n])
	est := estimateFrom(a.est, a.particles[:a.n*a.dim], a.w[:a.n], a.dim, maxLW)

	// KLD resampling: draw until the bound for the current support is
	// satisfied (bounded by maxN).
	table := resample.NewAliasTable(a.w[:a.n])
	bins := make(map[string]struct{}, a.minN)
	out := 0
	required := a.minN
	for out < required && out < a.maxN {
		src := table.Sample(a.r)
		copy(a.next[out*a.dim:(out+1)*a.dim], a.particles[src*a.dim:(src+1)*a.dim])
		bins[a.binKey(a.next[out*a.dim:(out+1)*a.dim])] = struct{}{}
		out++
		required = a.kldBound(len(bins))
	}
	a.particles, a.next = a.next, a.particles
	a.n = out
	for i := 0; i < a.n; i++ {
		a.logw[i] = 0
	}
	return est
}
