package filter_test

import (
	"testing"

	"esthera/internal/filter"
	"esthera/internal/model"
	"esthera/internal/rng"
)

func TestAdaptiveValidation(t *testing.T) {
	m := model.NewUNGM()
	if _, err := filter.NewAdaptive(m, 1, filter.AdaptiveOptions{MinParticles: -1}); err == nil {
		t.Fatal("negative min accepted")
	}
	if _, err := filter.NewAdaptive(m, 1, filter.AdaptiveOptions{MinParticles: 100, MaxParticles: 10}); err == nil {
		t.Fatal("max < min accepted")
	}
	if _, err := filter.NewAdaptive(m, 1, filter.AdaptiveOptions{BinWidths: []float64{1, 2}}); err == nil {
		t.Fatal("wrong bin widths accepted")
	}
}

func TestAdaptiveTracksAndShrinks(t *testing.T) {
	f, err := filter.NewAdaptive(model.NewUNGM(), 1, filter.AdaptiveOptions{
		MinParticles: 64, MaxParticles: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 4096 {
		t.Fatalf("initial N = %d, want max", f.N())
	}
	sum := 0.0
	const runs = 4
	minSeen, maxSeen := 1<<30, 0
	for run := 0; run < runs; run++ {
		f.Reset(uint64(run + 1))
		sum += meanErr(t, f, 60, run)
		if f.N() < minSeen {
			minSeen = f.N()
		}
		if f.N() > maxSeen {
			maxSeen = f.N()
		}
	}
	if avg := sum / runs; avg > 5 {
		t.Fatalf("adaptive filter mean error %v, want < 5", avg)
	}
	// Adaptivity: the final particle counts must respect the bounds and
	// actually shrink below the maximum once the posterior concentrates.
	if minSeen < 64 || maxSeen > 4096 {
		t.Fatalf("particle count escaped bounds: [%d, %d]", minSeen, maxSeen)
	}
	if minSeen == 4096 {
		t.Fatal("KLD sizing never shrank the population")
	}
}

func TestAdaptiveConcentratedPosteriorUsesFewParticles(t *testing.T) {
	// Bearings with tiny noise: posterior concentrates fast → small N.
	m := model.NewBearings()
	f, err := filter.NewAdaptive(m, 1, filter.AdaptiveOptions{
		MinParticles: 32, MaxParticles: 2048,
		BinWidths: []float64{1, 1, 0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := model.NewSimulated(m, 5)
	runFilterSteps(t, f, sc, 30)
	if f.N() > 1024 {
		t.Fatalf("concentrated posterior still uses %d particles", f.N())
	}
}

func runFilterSteps(t *testing.T, f filter.Filter, sc model.Scenario, steps int) {
	t.Helper()
	m := sc.Model()
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	r := newTestRand()
	for k := 1; k <= steps; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		m.Measure(z, truth, r)
		f.Step(u, z)
	}
}

func TestRougheningPreservesTracking(t *testing.T) {
	plain, err := filter.NewCentralized(model.NewUNGM(), 256, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rough, err := filter.NewCentralized(model.NewUNGM(), 256, 1, filter.CentralizedOptions{Roughening: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var sumP, sumR float64
	const runs = 4
	for run := 0; run < runs; run++ {
		plain.Reset(uint64(run + 1))
		rough.Reset(uint64(run + 1))
		sumP += meanErr(t, plain, 60, run)
		sumR += meanErr(t, rough, 60, run)
	}
	if sumR > 1.5*sumP {
		t.Fatalf("roughening degraded tracking: %v vs %v", sumR/runs, sumP/runs)
	}
}

func TestRougheningRestoresDiversity(t *testing.T) {
	rough, err := filter.NewCentralized(model.NewUNGM(), 512, 1, filter.CentralizedOptions{Roughening: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := filter.NewCentralized(model.NewUNGM(), 512, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := model.NewSimulated(model.NewUNGM(), 3)
	runFilterSteps(t, rough, sc, 20)
	runFilterSteps(t, plain, sc, 20)
	dr := filter.UniqueParticleFraction(rough.Particles(), 1)
	dp := filter.UniqueParticleFraction(plain.Particles(), 1)
	if dr != 1 {
		t.Fatalf("roughened population not fully unique: %v", dr)
	}
	if dp >= 1 {
		t.Fatal("plain resampled population unexpectedly fully unique")
	}
}

func newTestRand() *rng.Rand { return rng.New(rng.NewPhilox(0xBEEF)) }
