// Package filter implements the estimation algorithms of the toolkit:
//
//   - Centralized: the sequential reference particle filter (Algorithm 1;
//     the paper's centralized C implementation, §VI).
//   - Distributed: the sequential reference of the paper's contribution —
//     a network of small sub-filters with local resampling and neighbor
//     particle exchange (Algorithm 2, §IV).
//   - Parallel: the many-core implementation of the same algorithm on the
//     device substrate, one work-group per sub-filter, with the six
//     kernels of §VI (see internal/kernels).
//   - Gaussian: the Gaussian particle filter of the related-work
//     comparisons (§III-B), which needs no resampling.
//   - GDPF / CDPF / RPA: the alternative distributed designs the paper
//     positions itself against (Bashi et al., Bolić et al.).
//   - EKF / UKF: the parametric baselines the introduction contrasts
//     particle filters with.
//
// All filters implement Filter and are driven identically by the
// experiment harness.
package filter

import (
	"fmt"
	"math"

	"esthera/internal/model"
	"esthera/internal/rng"
)

// Estimate is one filtering step's output.
type Estimate struct {
	// State is the estimated full state vector (owned by the caller after
	// return; filters must not reuse the backing array).
	State []float64
	// LogWeight is the unnormalized log-weight of the selected particle
	// for max-weight estimators; 0 for mean-type estimators.
	LogWeight float64
}

// Filter is a recursive state estimator. Step consumes the control u
// applied since the previous step and the measurement z taken at the new
// step, and returns the state estimate.
type Filter interface {
	Name() string
	Step(u, z []float64) Estimate
	// Reset reinitializes the filter from the model prior so one instance
	// can be reused across experiment runs. The seed re-derives all
	// random streams.
	Reset(seed uint64)
}

// Estimator selects how a particle set is condensed to a point estimate.
type Estimator int

// Estimator kinds.
const (
	// MaxWeight selects the particle with the highest weight — the
	// paper's global-estimate operator (§IV: "we select the particle with
	// the highest global weight").
	MaxWeight Estimator = iota
	// WeightedMean returns the weight-averaged state (the MMSE estimate).
	WeightedMean
)

// EstimatorByName maps a flag-friendly name ("max-weight" or "" for the
// paper's operator, "weighted-mean" for the MMSE estimate) to an
// Estimator.
func EstimatorByName(name string) (Estimator, error) {
	switch name {
	case "", "max-weight":
		return MaxWeight, nil
	case "weighted-mean":
		return WeightedMean, nil
	}
	return 0, fmt.Errorf("filter: unknown estimator %q", name)
}

// String returns the estimator name.
func (e Estimator) String() string {
	switch e {
	case MaxWeight:
		return "max-weight"
	case WeightedMean:
		return "weighted-mean"
	}
	return fmt.Sprintf("estimator(%d)", int(e))
}

// normalizeLogWeights converts log-weights to linear weights in place,
// stabilized by subtracting the maximum; returns the max log-weight.
func normalizeLogWeights(logw, w []float64) float64 {
	maxLW := math.Inf(-1)
	for _, lw := range logw {
		if lw > maxLW {
			maxLW = lw
		}
	}
	if math.IsInf(maxLW, -1) || math.IsNaN(maxLW) {
		for i := range w {
			w[i] = 1
		}
		return maxLW
	}
	for i, lw := range logw {
		w[i] = math.Exp(lw - maxLW)
	}
	return maxLW
}

// estimateFrom condenses a flat particle array (n particles × dim) with
// linear weights into an Estimate according to est.
func estimateFrom(est Estimator, particles []float64, w []float64, dim int, maxLogW float64) Estimate {
	n := len(w)
	out := make([]float64, dim)
	switch est {
	case WeightedMean:
		total := 0.0
		for i := 0; i < n; i++ {
			wi := w[i]
			total += wi
			p := particles[i*dim : (i+1)*dim]
			for d, v := range p {
				out[d] += wi * v
			}
		}
		if total > 0 {
			inv := 1 / total
			for d := range out {
				out[d] *= inv
			}
		}
		return Estimate{State: out}
	default: // MaxWeight
		best, bw := 0, math.Inf(-1)
		for i := 0; i < n; i++ {
			if w[i] > bw {
				best, bw = i, w[i]
			}
		}
		copy(out, particles[best*dim:(best+1)*dim])
		return Estimate{State: out, LogWeight: maxLogW + math.Log(bw)}
	}
}

// initParticles fills a flat particle array from the model prior.
func initParticles(m model.Model, particles []float64, r *rng.Rand) {
	dim := m.StateDim()
	n := len(particles) / dim
	for i := 0; i < n; i++ {
		m.InitParticle(particles[i*dim:(i+1)*dim], r)
	}
}
