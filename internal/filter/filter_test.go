package filter_test

import (
	"math"
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/metrics"
	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
)

// ungmScenario builds a fresh simulated UNGM scenario for a run index.
func ungmScenario(run int) model.Scenario {
	return model.NewSimulated(model.NewUNGM(), uint64(1000+run))
}

// meanErr runs f over the UNGM scenario and returns the mean |x̂ - x|.
func meanErr(t *testing.T, f filter.Filter, steps int, run int) float64 {
	t.Helper()
	s := metrics.Run(f, ungmScenario(run), steps, uint64(5000+run))
	return s.Mean()
}

func TestCentralizedTracksUNGM(t *testing.T) {
	f, err := filter.NewCentralized(model.NewUNGM(), 2000, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Average over a few runs for stability; the UNGM prior std is ~18
	// (stationary spread of the dynamics is ~±20), so mean error well
	// under 5 indicates genuine tracking.
	sum := 0.0
	const runs = 5
	for run := 0; run < runs; run++ {
		f.Reset(uint64(run + 1))
		sum += meanErr(t, f, 80, run)
	}
	if avg := sum / runs; avg > 5 {
		t.Fatalf("centralized PF mean error %v on UNGM, want < 5", avg)
	}
}

func TestMoreParticlesHelp(t *testing.T) {
	// 8 particles vs 4096 particles on the same data: the large filter
	// must be clearly better on average.
	small, err := filter.NewCentralized(model.NewUNGM(), 8, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := filter.NewCentralized(model.NewUNGM(), 4096, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sumSmall, sumBig float64
	const runs = 6
	for run := 0; run < runs; run++ {
		small.Reset(uint64(run + 1))
		big.Reset(uint64(run + 1))
		sumSmall += meanErr(t, small, 60, run)
		sumBig += meanErr(t, big, 60, run)
	}
	if sumBig >= sumSmall {
		t.Fatalf("4096 particles (err %v) not better than 8 (err %v)", sumBig/runs, sumSmall/runs)
	}
}

func TestCentralizedResamplerChoicesAgree(t *testing.T) {
	// RWS, Vose and systematic must deliver comparable accuracy.
	results := map[string]float64{}
	for _, rs := range []resample.Resampler{resample.RWS{}, resample.Vose{}, resample.Systematic{}} {
		f, err := filter.NewCentralized(model.NewUNGM(), 1000, 1, filter.CentralizedOptions{Resampler: rs})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		const runs = 4
		for run := 0; run < runs; run++ {
			f.Reset(uint64(run + 1))
			sum += meanErr(t, f, 60, run)
		}
		results[rs.Name()] = sum / runs
	}
	for name, e := range results {
		if e > 5 {
			t.Errorf("resampler %s mean error %v, want < 5", name, e)
		}
	}
}

func TestNeverResampleDegenerates(t *testing.T) {
	// Without resampling the SIS filter must do worse than with it
	// (the degeneracy problem, §II-B1).
	always, err := filter.NewCentralized(model.NewUNGM(), 500, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	never, err := filter.NewCentralized(model.NewUNGM(), 500, 1,
		filter.CentralizedOptions{Policy: resample.Never{}})
	if err != nil {
		t.Fatal(err)
	}
	var sumA, sumN float64
	const runs = 6
	for run := 0; run < runs; run++ {
		always.Reset(uint64(run + 1))
		never.Reset(uint64(run + 1))
		sumA += meanErr(t, always, 80, run)
		sumN += meanErr(t, never, 80, run)
	}
	if sumN <= sumA {
		t.Fatalf("SIS without resampling (err %v) beat always-resample (err %v)", sumN/runs, sumA/runs)
	}
}

func TestCentralizedResetReproducible(t *testing.T) {
	f, err := filter.NewCentralized(model.NewUNGM(), 64, 7, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := metrics.Run(f, ungmScenario(0), 30, 9)
	f.Reset(7)
	b := metrics.Run(f, ungmScenario(0), 30, 9)
	for i := range a.Err {
		if a.Err[i] != b.Err[i] {
			t.Fatalf("reset not reproducible at step %d: %v vs %v", i, a.Err[i], b.Err[i])
		}
	}
}

func TestCentralizedValidation(t *testing.T) {
	if _, err := filter.NewCentralized(model.NewUNGM(), 0, 1, filter.CentralizedOptions{}); err == nil {
		t.Fatal("zero particles must error")
	}
}

func TestDistributedConfigValidation(t *testing.T) {
	m := model.NewUNGM()
	cases := []filter.DistributedConfig{
		{SubFilters: 0, ParticlesPer: 8},
		{SubFilters: 4, ParticlesPer: 0},
		{SubFilters: 4, ParticlesPer: 8, ExchangeCount: -1},
		// Ring degree 2 × t 4 = 8 incoming >= 8 particles.
		{SubFilters: 4, ParticlesPer: 8, Scheme: exchange.Ring, ExchangeCount: 4},
		// Hypercube needs power-of-two N.
		{SubFilters: 6, ParticlesPer: 8, Scheme: exchange.Hypercube, ExchangeCount: 1},
	}
	for i, cfg := range cases {
		if _, err := filter.NewDistributed(m, cfg, 1); err == nil {
			t.Errorf("case %d: config %+v must be rejected", i, cfg)
		}
	}
	// t = 0 with any scheme degrades to no exchange and is fine.
	if _, err := filter.NewDistributed(m, filter.DistributedConfig{
		SubFilters: 4, ParticlesPer: 8, Scheme: exchange.Ring, ExchangeCount: 0,
	}, 1); err != nil {
		t.Fatalf("t=0 config rejected: %v", err)
	}
}

func TestDistributedTracksUNGM(t *testing.T) {
	f, err := filter.NewDistributed(model.NewUNGM(), filter.DistributedConfig{
		SubFilters: 32, ParticlesPer: 32, Scheme: exchange.Ring, ExchangeCount: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const runs = 5
	for run := 0; run < runs; run++ {
		f.Reset(uint64(run + 1))
		sum += meanErr(t, f, 80, run)
	}
	if avg := sum / runs; avg > 5 {
		t.Fatalf("distributed PF mean error %v, want < 5", avg)
	}
}

func TestDistributedComparableToCentralized(t *testing.T) {
	// Fig. 9: with adequate sub-filter size, the distributed filter is
	// comparable to a centralized filter of the same total size. Allow a
	// generous factor, we only guard against being *way* off.
	cent, err := filter.NewCentralized(model.NewUNGM(), 1024, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := filter.NewDistributed(model.NewUNGM(), filter.DistributedConfig{
		SubFilters: 16, ParticlesPer: 64, Scheme: exchange.Ring, ExchangeCount: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sumC, sumD float64
	const runs = 6
	for run := 0; run < runs; run++ {
		cent.Reset(uint64(run + 1))
		dist.Reset(uint64(run + 1))
		sumC += meanErr(t, cent, 80, run)
		sumD += meanErr(t, dist, 80, run)
	}
	if sumD > 2.5*sumC {
		t.Fatalf("distributed error %v far above centralized %v", sumD/runs, sumC/runs)
	}
}

func TestExchangeImprovesTinySubFilters(t *testing.T) {
	// With very small sub-filters, exchanging even one particle should
	// help (Fig. 7): compare t=0 vs t=1 on a 64×4 network.
	mk := func(tcount int) *filter.Distributed {
		f, err := filter.NewDistributed(model.NewUNGM(), filter.DistributedConfig{
			SubFilters: 64, ParticlesPer: 4, Scheme: exchange.Ring, ExchangeCount: tcount,
		}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	noEx, withEx := mk(0), mk(1)
	var sum0, sum1 float64
	const runs = 8
	for run := 0; run < runs; run++ {
		noEx.Reset(uint64(run + 1))
		withEx.Reset(uint64(run + 1))
		sum0 += meanErr(t, noEx, 80, run)
		sum1 += meanErr(t, withEx, 80, run)
	}
	if sum1 >= sum0 {
		t.Fatalf("exchange t=1 (err %v) did not beat t=0 (err %v)", sum1/runs, sum0/runs)
	}
}

func TestDistributedSchemesAllTrack(t *testing.T) {
	for _, scheme := range []exchange.Scheme{exchange.AllToAll, exchange.Ring, exchange.Torus2D, exchange.Hypercube} {
		f, err := filter.NewDistributed(model.NewUNGM(), filter.DistributedConfig{
			SubFilters: 16, ParticlesPer: 16, Scheme: scheme, ExchangeCount: 1,
		}, 1)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		f.Reset(3)
		if e := meanErr(t, f, 60, 3); e > 6 {
			t.Errorf("scheme %v mean error %v, want < 6", scheme, e)
		}
	}
}

func TestDistributedWeightedMeanEstimator(t *testing.T) {
	f, err := filter.NewDistributed(model.NewUNGM(), filter.DistributedConfig{
		SubFilters: 16, ParticlesPer: 32, Scheme: exchange.Ring, ExchangeCount: 1,
		Estimator: filter.WeightedMean,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := meanErr(t, f, 60, 1); e > 6 {
		t.Fatalf("weighted-mean estimator error %v, want < 6", e)
	}
}

func TestGaussianPFOnNearGaussianProblem(t *testing.T) {
	// On bearings-only tracking (unimodal) the GPF must track.
	g, err := filter.NewGaussian(model.NewBearings(), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := model.NewSimulated(model.NewBearings(), 77)
	s := metrics.Run(g, sc, 60, 99)
	if s.Mean() > 2.0 {
		t.Fatalf("gaussian PF mean error %v on bearings, want < 2", s.Mean())
	}
}

func TestGaussianValidation(t *testing.T) {
	if _, err := filter.NewGaussian(model.NewUNGM(), 1, 1); err == nil {
		t.Fatal("n=1 must error")
	}
}

func TestEKFUKFTrackBearings(t *testing.T) {
	for _, mk := range []func() filter.Filter{
		func() filter.Filter { return filter.NewEKF(model.NewBearings(), 1) },
		func() filter.Filter { return filter.NewUKF(model.NewBearings(), 1) },
	} {
		f := mk()
		sc := model.NewSimulated(model.NewBearings(), 55)
		s := metrics.Run(f, sc, 60, 66)
		if s.Mean() > 2.0 {
			t.Errorf("%s mean error %v on bearings, want < 2", f.Name(), s.Mean())
		}
	}
}

func TestPFBeatsEKFOnUNGM(t *testing.T) {
	// The motivating claim: on the severely non-linear bimodal UNGM the
	// particle filter outperforms the EKF (averaged over runs).
	var sumPF, sumEKF float64
	const runs = 6
	for run := 0; run < runs; run++ {
		pf, err := filter.NewCentralized(model.NewUNGM(), 1000, uint64(run+1), filter.CentralizedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ekf := filter.NewEKF(model.NewUNGM(), uint64(run+1))
		sumPF += meanErr(t, pf, 80, run)
		sumEKF += meanErr(t, ekf, 80, run)
	}
	if sumPF >= sumEKF {
		t.Fatalf("PF error %v not better than EKF %v on UNGM", sumPF/runs, sumEKF/runs)
	}
}

func TestVariantsTrackUNGM(t *testing.T) {
	m := model.NewUNGM()
	mks := []func() (filter.Filter, error){
		func() (filter.Filter, error) { return filter.NewGDPF(m, 16, 32, 1) },
		func() (filter.Filter, error) { return filter.NewCDPF(m, 16, 32, 8, 1) },
		func() (filter.Filter, error) { return filter.NewRPA(m, 16, 32, 1) },
		func() (filter.Filter, error) { return filter.NewLDPF(m, 16, 32, 1) },
		func() (filter.Filter, error) { return filter.NewRNA(m, 16, 32, 1, 1) },
	}
	for _, mk := range mks {
		f, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		const runs = 3
		for run := 0; run < runs; run++ {
			f.Reset(uint64(run + 1))
			sum += meanErr(t, f, 60, run)
		}
		if avg := sum / runs; avg > 6 {
			t.Errorf("%s mean error %v on UNGM, want < 6", f.Name(), avg)
		}
	}
}

func TestVariantsValidation(t *testing.T) {
	m := model.NewUNGM()
	if _, err := filter.NewGDPF(m, 0, 8, 1); err == nil {
		t.Fatal("GDPF with 0 sub-filters must error")
	}
	if _, err := filter.NewCDPF(m, 4, 8, 0, 1); err == nil {
		t.Fatal("CDPF with 0 representatives must error")
	}
	if _, err := filter.NewCDPF(m, 4, 8, 9, 1); err == nil {
		t.Fatal("CDPF with c > m must error")
	}
}

func TestParallelMatchesDistributedAccuracy(t *testing.T) {
	dev := device.New(device.Config{Workers: 4})
	par, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters: 32, ParticlesPer: 32, Scheme: exchange.Ring, ExchangeCount: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := filter.NewDistributed(model.NewUNGM(), filter.DistributedConfig{
		SubFilters: 32, ParticlesPer: 32, Scheme: exchange.Ring, ExchangeCount: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sumP, sumS float64
	const runs = 5
	for run := 0; run < runs; run++ {
		par.Reset(uint64(run + 1))
		seq.Reset(uint64(run + 1))
		sumP += meanErr(t, par, 60, run)
		sumS += meanErr(t, seq, 60, run)
	}
	avgP, avgS := sumP/runs, sumS/runs
	if avgP > 5 {
		t.Fatalf("parallel filter mean error %v, want < 5", avgP)
	}
	if avgP > 2*avgS+1 {
		t.Fatalf("parallel error %v far above sequential %v", avgP, avgS)
	}
}

func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	// Work-groups only touch their own global blocks, so the result must
	// be bit-identical however the groups are scheduled.
	run := func(workers int) []float64 {
		dev := device.New(device.Config{Workers: workers})
		f, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
			SubFilters: 16, ParticlesPer: 32, Scheme: exchange.Torus2D, ExchangeCount: 1,
		}, 42)
		if err != nil {
			t.Fatal(err)
		}
		s := metrics.Run(f, ungmScenario(0), 25, 7)
		return s.Err
	}
	a := run(1)
	b := run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker-count nondeterminism at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelVoseKernelWorks(t *testing.T) {
	dev := device.New(device.Config{Workers: 4})
	f, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters: 16, ParticlesPer: 32, Scheme: exchange.Ring, ExchangeCount: 1,
		Resampler: kernels.AlgoVose,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const runs = 4
	for run := 0; run < runs; run++ {
		f.Reset(uint64(run + 1))
		sum += meanErr(t, f, 60, run)
	}
	if avg := sum / runs; avg > 5 {
		t.Fatalf("Vose-kernel filter mean error %v, want < 5", avg)
	}
}

func TestParallelAllToAllAndMTGP(t *testing.T) {
	dev := device.New(device.Config{Workers: 4})
	f, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters: 16, ParticlesPer: 32, Scheme: exchange.AllToAll, ExchangeCount: 2,
		Streams: "mtgp",
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := meanErr(t, f, 60, 2); e > 6 {
		t.Fatalf("all-to-all MTGP filter mean error %v, want < 6", e)
	}
}

func TestEstimatorString(t *testing.T) {
	if filter.MaxWeight.String() != "max-weight" || filter.WeightedMean.String() != "weighted-mean" {
		t.Fatal("estimator names wrong")
	}
	if filter.Estimator(9).String() == "" {
		t.Fatal("unknown estimator must stringify")
	}
}

func TestEstimateLogWeightFinite(t *testing.T) {
	f, err := filter.NewCentralized(model.NewUNGM(), 100, 1, filter.CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := ungmScenario(0)
	m := sc.Model()
	truth := make([]float64, 1)
	z := make([]float64, 1)
	sc.TrueState(1, truth)
	m.Measure(z, truth, rng.New(rng.NewPhilox(3)))
	est := f.Step(nil, z)
	if math.IsNaN(est.LogWeight) {
		t.Fatal("estimate log-weight NaN")
	}
	if len(est.State) != 1 {
		t.Fatalf("estimate dim %d", len(est.State))
	}
}

func TestParallelWeightedMeanEstimator(t *testing.T) {
	dev := device.New(device.Config{Workers: 4})
	f, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters: 16, ParticlesPer: 32, Scheme: exchange.Ring, ExchangeCount: 1,
		Estimator: filter.WeightedMean,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const runs = 4
	for run := 0; run < runs; run++ {
		f.Reset(uint64(run + 1))
		sum += meanErr(t, f, 60, run)
	}
	if avg := sum / runs; avg > 6 {
		t.Fatalf("parallel weighted-mean estimator error %v, want < 6", avg)
	}
}

func TestRandomPairsExchangeTracks(t *testing.T) {
	f, err := filter.NewDistributed(model.NewUNGM(), filter.DistributedConfig{
		SubFilters: 32, ParticlesPer: 16, Scheme: exchange.RandomPairs, ExchangeCount: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const runs = 4
	for run := 0; run < runs; run++ {
		f.Reset(uint64(run + 1))
		sum += meanErr(t, f, 60, run)
	}
	if avg := sum / runs; avg > 6 {
		t.Fatalf("random-pairs filter mean error %v, want < 6", avg)
	}
	// The device pipeline must refuse the dynamic scheme.
	dev := device.New(device.Config{Workers: 2})
	if _, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters: 8, ParticlesPer: 16, Scheme: exchange.RandomPairs, ExchangeCount: 1,
	}, 1); err == nil {
		t.Fatal("parallel filter accepted random-pairs")
	}
}
