package filter_test

import (
	"testing"

	"esthera/internal/filter"
	"esthera/internal/model"
)

func TestFRIMRedrawsBoundedAndHelps(t *testing.T) {
	mk := func(frim filter.FRIM) *filter.Centralized {
		f, err := filter.NewCentralized(model.NewUNGM(), 64, 1, filter.CentralizedOptions{FRIM: frim})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	plain := mk(filter.FRIM{})
	frim := mk(filter.FRIM{MaxRedraws: 5})

	var sumPlain, sumFRIM float64
	const runs, steps = 6, 60
	for run := 0; run < runs; run++ {
		plain.Reset(uint64(run + 1))
		frim.Reset(uint64(run + 1))
		sumPlain += meanErr(t, plain, steps, run)
		sumFRIM += meanErr(t, frim, steps, run)
	}
	if plain.FRIMRedraws() != 0 {
		t.Fatalf("disabled FRIM performed %d redraws", plain.FRIMRedraws())
	}
	redraws := frim.FRIMRedraws()
	if redraws == 0 {
		t.Fatal("FRIM never redrew on a 64-particle UNGM filter")
	}
	// Hard bound: MaxRedraws per particle per step (last run only, since
	// Reset clears the counter).
	if max := int64(5 * 64 * steps); redraws > max {
		t.Fatalf("redraws %d exceed bound %d", redraws, max)
	}
	// With few particles FRIM should not hurt (usually helps).
	if sumFRIM > sumPlain*1.3 {
		t.Fatalf("FRIM error %v much worse than plain %v", sumFRIM/runs, sumPlain/runs)
	}
}

func TestFRIMResetClearsState(t *testing.T) {
	f, err := filter.NewCentralized(model.NewUNGM(), 32, 1, filter.CentralizedOptions{FRIM: filter.FRIM{MaxRedraws: 3}})
	if err != nil {
		t.Fatal(err)
	}
	a := meanErr(t, f, 20, 0)
	f.Reset(1)
	b := meanErr(t, f, 20, 0)
	if a != b {
		t.Fatalf("FRIM filter not reproducible after Reset: %v vs %v", a, b)
	}
	f.Reset(1)
	if f.FRIMRedraws() != 0 {
		t.Fatal("Reset did not clear redraw counter")
	}
}

func TestUniqueParticleFraction(t *testing.T) {
	// 4 particles of dim 2, two identical.
	p := []float64{1, 2, 3, 4, 1, 2, 5, 6}
	if got := filter.UniqueParticleFraction(p, 2); got != 0.75 {
		t.Fatalf("unique fraction %v, want 0.75", got)
	}
	if got := filter.UniqueParticleFraction(nil, 2); got != 0 {
		t.Fatalf("empty fraction %v, want 0", got)
	}
	all := []float64{1, 1, 1}
	if got := filter.UniqueParticleFraction(all, 1); got > 0.34 {
		t.Fatalf("identical particles fraction %v", got)
	}
}
