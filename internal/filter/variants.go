package filter

import (
	"fmt"

	"esthera/internal/exchange"
	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
	"esthera/internal/sortnet"
)

// This file implements the alternative distributed particle filter
// designs of the related work (§III-B), used by the variants ablation:
//
//   - GDPF (Bashi et al.): sampling and weighting are partitioned over
//     sub-filters, but resampling is performed centrally over the whole
//     population.
//   - LDPF: local resampling with no communication — exactly our
//     Distributed with t = 0 (constructor alias below).
//   - CDPF: central resampling over a small compressed representative
//     set (the best c per sub-filter), redistributed to all sub-filters.
//   - RNA (Bolić et al.): local resampling followed by a particle
//     exchange step — structurally our Distributed with a ring exchange
//     (constructor alias below).
//   - RPA (Bolić et al.): two-stage resampling with proportional
//     allocation — sub-filters are allotted survivor counts proportional
//     to their total weight, then resample locally and redistribute.

// NewLDPF returns the Local Distributed PF: local resampling, no
// exchange.
func NewLDPF(m model.Model, subFilters, particlesPer int, seed uint64) (*Distributed, error) {
	return NewDistributed(m, DistributedConfig{
		SubFilters:   subFilters,
		ParticlesPer: particlesPer,
		Scheme:       exchange.None,
	}, seed)
}

// NewRNA returns the Resampling-with-Non-proportional-Allocation design:
// local resampling plus a ring particle exchange.
func NewRNA(m model.Model, subFilters, particlesPer, t int, seed uint64) (*Distributed, error) {
	return NewDistributed(m, DistributedConfig{
		SubFilters:    subFilters,
		ParticlesPer:  particlesPer,
		Scheme:        exchange.Ring,
		ExchangeCount: t,
	}, seed)
}

// GDPF is the Global Distributed PF: partitioned sampling/weighting with
// centralized resampling over the full population every round.
type GDPF struct {
	m   model.Model
	N   int // sub-filters
	mp  int // particles per sub-filter
	dim int

	particles, next []float64
	logw, w         []float64
	idx             []int
	streams         []*rng.Rand
	hostR           *rng.Rand
	rs              resample.Resampler
	estimator       Estimator
	k               int
}

// NewGDPF builds the filter.
func NewGDPF(m model.Model, subFilters, particlesPer int, seed uint64) (*GDPF, error) {
	if subFilters <= 0 || particlesPer <= 0 {
		return nil, fmt.Errorf("filter: invalid GDPF shape %d×%d", subFilters, particlesPer)
	}
	g := &GDPF{m: m, N: subFilters, mp: particlesPer, dim: m.StateDim(), rs: resample.RWS{}}
	n := subFilters * particlesPer
	g.particles = make([]float64, n*g.dim)
	g.next = make([]float64, n*g.dim)
	g.logw = make([]float64, n)
	g.w = make([]float64, n)
	g.idx = make([]int, n)
	g.streams = make([]*rng.Rand, subFilters)
	g.Reset(seed)
	return g, nil
}

// Name implements Filter.
func (g *GDPF) Name() string { return "gdpf" }

// Reset implements Filter.
func (g *GDPF) Reset(seed uint64) {
	g.k = 0
	g.hostR = rng.New(rng.NewPhiloxStream(seed, 0))
	for s := range g.streams {
		g.streams[s] = rng.New(rng.NewPhiloxStream(seed, s+1))
	}
	for s := 0; s < g.N; s++ {
		base := s * g.mp * g.dim
		for i := 0; i < g.mp; i++ {
			g.m.InitParticle(g.particles[base+i*g.dim:base+(i+1)*g.dim], g.streams[s])
		}
	}
}

// Step implements Filter.
func (g *GDPF) Step(u, z []float64) Estimate {
	g.k++
	// Partitioned sampling + weighting.
	for s := 0; s < g.N; s++ {
		r := g.streams[s]
		base := s * g.mp * g.dim
		for i := 0; i < g.mp; i++ {
			src := g.particles[base+i*g.dim : base+(i+1)*g.dim]
			dst := g.next[base+i*g.dim : base+(i+1)*g.dim]
			g.m.Step(dst, src, u, g.k, r)
			g.logw[s*g.mp+i] = g.m.LogLikelihood(dst, z)
		}
	}
	g.particles, g.next = g.next, g.particles
	maxLW := normalizeLogWeights(g.logw, g.w)
	est := estimateFrom(g.estimator, g.particles, g.w, g.dim, maxLW)

	// Centralized resampling over the whole population — the design's
	// scalability bottleneck.
	g.rs.Resample(g.idx, g.w, g.hostR)
	for i, src := range g.idx {
		copy(g.next[i*g.dim:(i+1)*g.dim], g.particles[src*g.dim:(src+1)*g.dim])
	}
	g.particles, g.next = g.next, g.particles
	return est
}

// CDPF is the Compressed Distributed PF: each sub-filter contributes its
// best c particles to a compressed set, which is resampled centrally and
// broadcast back as every sub-filter's new population.
type CDPF struct {
	inner *GDPF
	c     int // representatives per sub-filter
}

// NewCDPF builds the filter with c representatives per sub-filter.
func NewCDPF(m model.Model, subFilters, particlesPer, c int, seed uint64) (*CDPF, error) {
	if c <= 0 || c > particlesPer {
		return nil, fmt.Errorf("filter: CDPF representatives %d out of (0,%d]", c, particlesPer)
	}
	inner, err := NewGDPF(m, subFilters, particlesPer, seed)
	if err != nil {
		return nil, err
	}
	return &CDPF{inner: inner, c: c}, nil
}

// Name implements Filter.
func (f *CDPF) Name() string { return "cdpf" }

// Reset implements Filter.
func (f *CDPF) Reset(seed uint64) { f.inner.Reset(seed) }

// Step implements Filter.
func (f *CDPF) Step(u, z []float64) Estimate {
	g := f.inner
	g.k++
	for s := 0; s < g.N; s++ {
		r := g.streams[s]
		base := s * g.mp * g.dim
		for i := 0; i < g.mp; i++ {
			src := g.particles[base+i*g.dim : base+(i+1)*g.dim]
			dst := g.next[base+i*g.dim : base+(i+1)*g.dim]
			g.m.Step(dst, src, u, g.k, r)
			g.logw[s*g.mp+i] = g.m.LogLikelihood(dst, z)
		}
	}
	g.particles, g.next = g.next, g.particles
	maxLW := normalizeLogWeights(g.logw, g.w)
	est := estimateFrom(g.estimator, g.particles, g.w, g.dim, maxLW)

	// Compress: best c per sub-filter.
	reps := make([]int, 0, g.N*f.c)
	for s := 0; s < g.N; s++ {
		blockW := g.w[s*g.mp : (s+1)*g.mp]
		for _, local := range sortnet.TopK(blockW, f.c) {
			reps = append(reps, s*g.mp+local)
		}
	}
	repW := make([]float64, len(reps))
	for i, idx := range reps {
		repW[i] = g.w[idx]
	}
	// Central resampling over the representatives only, results sent back
	// to every node.
	draws := make([]int, g.N*g.mp)
	g.rs.Resample(draws, repW, g.hostR)
	for i, d := range draws {
		src := reps[d]
		copy(g.next[i*g.dim:(i+1)*g.dim], g.particles[src*g.dim:(src+1)*g.dim])
	}
	g.particles, g.next = g.next, g.particles
	return est
}

// RPA is Resampling with Proportional Allocation: survivor counts are
// allotted to sub-filters in proportion to their local weight sums
// (largest-remainder rounding); each sub-filter then resamples its quota
// locally, and the concatenated survivors are redistributed round-robin
// so every sub-filter again holds an equal share.
type RPA struct {
	inner *GDPF
}

// NewRPA builds the filter.
func NewRPA(m model.Model, subFilters, particlesPer int, seed uint64) (*RPA, error) {
	inner, err := NewGDPF(m, subFilters, particlesPer, seed)
	if err != nil {
		return nil, err
	}
	return &RPA{inner: inner}, nil
}

// Name implements Filter.
func (f *RPA) Name() string { return "rpa" }

// Reset implements Filter.
func (f *RPA) Reset(seed uint64) { f.inner.Reset(seed) }

// Step implements Filter.
func (f *RPA) Step(u, z []float64) Estimate {
	g := f.inner
	g.k++
	for s := 0; s < g.N; s++ {
		r := g.streams[s]
		base := s * g.mp * g.dim
		for i := 0; i < g.mp; i++ {
			src := g.particles[base+i*g.dim : base+(i+1)*g.dim]
			dst := g.next[base+i*g.dim : base+(i+1)*g.dim]
			g.m.Step(dst, src, u, g.k, r)
			g.logw[s*g.mp+i] = g.m.LogLikelihood(dst, z)
		}
	}
	g.particles, g.next = g.next, g.particles
	maxLW := normalizeLogWeights(g.logw, g.w)
	est := estimateFrom(g.estimator, g.particles, g.w, g.dim, maxLW)

	// Stage 1: proportional allocation of survivor counts.
	sums := make([]float64, g.N)
	total := 0.0
	for s := 0; s < g.N; s++ {
		for i := 0; i < g.mp; i++ {
			sums[s] += g.w[s*g.mp+i]
		}
		total += sums[s]
	}
	n := g.N * g.mp
	counts := make([]int, g.N)
	rem := make([]float64, g.N)
	allotted := 0
	for s := 0; s < g.N; s++ {
		share := 0.0
		if total > 0 {
			share = float64(n) * sums[s] / total
		} else {
			share = float64(g.mp)
		}
		counts[s] = int(share)
		rem[s] = share - float64(counts[s])
		allotted += counts[s]
	}
	for allotted < n { // largest remainder
		best := 0
		for s := 1; s < g.N; s++ {
			if rem[s] > rem[best] {
				best = s
			}
		}
		counts[best]++
		rem[best] = -1
		allotted++
	}

	// Stage 2: local resampling of each quota, concatenated then dealt
	// back out round-robin.
	out := 0
	for s := 0; s < g.N; s++ {
		if counts[s] == 0 {
			continue
		}
		blockW := g.w[s*g.mp : (s+1)*g.mp]
		draws := make([]int, counts[s])
		g.rs.Resample(draws, blockW, g.streams[s])
		for _, local := range draws {
			src := s*g.mp + local
			copy(g.next[out*g.dim:(out+1)*g.dim], g.particles[src*g.dim:(src+1)*g.dim])
			out++
		}
	}
	g.particles, g.next = g.next, g.particles
	return est
}
