package filter

import (
	"fmt"
	"math"

	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
)

// Centralized is the classic sequential particle filter with resampling
// (Algorithm 1). It is the toolkit's accuracy and runtime reference,
// playing the role of the paper's sequential centralized C
// implementation.
type Centralized struct {
	m   model.Model
	n   int
	dim int

	particles []float64 // n × dim, AoS
	next      []float64
	logw      []float64
	w         []float64
	idx       []int

	rs         resample.Resampler
	policy     resample.Policy
	estimator  Estimator
	frim       *frimSampler
	roughening float64
	r          *rng.Rand
	seed       uint64
	k          int

	prevW      []float64 // normalized weights entering the current step
	llBuf      []float64 // per-step log-likelihoods
	marginalLL float64   // accumulated log p(z_1:k) estimate
}

// CentralizedOptions configures NewCentralized. Zero values select the
// paper's defaults for the sequential centralized filter.
type CentralizedOptions struct {
	// Resampler defaults to Vose (the paper's choice for the sequential
	// centralized filter, Fig. 5).
	Resampler resample.Resampler
	// Policy defaults to Always.
	Policy resample.Policy
	// Estimator defaults to MaxWeight.
	Estimator Estimator
	// FRIM enables finite-redraw importance-maximizing sampling
	// (MaxRedraws > 0); see the FRIM type.
	FRIM FRIM
	// Roughening adds Gordon-style post-resampling jitter: each state
	// dimension receives N(0, (Roughening·E_d·n^{-1/dim})²) noise, where
	// E_d is the population's extent in that dimension. It combats the
	// sample-impoverishment cost of resampling (§II-B1: "the loss of
	// diversity among particles as the new particle set most likely
	// contains many duplicates"). 0 disables; Gordon et al. suggest 0.2.
	Roughening float64
}

// NewCentralized builds a centralized filter over n particles of m,
// seeded deterministically by seed.
func NewCentralized(m model.Model, n int, seed uint64, opts CentralizedOptions) (*Centralized, error) {
	if n <= 0 {
		return nil, fmt.Errorf("filter: non-positive particle count %d", n)
	}
	c := &Centralized{
		m:         m,
		n:         n,
		dim:       m.StateDim(),
		rs:        opts.Resampler,
		policy:    opts.Policy,
		estimator: opts.Estimator,
	}
	if c.rs == nil {
		c.rs = resample.Vose{}
	}
	if c.policy == nil {
		c.policy = resample.Always{}
	}
	c.frim = newFRIMSampler(opts.FRIM)
	c.roughening = opts.Roughening
	c.particles = make([]float64, n*c.dim)
	c.next = make([]float64, n*c.dim)
	c.logw = make([]float64, n)
	c.w = make([]float64, n)
	c.idx = make([]int, n)
	c.prevW = make([]float64, n)
	c.llBuf = make([]float64, n)
	c.Reset(seed)
	return c, nil
}

// Name implements Filter.
func (c *Centralized) Name() string { return "centralized" }

// Reset implements Filter.
func (c *Centralized) Reset(seed uint64) {
	c.seed = seed
	c.r = rng.New(rng.NewPhiloxStream(seed, 0))
	c.k = 0
	initParticles(c.m, c.particles, c.r)
	for i := range c.logw {
		c.logw[i] = 0
	}
	c.frim.reset()
	c.marginalLL = 0
}

// MarginalLogLikelihood returns the accumulated particle estimate of
// log p(z_1:k) — the simulated likelihood that makes particle filters a
// parameter-inference engine in econometrics (the paper's introduction
// cites Flury & Shephard's "Bayesian inference based only on simulated
// likelihood"). The per-step increment is log Σᵢ w̃_{k-1,i}·p(z_k|x_{k,i}),
// accumulated stably in log space.
func (c *Centralized) MarginalLogLikelihood() float64 { return c.marginalLL }

// FRIMRedraws reports the total extra model evaluations the FRIM sampler
// performed (0 when FRIM is disabled).
func (c *Centralized) FRIMRedraws() int64 { return c.frim.Redraws }

// Particles exposes the current particle array (n × dim, read-only by
// convention) for diagnostics and tests.
func (c *Centralized) Particles() []float64 { return c.particles }

// Step implements Filter.
func (c *Centralized) Step(u, z []float64) Estimate {
	c.k++
	// Normalized weights entering this step (uniform right after a
	// resample): the mixture weights of the marginal-likelihood increment.
	normalizeLogWeights(c.logw, c.prevW)
	resample.Normalize(c.prevW)

	// Sample + weight (Algorithm 1 lines 2–6). Log-weights accumulate
	// across steps so that "resample only sometimes" policies stay
	// correct (sequential importance sampling); a resample resets them.
	maxLL := math.Inf(-1)
	for i := 0; i < c.n; i++ {
		src := c.particles[i*c.dim : (i+1)*c.dim]
		dst := c.next[i*c.dim : (i+1)*c.dim]
		var ll float64
		if c.frim.enabled() {
			ll = c.frim.step(c.m, dst, src, u, z, c.k, c.r)
		} else {
			c.m.Step(dst, src, u, c.k, c.r)
			ll = c.m.LogLikelihood(dst, z)
		}
		c.logw[i] += ll
		c.llBuf[i] = ll
		if ll > maxLL {
			maxLL = ll
		}
	}
	// Marginal-likelihood increment, stabilized by the max.
	if !math.IsInf(maxLL, -1) && !math.IsNaN(maxLL) {
		sum := 0.0
		for i := 0; i < c.n; i++ {
			sum += c.prevW[i] * math.Exp(c.llBuf[i]-maxLL)
		}
		if sum > 0 {
			c.marginalLL += maxLL + math.Log(sum)
		}
	}
	c.particles, c.next = c.next, c.particles
	maxLW := normalizeLogWeights(c.logw, c.w)
	if c.frim.enabled() {
		c.frim.observeRound(maxLW)
	}
	est := estimateFrom(c.estimator, c.particles, c.w, c.dim, maxLW)

	// Resample (lines 7–11), if the policy says so.
	if c.policy.ShouldResample(c.w, c.r) {
		c.rs.Resample(c.idx, c.w, c.r)
		for i, src := range c.idx {
			copy(c.next[i*c.dim:(i+1)*c.dim], c.particles[src*c.dim:(src+1)*c.dim])
		}
		c.particles, c.next = c.next, c.particles
		for i := range c.logw {
			c.logw[i] = 0
		}
		if c.roughening > 0 {
			c.roughen()
		}
	}
	return est
}

// roughen jitters the resampled population (Gordon et al. 1993): per
// dimension, noise scaled to the population extent and shrinking with
// n^{-1/dim}.
func (c *Centralized) roughen() {
	scale := c.roughening * math.Pow(float64(c.n), -1/float64(c.dim))
	for d := 0; d < c.dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < c.n; i++ {
			v := c.particles[i*c.dim+d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		sigma := scale * (hi - lo)
		if sigma <= 0 {
			continue
		}
		for i := 0; i < c.n; i++ {
			c.particles[i*c.dim+d] += c.r.Normal(0, sigma)
		}
	}
}
