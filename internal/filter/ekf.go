package filter

import (
	"math"

	"esthera/internal/mat"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// residualWrapper lets a model normalize measurement residuals before the
// Kalman update (e.g. wrap bearing residuals into (-π, π]).
type residualWrapper interface {
	WrapResidual(res []float64)
}

// EKF is the extended Kalman filter over a model.Linearizable — the
// parametric baseline the paper's introduction contrasts particle filters
// with ("for systems where the amount of non-linearity is limited...").
// On the severely non-linear benchmarks (UNGM, the arm's camera channel)
// it degrades or diverges, which the examples demonstrate.
type EKF struct {
	m model.Linearizable
	n int

	x []float64
	p *mat.Matrix
	k int

	// InitCovScale spreads the initial covariance (default 1).
	initCov *mat.Matrix
}

// NewEKF builds an EKF. The initial state is the mean of a prior particle
// sample, and the initial covariance its sample covariance (so the EKF
// starts from the same prior as the particle filters).
func NewEKF(m model.Linearizable, seed uint64) *EKF {
	f := &EKF{m: m, n: m.StateDim()}
	f.x = make([]float64, f.n)
	f.Reset(seed)
	return f
}

// Name implements Filter.
func (f *EKF) Name() string { return "ekf" }

// Reset implements Filter.
func (f *EKF) Reset(seed uint64) {
	f.k = 0
	r := rng.New(rng.NewPhiloxStream(seed, 0))
	// Moment-match the model prior with a modest sample.
	const samples = 256
	parts := make([]float64, samples*f.n)
	initParticles(f.m, parts, r)
	for d := 0; d < f.n; d++ {
		f.x[d] = 0
	}
	for i := 0; i < samples; i++ {
		for d := 0; d < f.n; d++ {
			f.x[d] += parts[i*f.n+d] / samples
		}
	}
	cov := mat.NewMatrix(f.n, f.n)
	diff := make([]float64, f.n)
	for i := 0; i < samples; i++ {
		for d := 0; d < f.n; d++ {
			diff[d] = parts[i*f.n+d] - f.x[d]
		}
		cov.OuterAdd(1.0/samples, diff, diff)
	}
	for d := 0; d < f.n; d++ {
		cov.Set(d, d, cov.At(d, d)+1e-9)
	}
	f.p = cov
	f.initCov = cov.Clone()
}

// State returns the current mean estimate (aliased).
func (f *EKF) State() []float64 { return f.x }

// Cov returns the current covariance.
func (f *EKF) Cov() *mat.Matrix { return f.p }

// Step implements Filter.
func (f *EKF) Step(u, z []float64) Estimate {
	f.k++
	n := f.n
	zd := f.m.MeasurementDim()

	// Predict.
	xPred := make([]float64, n)
	f.m.StepMean(xPred, f.x, u, f.k)
	jacF := mat.NewMatrix(n, n)
	f.m.StepJacobian(jacF, f.x, u, f.k)
	f.p = jacF.Mul(f.p).Mul(jacF.T()).Add(f.m.ProcessCov())
	f.p.Symmetrize()

	// Update.
	zPred := make([]float64, zd)
	f.m.MeasureMean(zPred, xPred)
	res := make([]float64, zd)
	for i := range res {
		res[i] = z[i] - zPred[i]
	}
	if w, ok := f.m.(residualWrapper); ok {
		w.WrapResidual(res)
	}
	jacH := mat.NewMatrix(zd, n)
	f.m.MeasureJacobian(jacH, xPred)
	pht := f.p.Mul(jacH.T())                 // n×zd
	s := jacH.Mul(pht).Add(f.m.MeasureCov()) // zd×zd innovation covariance
	s.Symmetrize()
	kGainT, err := s.SolveChol(pht.T()) // zd×n: S⁻¹·(P·Hᵀ)ᵀ
	if err != nil {
		// Skip the update on a degenerate innovation covariance.
		copy(f.x, xPred)
		return f.estimate()
	}
	kGain := kGainT.T() // n×zd
	dx := kGain.MulVec(res)
	for d := 0; d < n; d++ {
		f.x[d] = xPred[d] + dx[d]
	}
	kh := kGain.Mul(jacH) // n×n
	f.p = mat.Identity(n).Sub(kh).Mul(f.p)
	f.p.Symmetrize()
	// Guard against covariance collapse into indefiniteness.
	for d := 0; d < n; d++ {
		if f.p.At(d, d) < 1e-12 || math.IsNaN(f.p.At(d, d)) {
			f.p.Set(d, d, 1e-12)
		}
	}
	return f.estimate()
}

func (f *EKF) estimate() Estimate {
	out := make([]float64, f.n)
	copy(out, f.x)
	return Estimate{State: out}
}
