package platform

import (
	"testing"
	"time"

	"esthera/internal/device"
)

func TestPlatformsTableIII(t *testing.T) {
	ps := Platforms()
	if len(ps) != 7 { // 6 Table III platforms + sequential reference
		t.Fatalf("%d platforms, want 7", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Units <= 0 || p.GFlopsSP <= 0 || p.MemBWGBs <= 0 {
			t.Fatalf("invalid descriptor %+v", p)
		}
		if p.EffCompute <= 0 || p.EffCompute > 1 || p.EffBandwidth <= 0 || p.EffBandwidth > 1 {
			t.Fatalf("efficiencies out of range for %s", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"seq-c", "i7-2720QM", "2x E5-2660", "GTX 580", "GTX 680", "HD 6970", "HD 7970"} {
		if !names[want] {
			t.Fatalf("missing platform %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("HD 7970")
	if err != nil || p.Kind != GPU {
		t.Fatalf("ByName failed: %v %+v", err, p)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown platform must error")
	}
}

func TestPredictKernelRoofline(t *testing.T) {
	p, _ := ByName("GTX 580")
	// Compute-bound workload: lots of ops, little traffic.
	compute := device.Counters{Ops: 1e9}
	tc := p.PredictKernel(compute, 1, p.GroupsForFull)
	wantSec := 1e9/(p.GFlopsSP*1e9*p.EffCompute) + p.LaunchOverhead.Seconds()
	if got := tc.Seconds(); got < wantSec*0.99 || got > wantSec*1.01 {
		t.Fatalf("compute-bound prediction %v s, want %v s", got, wantSec)
	}
	// Bandwidth-bound workload dominates when traffic is huge.
	mem := device.Counters{Ops: 1, GlobalReadBytes: 4e9}
	tm := p.PredictKernel(mem, 1, p.GroupsForFull)
	wantMem := 4e9/(p.MemBWGBs*1e9*p.EffBandwidth) + p.LaunchOverhead.Seconds()
	if got := tm.Seconds(); got < wantMem*0.99 || got > wantMem*1.01 {
		t.Fatalf("memory-bound prediction %v s, want %v s", got, wantMem)
	}
	if p.PredictKernel(compute, 0, 1) != 0 {
		t.Fatal("zero launches must predict zero")
	}
}

func TestUtilizationScalesSmallGrids(t *testing.T) {
	p, _ := ByName("HD 7970")
	c := device.Counters{Ops: 1e8}
	small := p.PredictKernel(c, 1, 1)
	full := p.PredictKernel(c, 1, p.GroupsForFull)
	if small <= full {
		t.Fatalf("tiny grid (%v) must be slower than full grid (%v)", small, full)
	}
	over := p.PredictKernel(c, 1, p.GroupsForFull*10)
	if over != full {
		t.Fatal("over-subscribed grid must clamp at full utilization")
	}
}

func TestPredictRoundAggregates(t *testing.T) {
	p, _ := ByName("2x E5-2660")
	snap := []device.KernelStats{
		{Name: "sampling", Launches: 10, Count: device.Counters{Ops: 1e8}},
		{Name: "resampling", Launches: 10, Count: device.Counters{Ops: 5e7}},
	}
	kts, total := p.PredictRound(snap, 10, 64)
	if len(kts) != 2 {
		t.Fatalf("%d kernel times", len(kts))
	}
	var sum time.Duration
	for _, kt := range kts {
		if kt.Time <= 0 {
			t.Fatalf("non-positive kernel time %+v", kt)
		}
		sum += kt.Time
	}
	if sum != total {
		t.Fatalf("total %v != sum %v", total, sum)
	}
}

func TestUpdateRateHz(t *testing.T) {
	if hz := UpdateRateHz(10 * time.Millisecond); hz < 99 || hz > 101 {
		t.Fatalf("10ms → %v Hz, want 100", hz)
	}
	if UpdateRateHz(0) != 0 {
		t.Fatal("zero round time must map to 0 Hz")
	}
}

// TestQualitativeOrderingFig3 pins the shape of Fig. 3: for a large
// filtering round, high-end GPUs beat the dual CPU, which beats the
// sequential reference by a meaningful factor.
func TestQualitativeOrderingFig3(t *testing.T) {
	// A representative large round: 8192 sub-filters × 128 particles,
	// arm model: ~65 ops and ~150 global bytes per particle per kernel,
	// 6 kernels, aggregated.
	const groups = 8192
	snap := []device.KernelStats{{
		Name:     "round",
		Launches: 7,
		Count: device.Counters{
			Ops:              3.5e8,
			GlobalReadBytes:  6e8,
			GlobalWriteBytes: 6e8,
			LocalReadBytes:   2e8,
			LocalWriteBytes:  2e8,
		},
	}}
	times := map[string]time.Duration{}
	for _, name := range []string{"seq-c", "2x E5-2660", "GTX 580", "HD 7970"} {
		p, _ := ByName(name)
		_, total := p.PredictRound(snap, 1, groups)
		times[name] = total
	}
	if !(times["seq-c"] > times["2x E5-2660"]) {
		t.Fatalf("dual CPU (%v) must beat sequential (%v)", times["2x E5-2660"], times["seq-c"])
	}
	if !(times["2x E5-2660"] > times["GTX 580"]) {
		t.Fatalf("GTX 580 (%v) must beat dual CPU (%v)", times["GTX 580"], times["2x E5-2660"])
	}
	cpuSpeedup := times["seq-c"].Seconds() / times["2x E5-2660"].Seconds()
	if cpuSpeedup < 2 || cpuSpeedup > 10 {
		t.Fatalf("dual-CPU speedup over sequential %v, want a handful (paper: up to 6.5×)", cpuSpeedup)
	}
	gpuVsCPU := times["2x E5-2660"].Seconds() / times["HD 7970"].Seconds()
	if gpuVsCPU < 2 || gpuVsCPU > 25 {
		t.Fatalf("GPU speedup over dual CPU %v, want order of magnitude (paper: up to ~10×)", gpuVsCPU)
	}
}

// TestSmallFilterLaunchOverheadShape pins the other end of Fig. 3: for a
// tiny filter, GPU launch overhead keeps update rates close to (or below)
// the CPU's.
func TestSmallFilterLaunchOverheadShape(t *testing.T) {
	snap := []device.KernelStats{{
		Name: "round", Launches: 7,
		Count: device.Counters{Ops: 4e5, GlobalReadBytes: 1e6, GlobalWriteBytes: 1e6},
	}}
	cpu, _ := ByName("i7-2720QM")
	amd, _ := ByName("HD 6970")
	_, tCPU := cpu.PredictRound(snap, 1, 8)
	_, tAMD := amd.PredictRound(snap, 1, 8)
	// The Radeons "stay behind even more for very small filters".
	if tAMD < tCPU {
		t.Fatalf("tiny filter: HD 6970 (%v) should not beat the mobile CPU (%v)", tAMD, tCPU)
	}
}

func TestSerialOpsPenalizeGPUsNotCPUs(t *testing.T) {
	// The same kernel expressed as parallel vs serial work: on a GPU the
	// serial version must be much slower; on a CPU (whose work-groups run
	// on one core anyway) the two must cost the same.
	parallel := device.Counters{Ops: 1e8}
	serial := device.Counters{SerialOps: 1e8}
	gpu, _ := ByName("GTX 680")
	cpu, _ := ByName("2x E5-2660")
	const groups = 4096
	gPar := gpu.PredictKernel(parallel, 1, groups)
	gSer := gpu.PredictKernel(serial, 1, groups)
	if gSer.Seconds() < 2*gPar.Seconds() {
		t.Fatalf("GPU serial (%v) not clearly slower than parallel (%v)", gSer, gPar)
	}
	cPar := cpu.PredictKernel(parallel, 1, groups)
	cSer := cpu.PredictKernel(serial, 1, groups)
	ratio := cSer.Seconds() / cPar.Seconds()
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("CPU serial/parallel ratio %v, want ≈ 1", ratio)
	}
}
