package platform

// Analytic request-cost model. PredictKernel prices work from measured
// device counters, which exist only after a round has run; admission
// and SLO accounting need a price *before* stepping. EstimateRoundLaneOps
// derives one from the filter's shape alone — the same lane-operation
// currency the device counters use — so every request can be stamped
// with a predicted cost at session-create time and exported per step.

// RoundShape describes one filtering round's work for cost estimation.
type RoundShape struct {
	// SubFilters is the number of independent sub-filters (work groups).
	SubFilters int
	// ParticlesPer is the particle count per sub-filter.
	ParticlesPer int
	// StateDim is the model state dimension (propagate/weight work
	// scales with it).
	StateDim int
	// ExchangeCount is the number of particles exchanged per round
	// across the ring topology (0 when exchange is off this round).
	ExchangeCount int
}

// EstimateRoundLaneOps predicts the lane operations of one fused round
// over the given shape. The per-particle terms mirror the fused
// kernel's phases:
//
//   - rand: one Philox block draw plus Box-Muller shaping, ~8 lane ops
//     per Gaussian, StateDim+1 draws (state noise + resample uniform)
//   - propagate + weight: ~6 lane ops per state dimension each
//     (multiply-add chains plus one transcendental amortized)
//   - resample: a log2(m) CDF binary search per particle
//   - sort: the bitonic network's log2(m)·(log2(m)+1)/2 stages, one
//     compare-exchange per particle per stage
//
// plus StateDim+1 lane ops per exchanged particle for pack/unpack.
// The constants are calibrated to the same order as the device
// counters' per-phase lane-op attribution; the point is a consistent
// relative price across requests, not nanosecond accuracy.
func EstimateRoundLaneOps(shape RoundShape) int64 {
	n := int64(shape.SubFilters)
	m := int64(shape.ParticlesPer)
	if n <= 0 || m <= 0 {
		return 0
	}
	d := int64(shape.StateDim)
	if d <= 0 {
		d = 1
	}
	lg := log2ceil(m)
	perParticle := 8*(d+1) + // rand
		6*d + // propagate
		6*d + // weight
		lg + // CDF search
		lg*(lg+1)/2 // bitonic stages
	ops := n * m * perParticle
	if shape.ExchangeCount > 0 {
		ops += n * int64(shape.ExchangeCount) * (d + 1)
	}
	return ops
}

// log2ceil returns ceil(log2(v)) for v >= 1.
func log2ceil(v int64) int64 {
	var lg int64
	for p := int64(1); p < v; p <<= 1 {
		lg++
	}
	return lg
}
