// Package platform holds the Table III hardware descriptors and the
// analytic cost model that stands in for the paper's physical platforms
// (substitution recorded in DESIGN.md §2).
//
// The reproduction environment has no GPUs, so Figure 3's cross-platform
// comparison cannot be measured directly. Instead, the device substrate
// counts each kernel's arithmetic work, global-memory traffic and
// local-memory traffic (device.Counters), and this package converts those
// counts into predicted kernel times per platform with a roofline-style
// model:
//
//	t(kernel) = launches·overhead + max(ops/F, gbytes/B, lbytes/L) / U
//
// where F is the platform's effective arithmetic throughput, B its
// effective off-chip bandwidth, L its aggregate on-chip (local-memory)
// bandwidth, and U the occupancy utilization (small grids cannot fill all
// compute units). Effective throughputs are the peak values of Table III
// scaled by per-platform efficiency factors calibrated to the paper's
// qualitative results (§VII-C): a dual Sandy Bridge Xeon lands at up to
// ~6.5× the sequential filter, and a high-end GPU up to another ~10×
// ahead, with GPUs burdened by launch overhead at small filter sizes.
package platform

import (
	"fmt"
	"time"

	"esthera/internal/device"
)

// Kind classifies a platform.
type Kind string

// Platform kinds.
const (
	CPU Kind = "cpu"
	GPU Kind = "gpu"
)

// Platform describes one Table III hardware platform plus the calibrated
// efficiency factors of the cost model.
type Platform struct {
	Name     string
	Kind     Kind
	Units    int     // cores (CPU) or SMs/CUs (GPU)
	ClockGHz float64 // core clock
	GFlopsSP float64 // peak single-precision GFLOP/s
	MemBWGBs float64 // peak off-chip bandwidth, GB/s
	TDPWatts int
	Released string

	// OnChipGBs is the aggregate local-memory/cache bandwidth.
	OnChipGBs float64
	// LaneGFlops is the effective throughput of a single lane (one GPU
	// thread / one CPU core worth of one work-item at a time); serial
	// in-kernel sections (device.Counters.SerialOps) run at this rate per
	// resident work-group.
	LaneGFlops float64
	// LaunchOverhead is the per-kernel-launch fixed cost.
	LaunchOverhead time.Duration
	// EffCompute and EffBandwidth scale the peaks to what irregular
	// filtering kernels actually attain.
	EffCompute, EffBandwidth float64
	// GroupsForFull is the number of resident work-groups needed for
	// full occupancy; smaller launches are scaled down proportionally.
	GroupsForFull int
	// KernelPenalty multiplies the predicted busy time of specific
	// kernels (matched by profiler name). It encodes measured
	// platform/kernel mismatches the roofline cannot see — the paper's
	// key example being MTGP on CPUs: "our OpenCL MTGP port runs about
	// 50% slower on the dual E5-2660 than SFMT, the optimized single
	// core CPU implementation" (§VII-C), which is why the CPU spends up
	// to 40% of its runtime in the rand kernel.
	KernelPenalty map[string]float64
}

// Platforms returns the Table III platform set plus the single-core
// sequential reference ("seq-c").
func Platforms() []Platform {
	return []Platform{
		{
			// The paper's sequential centralized C implementation
			// (single core, SIMD PRNG): descriptor models one core.
			Name: "seq-c", Kind: CPU, Units: 1, ClockGHz: 2.2,
			GFlopsSP: 35, MemBWGBs: 21, TDPWatts: 45, Released: "—",
			OnChipGBs: 60, LaneGFlops: 15.0, LaunchOverhead: 0,
			EffCompute: 0.43, EffBandwidth: 0.28, GroupsForFull: 1,
		},
		{
			Name: "i7-2720QM", Kind: CPU, Units: 4, ClockGHz: 2.2,
			GFlopsSP: 141, MemBWGBs: 21, TDPWatts: 45, Released: "Jan 2011",
			OnChipGBs: 120, LaneGFlops: 7.4, LaunchOverhead: 4 * time.Microsecond,
			EffCompute: 0.21, EffBandwidth: 0.48, GroupsForFull: 8,
			KernelPenalty: map[string]float64{"rand": 2},
		},
		{
			Name: "2x E5-2660", Kind: CPU, Units: 16, ClockGHz: 2.2,
			GFlopsSP: 563, MemBWGBs: 102, TDPWatts: 190, Released: "Mar 2012",
			OnChipGBs: 350, LaneGFlops: 5.9, LaunchOverhead: 6 * time.Microsecond,
			EffCompute: 0.17, EffBandwidth: 0.29, GroupsForFull: 32,
			// GPU-optimized MTGP generation runs far below this CPU's
			// roofline (§VII-C); ×4 reproduces the observed 30-40% rand
			// share of the CPU breakdown.
			KernelPenalty: map[string]float64{"rand": 4},
		},
		{
			Name: "GTX 580", Kind: GPU, Units: 16, ClockGHz: 1.544,
			GFlopsSP: 1581, MemBWGBs: 192, TDPWatts: 244, Released: "Nov 2010",
			OnChipGBs: 1900, LaneGFlops: 2.0, LaunchOverhead: 8 * time.Microsecond,
			EffCompute: 0.50, EffBandwidth: 0.85, GroupsForFull: 96,
		},
		{
			Name: "GTX 680", Kind: GPU, Units: 8, ClockGHz: 1.006,
			GFlopsSP: 3090, MemBWGBs: 192, TDPWatts: 195, Released: "Mar 2012",
			OnChipGBs: 2100, LaneGFlops: 1.5, LaunchOverhead: 8 * time.Microsecond,
			EffCompute: 0.31, EffBandwidth: 0.85, GroupsForFull: 128,
		},
		{
			Name: "HD 6970", Kind: GPU, Units: 24, ClockGHz: 0.880,
			GFlopsSP: 2703, MemBWGBs: 176, TDPWatts: 250, Released: "Dec 2010",
			OnChipGBs: 1700, LaneGFlops: 1.2, LaunchOverhead: 15 * time.Microsecond,
			EffCompute: 0.26, EffBandwidth: 0.8, GroupsForFull: 192,
		},
		{
			Name: "HD 7970", Kind: GPU, Units: 32, ClockGHz: 0.925,
			GFlopsSP: 3789, MemBWGBs: 264, TDPWatts: 250, Released: "Jan 2012",
			OnChipGBs: 3800, LaneGFlops: 1.8, LaunchOverhead: 15 * time.Microsecond,
			EffCompute: 0.30, EffBandwidth: 0.85, GroupsForFull: 256,
		},
	}
}

// ByName returns the named platform.
func ByName(name string) (Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown platform %q", name)
}

// PredictKernel converts one kernel's accumulated counters into predicted
// execution time on p, without any per-kernel penalty. launches is the
// number of launches the counters cover and groups the launch grid's
// group count (for occupancy).
func (p Platform) PredictKernel(c device.Counters, launches int64, groups int) time.Duration {
	return p.PredictNamedKernel("", c, launches, groups)
}

// PredictNamedKernel is PredictKernel with the platform's KernelPenalty
// for the given kernel name applied to the busy time.
func (p Platform) PredictNamedKernel(name string, c device.Counters, launches int64, groups int) time.Duration {
	if launches <= 0 {
		return 0
	}
	computeSec := float64(c.Ops) / (p.GFlopsSP * 1e9 * p.EffCompute)
	memSec := float64(c.GlobalBytes()) / (p.MemBWGBs * 1e9 * p.EffBandwidth)
	localSec := float64(c.LocalReadBytes+c.LocalWriteBytes) / (p.OnChipGBs * 1e9)
	busy := computeSec
	if memSec > busy {
		busy = memSec
	}
	if localSec > busy {
		busy = localSec
	}
	if pen, ok := p.KernelPenalty[name]; ok && pen > 0 {
		busy *= pen
	}
	util := p.utilization(groups)
	sec := busy/util + float64(launches)*p.LaunchOverhead.Seconds()
	if c.SerialOps > 0 && p.LaneGFlops > 0 {
		// Serialized in-kernel sections run one lane per resident
		// work-group; concurrency comes only from groups in flight. The
		// aggregate serial throughput is capped by the platform's
		// overall effective compute rate (a CPU that runs a work-group
		// on one core anyway loses nothing to serialization).
		resident := groups
		if resident > p.GroupsForFull {
			resident = p.GroupsForFull
		}
		serialRate := p.LaneGFlops * 1e9 * float64(resident)
		if full := p.GFlopsSP * 1e9 * p.EffCompute; serialRate > full {
			serialRate = full
		}
		sec += float64(c.SerialOps) / serialRate
	}
	return time.Duration(sec * float64(time.Second))
}

// utilization returns the occupancy factor for a grid of groups.
func (p Platform) utilization(groups int) float64 {
	if groups <= 0 {
		return 1
	}
	u := float64(groups) / float64(p.GroupsForFull)
	if u > 1 {
		return 1
	}
	// Even a single group keeps one unit busy.
	min := 1 / float64(p.GroupsForFull)
	if u < min {
		return min
	}
	return u
}

// KernelTime is one kernel's predicted share of a filtering round.
type KernelTime struct {
	Name string
	Time time.Duration
}

// PredictRound converts a profiler snapshot covering `rounds` filtering
// rounds over `groups` sub-filters into the predicted per-round kernel
// times and their total on p.
func (p Platform) PredictRound(snap []device.KernelStats, rounds int, groups int) ([]KernelTime, time.Duration) {
	if rounds <= 0 {
		rounds = 1
	}
	out := make([]KernelTime, 0, len(snap))
	var total time.Duration
	for _, e := range snap {
		t := p.PredictNamedKernel(e.Name, e.Count, e.Launches, groups) / time.Duration(rounds)
		out = append(out, KernelTime{Name: e.Name, Time: t})
		total += t
	}
	return out, total
}

// UpdateRateHz converts a per-round time into the achieved filter update
// frequency (the y-axis of Fig. 3).
func UpdateRateHz(round time.Duration) float64 {
	if round <= 0 {
		return 0
	}
	return 1 / round.Seconds()
}
