package platform

import "testing"

func TestEstimateRoundLaneOpsScales(t *testing.T) {
	base := EstimateRoundLaneOps(RoundShape{SubFilters: 4, ParticlesPer: 128, StateDim: 2})
	if base <= 0 {
		t.Fatalf("base cost = %d", base)
	}
	// Linear in sub-filter count.
	if got := EstimateRoundLaneOps(RoundShape{SubFilters: 8, ParticlesPer: 128, StateDim: 2}); got != 2*base {
		t.Fatalf("doubling sub-filters: %d, want %d", got, 2*base)
	}
	// Superlinear in particles (sort term grows with log^2 m).
	if got := EstimateRoundLaneOps(RoundShape{SubFilters: 4, ParticlesPer: 256, StateDim: 2}); got <= 2*base {
		t.Fatalf("doubling particles: %d, want > %d", got, 2*base)
	}
	// Exchange adds work.
	withX := EstimateRoundLaneOps(RoundShape{SubFilters: 4, ParticlesPer: 128, StateDim: 2, ExchangeCount: 16})
	if withX <= base {
		t.Fatalf("exchange cost missing: %d <= %d", withX, base)
	}
	// Degenerate shapes are free, zero state dim defaults to 1.
	if EstimateRoundLaneOps(RoundShape{}) != 0 {
		t.Fatal("empty shape priced nonzero")
	}
	if EstimateRoundLaneOps(RoundShape{SubFilters: 1, ParticlesPer: 1}) <= 0 {
		t.Fatal("minimal shape priced zero")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int64]int64{1: 0, 2: 1, 3: 2, 4: 2, 128: 7, 129: 8}
	for v, want := range cases {
		if got := log2ceil(v); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", v, got, want)
		}
	}
}
