package resample

import (
	"math"
	"testing"

	"esthera/internal/rng"
)

// FuzzAliasTable drives Vose's construction with arbitrary weight bytes;
// the reconstruction invariant must hold (or the input be rejected by the
// uniform fallback) for every input the fuzzer finds.
func FuzzAliasTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 0, 0, 1, 128, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 512 {
			t.Skip()
		}
		ws := make([]float64, len(raw))
		total := 0.0
		for i, b := range raw {
			ws[i] = float64(b)
			total += ws[i]
		}
		tab := NewAliasTable(ws)
		if tab.Len() != len(ws) {
			t.Fatalf("table length %d, want %d", tab.Len(), len(ws))
		}
		rec := make([]float64, len(ws))
		n := float64(len(ws))
		for i := range ws {
			p := tab.Prob(i)
			if p < 0 || p > 1+1e-9 || math.IsNaN(p) {
				t.Fatalf("prob[%d] = %v", i, p)
			}
			a := tab.Alias(i)
			if a < 0 || a >= len(ws) {
				t.Fatalf("alias[%d] = %d out of range", i, a)
			}
			rec[i] += p / n
			rec[a] += (1 - p) / n
		}
		if total == 0 {
			return // uniform fallback: nothing more to check
		}
		for i, w := range ws {
			if math.Abs(rec[i]-w/total) > 1e-6 {
				t.Fatalf("reconstructed p[%d] = %v, want %v", i, rec[i], w/total)
			}
		}
	})
}

// FuzzResamplers checks every resampler's range invariant against
// arbitrary weights (including zeros, ties, and huge dynamic range).
func FuzzResamplers(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint8(3))
	f.Add([]byte{0, 0, 1}, uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, draws uint8) {
		if len(raw) == 0 || len(raw) > 256 || draws == 0 {
			t.Skip()
		}
		ws := make([]float64, len(raw))
		for i, b := range raw {
			// Exponential spacing stresses the CDF searches.
			ws[i] = math.Exp(float64(b)/16) - 1
		}
		dst := make([]int, int(draws))
		r := rng.New(rng.NewPhilox(uint64(len(raw))*1000 + uint64(draws)))
		for _, rs := range []Resampler{RWS{}, Vose{}, Systematic{}, Stratified{}, Multinomial{}, Residual{}} {
			rs.Resample(dst, ws, r)
			for _, idx := range dst {
				if idx < 0 || idx >= len(ws) {
					t.Fatalf("%s: index %d out of [0,%d)", rs.Name(), idx, len(ws))
				}
				// A zero-weight particle may only be drawn when the whole
				// vector is degenerate.
			}
		}
	})
}
