package resample

import (
	"math/bits"

	"esthera/internal/rng"
)

// Metropolis is Murray, Lee & Jacob's collective-free resampler (arXiv:
// 1202.6163): each output slot runs an independent Metropolis chain over
// the particle indices, proposing a uniformly random particle each step
// and accepting it with probability min(1, w_proposal/w_current). After
// B steps the chain's occupancy distribution approaches the normalized
// weights, so the B-th state is (approximately) a multinomial draw.
//
// Unlike RWS and the alias method it needs no prefix sum, no alias-table
// construction, and no sorted input — every chain touches only its own
// state plus random reads of the weight vector, which is exactly the
// access pattern that removes the collective barriers from a many-core
// resampling kernel (the device version lives in internal/kernels). The
// price is bias: the draw is exact only as B → ∞. With the chain length
// below (B = 2·⌈log₂ n⌉ + 8), uniform proposals mix fast enough that the
// residual bias is far below resampling noise at sub-filter sizes; the
// EXPERIMENTS.md adaptive-resampling ablation quantifies it end to end.
type Metropolis struct {
	// Steps is the chain length B; 0 selects MetropolisSteps(len(weights)).
	Steps int
}

// MetropolisSteps is the default chain length for n particles:
// 2·⌈log₂ n⌉ + 8. Murray et al. bound the bias by ε after
// B = O(log n · log ε⁻¹) steps for bounded weight ratios; the constant
// here is sized for the weight skew the arm benchmark actually produces
// (DESIGN.md §12 records the choice and the ablation that validates it).
func MetropolisSteps(n int) int {
	if n <= 1 {
		return 1
	}
	return 2*bits.Len(uint(n-1)) + 8
}

// Name implements Resampler.
func (Metropolis) Name() string { return "metropolis" }

// Resample implements Resampler.
func (mr Metropolis) Resample(dst []int, weights []float64, r *rng.Rand) {
	checkArgs(dst, weights)
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if !(total > 0) {
		uniformFill(dst, n, r)
		return
	}
	steps := mr.Steps
	if steps <= 0 {
		steps = MetropolisSteps(n)
	}
	for i := range dst {
		// Chains start at slot i (mod n when dst is larger), matching the
		// kernel version's lane-indexed starts.
		cur := i % n
		for b := 0; b < steps; b++ {
			k := r.Intn(n)
			u := r.Float64()
			// Accept with probability min(1, w[k]/w[cur]); the
			// multiplied form needs no division. (NaN weights never
			// reach this loop: they poison the total above and take
			// the uniform fallback.)
			if u*weights[cur] < weights[k] {
				cur = k
			}
		}
		dst[i] = cur
	}
}
