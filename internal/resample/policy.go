package resample

import (
	"fmt"
	"strconv"
	"strings"

	"esthera/internal/rng"
)

// Policy decides, each filtering round, whether a (sub-)filter resamples.
// §IV discusses three options: always resample (the paper's default after
// experimentation — "frequent resampling generally yields better
// results"), resample when the effective sample size falls below a
// threshold (the tutorial-article suggestion, data-dependent and thus
// undesirable for hard real-time), and resample at a random fixed
// frequency (the paper's simpler constant-cost alternative).
type Policy interface {
	Name() string
	// ShouldResample reports whether to resample given the current
	// (unnormalized) weights. r supplies randomness for stochastic
	// policies and may be used freely.
	ShouldResample(weights []float64, r *rng.Rand) bool
}

// PolicyByName maps a flag-friendly name to a policy: "always" (or ""),
// "never", "ess" (Frac 0.5) or "random" (P 0.5). The parameterized
// policies also accept an explicit parameter after a colon — "ess:0.3"
// sets ESSThreshold.Frac, "random:0.25" sets RandomFrequency.P — with
// range validation: Frac must be positive (a fraction above 1 is legal
// and resamples always, useful as an ablation endpoint) and P must lie
// in [0, 1].
func PolicyByName(name string) (Policy, error) {
	base, param, hasParam := strings.Cut(name, ":")
	switch base {
	case "", "always":
		if hasParam {
			return nil, fmt.Errorf("resample: policy %q takes no parameter", base)
		}
		return Always{}, nil
	case "never":
		if hasParam {
			return nil, fmt.Errorf("resample: policy %q takes no parameter", base)
		}
		return Never{}, nil
	case "ess":
		frac := 0.5
		if hasParam {
			v, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return nil, fmt.Errorf("resample: bad ess threshold %q: %w", param, err)
			}
			frac = v
		}
		if !(frac > 0) {
			return nil, fmt.Errorf("resample: ess threshold fraction %v out of range (want > 0)", frac)
		}
		return ESSThreshold{Frac: frac}, nil
	case "random":
		p := 0.5
		if hasParam {
			v, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return nil, fmt.Errorf("resample: bad random frequency %q: %w", param, err)
			}
			p = v
		}
		if !(p >= 0 && p <= 1) {
			return nil, fmt.Errorf("resample: random frequency %v out of range (want [0, 1])", p)
		}
		return RandomFrequency{P: p}, nil
	}
	return nil, fmt.Errorf("resample: unknown resampling policy %q", name)
}

// Always resamples every round (the paper's default).
type Always struct{}

// Name implements Policy.
func (Always) Name() string { return "always" }

// ShouldResample implements Policy.
func (Always) ShouldResample([]float64, *rng.Rand) bool { return true }

// Never disables resampling (exposes the degeneracy problem; used by
// tests and the sampling-importance-sampling ablation).
type Never struct{}

// Name implements Policy.
func (Never) Name() string { return "never" }

// ShouldResample implements Policy.
func (Never) ShouldResample([]float64, *rng.Rand) bool { return false }

// ESSThreshold resamples when ESS < Frac·n, the Arulampalam-tutorial
// criterion. Frac is typically 0.5.
type ESSThreshold struct {
	Frac float64
}

// Name implements Policy.
func (ESSThreshold) Name() string { return "ess" }

// ShouldResample implements Policy.
func (p ESSThreshold) ShouldResample(weights []float64, _ *rng.Rand) bool {
	return ESS(weights) < p.Frac*float64(len(weights))
}

// RandomFrequency resamples with probability P each round, independent of
// the data — constant expected cost, no global reduction needed, the
// real-time-friendly variant the paper experimented with (§IV).
type RandomFrequency struct {
	P float64
}

// Name implements Policy.
func (RandomFrequency) Name() string { return "random" }

// ShouldResample implements Policy.
func (p RandomFrequency) ShouldResample(_ []float64, r *rng.Rand) bool {
	return r.Float64() < p.P
}
