package resample

import (
	"math"
	"testing"

	"esthera/internal/rng"
)

// Metropolis is a biased-but-collective-free resampler: it participates
// in the proportion checks with strictly positive weights (where the
// chain mixes), but not in the exact single-heavy-weight test — a chain
// that never proposes the heavy index within B steps legitimately keeps
// its start, which is exactly the bias the chain length bounds.

func TestMetropolisMatchProportions(t *testing.T) {
	checkProportions(t, Metropolis{}, []float64{0.1, 0.4, 0.05, 0.25, 0.2}, 200000)
}

func TestMetropolisUnnormalizedWeights(t *testing.T) {
	checkProportions(t, Metropolis{}, []float64{10, 40, 5, 25, 20}, 100000)
}

func TestMetropolisZeroWeightsFallback(t *testing.T) {
	r := rng.New(rng.NewPhilox(3))
	dst := make([]int, 64)
	Metropolis{}.Resample(dst, []float64{0, 0, 0, 0}, r)
	for _, idx := range dst {
		if idx < 0 || idx >= 4 {
			t.Fatalf("fallback index %d out of range", idx)
		}
	}
}

func TestMetropolisNaNWeightsFallback(t *testing.T) {
	// A NaN weight poisons the total, so the uniform fallback fires
	// instead of chains walking a poisoned landscape.
	r := rng.New(rng.NewPhilox(5))
	dst := make([]int, 64)
	Metropolis{}.Resample(dst, []float64{1, math.NaN(), 1}, r)
	for _, idx := range dst {
		if idx < 0 || idx >= 3 {
			t.Fatalf("fallback index %d out of range", idx)
		}
	}
}

func TestMetropolisDeterministic(t *testing.T) {
	w := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := make([]int, 32)
	b := make([]int, 32)
	Metropolis{}.Resample(a, w, rng.New(rng.NewPhilox(42)))
	Metropolis{}.Resample(b, w, rng.New(rng.NewPhilox(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draws diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMetropolisSteps(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1},
		{2, 10},   // 2·1 + 8
		{16, 16},  // 2·4 + 8
		{128, 22}, // 2·7 + 8
		{129, 24}, // 2·8 + 8
	}
	for _, c := range cases {
		if got := MetropolisSteps(c.n); got != c.want {
			t.Errorf("MetropolisSteps(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestESSNonFinite pins the degeneracy-signal fix: a NaN or Inf weight
// must read as fully degenerate (ESS 0) so ESSThreshold keeps firing on
// a poisoned filter. Pre-fix, ESS returned NaN here and
// ShouldResample's NaN < frac·n comparison silently disabled resampling
// forever.
func TestESSNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		w    []float64
	}{
		{"nan-first", []float64{nan, 1, 1}},
		{"nan-mid", []float64{1, nan, 1}},
		{"nan-last", []float64{1, 1, nan}},
		{"all-nan", []float64{nan, nan}},
		{"inf", []float64{inf, 1, 1}},
		{"neg-inf", []float64{math.Inf(-1), 1}},
		{"inf-and-nan", []float64{inf, nan}},
	}
	for _, c := range cases {
		if got := ESS(c.w); got != 0 {
			t.Errorf("ESS(%s) = %v, want 0 (fully degenerate)", c.name, got)
		}
	}
	// And the policy must therefore fire.
	r := rng.New(rng.NewPhilox(1))
	if !(ESSThreshold{Frac: 0.5}).ShouldResample([]float64{nan, 1, 1}, r) {
		t.Fatal("ESSThreshold must resample a NaN-poisoned weight vector")
	}
}

func TestPolicyByNameParams(t *testing.T) {
	good := []struct {
		in   string
		want string
	}{
		{"", "always"},
		{"always", "always"},
		{"never", "never"},
		{"ess", "ess"},
		{"ess:0.3", "ess"},
		{"ess:1.5", "ess"}, // > 1 legal: resamples always (ablation endpoint)
		{"random", "random"},
		{"random:0.25", "random"},
		{"random:0", "random"},
		{"random:1", "random"},
	}
	for _, c := range good {
		p, err := PolicyByName(c.in)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", c.in, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", c.in, p.Name(), c.want)
		}
	}
	if p, _ := PolicyByName("ess:0.3"); p.(ESSThreshold).Frac != 0.3 {
		t.Errorf("ess:0.3 parsed Frac %v", p.(ESSThreshold).Frac)
	}
	if p, _ := PolicyByName("random:0.25"); p.(RandomFrequency).P != 0.25 {
		t.Errorf("random:0.25 parsed P %v", p.(RandomFrequency).P)
	}
	bad := []string{
		"ess:0", "ess:-0.5", "ess:NaN", "ess:x",
		"random:-0.1", "random:1.1", "random:NaN", "random:x",
		"always:0.5", "never:1", "bogus", "bogus:1", ":0.5",
	}
	for _, in := range bad {
		if _, err := PolicyByName(in); err == nil {
			t.Errorf("PolicyByName(%q) must error", in)
		}
	}
}
