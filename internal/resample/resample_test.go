package resample

import (
	"math"
	"testing"
	"testing/quick"

	"esthera/internal/rng"
)

var allResamplers = []Resampler{RWS{}, Vose{}, Multinomial{}, Systematic{}, Stratified{}, Residual{}}

// checkProportions verifies that resampling n draws from a fixed weight
// vector reproduces the weight proportions within sampling error.
func checkProportions(t *testing.T, rs Resampler, weights []float64, draws int) {
	t.Helper()
	r := rng.New(rng.NewPhilox(1234))
	counts := make([]int, len(weights))
	dst := make([]int, draws)
	rs.Resample(dst, weights, r)
	for _, idx := range dst {
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("%s: index %d out of range", rs.Name(), idx)
		}
		counts[idx]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		p := w / total
		got := float64(counts[i]) / float64(draws)
		// Binomial standard error plus a safety factor.
		se := math.Sqrt(p*(1-p)/float64(draws)) + 1e-9
		if math.Abs(got-p) > 8*se+0.002 {
			t.Errorf("%s: outcome %d frequency %0.4f, want %0.4f (se %0.4f)", rs.Name(), i, got, p, se)
		}
	}
}

func TestResamplersMatchProportions(t *testing.T) {
	weights := []float64{0.1, 0.4, 0.0, 0.25, 0.25}
	for _, rs := range allResamplers {
		checkProportions(t, rs, weights, 200000)
	}
}

func TestResamplersUnnormalizedWeights(t *testing.T) {
	weights := []float64{10, 40, 0, 25, 25}
	for _, rs := range allResamplers {
		checkProportions(t, rs, weights, 100000)
	}
}

func TestResamplersSingleHeavyWeight(t *testing.T) {
	// Total degeneracy: everything must map to index 2.
	weights := []float64{0, 0, 1, 0}
	for _, rs := range allResamplers {
		r := rng.New(rng.NewPhilox(7))
		dst := make([]int, 1000)
		rs.Resample(dst, weights, r)
		for _, idx := range dst {
			if idx != 2 {
				t.Errorf("%s: drew index %d from a point mass at 2", rs.Name(), idx)
			}
		}
	}
}

func TestResamplersZeroWeightsFallback(t *testing.T) {
	weights := []float64{0, 0, 0}
	for _, rs := range allResamplers {
		r := rng.New(rng.NewPhilox(3))
		dst := make([]int, 3000)
		rs.Resample(dst, weights, r)
		counts := make([]int, 3)
		for _, idx := range dst {
			if idx < 0 || idx >= 3 {
				t.Fatalf("%s: index out of range under zero weights", rs.Name())
			}
			counts[idx]++
		}
		for i, c := range counts {
			if c < 700 || c > 1300 {
				t.Errorf("%s: zero-weight fallback not uniform: counts[%d]=%d", rs.Name(), i, c)
			}
		}
	}
}

func TestResampleFewerDrawsThanWeights(t *testing.T) {
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = 1
	}
	for _, rs := range allResamplers {
		r := rng.New(rng.NewPhilox(5))
		dst := make([]int, 10)
		rs.Resample(dst, weights, r)
		for _, idx := range dst {
			if idx < 0 || idx >= 100 {
				t.Fatalf("%s: index out of range", rs.Name())
			}
		}
	}
}

func TestSystematicLowVariance(t *testing.T) {
	// With uniform weights, systematic resampling must return (almost)
	// exactly one copy of each particle.
	n := 64
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	r := rng.New(rng.NewPhilox(11))
	dst := make([]int, n)
	Systematic{}.Resample(dst, weights, r)
	counts := make([]int, n)
	for _, idx := range dst {
		counts[idx]++
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("systematic with uniform weights: counts[%d] = %d, want 1", i, c)
		}
	}
}

func TestResidualDeterministicCopies(t *testing.T) {
	// Particle 0 has weight 0.5 of 4 particles → at least 2 guaranteed copies.
	weights := []float64{0.5, 0.2, 0.2, 0.1}
	r := rng.New(rng.NewPhilox(13))
	dst := make([]int, 4)
	Residual{}.Resample(dst, weights, r)
	c0 := 0
	for _, idx := range dst {
		if idx == 0 {
			c0++
		}
	}
	if c0 < 2 {
		t.Fatalf("residual gave %d copies of the 0.5-weight particle, want >= 2", c0)
	}
}

func TestSearchCDF(t *testing.T) {
	cdf := []float64{0.1, 0.3, 0.6, 1.0}
	cases := []struct {
		u    float64
		want int
	}{
		{0.0, 0}, {0.05, 0}, {0.1, 1}, {0.2, 1}, {0.3, 2}, {0.59, 2}, {0.6, 3}, {0.99, 3},
	}
	for _, c := range cases {
		if got := searchCDF(cdf, c.u); got != c.want {
			t.Errorf("searchCDF(%v) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestESS(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got := ESS(uniform); math.Abs(got-4) > 1e-12 {
		t.Fatalf("ESS(uniform) = %v, want 4", got)
	}
	point := []float64{0, 1, 0}
	if got := ESS(point); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ESS(point mass) = %v, want 1", got)
	}
	if got := ESS([]float64{0, 0}); got != 0 {
		t.Fatalf("ESS(zero) = %v, want 0", got)
	}
	// Scale invariance.
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if math.Abs(ESS(a)-ESS(b)) > 1e-12 {
		t.Fatal("ESS not scale invariant")
	}
}

func TestNormalize(t *testing.T) {
	w := []float64{2, 6}
	sum := Normalize(w)
	if sum != 8 || w[0] != 0.25 || w[1] != 0.75 {
		t.Fatalf("Normalize wrong: sum=%v w=%v", sum, w)
	}
	z := []float64{0, 0}
	if s := Normalize(z); s != 0 || z[0] != 0.5 || z[1] != 0.5 {
		t.Fatalf("Normalize zero fallback wrong: s=%v z=%v", s, z)
	}
	nan := []float64{math.NaN(), 1}
	if s := Normalize(nan); s != 0 || nan[0] != 0.5 {
		t.Fatalf("Normalize NaN fallback wrong: s=%v w=%v", s, nan)
	}
}

func TestAliasTableInvariants(t *testing.T) {
	r := rng.New(rng.NewPhilox(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64()
		}
		tab := NewAliasTable(weights)
		if tab.Len() != n {
			t.Fatalf("table length %d, want %d", tab.Len(), n)
		}
		// Reconstructed probabilities must match the normalized weights:
		// p(i) = (prob[i] + Σ_{j: alias[j]=i} (1-prob[j])) / n.
		rec := make([]float64, n)
		for i := 0; i < n; i++ {
			if tab.Prob(i) < 0 || tab.Prob(i) > 1+1e-12 {
				t.Fatalf("prob[%d] = %v out of [0,1]", i, tab.Prob(i))
			}
			rec[i] += tab.Prob(i) / float64(n)
			a := tab.Alias(i)
			if a < 0 || a >= n {
				t.Fatalf("alias[%d] = %d out of range", i, a)
			}
			rec[a] += (1 - tab.Prob(i)) / float64(n)
		}
		total := 0.0
		for _, w := range weights {
			total += w
		}
		for i, w := range weights {
			if math.Abs(rec[i]-w/total) > 1e-9 {
				t.Fatalf("trial %d: reconstructed p[%d] = %v, want %v", trial, i, rec[i], w/total)
			}
		}
	}
}

func TestAliasTableZeroWeights(t *testing.T) {
	tab := NewAliasTable([]float64{0, 0, 0})
	r := rng.New(rng.NewPhilox(2))
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[tab.Sample(r)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform fallback skewed: counts[%d]=%d", i, c)
		}
	}
}

// Property: alias-table reconstruction matches normalized weights for
// arbitrary non-negative inputs.
func TestQuickAliasReconstruction(t *testing.T) {
	f := func(raw []float64) bool {
		ws := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				ws = append(ws, math.Abs(math.Mod(v, 1000)))
			}
		}
		if len(ws) == 0 {
			return true
		}
		total := 0.0
		for _, w := range ws {
			total += w
		}
		tab := NewAliasTable(ws)
		rec := make([]float64, len(ws))
		n := float64(len(ws))
		for i := range ws {
			rec[i] += tab.Prob(i) / n
			rec[tab.Alias(i)] += (1 - tab.Prob(i)) / n
		}
		if !(total > 0) {
			return true
		}
		for i, w := range ws {
			if math.Abs(rec[i]-w/total) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"rws", "vose", "metropolis", "systematic", "stratified", "multinomial", "residual"} {
		rs, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if rs.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, rs.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) must error")
	}
}

func TestPolicies(t *testing.T) {
	r := rng.New(rng.NewPhilox(9))
	uniform := []float64{1, 1, 1, 1}
	degenerate := []float64{1, 0, 0, 0}

	if !(Always{}).ShouldResample(uniform, r) {
		t.Error("Always must resample")
	}
	if (Never{}).ShouldResample(degenerate, r) {
		t.Error("Never must not resample")
	}
	ess := ESSThreshold{Frac: 0.5}
	if ess.ShouldResample(uniform, r) {
		t.Error("ESS policy must not fire on uniform weights")
	}
	if !ess.ShouldResample(degenerate, r) {
		t.Error("ESS policy must fire on degenerate weights")
	}
	rf := RandomFrequency{P: 0.25}
	fires := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if rf.ShouldResample(uniform, r) {
			fires++
		}
	}
	frac := float64(fires) / trials
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("RandomFrequency fired %0.3f of rounds, want ≈ 0.25", frac)
	}
	for _, p := range []Policy{Always{}, Never{}, ESSThreshold{}, RandomFrequency{}} {
		if p.Name() == "" {
			t.Error("policy with empty name")
		}
	}
}

func TestResamplePanicsOnEmpty(t *testing.T) {
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	r := rng.New(rng.NewPhilox(1))
	mustPanic(func() { RWS{}.Resample(nil, []float64{1}, r) })
	mustPanic(func() { RWS{}.Resample(make([]int, 1), nil, r) })
}

func BenchmarkRWSCentralized1M(b *testing.B) {
	benchResampler(b, RWS{}, 1<<20)
}

func BenchmarkVoseCentralized1M(b *testing.B) {
	benchResampler(b, Vose{}, 1<<20)
}

func BenchmarkSystematicCentralized1M(b *testing.B) {
	benchResampler(b, Systematic{}, 1<<20)
}

func benchResampler(b *testing.B, rs Resampler, n int) {
	r := rng.New(rng.NewPhilox(1))
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = r.Float64()
	}
	dst := make([]int, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Resample(dst, weights, r)
	}
}
