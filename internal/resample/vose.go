package resample

import "esthera/internal/rng"

// AliasTable is Vose's alias structure over n outcomes: sampling costs one
// uniform index draw plus one biased coin (§VI-F; Vose 1991; the
// "Darts, Dice, and Coins" exposition the paper cites).
type AliasTable struct {
	prob  []float64 // acceptance probability of the slot's own outcome
	alias []int     // fallback outcome per slot
}

// NewAliasTable builds the table in Θ(n) from (possibly unnormalized)
// non-negative weights using Vose's stable small/large worklist scheme.
// A zero or non-finite total yields a uniform table.
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	t := &AliasTable{prob: make([]float64, n), alias: make([]int, n)}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if !(total > 0) {
		for i := range t.prob {
			t.prob[i] = 1
			t.alias[i] = i
		}
		return t
	}
	// Scaled weights: mean 1 per slot.
	scaled := make([]float64, n)
	f := float64(n) / total
	for i, w := range weights {
		scaled[i] = w * f
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[l] = scaled[l]
		t.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Numerical leftovers saturate at probability 1.
	for _, g := range large {
		t.prob[g] = 1
		t.alias[g] = g
	}
	for _, l := range small {
		t.prob[l] = 1
		t.alias[l] = l
	}
	return t
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Prob returns slot i's own-outcome acceptance probability (exported for
// the device-kernel implementation and its tests).
func (t *AliasTable) Prob(i int) float64 { return t.prob[i] }

// Alias returns slot i's fallback outcome.
func (t *AliasTable) Alias(i int) int { return t.alias[i] }

// Sample draws one outcome using two uniforms (one slot draw, one coin),
// exactly the per-thread cost noted in §VI-F.
func (t *AliasTable) Sample(r *rng.Rand) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// Vose resamples with a fresh alias table per call: Θ(n) init, Θ(1) per
// draw. This is the sequential form used by the centralized filter; the
// in-place parallel construction appears in internal/kernels.
type Vose struct{}

// Name implements Resampler.
func (Vose) Name() string { return "vose" }

// Resample implements Resampler.
func (Vose) Resample(dst []int, weights []float64, r *rng.Rand) {
	checkArgs(dst, weights)
	t := NewAliasTable(weights)
	for i := range dst {
		dst[i] = t.Sample(r)
	}
}
