// Package resample implements the resampling algorithms and policies of
// the toolkit.
//
// Resampling combats the degeneracy problem (§II-B1): it replaces the
// weighted particle set by an unweighted one drawn with replacement
// according to the weights. The paper implements and compares two
// algorithms (§IV, §VI-F, Fig. 5):
//
//   - Roulette Wheel Selection (RWS): Θ(n) initialization (a prefix sum
//     of the weights) and Θ(log n) per sample (binary search in the CDF).
//   - Vose's alias method: Θ(n) initialization and Θ(1) per sample, at
//     the cost of a table construction that parallelizes poorly at
//     sub-filter sizes.
//
// This package provides sequential implementations of both plus the other
// standard schemes (multinomial, systematic, stratified, residual), the
// collective-free Metropolis resampler of Murray et al. (arXiv:1202.6163)
// as baselines and ablations, the effective-sample-size metric, and the
// "when to resample" policies discussed in §IV (always, ESS threshold,
// random frequency). The barrier-phased device versions live in
// internal/kernels.
package resample

import (
	"fmt"
	"math"

	"esthera/internal/rng"
	"esthera/internal/scan"
)

// Resampler draws len(dst) particle indices (with replacement) according
// to weights, writing them into dst. Weights need not be normalized but
// must be non-negative with a positive sum.
type Resampler interface {
	Name() string
	Resample(dst []int, weights []float64, r *rng.Rand)
}

// ESS returns the effective sample size of a weight vector,
// (Σw)² / Σw². It equals len(w) for uniform weights and approaches 1 under
// total degeneracy. Weights need not be normalized.
//
// A non-finite result — any NaN weight poisons both sums, and an Inf
// weight overflows them — is clamped to 0, the fully-degenerate reading.
// The clamp is what keeps ESSThreshold.ShouldResample live on a poisoned
// filter: NaN < frac·n is false for every threshold, so without it a
// single NaN weight would silently disable resampling forever.
func ESS(weights []float64) float64 {
	var s, s2 float64
	for _, w := range weights {
		s += w
		s2 += w * w
	}
	if s2 == 0 {
		return 0
	}
	ess := s * s / s2
	if math.IsNaN(ess) || math.IsInf(ess, 0) {
		return 0
	}
	return ess
}

// Normalize scales weights in place to sum to 1 and returns the original
// sum. If the sum is zero or not finite, weights are reset to uniform and
// 0 is returned — the standard recovery when every particle's likelihood
// underflows.
func Normalize(weights []float64) float64 {
	s := scan.Sum(weights)
	if !(s > 0) || s != s {
		u := 1.0 / float64(len(weights))
		for i := range weights {
			weights[i] = u
		}
		return 0
	}
	inv := 1 / s
	for i := range weights {
		weights[i] *= inv
	}
	return s
}

// checkArgs validates a Resample call.
func checkArgs(dst []int, weights []float64) {
	if len(weights) == 0 {
		panic("resample: empty weight vector")
	}
	if len(dst) == 0 {
		panic("resample: empty destination")
	}
}

// RWS is Roulette Wheel Selection: inverse-CDF sampling with a binary
// search per draw, exactly the scheme of §VI-F.
type RWS struct{}

// Name implements Resampler.
func (RWS) Name() string { return "rws" }

// Resample implements Resampler.
func (RWS) Resample(dst []int, weights []float64, r *rng.Rand) {
	checkArgs(dst, weights)
	cdf := make([]float64, len(weights))
	scan.InclusiveSum(cdf, weights)
	total := cdf[len(cdf)-1]
	if !(total > 0) {
		uniformFill(dst, len(weights), r)
		return
	}
	for i := range dst {
		dst[i] = searchCDF(cdf, r.Float64()*total)
	}
}

// searchCDF returns the smallest index with cdf[idx] > u (binary search).
func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Multinomial draws each sample by linear search; the textbook baseline,
// O(n) per draw. Only sensible for tests and tiny filters.
type Multinomial struct{}

// Name implements Resampler.
func (Multinomial) Name() string { return "multinomial" }

// Resample implements Resampler.
func (Multinomial) Resample(dst []int, weights []float64, r *rng.Rand) {
	checkArgs(dst, weights)
	total := scan.Sum(weights)
	if !(total > 0) {
		uniformFill(dst, len(weights), r)
		return
	}
	for i := range dst {
		u := r.Float64() * total
		acc := 0.0
		idx := len(weights) - 1
		for j, w := range weights {
			acc += w
			if acc > u {
				idx = j
				break
			}
		}
		dst[i] = idx
	}
}

// Systematic is systematic (universal stratified) resampling: a single
// uniform offset and n equally spaced pointers swept over the CDF. O(n)
// total, minimal variance, the most common choice in modern practice;
// included as a baseline the paper's related work (Bolić et al.) builds on.
type Systematic struct{}

// Name implements Resampler.
func (Systematic) Name() string { return "systematic" }

// Resample implements Resampler.
func (Systematic) Resample(dst []int, weights []float64, r *rng.Rand) {
	checkArgs(dst, weights)
	total := scan.Sum(weights)
	if !(total > 0) {
		uniformFill(dst, len(weights), r)
		return
	}
	n := len(dst)
	step := total / float64(n)
	u := r.Float64() * step
	acc := weights[0]
	j := 0
	for i := 0; i < n; i++ {
		for acc <= u && j < len(weights)-1 {
			j++
			acc += weights[j]
		}
		dst[i] = j
		u += step
	}
}

// Stratified resampling: one uniform per stratum of the CDF.
type Stratified struct{}

// Name implements Resampler.
func (Stratified) Name() string { return "stratified" }

// Resample implements Resampler.
func (Stratified) Resample(dst []int, weights []float64, r *rng.Rand) {
	checkArgs(dst, weights)
	total := scan.Sum(weights)
	if !(total > 0) {
		uniformFill(dst, len(weights), r)
		return
	}
	n := len(dst)
	step := total / float64(n)
	acc := weights[0]
	j := 0
	for i := 0; i < n; i++ {
		u := (float64(i) + r.Float64()) * step
		for acc <= u && j < len(weights)-1 {
			j++
			acc += weights[j]
		}
		dst[i] = j
	}
}

// Residual resampling: deterministic copies of ⌊n·wᵢ⌋ per particle, then
// the remainder multinomially. Lower variance than multinomial at the
// same O(n) cost.
type Residual struct{}

// Name implements Resampler.
func (Residual) Name() string { return "residual" }

// Resample implements Resampler.
func (Residual) Resample(dst []int, weights []float64, r *rng.Rand) {
	checkArgs(dst, weights)
	total := scan.Sum(weights)
	if !(total > 0) {
		uniformFill(dst, len(weights), r)
		return
	}
	n := len(dst)
	k := 0
	residual := make([]float64, len(weights))
	for i, w := range weights {
		exp := float64(n) * w / total
		copies := int(exp)
		for c := 0; c < copies && k < n; c++ {
			dst[k] = i
			k++
		}
		residual[i] = exp - float64(copies)
	}
	if k < n {
		Multinomial{}.Resample(dst[k:], residual, r)
	}
}

// uniformFill fills dst with uniform draws over [0,n), the degenerate-
// weights fallback.
func uniformFill(dst []int, n int, r *rng.Rand) {
	for i := range dst {
		dst[i] = r.Intn(n)
	}
}

// ByName returns the named resampler ("rws", "vose", "metropolis",
// "systematic", "stratified", "multinomial", "residual").
func ByName(name string) (Resampler, error) {
	switch name {
	case "rws":
		return RWS{}, nil
	case "vose":
		return Vose{}, nil
	case "metropolis":
		return Metropolis{}, nil
	case "systematic":
		return Systematic{}, nil
	case "stratified":
		return Stratified{}, nil
	case "multinomial":
		return Multinomial{}, nil
	case "residual":
		return Residual{}, nil
	}
	return nil, fmt.Errorf("resample: unknown resampler %q", name)
}
