package experiments

import (
	"fmt"
	"runtime"
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/model/arm"
	"esthera/internal/platform"
	"esthera/internal/rng"
)

// PerfOptions sizes the performance experiments (Figs. 3–5).
type PerfOptions struct {
	// Totals are the total particle counts swept in Fig. 3 / Fig. 5.
	// Nil selects the paper's range 1K–2M.
	Totals []int
	// SubFilterSize is m for the GPU-style configuration (Table II: 128).
	SubFilterSize int
	// Rounds is how many filtering rounds feed the counters (3 default).
	Rounds int
	// Joints configures the arm model (Table II: 5).
	Joints int
	// Workers sizes the host device (default GOMAXPROCS).
	Workers int
}

func (o PerfOptions) withDefaults() PerfOptions {
	if o.Totals == nil {
		o.Totals = []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 21}
	}
	if o.SubFilterSize == 0 {
		o.SubFilterSize = 128
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.Joints == 0 {
		o.Joints = 5
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// newArmPipeline builds the paper-default arm filter at a given shape and
// returns it together with its scenario.
func newArmPipeline(o PerfOptions, subFilters, particlesPer, joints int, algo kernels.Algo) (*filter.Parallel, *arm.Scenario, *device.Device, error) {
	m, sc, err := arm.NewScenario(arm.Config{Joints: joints}, arm.DefaultLemniscate())
	if err != nil {
		return nil, nil, nil, err
	}
	dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
	f, err := filter.NewParallel(dev, m, filter.ParallelConfig{
		SubFilters:    subFilters,
		ParticlesPer:  particlesPer,
		Scheme:        exchange.Ring,
		ExchangeCount: 1,
		Resampler:     algo,
	}, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	return f, sc, dev, nil
}

// runRounds drives the filter for o.Rounds steps against the scenario.
func runRounds(f *filter.Parallel, sc *arm.Scenario, rounds int, seed uint64) {
	m := sc.Model()
	measR := rng.New(rng.NewPhiloxStream(seed, 1))
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	for k := 1; k <= rounds; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		m.Measure(z, truth, measR)
		f.Step(u, z)
	}
}

// Fig3UpdateRate reproduces Figure 3: achieved update rate (Hz) versus
// total particle count, per platform. Platform columns are cost-model
// predictions from the instrumented kernel counters; the final column is
// the measured wall rate of the Go substrate on this host.
func Fig3UpdateRate(o PerfOptions) (*Table, error) {
	o = o.withDefaults()
	plats := platform.Platforms()
	header := []string{"particles", "sub-filters"}
	for _, p := range plats {
		header = append(header, p.Name+" (Hz)")
	}
	header = append(header, "go-host (Hz)")
	t := &Table{
		Title:  "Fig. 3 — particle filter update rate vs total particles (arm, 9 state vars)",
		Header: header,
		Notes: []string{
			"platform columns are analytic cost-model predictions (see DESIGN.md §2)",
			fmt.Sprintf("m=%d particles per sub-filter, ring exchange t=1, %d rounds measured", o.SubFilterSize, o.Rounds),
		},
	}
	for _, total := range o.Totals {
		n := total / o.SubFilterSize
		if n < 1 {
			n = 1
		}
		f, sc, dev, err := newArmPipeline(o, n, o.SubFilterSize, o.Joints, kernels.AlgoRWS)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		runRounds(f, sc, o.Rounds, 7)
		wall := time.Since(start)
		snap := dev.Profiler().Snapshot()
		row := []interface{}{total, n}
		for _, p := range plats {
			_, round := p.PredictRound(snap, o.Rounds, n)
			row = append(row, platform.UpdateRateHz(round))
		}
		row = append(row, platform.UpdateRateHz(wall/time.Duration(o.Rounds)))
		t.Append(row...)
	}
	return t, nil
}

// breakdownRow runs one configuration and returns the per-kernel fraction
// of the named platform's predicted round time — the quantity Fig. 4
// plots ("the plotted breakdowns have been run on a GTX 580 running
// CUDA"; the CPU variant reproduces the §VII-C dual-Xeon discussion).
func breakdownRow(o PerfOptions, platName string, subFilters, particlesPer, joints int) (map[string]float64, error) {
	f, sc, dev, err := newArmPipeline(o, subFilters, particlesPer, joints, kernels.AlgoRWS)
	if err != nil {
		return nil, err
	}
	runRounds(f, sc, o.Rounds, 11)
	p, err := platform.ByName(platName)
	if err != nil {
		return nil, err
	}
	kts, total := p.PredictRound(dev.Profiler().Snapshot(), o.Rounds, subFilters)
	frac := map[string]float64{}
	for _, kt := range kts {
		if total > 0 {
			frac[kt.Name] += kt.Time.Seconds() / total.Seconds()
		}
	}
	return frac, nil
}

// kernelOrder is the Fig. 4 legend order.
var kernelOrder = []string{"rand", "sampling", "local sort", "global estimate", "exchange", "resampling"}

func breakdownTable(title, xlabel string, xs []int, run func(x int) (map[string]float64, error)) (*Table, error) {
	t := &Table{Title: title, Header: append([]string{xlabel}, kernelOrder...)}
	for _, x := range xs {
		frac, err := run(x)
		if err != nil {
			return nil, err
		}
		row := []interface{}{x}
		for _, k := range kernelOrder {
			row = append(row, fmt.Sprintf("%.1f%%", 100*frac[k]))
		}
		t.Append(row...)
	}
	t.Notes = append(t.Notes, "fractions of the GTX 580 cost-model round time (paper ran Fig. 4 on a GTX 580)")
	return t, nil
}

// Fig4aParticlesPerSubFilter reproduces Fig. 4a: kernel breakdown while
// scaling the sub-filter size.
func Fig4aParticlesPerSubFilter(o PerfOptions, sizes []int) (*Table, error) {
	o = o.withDefaults()
	if sizes == nil {
		sizes = []int{32, 64, 128, 256, 512, 1024}
	}
	return breakdownTable("Fig. 4a — breakdown vs particles per sub-filter (256 sub-filters)",
		"particles/sub-filter", sizes, func(m int) (map[string]float64, error) {
			return breakdownRow(o, "GTX 580", 256, m, o.Joints)
		})
}

// Fig4bSubFilters reproduces Fig. 4b: kernel breakdown while scaling the
// number of sub-filters.
func Fig4bSubFilters(o PerfOptions, counts []int) (*Table, error) {
	o = o.withDefaults()
	if counts == nil {
		counts = []int{64, 256, 1024, 4096, 8192}
	}
	return breakdownTable("Fig. 4b — breakdown vs number of sub-filters (m=128)",
		"sub-filters", counts, func(n int) (map[string]float64, error) {
			return breakdownRow(o, "GTX 580", n, o.SubFilterSize, o.Joints)
		})
}

// Fig4cStateDims reproduces Fig. 4c: kernel breakdown while scaling the
// state dimension (arm joints), 8–48 state variables.
func Fig4cStateDims(o PerfOptions, dims []int) (*Table, error) {
	o = o.withDefaults()
	if dims == nil {
		dims = []int{8, 16, 24, 32, 48}
	}
	return breakdownTable("Fig. 4c — breakdown vs state dimension (256 sub-filters, m=128)",
		"state dims", dims, func(d int) (map[string]float64, error) {
			joints := d - 4 // state dim = joints + 4
			if joints < 1 {
				joints = 1
			}
			return breakdownRow(o, "GTX 580", 256, o.SubFilterSize, joints)
		})
}

// Fig4CPUBreakdown is the §VII-C companion to Fig. 4a: the same
// breakdown on the dual-Xeon cost model, where "the biggest difference
// between our dual CPU and GPGPU performance is that the CPU spends much
// more time on random numbers (40% at 16 particles/sub-filter)" because
// MTGP is optimized for GPUs.
func Fig4CPUBreakdown(o PerfOptions, sizes []int) (*Table, error) {
	o = o.withDefaults()
	if sizes == nil {
		sizes = []int{16, 64, 128, 512}
	}
	t, err := breakdownTable("§VII-C — breakdown on the dual E5-2660 vs particles per sub-filter (256 sub-filters)",
		"particles/sub-filter", sizes, func(m int) (map[string]float64, error) {
			return breakdownRow(o, "2x E5-2660", 256, m, o.Joints)
		})
	if err != nil {
		return nil, err
	}
	t.Notes = t.Notes[:0]
	t.Notes = append(t.Notes, "fractions of the 2x E5-2660 cost-model round time (GPU-tuned MTGP penalized per §VII-C)")
	return t, nil
}
