package experiments

import (
	"fmt"
	"math"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// DiversityAblation measures the particle-diversity mechanism behind
// Fig. 6: the unique-particle fraction of the whole population per
// exchange scheme, alongside the estimation error. All-to-All floods
// every sub-filter with the same globally-best particles and should show
// the lowest diversity (and, in larger networks, the worst accuracy).
func DiversityAblation(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	const n, mp, tc = 64, 16, 2
	t := &Table{
		Title:  fmt.Sprintf("§VII-D1 ablation — population diversity per exchange scheme (%d×%d, t=%d)", n, mp, tc),
		Header: []string{"scheme", "unique fraction", "mean error [m]"},
		Notes: []string{
			"unique fraction: mean over steps of the distinct-state share of all N·m particles",
		},
	}
	for _, scheme := range []exchange.Scheme{exchange.None, exchange.Ring, exchange.Torus2D, exchange.AllToAll} {
		div, errM, err := diversityRun(o, m, sc, scheme, n, mp, tc)
		if err != nil {
			return nil, err
		}
		t.Append(scheme.String(), div, errM)
	}
	return t, nil
}

// diversityRun tracks one configuration and returns (mean unique
// fraction, mean error).
func diversityRun(o AccuracyOptions, m model.Model, sc model.Scenario, scheme exchange.Scheme, n, mp, tc int) (float64, float64, error) {
	dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
	t := tc
	if scheme == exchange.None {
		t = 0
	}
	f, err := filter.NewParallel(dev, m, filter.ParallelConfig{
		SubFilters: n, ParticlesPer: mp, Scheme: scheme, ExchangeCount: t,
	}, o.Seed)
	if err != nil {
		return 0, 0, err
	}
	measR := rng.New(rng.NewPhiloxStream(o.Seed, 0x4D53))
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	var divSum, errSum float64
	for k := 1; k <= o.Steps; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		m.Measure(z, truth, measR)
		est := f.Step(u, z)
		divSum += f.Diversity()
		ex, ey := m.TrackedPosition(est.State)
		tx, ty := m.TrackedPosition(truth)
		errSum += math.Hypot(ex-tx, ey-ty)
	}
	return divSum / float64(o.Steps), errSum / float64(o.Steps), nil
}
