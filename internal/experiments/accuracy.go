package experiments

import (
	"fmt"
	"runtime"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/metrics"
	"esthera/internal/model"
	"esthera/internal/model/arm"
)

// AccuracyOptions sizes the accuracy experiments (Figs. 6, 7, 9 and the
// ablations). The paper averaged 100 runs of 100 steps per
// configuration; the defaults here are reduced (recorded in table notes
// and EXPERIMENTS.md) and the cmd tools expose flags for full budgets.
type AccuracyOptions struct {
	Steps int // default 60
	Runs  int // default 8
	Seed  uint64
	// Joints configures the arm model (Table II: 5).
	Joints int
	// SubFilterCounts is the Fig. 6/7 x-axis (default 16…512).
	SubFilterCounts []int
	// SubFilterSizes are the Fig. 6 line families (default 8, 16, 64).
	SubFilterSizes []int
	// ExchangeCounts are the Fig. 7 panels (default 0, 1, 4).
	ExchangeCounts []int
	// Workers sizes the host device.
	Workers int
}

func (o AccuracyOptions) withDefaults() AccuracyOptions {
	if o.Steps == 0 {
		o.Steps = 60
	}
	if o.Runs == 0 {
		o.Runs = 8
	}
	if o.Seed == 0 {
		o.Seed = 0xE57
	}
	if o.Joints == 0 {
		o.Joints = 5
	}
	if o.SubFilterCounts == nil {
		o.SubFilterCounts = []int{16, 64, 256, 512}
	}
	if o.SubFilterSizes == nil {
		o.SubFilterSizes = []int{8, 16, 64}
	}
	if o.ExchangeCounts == nil {
		o.ExchangeCounts = []int{0, 1, 4}
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// armScenario builds the benchmark scenario once per experiment.
func armScenario(joints int) (model.Model, model.Scenario, error) {
	m, sc, err := arm.NewScenario(arm.Config{Joints: joints}, arm.DefaultLemniscate())
	return m, sc, err
}

// meanError evaluates a filter constructor over the arm scenario with the
// option budget, returning the mean tracked-object position error in
// meters.
func meanError(o AccuracyOptions, sc model.Scenario, mk func(seed uint64) (filter.Filter, error)) (float64, error) {
	agg, err := metrics.Average(mk, func(int) model.Scenario { return sc }, o.Steps, o.Runs, o.Seed)
	if err != nil {
		return 0, err
	}
	return agg.MeanError, nil
}

// parallelArmFilter builds the device-parallel distributed filter for an
// accuracy cell. The device is shared per experiment via o.Workers.
func parallelArmFilter(o AccuracyOptions, m model.Model, n, mp, t int, scheme exchange.Scheme, seed uint64) (filter.Filter, error) {
	dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
	return filter.NewParallel(dev, m, filter.ParallelConfig{
		SubFilters:    n,
		ParticlesPer:  mp,
		Scheme:        scheme,
		ExchangeCount: t,
	}, seed)
}

// Fig6ExchangeSchemes reproduces Figure 6: estimation error versus the
// number of sub-filters, one table per exchange scheme (a: All-to-All,
// b: Ring, c: 2D Torus), with one column per sub-filter size, t = 1.
func Fig6ExchangeSchemes(o AccuracyOptions) ([]*Table, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, scheme := range []exchange.Scheme{exchange.AllToAll, exchange.Ring, exchange.Torus2D} {
		t := &Table{
			Title:  fmt.Sprintf("Fig. 6 (%s) — estimation error vs number of sub-filters, t=1", scheme),
			Header: []string{"sub-filters"},
			Notes:  []string{fmt.Sprintf("mean object-position error [m], %d runs × %d steps", o.Runs, o.Steps)},
		}
		for _, mp := range o.SubFilterSizes {
			t.Header = append(t.Header, fmt.Sprintf("m=%d", mp))
		}
		for _, n := range o.SubFilterCounts {
			row := []interface{}{n}
			for _, mp := range o.SubFilterSizes {
				e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
					return parallelArmFilter(o, m, n, mp, 1, scheme, seed)
				})
				if err != nil {
					return nil, err
				}
				row = append(row, e)
			}
			t.Append(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7ExchangeCount reproduces Figure 7: estimation error versus the
// number of sub-filters for different per-neighbor exchange volumes t
// (panels t = 0, 1, 4 in the paper), ring topology, small sub-filters.
func Fig7ExchangeCount(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	// Pick the smallest configured sub-filter size that can absorb the
	// largest exchange volume (ring degree 2, incoming 2t must leave at
	// least one native particle).
	maxT := 0
	for _, tc := range o.ExchangeCounts {
		if tc > maxT {
			maxT = tc
		}
	}
	mp := 0
	for _, size := range o.SubFilterSizes {
		if 2*maxT < size {
			mp = size
			break
		}
	}
	if mp == 0 {
		mp = 2*maxT + 2
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 7 — estimation error vs exchanged particles per neighbor (ring, m=%d)", mp),
		Header: []string{"sub-filters"},
		Notes:  []string{fmt.Sprintf("mean object-position error [m], %d runs × %d steps", o.Runs, o.Steps)},
	}
	for _, tc := range o.ExchangeCounts {
		t.Header = append(t.Header, fmt.Sprintf("t=%d", tc))
	}
	for _, n := range o.SubFilterCounts {
		row := []interface{}{n}
		for _, tc := range o.ExchangeCounts {
			e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
				return parallelArmFilter(o, m, n, mp, tc, exchange.Ring, seed)
			})
			if err != nil {
				return nil, err
			}
			row = append(row, e)
		}
		t.Append(row...)
	}
	return t, nil
}

// Fig9DistributedOverhead reproduces Figure 9: estimation error of
// distributed configurations (one column per sub-filter size) against the
// centralized filter at equal total particle counts.
func Fig9DistributedOverhead(o AccuracyOptions, totals []int, sizes []int) (*Table, error) {
	o = o.withDefaults()
	if totals == nil {
		totals = []int{256, 1024, 4096, 16384}
	}
	if sizes == nil {
		sizes = []int{4, 16, 64, 256}
	}
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 9 — estimation error: distributed (by sub-filter size) vs centralized",
		Header: []string{"particles", "centralized"},
		Notes: []string{
			fmt.Sprintf("mean object-position error [m], %d runs × %d steps; '-' = infeasible shape", o.Runs, o.Steps),
		},
	}
	for _, mp := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("distr. (%d)", mp))
	}
	for _, total := range totals {
		row := []interface{}{total}
		e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
			return filter.NewCentralized(m, total, seed, filter.CentralizedOptions{})
		})
		if err != nil {
			return nil, err
		}
		row = append(row, e)
		for _, mp := range sizes {
			n := total / mp
			// Ring degree 2 × t=1 needs m > 2; and at least 2 sub-filters.
			if n < 2 || mp <= 2 || n*mp != total {
				row = append(row, "-")
				continue
			}
			e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
				return parallelArmFilter(o, m, n, mp, 1, exchange.Ring, seed)
			})
			if err != nil {
				return nil, err
			}
			row = append(row, e)
		}
		t.Append(row...)
	}
	return t, nil
}
