package experiments

import (
	"fmt"

	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/metrics"
	"esthera/internal/rng"
)

// Fig8Trajectory reproduces Figure 8: the lemniscate ground truth with
// two filter traces — a high-particle configuration that converges onto
// the path and a low-particle configuration that does not. The returned
// table holds the raw traces (for plotting or CSV export); Converged
// reports the §VIII-A validation outcome for both.
type Fig8Result struct {
	Table         *Table
	HighConverged bool
	LowConverged  bool
	HighTrailing  float64 // trailing-window mean error [m]
	LowTrailing   float64
}

// Fig8Trajectory runs the validation experiment. steps defaults to 120
// (half a lemniscate circuit plus settling).
func Fig8Trajectory(o AccuracyOptions, steps int) (*Fig8Result, error) {
	o = o.withDefaults()
	if steps == 0 {
		steps = 120
	}
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}

	mkHigh := func(seed uint64) (filter.Filter, error) {
		// Converging configuration (64 sub-filters × 64 particles, ring).
		return parallelArmFilter(o, m, 64, 64, 1, exchange.Ring, seed)
	}
	mkLow := func(seed uint64) (filter.Filter, error) {
		// Too few particles to reliably acquire the path.
		return filter.NewCentralized(m, 8, seed, filter.CentralizedOptions{})
	}

	// Convergence verdicts average a few independent runs: a single
	// low-particle run occasionally gets lucky (and a high-particle run
	// occasionally stumbles), but the means separate cleanly.
	window := steps / 3
	trailing := func(mk func(seed uint64) (filter.Filter, error), runs int) (float64, error) {
		sum := 0.0
		for r := 0; r < runs; r++ {
			f, err := mk(o.Seed + uint64(r))
			if err != nil {
				return 0, err
			}
			s := metrics.Run(f, sc, steps, o.Seed+uint64(100+r))
			sum += s.MeanAfter(steps - window)
		}
		return sum / float64(runs), nil
	}
	highTrail, err := trailing(mkHigh, 3)
	if err != nil {
		return nil, err
	}
	lowTrail, err := trailing(mkLow, 3)
	if err != nil {
		return nil, err
	}

	// The plotted traces come from one representative run.
	high, err := mkHigh(o.Seed)
	if err != nil {
		return nil, err
	}
	low, err := mkLow(o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 8 — lemniscate ground truth with two filter traces",
		Header: []string{"step", "truth-x", "truth-y", "high-x", "high-y", "low-x", "low-y"},
	}
	measR := rng.New(rng.NewPhiloxStream(o.Seed+100, 0x4D53))
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	for k := 1; k <= steps; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		m.Measure(z, truth, measR)
		eh := high.Step(u, z)
		el := low.Step(u, z)
		tx, ty := m.TrackedPosition(truth)
		hx, hy := m.TrackedPosition(eh.State)
		lx, ly := m.TrackedPosition(el.State)
		t.Append(k, tx, ty, hx, hy, lx, ly)
	}
	const threshold = 0.15 // meters: "on the path" for a 0.6 m figure
	res := &Fig8Result{
		Table:         t,
		HighConverged: highTrail < threshold,
		LowConverged:  lowTrail < threshold,
		HighTrailing:  highTrail,
		LowTrailing:   lowTrail,
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("high (64×64, ring t=1): mean trailing error %.3f m over 3 runs, converged=%v", res.HighTrailing, res.HighConverged),
		fmt.Sprintf("low (8 particles): mean trailing error %.3f m over 3 runs, converged=%v", res.LowTrailing, res.LowConverged))
	return res, nil
}
