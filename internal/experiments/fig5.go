package experiments

import (
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/kernels"
	"esthera/internal/model/arm"
	"esthera/internal/platform"
	"esthera/internal/resample"
	"esthera/internal/rng"
)

// Fig5Resampling reproduces Figure 5: runtime of the Roulette Wheel
// Selection algorithm versus Vose's alias method, at two scales:
//
//   - a sequential centralized filter resampling all n particles at once
//     (measured wall time, the "C (centr.)" lines), where Vose's O(1)
//     generation wins decisively at large n; and
//   - the parallel sub-filter setting (m = 128, n/128 work-groups), where
//     the table-construction serialization means "resampling with Vose's
//     is never faster" — shown both as GTX 680 cost-model predictions
//     (the "OpenCL" lines) and as measured host wall time.
func Fig5Resampling(o PerfOptions) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title: "Fig. 5 — resampling runtime: RWS vs Vose's alias method vs Metropolis",
		Header: []string{"particles",
			"C-rws (ms)", "C-vose (ms)",
			"gtx680-rws (ms)", "gtx680-vose (ms)",
			"host-rws (ms)", "host-vose (ms)",
			"C-metr (ms)", "gtx680-metr (ms)", "host-metr (ms)"},
		Notes: []string{
			"C columns: measured sequential wall time; gtx680 columns: cost-model prediction at m=128",
			"metropolis (arXiv:1202.6163): collective-free biased random walks, B = 2·log2(m)+8 chain steps — no scan, no sort barrier",
		},
	}
	gpu, err := platform.ByName("GTX 680")
	if err != nil {
		return nil, err
	}
	for _, n := range o.Totals {
		seqRWS := measureSequentialResample(resample.RWS{}, n)
		seqVose := measureSequentialResample(resample.Vose{}, n)
		seqMetr := measureSequentialResample(resample.Metropolis{}, n)
		gpuRWS, hostRWS, err := measureKernelResample(o, gpu, n, kernels.AlgoRWS)
		if err != nil {
			return nil, err
		}
		gpuVose, hostVose, err := measureKernelResample(o, gpu, n, kernels.AlgoVose)
		if err != nil {
			return nil, err
		}
		gpuMetr, hostMetr, err := measureKernelResample(o, gpu, n, kernels.AlgoMetropolis)
		if err != nil {
			return nil, err
		}
		t.Append(n,
			ms(seqRWS), ms(seqVose),
			ms(gpuRWS), ms(gpuVose),
			ms(hostRWS), ms(hostVose),
			ms(seqMetr), ms(gpuMetr), ms(hostMetr))
	}
	return t, nil
}

func ms(d time.Duration) float64 { return d.Seconds() * 1e3 }

// measureSequentialResample times one full centralized resample of n
// particles (index generation only — payload movement is common to both
// algorithms).
func measureSequentialResample(rs resample.Resampler, n int) time.Duration {
	r := rng.New(rng.NewPhilox(1))
	w := make([]float64, n)
	for i := range w {
		w[i] = r.Float64()
	}
	dst := make([]int, n)
	// Warm once, then time the best of three (loaded-host noise guard).
	rs.Resample(dst, w, r)
	best := time.Duration(1 << 62)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		rs.Resample(dst, w, r)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// measureKernelResample runs only the resampling kernel over n/m
// sub-filters of m=SubFilterSize particles and returns the platform
// prediction and the measured host time for one launch.
func measureKernelResample(o PerfOptions, p platform.Platform, n int, algo kernels.Algo) (predicted, host time.Duration, err error) {
	m := o.SubFilterSize
	groups := n / m
	if groups < 1 {
		groups = 1
	}
	mdl, _, err := arm.NewScenario(arm.Config{Joints: o.Joints}, arm.DefaultLemniscate())
	if err != nil {
		return 0, 0, err
	}
	dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
	top, err := exchange.NewTopology(exchange.None, groups)
	if err != nil {
		return 0, 0, err
	}
	pipe, err := kernels.New(dev, mdl, kernels.Config{
		SubFilters:   groups,
		ParticlesPer: m,
		Topology:     top,
		Resampler:    algo,
	}, 1)
	if err != nil {
		return 0, 0, err
	}
	// Non-trivial weights so the algorithms do real work.
	r := rng.New(rng.NewPhilox(2))
	lw := pipe.LogWeights()
	for i := range lw {
		lw[i] = r.Float64() * 4
	}
	const launches = 3
	for i := 0; i < launches; i++ {
		pipe.KernelResample()
	}
	for _, e := range dev.Profiler().Snapshot() {
		if e.Name == "resampling" {
			predicted = p.PredictKernel(e.Count, e.Launches, groups) / launches
			host = e.Elapsed / launches
		}
	}
	return predicted, host, nil
}
