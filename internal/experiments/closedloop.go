package experiments

import (
	"fmt"

	"esthera/internal/control"
	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/model/arm"
	"esthera/internal/rng"
)

// ClosedLoopAblation measures what the paper's performance push buys:
// control quality as a function of (a) the filter's particle budget and
// (b) the estimation rate relative to the control loop (the controller
// reuses stale estimates when the filter is slower). It quantifies the
// introduction's real-time argument — a filter that is accurate but slow
// degrades the loop just like one that is fast but starved of particles.
func ClosedLoopAblation(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	path := arm.Lemniscate{A: 0.4, Period: 200, CenterX: 0.55}
	shapes := []struct{ n, mp int }{{4, 8}, {16, 16}, {64, 64}}
	periods := []int{1, 2, 4, 8}

	t := &Table{
		Title:  "companion-work ablation — closed-loop pointing error vs filter size and estimation rate",
		Header: []string{"filter"},
		Notes: []string{
			"mean bearing misalignment [rad] after burn-in, averaged over runs",
			"estimate/k: the filter runs every k-th control step (stale estimates in between)",
		},
	}
	for _, p := range periods {
		t.Header = append(t.Header, fmt.Sprintf("estimate/%d", p))
	}
	steps := o.Steps * 2 // closed loops need settling time
	for _, sh := range shapes {
		row := []interface{}{fmt.Sprintf("%d×%d", sh.n, sh.mp)}
		for _, p := range periods {
			sum := 0.0
			for run := 0; run < o.Runs; run++ {
				seed := rng.StreamSeed(o.Seed, 100*p+run)
				m, _, err := arm.NewScenario(arm.Config{Joints: o.Joints}, path)
				if err != nil {
					return nil, err
				}
				dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
				f, err := filter.NewParallel(dev, m, filter.ParallelConfig{
					SubFilters: sh.n, ParticlesPer: sh.mp,
					Scheme: exchange.Ring, ExchangeCount: 1,
				}, seed)
				if err != nil {
					return nil, err
				}
				loop, err := control.NewLoop(m, path, f)
				if err != nil {
					return nil, err
				}
				loop.EstimateEvery = p
				res := loop.Run(steps, seed+7)
				sum += res.MeanPointingAfter(steps / 3)
			}
			row = append(row, sum/float64(o.Runs))
		}
		t.Append(row...)
	}
	return t, nil
}
