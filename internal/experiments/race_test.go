//go:build race

package experiments

// raceEnabled reports whether the race detector is active. Wall-clock
// shape assertions (e.g. "Vose beats RWS at large n") are skipped under
// race: the detector's per-access overhead skews the relative timings
// the assertions encode.
const raceEnabled = true
