package experiments

import (
	"fmt"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/platform"
	"esthera/internal/rng"
)

// EmbeddedScaleDown addresses the paper's second §IX scale direction:
// down to embedded systems. It sweeps small filter configurations on the
// arm benchmark and reports, for each, the estimation error and the
// cost-model update rate on the mobile CPU (the closest Table III proxy
// for an embedded part) — exposing the smallest configuration that still
// tracks, and the accuracy price of each step down.
func EmbeddedScaleDown(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	mobile, err := platform.ByName("i7-2720QM")
	if err != nil {
		return nil, err
	}
	configs := []struct{ n, mp int }{
		{2, 8}, {4, 8}, {8, 8}, {8, 16}, {16, 16}, {32, 16}, {32, 32},
	}
	t := &Table{
		Title:  "§IX scale-down — small configurations for embedded targets (ring t=1)",
		Header: []string{"sub-filters", "m", "particles", "mean error [m]", "mobile rate (Hz)"},
		Notes: []string{
			fmt.Sprintf("%d runs × %d steps; mobile rate: i7-2720QM cost-model prediction", o.Runs, o.Steps),
		},
	}
	for _, c := range configs {
		e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
			return parallelArmFilter(o, m, c.n, c.mp, 1, exchange.Ring, seed)
		})
		if err != nil {
			return nil, err
		}
		hz, err := mobileRate(o, mobile, c.n, c.mp)
		if err != nil {
			return nil, err
		}
		t.Append(c.n, c.mp, c.n*c.mp, e, hz)
	}
	return t, nil
}

// mobileRate predicts the per-round update rate of a configuration on the
// mobile-CPU descriptor from freshly collected kernel counters.
func mobileRate(o AccuracyOptions, p platform.Platform, n, mp int) (float64, error) {
	mdl, sc, err := armScenario(o.Joints)
	if err != nil {
		return 0, err
	}
	dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
	top, err := exchange.NewTopology(exchange.Ring, n)
	if err != nil {
		return 0, err
	}
	pipe, err := kernels.New(dev, mdl, kernels.Config{
		SubFilters: n, ParticlesPer: mp, ExchangeCount: 1, Topology: top,
	}, 1)
	if err != nil {
		return 0, err
	}
	measR := rng.New(rng.NewPhiloxStream(3, 1))
	truth := make([]float64, mdl.StateDim())
	z := make([]float64, mdl.MeasurementDim())
	u := make([]float64, mdl.ControlDim())
	const rounds = 3
	for k := 1; k <= rounds; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		mdl.Measure(z, truth, measR)
		pipe.Round(u, z, k)
	}
	_, round := p.PredictRound(dev.Profiler().Snapshot(), rounds, n)
	return platform.UpdateRateHz(round), nil
}
