package experiments

import (
	"fmt"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/model/arm"
)

// PrecisionAblation reproduces the paper's §VI precision validation: the
// parallel implementation runs everything in single precision and the
// paper found no meaningful accuracy difference against its double-
// precision reference. We compare the same filter with the arm model's
// states and likelihoods rounded through float32 against full float64.
func PrecisionAblation(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:  "§VI ablation — single vs double precision (distributed 64×32, ring t=1)",
		Header: []string{"precision", "mean error [m]"},
		Notes: []string{
			fmt.Sprintf("%d runs × %d steps; paper: SP \"does not improve our estimation accuracy by a meaningful amount\"", o.Runs, o.Steps),
		},
	}
	for _, sp := range []bool{false, true} {
		cfg := arm.Config{Joints: o.Joints, SinglePrecision: sp}
		m, sc, err := arm.NewScenario(cfg, arm.DefaultLemniscate())
		if err != nil {
			return nil, err
		}
		e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
			dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
			return filter.NewParallel(dev, m, filter.ParallelConfig{
				SubFilters: 64, ParticlesPer: 32,
				Scheme: exchange.Ring, ExchangeCount: 1,
			}, seed)
		})
		if err != nil {
			return nil, err
		}
		label := "float64"
		if sp {
			label = "float32"
		}
		t.Append(label, e)
	}
	return t, nil
}
