// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII–VIII). Each figure has a runner returning a Table; the
// cmd tools print them and EXPERIMENTS.md records paper-vs-measured.
//
// Figures 3–5 are performance artifacts: the pipeline's instrumented
// kernels supply work counts, and the platform cost model (internal/
// platform) converts them into per-platform predictions, alongside
// measured Go wall times on the host. Figures 6–9 are accuracy artifacts
// measured directly. Experiment sizes default to reduced budgets suitable
// for CI; the cmd tools expose flags for paper-scale sweeps.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry caveats (e.g. reduced run budgets) into the output.
	Notes []string
}

// Append adds a row, formatting each cell with %v.
func (t *Table) Append(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
