package experiments

import (
	"fmt"
	"math"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/metrics"
	"esthera/internal/model"
	"esthera/internal/resample"
)

// PolicyAblation quantifies the §IV resampling-frequency discussion:
// always resampling vs the ESS-threshold criterion vs random-frequency
// resampling vs never, on the arm benchmark.
func PolicyAblation(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	policies := []resample.Policy{
		resample.Always{},
		resample.ESSThreshold{Frac: 0.5},
		resample.RandomFrequency{P: 0.5},
		resample.Never{},
	}
	t := &Table{
		Title:  "§IV ablation — resampling policy (distributed 64×32, no exchange)",
		Header: []string{"policy", "mean error [m]"},
		Notes: []string{
			fmt.Sprintf("%d runs × %d steps", o.Runs, o.Steps),
			"exchange disabled (t=0) to isolate the resampling-frequency effect: with exchanges enabled, neighbor replacement itself applies selection pressure and masks the policy",
		},
	}
	for _, pol := range policies {
		p := pol
		e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
			dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
			return filter.NewParallel(dev, m, filter.ParallelConfig{
				SubFilters: 64, ParticlesPer: 32,
				Scheme: exchange.None, ExchangeCount: 0,
				Policy: p,
			}, seed)
		})
		if err != nil {
			return nil, err
		}
		t.Append(p.Name(), e)
	}
	return t, nil
}

// VariantsAblation compares the related-work filter designs (§III-B) on
// the arm benchmark and on the multimodal UNGM: centralized, the paper's
// distributed design, LDPF, GDPF, CDPF, RPA, the Gaussian PF, and the
// Kalman baselines.
func VariantsAblation(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	armM, armSc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	ungmM := model.NewUNGM()
	ungmSc := model.NewSimulated(ungmM, o.Seed+9)

	const total = 1024
	const n, mp = 32, 32
	type mk func(m model.Model, seed uint64) (filter.Filter, error)
	variants := []struct {
		name string
		mk   mk
	}{
		{"centralized", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewCentralized(m, total, seed, filter.CentralizedOptions{})
		}},
		{"distributed (ring t=1)", func(m model.Model, seed uint64) (filter.Filter, error) {
			dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
			return filter.NewParallel(dev, m, filter.ParallelConfig{
				SubFilters: n, ParticlesPer: mp, Scheme: exchange.Ring, ExchangeCount: 1,
			}, seed)
		}},
		{"ldpf (t=0)", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewLDPF(m, n, mp, seed)
		}},
		{"gdpf (global resample)", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewGDPF(m, n, mp, seed)
		}},
		{"cdpf (c=8)", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewCDPF(m, n, mp, 8, seed)
		}},
		{"rpa", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewRPA(m, n, mp, seed)
		}},
		{"gaussian pf", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewGaussian(m, total, seed)
		}},
		{"auxiliary pf", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewAPF(m, total, seed, filter.MaxWeight)
		}},
		{"ekf", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewEKF(m.(model.Linearizable), seed), nil
		}},
		{"ukf", func(m model.Model, seed uint64) (filter.Filter, error) {
			return filter.NewUKF(m.(model.Linearizable), seed), nil
		}},
	}

	t := &Table{
		Title:  "§III-B ablation — filter designs on the arm and on UNGM",
		Header: []string{"filter", "arm error [m]", "ungm error"},
		Notes: []string{
			fmt.Sprintf("%d runs × %d steps; 1024 particles total (32 sub-filters × 32)", o.Runs, o.Steps),
		},
	}
	for _, v := range variants {
		mkArm := v.mk
		armErr, err := meanError(o, armSc, func(seed uint64) (filter.Filter, error) { return mkArm(armM, seed) })
		if err != nil {
			return nil, err
		}
		ungmErr, err := metrics.Average(
			func(seed uint64) (filter.Filter, error) { return mkArm(ungmM, seed) },
			func(int) model.Scenario { return ungmSc },
			o.Steps, o.Runs, o.Seed+1)
		if err != nil {
			return nil, err
		}
		t.Append(v.name, armErr, ungmErr.MeanError)
	}
	return t, nil
}

// AdaptiveResult carries the adaptive-resampling ablation's numbers for
// CI gating alongside the printable table.
type AdaptiveResult struct {
	Table *Table
	// Baseline is the best fixed-allocation RWS/Vose mean error; Worst
	// the worst error among the candidate configurations (Metropolis
	// resampling and/or ESS-driven adaptive allocation).
	Baseline, Worst float64
}

// Gate returns an error when any candidate configuration's error exceeds
// ratio × the fixed-allocation baseline — the acceptance criterion that
// removing the sort barrier (Metropolis) and re-dividing the particle
// budget by degeneracy (adaptive allocation) costs no accuracy.
func (r *AdaptiveResult) Gate(ratio float64) error {
	if r.Worst > ratio*r.Baseline {
		return fmt.Errorf("adaptive gate: worst candidate error %.4g exceeds %.2f × baseline %.4g",
			r.Worst, ratio, r.Baseline)
	}
	return nil
}

// AdaptiveAblation gates the adaptive-resampling subsystem: Metropolis
// resampling (sort barrier removed) and ESS-driven adaptive allocation
// (windows re-divided by degeneracy every 4 rounds), alone and combined,
// against the fixed-allocation RWS/Vose baseline on the arm benchmark.
func AdaptiveAblation(o AccuracyOptions) (*AdaptiveResult, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	adapt := filter.AdaptConfig{Every: 4}
	configs := []struct {
		name     string
		algo     kernels.Algo
		adapt    filter.AdaptConfig
		baseline bool
	}{
		{"rws, fixed", kernels.AlgoRWS, filter.AdaptConfig{}, true},
		{"vose, fixed", kernels.AlgoVose, filter.AdaptConfig{}, true},
		{"metropolis, fixed", kernels.AlgoMetropolis, filter.AdaptConfig{}, false},
		{"rws, adaptive", kernels.AlgoRWS, adapt, false},
		{"metropolis, adaptive", kernels.AlgoMetropolis, adapt, false},
	}
	t := &Table{
		Title:  "§IV ablation — adaptive allocation + Metropolis resampling (ring 32×32, t=1)",
		Header: []string{"configuration", "mean error [m]"},
		Notes: []string{
			fmt.Sprintf("%d runs × %d steps; adaptive: ESS-driven window re-division every 4 rounds", o.Runs, o.Steps),
			"metropolis removes the bitonic sort barrier and prefix-sum scan from the fused round (top-t selection only)",
		},
	}
	r := &AdaptiveResult{Table: t, Baseline: math.Inf(1)}
	for _, c := range configs {
		c := c
		e, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
			dev := device.New(device.Config{Workers: o.Workers, LocalMemBytes: -1})
			return filter.NewParallel(dev, m, filter.ParallelConfig{
				SubFilters: 32, ParticlesPer: 32,
				Scheme: exchange.Ring, ExchangeCount: 1,
				Resampler: c.algo,
				Adapt:     c.adapt,
			}, seed)
		})
		if err != nil {
			return nil, err
		}
		t.Append(c.name, e)
		if c.baseline {
			if e < r.Baseline {
				r.Baseline = e
			}
		} else if e > r.Worst {
			r.Worst = e
		}
	}
	return r, nil
}

// EstimatorAblation compares the max-weight global estimate (the paper's
// operator) with the weighted mean on the arm benchmark (design decision
// 6 in DESIGN.md).
func EstimatorAblation(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§IV ablation — global estimate operator (sequential distributed 32×32)",
		Header: []string{"estimator", "mean error [m]"},
		Notes:  []string{fmt.Sprintf("%d runs × %d steps", o.Runs, o.Steps)},
	}
	for _, est := range []filter.Estimator{filter.MaxWeight, filter.WeightedMean} {
		e := est
		v, err := meanError(o, sc, func(seed uint64) (filter.Filter, error) {
			return filter.NewDistributed(m, filter.DistributedConfig{
				SubFilters: 32, ParticlesPer: 32,
				Scheme: exchange.Ring, ExchangeCount: 1,
				Estimator: e,
			}, seed)
		})
		if err != nil {
			return nil, err
		}
		t.Append(e.String(), v)
	}
	return t, nil
}
