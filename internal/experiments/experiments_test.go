package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// small budgets so the suite stays CI-friendly; the cmd tools run the
// full sweeps.
func smallPerf() PerfOptions {
	return PerfOptions{Totals: []int{1 << 10, 1 << 12}, SubFilterSize: 64, Rounds: 2, Workers: 4}
}

func smallAcc() AccuracyOptions {
	return AccuracyOptions{
		Steps: 25, Runs: 3, Workers: 4,
		SubFilterCounts: []int{8, 32},
		SubFilterSizes:  []int{8, 16}, // torus degree 4 × t=1 needs m > 4
		ExchangeCounts:  []int{0, 1},
	}
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.Append(1, 2.5)
	tab.Append("x", "y")
	s := tab.String()
	for _, want := range []string{"== demo ==", "a", "bb", "2.5", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" {
		t.Fatalf("csv wrong:\n%s", buf.String())
	}
}

func TestFig3Shape(t *testing.T) {
	// Fig. 3's ordering only emerges once the device is saturated, so
	// this test uses a mid-size and a large configuration (launch
	// overhead dominates and flattens the small sizes, as in the paper).
	tab, err := Fig3UpdateRate(PerfOptions{
		Totals: []int{1 << 12, 1 << 18}, SubFilterSize: 64, Rounds: 2, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Columns: particles, sub-filters, then 7 platforms, then go-host.
	if len(tab.Header) != 2+7+1 {
		t.Fatalf("header %v", tab.Header)
	}
	// More particles → lower rate, on every platform column.
	for col := 2; col < len(tab.Header); col++ {
		small := cell(t, tab, 0, col)
		big := cell(t, tab, 1, col)
		if !(big < small) {
			t.Errorf("col %s: rate did not drop with particles (%v -> %v)", tab.Header[col], small, big)
		}
		if small <= 0 {
			t.Errorf("col %s: non-positive rate", tab.Header[col])
		}
	}
	// At the larger size, the fastest GPU must beat the dual CPU, which
	// must beat the sequential reference (Fig. 3 / §VII-C shape).
	colOf := func(name string) int {
		for i, h := range tab.Header {
			if strings.HasPrefix(h, name) {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	seq := cell(t, tab, 1, colOf("seq-c"))
	dual := cell(t, tab, 1, colOf("2x E5-2660"))
	gpu := cell(t, tab, 1, colOf("HD 7970"))
	if !(dual > seq) || !(gpu > dual) {
		t.Fatalf("platform ordering broken: seq=%v dual=%v gpu=%v", seq, dual, gpu)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestFig4aSortResampleGrowWithSubFilterSize(t *testing.T) {
	o := smallPerf()
	tab, err := Fig4aParticlesPerSubFilter(o, []int{32, 256})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: particles/sub-filter, rand, sampling, local sort, global
	// estimate, exchange, resampling.
	sortSmall := parsePct(t, tab.Rows[0][3])
	sortBig := parsePct(t, tab.Rows[1][3])
	resSmall := parsePct(t, tab.Rows[0][6])
	resBig := parsePct(t, tab.Rows[1][6])
	if !(sortBig+resBig > sortSmall+resSmall) {
		t.Fatalf("sort+resample fraction did not grow with m: %v+%v -> %v+%v",
			sortSmall, resSmall, sortBig, resBig)
	}
}

func TestFig4cSamplingGrowsWithStateDims(t *testing.T) {
	o := smallPerf()
	tab, err := Fig4cStateDims(o, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	sampSmall := parsePct(t, tab.Rows[0][2])
	sampBig := parsePct(t, tab.Rows[1][2])
	if !(sampBig > sampSmall) {
		t.Fatalf("sampling fraction did not grow with state dims: %v -> %v", sampSmall, sampBig)
	}
}

func TestFig5Shape(t *testing.T) {
	o := PerfOptions{Totals: []int{1 << 12, 1 << 15}, SubFilterSize: 64, Rounds: 2, Workers: 4}
	tab, err := Fig5Resampling(o)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	seqRWS := cell(t, tab, last, 1)
	seqVose := cell(t, tab, last, 2)
	if !raceEnabled && !(seqVose < seqRWS) {
		t.Fatalf("sequential: Vose (%v ms) must beat RWS (%v ms) at large n", seqVose, seqRWS)
	}
	// Parallel sub-filter setting: Vose never faster (cost model).
	for row := range tab.Rows {
		gpuRWS := cell(t, tab, row, 3)
		gpuVose := cell(t, tab, row, 4)
		if gpuVose < gpuRWS*0.95 {
			t.Fatalf("row %d: parallel Vose (%v) beat RWS (%v); Fig. 5 says it never does", row, gpuVose, gpuRWS)
		}
	}
}

func TestFig6AllSchemesProduceTables(t *testing.T) {
	tabs, err := Fig6ExchangeSchemes(smallAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("%d tables, want 3", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 2 || len(tab.Rows[0]) != 3 {
			t.Fatalf("table %q shape wrong", tab.Title)
		}
		for r := range tab.Rows {
			for c := 1; c < 3; c++ {
				if v := cell(t, tab, r, c); !(v > 0) || v > 2 {
					t.Fatalf("%s: implausible error %v", tab.Title, v)
				}
			}
		}
	}
}

func TestFig6MoreSubFiltersCompensateFewerParticles(t *testing.T) {
	// The headline Fig. 6 observation: "a low number of particles can be
	// compensated by adding more sub-filters" (ring panel).
	o := smallAcc()
	o.Runs = 4
	o.SubFilterCounts = []int{8, 64}
	o.SubFilterSizes = []int{6}
	tabs, err := Fig6ExchangeSchemes(o)
	if err != nil {
		t.Fatal(err)
	}
	ring := tabs[1]
	few := cell(t, ring, 0, 1)
	many := cell(t, ring, 1, 1)
	if !(many < few) {
		t.Fatalf("ring m=4: error with 64 sub-filters (%v) not below 8 sub-filters (%v)", many, few)
	}
}

func TestFig7ExchangeHelps(t *testing.T) {
	o := smallAcc()
	o.Runs = 4
	o.SubFilterCounts = []int{32}
	o.SubFilterSizes = []int{4}
	tab, err := Fig7ExchangeCount(o)
	if err != nil {
		t.Fatal(err)
	}
	t0 := cell(t, tab, 0, 1)
	t1 := cell(t, tab, 0, 2)
	if !(t1 < t0) {
		t.Fatalf("t=1 error (%v) not below t=0 (%v)", t1, t0)
	}
}

func TestFig8HighConvergesLowDoesNot(t *testing.T) {
	o := smallAcc()
	res, err := Fig8Trajectory(o, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HighConverged {
		t.Fatalf("high-particle filter did not converge (trailing %v m)", res.HighTrailing)
	}
	if res.LowConverged {
		t.Fatalf("8-particle filter converged (trailing %v m); expected divergence", res.LowTrailing)
	}
	if len(res.Table.Rows) != 100 {
		t.Fatalf("trace rows %d", len(res.Table.Rows))
	}
}

func TestFig9DistributedComparable(t *testing.T) {
	o := smallAcc()
	o.Runs = 3
	tab, err := Fig9DistributedOverhead(o, []int{512}, []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	centralized := cell(t, tab, 0, 1)
	d32 := cell(t, tab, 0, 3)
	if d32 > 3*centralized {
		t.Fatalf("distributed m=32 error %v far above centralized %v", d32, centralized)
	}
}

func TestPolicyAblation(t *testing.T) {
	o := smallAcc()
	tab, err := PolicyAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d policies", len(tab.Rows))
	}
	errs := map[string]float64{}
	for r, row := range tab.Rows {
		errs[row[0]] = cell(t, tab, r, 1)
	}
	if !(errs["always"] < errs["never"]) {
		t.Fatalf("always (%v) must beat never (%v)", errs["always"], errs["never"])
	}
}

func TestAdaptiveAblation(t *testing.T) {
	r, err := AdaptiveAblation(smallAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 5 {
		t.Fatalf("%d configurations", len(r.Table.Rows))
	}
	if !(r.Baseline > 0) || !(r.Worst > 0) {
		t.Fatalf("implausible gate numbers: baseline %v, worst %v", r.Baseline, r.Worst)
	}
	// The acceptance criterion at CI budget: neither the sort-free
	// resampler nor adaptive allocation may blow up accuracy.
	if err := r.Gate(3); err != nil {
		t.Fatal(err)
	}
	if err := (&AdaptiveResult{Baseline: 1, Worst: 5}).Gate(2); err == nil {
		t.Fatal("gate must reject worst >> baseline")
	}
}

func TestVariantsAblation(t *testing.T) {
	o := smallAcc()
	o.Runs = 2
	o.Steps = 20
	tab, err := VariantsAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("%d variants", len(tab.Rows))
	}
	ungm := map[string]float64{}
	for r, row := range tab.Rows {
		ungm[row[0]] = cell(t, tab, r, 2)
	}
	// The multimodal UNGM must defeat the parametric EKF relative to the
	// centralized PF (the paper's motivation).
	if !(ungm["centralized"] < ungm["ekf"]) {
		t.Fatalf("PF (%v) must beat EKF (%v) on UNGM", ungm["centralized"], ungm["ekf"])
	}
}

func TestEstimatorAblation(t *testing.T) {
	tab, err := EstimatorAblation(smallAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d estimators", len(tab.Rows))
	}
	for r := range tab.Rows {
		if v := cell(t, tab, r, 1); !(v > 0) || v > 2 {
			t.Fatalf("implausible estimator error %v", v)
		}
	}
}

func TestDiversityAblationShowsAllToAllCollapse(t *testing.T) {
	o := smallAcc()
	o.Steps = 30
	tab, err := DiversityAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d schemes", len(tab.Rows))
	}
	div := map[string]float64{}
	for r, row := range tab.Rows {
		div[row[0]] = cell(t, tab, r, 1)
	}
	// All-to-All must show the lowest diversity of the exchanging
	// schemes, and strictly less than no-exchange.
	if !(div["all-to-all"] < div["ring"]) || !(div["all-to-all"] < div["none"]) {
		t.Fatalf("all-to-all diversity %v not below ring %v / none %v",
			div["all-to-all"], div["ring"], div["none"])
	}
	for name, v := range div {
		if v <= 0 || v > 1 {
			t.Fatalf("scheme %s diversity %v out of (0,1]", name, v)
		}
	}
}

func TestPrecisionAblationSPAdequate(t *testing.T) {
	o := smallAcc()
	tab, err := PrecisionAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	dp := cell(t, tab, 0, 1)
	sp := cell(t, tab, 1, 1)
	// The paper's finding: single precision does not meaningfully change
	// accuracy. Allow generous slack for Monte Carlo noise.
	if sp > 2*dp+0.05 || dp > 2*sp+0.05 {
		t.Fatalf("precision gap implausible: float64 %v vs float32 %v", dp, sp)
	}
}

func TestClusterScalingTable(t *testing.T) {
	o := smallAcc()
	o.Runs = 2
	tab, err := ClusterScaling(o, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if v := cell(t, tab, 0, 3); v != 0 {
		t.Fatalf("single node bytes/round = %v, want 0", v)
	}
	if v := cell(t, tab, 1, 3); v <= 0 {
		t.Fatalf("two-node bytes/round = %v, want > 0", v)
	}
	for r := range tab.Rows {
		if e := cell(t, tab, r, 2); !(e > 0) || e > 1 {
			t.Fatalf("row %d implausible error %v", r, e)
		}
	}
}

func TestClusterFailureTable(t *testing.T) {
	o := smallAcc()
	tab, err := ClusterFailure(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d phases", len(tab.Rows))
	}
	healthy := cell(t, tab, 0, 2)
	during := cell(t, tab, 1, 2)
	recovered := cell(t, tab, 2, 2)
	// Tracking must survive the failure and the recovery (no collapse).
	if during > 50*healthy+0.05 || recovered > 50*healthy+0.05 {
		t.Fatalf("tracking collapsed: healthy %v, during %v, recovered %v", healthy, during, recovered)
	}
}

func TestEmbeddedScaleDown(t *testing.T) {
	o := smallAcc()
	tab, err := EmbeddedScaleDown(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Smaller configurations must be (predicted) faster, and the largest
	// must be at least as accurate as the smallest.
	rateSmall := cell(t, tab, 0, 4)
	rateBig := cell(t, tab, len(tab.Rows)-1, 4)
	if !(rateSmall > rateBig) {
		t.Fatalf("tiny config rate %v not above big config rate %v", rateSmall, rateBig)
	}
	errSmall := cell(t, tab, 0, 3)
	errBig := cell(t, tab, len(tab.Rows)-1, 3)
	if errBig > errSmall {
		t.Fatalf("big config error %v above tiny config %v", errBig, errSmall)
	}
}

func TestFig4CPURandShareExceedsGPU(t *testing.T) {
	o := smallPerf()
	cpu, err := Fig4CPUBreakdown(o, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := Fig4aParticlesPerSubFilter(o, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	cpuRand := parsePct(t, cpu.Rows[0][1])
	gpuRand := parsePct(t, gpu.Rows[0][1])
	// §VII-C: the CPU spends much more of its round on random numbers
	// (paper: 40% at m=16) than the GPU does.
	if !(cpuRand > 1.5*gpuRand) {
		t.Fatalf("CPU rand share %v%% not well above GPU %v%%", cpuRand, gpuRand)
	}
	if cpuRand < 20 || cpuRand > 60 {
		t.Fatalf("CPU rand share %v%%, want in the 20-60%% band (paper: ~40%%)", cpuRand)
	}
}

func TestClosedLoopAblationRateMatters(t *testing.T) {
	o := smallAcc()
	o.Runs = 3
	o.Steps = 50
	tab, err := ClosedLoopAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0]) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	// The big filter at full rate must beat it at 1/8 rate (stale
	// estimates degrade the loop), and beat the tiny filter at full rate.
	bigFull := cell(t, tab, 2, 1)
	bigSlow := cell(t, tab, 2, 4)
	tinyFull := cell(t, tab, 0, 1)
	if !(bigFull < bigSlow) {
		t.Fatalf("full-rate (%v rad) not better than 1/8-rate (%v rad)", bigFull, bigSlow)
	}
	if !(bigFull < tinyFull) {
		t.Fatalf("64×64 (%v rad) not better than 4×8 (%v rad)", bigFull, tinyFull)
	}
}
