package experiments

import (
	"fmt"
	"time"

	"esthera/internal/cluster"
	"esthera/internal/metrics"
	"esthera/internal/rng"
)

// ClusterScaling evaluates the §IX scale-up direction: the sub-filter
// ring partitioned over 1–8 simulated cluster nodes at a fixed per-node
// workload (weak scaling). For each cluster size it reports accuracy,
// per-round inter-node traffic, and the predicted communication time per
// round on three interconnect profiles — showing that the paper's
// exchange-thin design keeps the network cost negligible next to even a
// GPU-fast compute round.
func ClusterScaling(o AccuracyOptions, nodeCounts []int) (*Table, error) {
	o = o.withDefaults()
	if nodeCounts == nil {
		nodeCounts = []int{1, 2, 4, 8}
	}
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	nets := []cluster.NetworkProfile{
		cluster.GigabitEthernet(), cluster.TenGigabitEthernet(), cluster.InfiniBandQDR(),
	}
	t := &Table{
		Title: "§IX scale-up — cluster weak scaling (16 sub-filters × 16 particles per node, ring t=1)",
		Header: []string{"nodes", "particles", "mean error [m]", "bytes/round",
			"comm@" + nets[0].Name, "comm@" + nets[1].Name, "comm@" + nets[2].Name},
		Notes: []string{
			fmt.Sprintf("%d steps; comm columns: predicted per-round network time per node", o.Steps),
		},
	}
	for _, nodes := range nodeCounts {
		var lastComm [3]time.Duration
		var bytesPerRound int64
		meanErr := 0.0
		for run := 0; run < o.Runs; run++ {
			c, err := cluster.New(m, cluster.Config{
				Nodes: nodes, SubFiltersPerNode: 16, ParticlesPer: 16,
				ExchangeCount: 1, WorkersPerNode: 1,
			}, rng.StreamSeed(o.Seed, run))
			if err != nil {
				return nil, err
			}
			s := metrics.Run(c, sc, o.Steps, rng.StreamSeed(o.Seed, 1000+run))
			meanErr += s.Mean() / float64(o.Runs)
			bytes, _ := c.CommStats()
			bytesPerRound = bytes / int64(o.Steps)
			for i, np := range nets {
				cc, err := cluster.New(m, cluster.Config{
					Nodes: nodes, SubFiltersPerNode: 16, ParticlesPer: 16,
					ExchangeCount: 1, WorkersPerNode: 1, Network: np,
				}, 1)
				if err != nil {
					return nil, err
				}
				// One round suffices: traffic per round is deterministic.
				u := make([]float64, m.ControlDim())
				z := make([]float64, m.MeasurementDim())
				cc.Step(u, z)
				lastComm[i] = cc.PredictCommPerRound()
			}
		}
		t.Append(nodes, nodes*16*16, meanErr, bytesPerRound,
			lastComm[0].String(), lastComm[1].String(), lastComm[2].String())
	}
	return t, nil
}

// ClusterFailure runs the fault-injection experiment: a 4-node cluster
// tracking the arm loses half its nodes mid-run and later recovers them.
// The table reports the mean error in each phase.
func ClusterFailure(o AccuracyOptions) (*Table, error) {
	o = o.withDefaults()
	m, sc, err := armScenario(o.Joints)
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(m, cluster.Config{
		Nodes: 4, SubFiltersPerNode: 16, ParticlesPer: 16,
		ExchangeCount: 1, WorkersPerNode: 2,
	}, o.Seed)
	if err != nil {
		return nil, err
	}
	phaseLen := o.Steps
	if phaseLen < 30 {
		phaseLen = 30
	}
	measR := rng.New(rng.NewPhiloxStream(o.Seed, 0x4D53))
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	k := 0
	phase := func(steps int) float64 {
		sum := 0.0
		for i := 0; i < steps; i++ {
			k++
			sc.TrueState(k, truth)
			sc.Control(k, u)
			m.Measure(z, truth, measR)
			est := c.Step(u, z)
			ex, ey := m.TrackedPosition(est.State)
			tx, ty := m.TrackedPosition(truth)
			dx, dy := ex-tx, ey-ty
			sum += dx*dx + dy*dy
		}
		return sum / float64(steps)
	}
	before := phase(phaseLen)
	c.FailNode(1)
	c.FailNode(2)
	during := phase(phaseLen)
	c.RestoreNode(1)
	c.RestoreNode(2)
	after := phase(phaseLen)

	t := &Table{
		Title:  "§IX robustness — node failure injection (4 nodes, 2 fail, then recover)",
		Header: []string{"phase", "live nodes", "mean squared error [m²]"},
		Notes:  []string{fmt.Sprintf("%d steps per phase", phaseLen)},
	}
	t.Append("healthy", 4, before)
	t.Append("2 nodes failed", 2, during)
	t.Append("recovered", 4, after)
	return t, nil
}
