package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"esthera/internal/filter"
	"esthera/internal/telemetry"
)

// A stepReq's lifecycle state. Every request starts pending; exactly one
// side wins the transition out of it, via compare-and-swap:
//
//   - the scheduler *claims* it (reqClaimed) when it commits a batch for
//     execution — from that point the step WILL be applied to the
//     session's filter and a result WILL be delivered on done, so the
//     waiter must consume it even if its context fired meanwhile;
//   - the waiter *abandons* it (reqAbandoned) when cancellation, a
//     deadline, or shutdown wins while the request is still queued —
//     from that point the scheduler skips it at delivery time and the
//     step is never applied.
//
// The protocol gives Step its at-most-once contract: a step is either
// applied-and-reported or never-applied-and-failed, regardless of how
// cancellation and shutdown race the batch.
const (
	reqPending int32 = iota
	reqClaimed
	reqAbandoned
)

// stepReq is one queued observation step.
type stepReq struct {
	sess  *Session
	u, z  []float64
	done  chan stepResult // buffered(1): delivery never blocks the scheduler
	state atomic.Int32
	// tc is the request's propagated (or freshly minted) trace context;
	// span is the request-span ID under which the step is reported.
	tc   telemetry.TraceContext
	span uint64
}

func (r *stepReq) claim() bool   { return r.state.CompareAndSwap(reqPending, reqClaimed) }
func (r *stepReq) abandon() bool { return r.state.CompareAndSwap(reqPending, reqAbandoned) }

// stepResult is the scheduler's reply to one stepReq.
type stepResult struct {
	est  filter.Estimate
	step int
	err  error
}

// schedule is the batching scheduler: it drains the admission queue,
// coalescing up to MaxBatch pending steps (waiting at most BatchWindow
// after the first) into shared device launches. One scheduler goroutine
// drives the device; concurrency comes from the merged grids, not from
// concurrent launches — exactly the paper's device model (launches are
// globally synchronizing, work-groups within a launch run concurrently).
func (s *Server) schedule() {
	defer close(s.done)
	for {
		select {
		case req := <-s.queue:
			batch, quit := s.collect(req)
			if quit {
				// Shutdown fired while collecting: the waiters' quit
				// branches are already returning ErrClosed, so running
				// the batch would apply steps whose callers reported
				// failure. Fail it instead — no work during shutdown.
				s.failBatch(batch)
				s.failPending()
				return
			}
			s.runBatch(batch)
		case <-s.quit:
			s.failPending()
			return
		}
	}
}

// collect gathers one batch, starting from first. quit reports that
// shutdown fired mid-collection: the batch must be failed, not run.
func (s *Server) collect(first *stepReq) (batch []*stepReq, quit bool) {
	batch = []*stepReq{first}
	if s.cfg.MaxBatch == 1 {
		return batch, false
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch, false
		case <-s.quit:
			return batch, true
		}
	}
	return batch, false
}

// runBatch executes one coalesced batch and delivers results. Requests
// abandoned while queued (cancelled context, deadline, shutdown race)
// are skipped here, at delivery time, before any work runs: their
// sessions' filters are not stepped, so a waiter that reported
// cancellation never has its step silently applied. A panic from a
// kernel or model fails the whole batch (each waiter gets the error)
// but never kills the scheduler.
func (s *Server) runBatch(batch []*stepReq) {
	live := batch[:0]
	for _, r := range batch {
		if r.claim() {
			live = append(live, r)
		} else {
			// Cancelled while queued: the waiter is gone; skip without
			// executing or consuming a result slot.
			s.skipped.Add(1)
		}
	}
	if len(live) == 0 {
		return
	}
	fs := make([]*filter.Parallel, len(live))
	us := make([][]float64, len(live))
	zs := make([][]float64, len(live))
	for i, r := range live {
		fs[i] = r.sess.f
		us[i] = r.u
		zs[i] = r.z
	}
	// Install the driving request's trace as the ambient context so
	// every span the fused round records below (device, kernels,
	// cluster) is stamped with the same trace ID. A batch can merge
	// several requests; the first live traced one wins — its trace
	// covers the shared launch, the rest keep their own request spans.
	ambient := false
	for _, r := range live {
		if r.tc.Valid() {
			s.tracer.SetAmbient(telemetry.TraceContext{Trace: r.tc.Trace, Span: r.span})
			ambient = true
			break
		}
	}
	start := time.Now()
	ests, err := func() (out []filter.Estimate, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: batch step panicked: %v", r)
			}
		}()
		return s.stepper.StepBatch(fs, us, zs)
	}()
	elapsed := time.Since(start)
	s.observeBatchLatency(elapsed)
	if s.tracer.Enabled() {
		ev := telemetry.Event{Name: "batch", Cat: "serve", TS: s.tracer.Stamp(start), Dur: elapsed}
		ev.SetArg("steps", int64(len(live)))
		ev.SetArg("skipped", int64(len(batch)-len(live)))
		s.tracer.Record(ev) // recorded under ambient: inherits the trace
	}
	if ambient {
		s.tracer.ClearAmbient()
	}
	if err != nil {
		for _, r := range live {
			r.done <- stepResult{err: err}
		}
		return
	}
	s.batches.Add(1)
	s.batchedSteps.Add(int64(len(live)))
	for i, r := range live {
		r.done <- stepResult{est: ests[i], step: fs[i].StepIndex()}
	}
}

// failBatch fails every still-pending request of a batch with ErrClosed
// without executing any work. Claimed delivery keeps the protocol: a
// waiter whose abandon lost the race is guaranteed a message on done.
func (s *Server) failBatch(batch []*stepReq) {
	for _, r := range batch {
		if r.claim() {
			r.done <- stepResult{err: ErrClosed}
		}
	}
}

// failPending drains the queue after shutdown, failing every waiter.
func (s *Server) failPending() {
	for {
		select {
		case r := <-s.queue:
			s.failBatch([]*stepReq{r})
		default:
			return
		}
	}
}

// observeBatchLatency folds one batch's execution time into the EWMA
// the adaptive retry hint is derived from. Only the scheduler goroutine
// writes it; Stats and retryHint read it concurrently.
func (s *Server) observeBatchLatency(d time.Duration) {
	old := s.batchLatNS.Load()
	if old == 0 {
		s.batchLatNS.Store(d.Nanoseconds())
		return
	}
	s.batchLatNS.Store(old + (d.Nanoseconds()-old)/4)
}
