package serve

import (
	"fmt"
	"time"

	"esthera/internal/filter"
)

// stepReq is one queued observation step.
type stepReq struct {
	sess *Session
	u, z []float64
	done chan stepResult
}

// stepResult is the scheduler's reply to one stepReq.
type stepResult struct {
	est  filter.Estimate
	step int
	err  error
}

// schedule is the batching scheduler: it drains the admission queue,
// coalescing up to MaxBatch pending steps (waiting at most BatchWindow
// after the first) into shared device launches. One scheduler goroutine
// drives the device; concurrency comes from the merged grids, not from
// concurrent launches — exactly the paper's device model (launches are
// globally synchronizing, work-groups within a launch run concurrently).
func (s *Server) schedule() {
	defer close(s.done)
	for {
		select {
		case req := <-s.queue:
			s.runBatch(s.collect(req))
		case <-s.quit:
			s.failPending()
			return
		}
	}
}

// collect gathers one batch, starting from first.
func (s *Server) collect(first *stepReq) []*stepReq {
	batch := []*stepReq{first}
	if s.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-s.quit:
			return batch
		}
	}
	return batch
}

// runBatch executes one coalesced batch and delivers results. A panic
// from a kernel or model fails the whole batch (each waiter gets the
// error) but never kills the scheduler.
func (s *Server) runBatch(batch []*stepReq) {
	if len(batch) == 0 {
		return
	}
	fs := make([]*filter.Parallel, len(batch))
	us := make([][]float64, len(batch))
	zs := make([][]float64, len(batch))
	for i, r := range batch {
		fs[i] = r.sess.f
		us[i] = r.u
		zs[i] = r.z
	}
	ests, err := func() (out []filter.Estimate, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: batch step panicked: %v", r)
			}
		}()
		return filter.StepBatch(s.dev, fs, us, zs)
	}()
	if err != nil {
		for _, r := range batch {
			r.done <- stepResult{err: err}
		}
		return
	}
	s.batches.Add(1)
	s.batchedSteps.Add(int64(len(batch)))
	for i, r := range batch {
		r.done <- stepResult{est: ests[i], step: fs[i].StepIndex()}
	}
}

// failPending drains the queue after shutdown, failing every waiter.
func (s *Server) failPending() {
	for {
		select {
		case r := <-s.queue:
			r.done <- stepResult{err: ErrClosed}
		default:
			return
		}
	}
}
