package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"esthera/internal/model"
)

// TestStepShutdownCloseRace hammers concurrent Step, session Close and
// server Shutdown (run under -race) and then checks the at-most-once
// contract directly against the filters: every session's filter must
// have advanced exactly as many steps as its callers saw succeed — no
// step both applied and reported failed, none applied silently.
func TestStepShutdownCloseRace(t *testing.T) {
	s := NewServer(Config{
		Workers:     4,
		QueueDepth:  16,
		MaxBatch:    8,
		BatchWindow: 100 * time.Microsecond,
	}, testModels())
	defer s.Shutdown()

	const nSessions = 6
	ids := make([]string, nSessions)
	sessions := make([]*Session, nSessions)
	for i := range ids {
		id, err := s.Create(FilterSpec{Model: "slow-ungm", SubFilters: 4, ParticlesPer: 16, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if sessions[i], err = s.lookup(id); err != nil {
			t.Fatal(err)
		}
	}

	var succ [nSessions]atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := 1; ; k++ {
					_, err := s.Step(ids[i], nil, obs(i, k))
					switch {
					case err == nil:
						succ[i].Add(1)
					case errors.Is(err, ErrClosed), errors.Is(err, ErrNotFound):
						return
					default:
						var sat *SaturatedError
						if errors.As(err, &sat) {
							time.Sleep(200 * time.Microsecond)
							continue
						}
						t.Errorf("session %d: unexpected step error: %v", i, err)
						return
					}
				}
			}(i)
		}
	}

	// Let the hammer run, close one session mid-flight, then pull the
	// plug on the whole server while batches are executing.
	time.Sleep(20 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Close(ids[0]); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	s.Shutdown()
	wg.Wait()

	for i, sess := range sessions {
		applied := int64(sess.f.StepIndex())
		reported := succ[i].Load()
		if applied != reported {
			t.Errorf("session %d: filter applied %d steps, callers saw %d successes", i, applied, reported)
		}
	}
}

// TestCancelQueuedStepPrompt pins the cancellation contract: cancelling
// a queued step's context returns promptly, releases the batch slot
// without executing the step, and leaves the scheduler healthy.
func TestCancelQueuedStepPrompt(t *testing.T) {
	// A stalling model makes one batch occupy the device for tens of
	// milliseconds, guaranteeing the second step is still queued when
	// its context fires.
	models := map[string]ModelFactory{
		"stall": func() (model.Model, error) {
			return slowModel{Model: model.NewUNGM(), delay: 2 * time.Millisecond}, nil
		},
	}
	s := NewServer(Config{Workers: 2, QueueDepth: 8, MaxBatch: 1, BatchWindow: 50 * time.Microsecond}, models)
	defer s.Shutdown()

	idA, err := s.Create(FilterSpec{Model: "stall", SubFilters: 4, ParticlesPer: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Create(FilterSpec{Model: "stall", SubFilters: 4, ParticlesPer: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the device with A's step, then queue B's behind it.
	aDone := make(chan error, 1)
	go func() {
		_, err := s.Step(idA, nil, obs(0, 1))
		aDone <- err
	}()
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan error, 1)
	go func() {
		_, err := s.StepCtx(ctx, idB, nil, obs(1, 1))
		bDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()

	cancelled := time.Now()
	select {
	case err := <-bDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled step returned %v, want context.Canceled", err)
		}
		if wait := time.Since(cancelled); wait > 500*time.Millisecond {
			t.Fatalf("cancelled step took %v to return", wait)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued step never returned")
	}
	if err := <-aDone; err != nil {
		t.Fatalf("occupying step failed: %v", err)
	}

	// The slot was released, the scheduler is healthy, and the abandoned
	// step was never applied: B's next step must be its first.
	res, err := s.Step(idB, nil, obs(1, 1))
	if err != nil {
		t.Fatalf("step after cancellation: %v", err)
	}
	if res.Step != 1 {
		t.Fatalf("step index %d after a cancelled step, want 1 (cancelled step must not apply)", res.Step)
	}
	st := s.Stats()
	if st.Health.Cancelled < 1 {
		t.Errorf("health reports %d cancelled steps, want ≥ 1", st.Health.Cancelled)
	}
	if st.Health.Skipped < 1 {
		t.Errorf("health reports %d skipped requests, want ≥ 1", st.Health.Skipped)
	}
}

// TestDrain checks graceful drain: admission stops with ErrDraining,
// already-admitted steps complete and deliver, and Drain returns only
// once the pipeline is empty.
func TestDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	id, err := s.Create(FilterSpec{Model: "slow-ungm", SubFilters: 4, ParticlesPer: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	inflight := make(chan error, 1)
	go func() {
		_, err := s.Step(id, nil, obs(0, 1))
		inflight <- err
	}()
	time.Sleep(5 * time.Millisecond) // the step is admitted and executing

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight step failed during drain: %v", err)
	}
	if s.Ready() || !s.Draining() {
		t.Fatalf("after drain: ready=%v draining=%v", s.Ready(), s.Draining())
	}
	if _, err := s.Step(id, nil, obs(0, 2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("step while draining: %v, want ErrDraining", err)
	}
	// Idempotent: an empty pipeline drains instantly.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	st := s.Stats()
	if st.Health.Ready || !st.Health.Draining || st.Health.InFlight != 0 {
		t.Fatalf("health after drain: %+v", st.Health)
	}
}

// TestAdaptiveRetryHint checks the back-off hint switches from the
// configured constant to the measured queue-drain estimate once batches
// have run.
func TestAdaptiveRetryHint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, RetryAfter: 123 * time.Millisecond})
	if got := s.retryHint(); got != 123*time.Millisecond {
		t.Fatalf("hint before any batch: %v, want the configured 123ms", got)
	}
	id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		if _, err := s.Step(id, nil, obs(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	if s.batchLatNS.Load() <= 0 {
		t.Fatal("no batch latency observed after 5 steps")
	}
	hint := s.retryHint()
	if hint < 200*time.Microsecond || hint > 2*time.Second {
		t.Fatalf("adaptive hint %v outside clamp range", hint)
	}
	if hint >= 123*time.Millisecond {
		t.Fatalf("adaptive hint %v did not adapt below the 123ms fallback for µs-scale batches", hint)
	}
	if got := s.Stats().Health.BatchLatencyUS; got <= 0 {
		t.Fatalf("health batch latency %v, want > 0", got)
	}
}
