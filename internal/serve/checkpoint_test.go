package serve

import (
	"encoding/json"
	"math"
	"testing"
)

// TestCheckpointDeterminism is the checkpoint/restore acceptance test:
// run a session, snapshot it mid-run, keep stepping the original while
// feeding the same observations to a restore into a *fresh* server, and
// require the two estimate series to be bit-identical. The checkpoint
// travels through JSON on the way, so the wire format itself is proven
// bit-exact.
func TestCheckpointDeterminism(t *testing.T) {
	spec := FilterSpec{
		Model:        "ungm",
		SubFilters:   8,
		ParticlesPer: 32,
		Streams:      "philox",
		Seed:         42,
	}
	const cut = 12   // checkpoint after this many steps
	const total = 40 // compare estimates up to here

	a := newTestServer(t, Config{Workers: 4})
	idA, err := a.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= cut; k++ {
		if _, err := a.Step(idA, nil, obs(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := a.Checkpoint(idA)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step != cut {
		t.Fatalf("checkpoint at step %d, want %d", cp.Step, cut)
	}

	// Roundtrip the checkpoint through its JSON wire format.
	wire, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var cp2 Checkpoint
	if err := json.Unmarshal(wire, &cp2); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh server — nothing shared with a but the bytes.
	b := newTestServer(t, Config{Workers: 3})
	idB, err := b.Restore(&cp2)
	if err != nil {
		t.Fatal(err)
	}
	estB, err := b.Estimate(idB)
	if err != nil {
		t.Fatal(err)
	}
	estA, err := a.Estimate(idA)
	if err != nil {
		t.Fatal(err)
	}
	if estB.Step != cut {
		t.Fatalf("restored session reports step %d, want %d", estB.Step, cut)
	}
	if math.Float64bits(estB.LogWeight) != math.Float64bits(estA.LogWeight) {
		t.Fatalf("restored log-weight %x != original %x",
			math.Float64bits(estB.LogWeight), math.Float64bits(estA.LogWeight))
	}
	for d := range estA.State {
		if math.Float64bits(estB.State[d]) != math.Float64bits(estA.State[d]) {
			t.Fatalf("restored estimate dim %d: %v != %v", d, estB.State[d], estA.State[d])
		}
	}

	// Resume both and require bit-identical estimate series.
	for k := cut + 1; k <= total; k++ {
		z := obs(0, k)
		ra, err := a.Step(idA, nil, z)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Step(idB, nil, z)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Step != rb.Step {
			t.Fatalf("step index diverged: %d vs %d", ra.Step, rb.Step)
		}
		if math.Float64bits(ra.LogWeight) != math.Float64bits(rb.LogWeight) {
			t.Fatalf("step %d: log-weights diverged: %v vs %v", k, ra.LogWeight, rb.LogWeight)
		}
		for d := range ra.State {
			if math.Float64bits(ra.State[d]) != math.Float64bits(rb.State[d]) {
				t.Fatalf("step %d dim %d: estimates diverged: %v vs %v", k, d, ra.State[d], rb.State[d])
			}
		}
	}
}

// TestCheckpointDeterminismMTGP repeats the roundtrip with the MTGP
// stream family, whose state machine (block-filled buffer over a
// Mersenne-Twister master) is the hardest to serialize exactly.
func TestCheckpointDeterminismMTGP(t *testing.T) {
	spec := FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 32, Streams: "mtgp", Seed: 7}
	a := newTestServer(t, Config{Workers: 2})
	idA, err := a.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 9; k++ {
		if _, err := a.Step(idA, nil, obs(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := a.Checkpoint(idA)
	if err != nil {
		t.Fatal(err)
	}
	b := newTestServer(t, Config{Workers: 2})
	idB, err := b.Restore(cp)
	if err != nil {
		t.Fatal(err)
	}
	for k := 10; k <= 24; k++ {
		z := obs(0, k)
		ra, err := a.Step(idA, nil, z)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Step(idB, nil, z)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ra.State[0]) != math.Float64bits(rb.State[0]) ||
			math.Float64bits(ra.LogWeight) != math.Float64bits(rb.LogWeight) {
			t.Fatalf("step %d diverged: (%v,%v) vs (%v,%v)", k, ra.State[0], ra.LogWeight, rb.State[0], rb.LogWeight)
		}
	}
}

func TestRestoreRejectsBadCheckpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id, nil, obs(0, 1)); err != nil {
		t.Fatal(err)
	}
	good, err := s.Checkpoint(id)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Restore(nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	bad := *good
	bad.Version = 99
	if _, err := s.Restore(&bad); err == nil {
		t.Error("wrong version accepted")
	}
	bad = *good
	bad.Spec.Model = "no-such-model"
	if _, err := s.Restore(&bad); err == nil {
		t.Error("unknown model accepted")
	}
	bad = *good
	bad.SubFilters = 8 // shape no longer matches the spec
	if _, err := s.Restore(&bad); err == nil {
		t.Error("shape mismatch accepted")
	}
	bad = *good
	bad.Particles = bad.Particles[:len(bad.Particles)-8]
	if _, err := s.Restore(&bad); err == nil {
		t.Error("truncated particle array accepted")
	}
	bad = *good
	bad.Rands = bad.Rands[:len(bad.Rands)-1]
	if _, err := s.Restore(&bad); err == nil {
		t.Error("missing random-stream state accepted")
	}

	// The good checkpoint still restores after all the rejects.
	if _, err := s.Restore(good); err != nil {
		t.Fatalf("good checkpoint rejected after bad attempts: %v", err)
	}
}

// TestCheckpointDeterminismAdaptive repeats the roundtrip with the
// ESS-driven adaptive allocator enabled (and the Metropolis resampler,
// so the collective-free scheme is covered over the wire too). The
// checkpoint carries the reallocated window layout and the round
// counter, so the restored session must replay the same reallocation
// cadence bit-exactly — and the original session must actually have
// reallocated, or the test proves nothing.
func TestCheckpointDeterminismAdaptive(t *testing.T) {
	spec := FilterSpec{
		Model:        "ungm",
		SubFilters:   8,
		ParticlesPer: 16,
		Resampler:    "metropolis",
		Seed:         42,
		AdaptEvery:   3,
	}
	a := newTestServer(t, Config{Workers: 4})
	idA, err := a.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	const cut = 10
	for k := 1; k <= cut; k++ {
		if _, err := a.Step(idA, nil, obs(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := a.Checkpoint(idA)
	if err != nil {
		t.Fatal(err)
	}
	b := newTestServer(t, Config{Workers: 2})
	idB, err := b.Restore(cp)
	if err != nil {
		t.Fatal(err)
	}
	for k := cut + 1; k <= 30; k++ {
		z := obs(0, k)
		ra, err := a.Step(idA, nil, z)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Step(idB, nil, z)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ra.State[0]) != math.Float64bits(rb.State[0]) ||
			math.Float64bits(ra.LogWeight) != math.Float64bits(rb.LogWeight) {
			t.Fatalf("step %d diverged: (%v,%v) vs (%v,%v)", k, ra.State[0], ra.LogWeight, rb.State[0], rb.LogWeight)
		}
	}
	// The allocator must have fired, and its count must surface in the
	// session health sample (the /metrics reallocations counter source).
	var got int64
	for _, sess := range a.Stats().Sessions {
		if sess.ID == idA && sess.Health != nil {
			got = sess.Health.Reallocations
		}
	}
	if got == 0 {
		t.Fatal("adaptive session never reallocated (or health sample missing the count)")
	}
}
