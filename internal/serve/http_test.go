package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func createSession(t *testing.T, base string, sp FilterSpec) string {
	t.Helper()
	var created struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, base+"/v1/sessions", map[string]any{"spec": sp}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID == "" {
		t.Fatal("create: empty id")
	}
	return created.ID
}

// TestHTTPConcurrentSessions is the serving demo as a test: ≥8 sessions
// created and stepped concurrently over HTTP, each required to match its
// own single-filter reference bit-for-bit, then the introspection
// endpoint checked for latency histograms and the kernel breakdown.
func TestHTTPConcurrentSessions(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 4})
	const sessions = 8
	const steps = 15

	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = createSession(t, ts.URL, FilterSpec{
			Model: "ungm", SubFilters: 8, ParticlesPer: 32, Seed: uint64(100 + i),
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref := refFilter(t, FilterSpec{Model: "ungm", SubFilters: 8, ParticlesPer: 32, Seed: uint64(100 + i)})
			for k := 1; k <= steps; k++ {
				z := obs(i, k)
				var reply stepReply
				for {
					buf, _ := json.Marshal(map[string]any{"z": z})
					resp, err := http.Post(ts.URL+"/v1/sessions/"+ids[i]+"/step", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						errs <- fmt.Errorf("session %d step %d: status %d: %s", i, k, resp.StatusCode, body)
						return
					}
					err = json.NewDecoder(resp.Body).Decode(&reply)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					break
				}
				want := ref.Step(nil, z)
				if reply.Step != k {
					errs <- fmt.Errorf("session %d: step index %d, want %d", i, reply.Step, k)
					return
				}
				if len(reply.State) != 1 || math.Float64bits(reply.State[0]) != math.Float64bits(want.State[0]) {
					errs <- fmt.Errorf("session %d step %d: state %v != reference %v", i, k, reply.State, want.State)
					return
				}
				if reply.LogWeightBits != math.Float64bits(want.LogWeight) {
					errs <- fmt.Errorf("session %d step %d: log-weight bits %x != reference %x",
						i, k, reply.LogWeightBits, math.Float64bits(want.LogWeight))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Introspection: /metrics must report every session with its latency
	// histogram, the batching counters, and the device kernel breakdown.
	var st Stats
	if code := getJSON(t, ts.URL+"/metrics", &st); code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if len(st.Sessions) != sessions {
		t.Fatalf("/metrics reports %d sessions, want %d", len(st.Sessions), sessions)
	}
	for _, sess := range st.Sessions {
		if sess.Steps != steps || sess.Latency.Count != steps {
			t.Fatalf("session %s: steps=%d latency.count=%d, want %d", sess.ID, sess.Steps, sess.Latency.Count, steps)
		}
		if len(sess.Latency.Buckets) == 0 || sess.Latency.MeanUS <= 0 {
			t.Fatalf("session %s: empty latency histogram: %+v", sess.ID, sess.Latency)
		}
		if sess.Shape != "8×32" {
			t.Fatalf("session %s: shape %q", sess.ID, sess.Shape)
		}
	}
	if st.BatchedSteps != sessions*steps {
		t.Fatalf("batched steps %d, want %d", st.BatchedSteps, sessions*steps)
	}
	if len(st.Device.Kernels) == 0 || st.Device.TotalLaunches == 0 {
		t.Fatalf("device stats missing kernel breakdown: %+v", st.Device)
	}
}

func TestHTTPLifecycleAndErrors(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 2})

	// Unknown model → 400.
	if code := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"spec": FilterSpec{Model: "nope"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", code)
	}
	// Malformed body → 400.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}

	id := createSession(t, ts.URL, FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: 2})

	// Listing includes it.
	var listing struct {
		Sessions []string `json:"sessions"`
	}
	if code := getJSON(t, ts.URL+"/v1/sessions", &listing); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(listing.Sessions) != 1 || listing.Sessions[0] != id {
		t.Fatalf("list: %v", listing.Sessions)
	}

	// Estimate before any step: -Inf log-weight omitted, bits exact.
	var est stepReply
	if code := getJSON(t, ts.URL+"/v1/sessions/"+id, &est); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	if est.LogWeight != nil {
		t.Fatalf("pre-step estimate has finite log-weight %v", *est.LogWeight)
	}
	if est.LogWeightBits != math.Float64bits(math.Inf(-1)) {
		t.Fatalf("pre-step log-weight bits %x, want -Inf", est.LogWeightBits)
	}

	// Step with a wrong-dimension measurement → 400.
	if code := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", map[string]any{"z": []float64{1, 2, 3}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad measurement: status %d, want 400", code)
	}
	// Good step → 200 with finite estimate.
	var stepped stepReply
	if code := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", map[string]any{"z": []float64{0.5}}, &stepped); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}
	if stepped.Step != 1 || len(stepped.State) != 1 || stepped.LogWeight == nil {
		t.Fatalf("step reply: %+v", stepped)
	}

	// Delete → 204, then everything on it → 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/sessions/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("estimate after delete: status %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", map[string]any{"z": []float64{0}}, nil); code != http.StatusNotFound {
		t.Fatalf("step after delete: status %d, want 404", code)
	}
}

// TestHTTPCheckpointRestore drives the checkpoint roundtrip through the
// HTTP endpoints: GET the checkpoint from one server, POST it to a
// second, and require the resumed estimate series to match bit-for-bit.
func TestHTTPCheckpointRestore(t *testing.T) {
	_, tsA := newHTTPServer(t, Config{Workers: 2})
	_, tsB := newHTTPServer(t, Config{Workers: 4})

	id := createSession(t, tsA.URL, FilterSpec{Model: "ungm", SubFilters: 8, ParticlesPer: 32, Seed: 11})
	for k := 1; k <= 10; k++ {
		if code := postJSON(t, tsA.URL+"/v1/sessions/"+id+"/step", map[string]any{"z": obs(0, k)}, nil); code != http.StatusOK {
			t.Fatalf("step %d: status %d", k, code)
		}
	}

	var cp Checkpoint
	if code := getJSON(t, tsA.URL+"/v1/sessions/"+id+"/checkpoint", &cp); code != http.StatusOK {
		t.Fatalf("checkpoint: status %d", code)
	}
	var restored struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, tsB.URL+"/v1/restore", cp, &restored); code != http.StatusCreated {
		t.Fatalf("restore: status %d", code)
	}

	for k := 11; k <= 25; k++ {
		z := obs(0, k)
		var ra, rb stepReply
		if code := postJSON(t, tsA.URL+"/v1/sessions/"+id+"/step", map[string]any{"z": z}, &ra); code != http.StatusOK {
			t.Fatalf("server A step %d: status %d", k, code)
		}
		if code := postJSON(t, tsB.URL+"/v1/sessions/"+restored.ID+"/step", map[string]any{"z": z}, &rb); code != http.StatusOK {
			t.Fatalf("server B step %d: status %d", k, code)
		}
		if ra.Step != rb.Step || ra.LogWeightBits != rb.LogWeightBits ||
			math.Float64bits(ra.State[0]) != math.Float64bits(rb.State[0]) {
			t.Fatalf("step %d diverged after restore: %+v vs %+v", k, ra, rb)
		}
	}

	// Restoring garbage → 400.
	cp.Particles = "!!!not base64!!!"
	if code := postJSON(t, tsB.URL+"/v1/restore", cp, nil); code != http.StatusBadRequest {
		t.Fatalf("corrupt restore: status %d, want 400", code)
	}
}

// TestHTTPSaturation verifies the backpressure contract on the wire:
// 429 plus Retry-After headers when the admission queue is full.
func TestHTTPSaturation(t *testing.T) {
	_, ts := newHTTPServer(t, Config{
		Workers:     2,
		QueueDepth:  1,
		MaxBatch:    1,
		RetryAfter:  3 * time.Millisecond,
		BatchWindow: 50 * time.Microsecond,
	})
	const sessions = 10
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = createSession(t, ts.URL, FilterSpec{
			Model: "slow-ungm", SubFilters: 4, ParticlesPer: 32, Seed: uint64(i + 1),
		})
	}

	var mu sync.Mutex
	var saw429 int
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 1; k <= 4; k++ {
				for {
					buf, _ := json.Marshal(map[string]any{"z": obs(i, k)})
					resp, err := http.Post(ts.URL+"/v1/sessions/"+ids[i]+"/step", "application/json", bytes.NewReader(buf))
					if err != nil {
						t.Error(err)
						return
					}
					code := resp.StatusCode
					retryAfter := resp.Header.Get("Retry-After")
					retryMs := resp.Header.Get("Retry-After-Ms")
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if code == http.StatusOK {
						break
					}
					if code != http.StatusTooManyRequests {
						t.Errorf("session %d: status %d", i, code)
						return
					}
					if retryAfter == "" || retryMs == "" {
						t.Errorf("429 without Retry-After headers (%q, %q)", retryAfter, retryMs)
						return
					}
					mu.Lock()
					saw429++
					mu.Unlock()
					time.Sleep(3 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	if saw429 == 0 {
		t.Fatal("depth-1 queue under 10 concurrent slow sessions never returned 429")
	}
	var st Stats
	if code := getJSON(t, ts.URL+"/metrics", &st); code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if st.Rejected < int64(saw429) {
		t.Fatalf("metrics count %d rejects, clients saw %d", st.Rejected, saw429)
	}
	t.Logf("%d requests shed with 429", saw429)
}

// probe fetches url and returns the status code plus the decoded
// {"status": ...} body regardless of code (getJSON only decodes 2xx).
func probe(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, body.Status
}

// TestHTTPHealthEndpoints walks /healthz and /readyz through the
// lifecycle: ready while serving, unready-draining after Drain,
// unready-closed after Shutdown, liveness green throughout.
func TestHTTPHealthEndpoints(t *testing.T) {
	s := NewServer(Config{Workers: 2}, testModels())
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	t.Cleanup(s.Shutdown)

	if code, status := probe(t, ts.URL+"/healthz"); code != http.StatusOK || status != "ok" {
		t.Fatalf("/healthz: %d %q", code, status)
	}
	if code, status := probe(t, ts.URL+"/readyz"); code != http.StatusOK || status != "ready" {
		t.Fatalf("/readyz: %d %q", code, status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, status := probe(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("/readyz while draining: %d %q", code, status)
	}
	// A draining server rejects new steps with 503 so load balancers and
	// the retry client route around it.
	id := "s-1" // no sessions exist; the draining check runs first for any id
	if code := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", map[string]any{"z": []float64{0}}, nil); code != http.StatusNotFound {
		// Unknown session wins over draining (lookup runs first): accept 404.
		t.Fatalf("step on draining server: status %d", code)
	}

	s.Shutdown()
	if code, status := probe(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || status != "closed" {
		t.Fatalf("/readyz after shutdown: %d %q", code, status)
	}
	if code, status := probe(t, ts.URL+"/healthz"); code != http.StatusOK || status != "ok" {
		t.Fatalf("/healthz after shutdown: %d %q", code, status)
	}
}

// TestHTTPDrainingStepRejected covers the admission path: a live
// session's step during drain maps ErrDraining to 503 with headers the
// retry client understands.
func TestHTTPDrainingStepRejected(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2})
	id := createSession(t, ts.URL, FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: 9})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", map[string]any{"z": []float64{0}}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("step while draining: status %d, want 503", code)
	}
}

// TestHTTPErrorMapping unit-tests httpError's status mapping, including
// the sub-millisecond Retry-After-Ms clamp.
func TestHTTPErrorMapping(t *testing.T) {
	check := func(err error, wantCode int) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		httpError(rec, err)
		if rec.Code != wantCode {
			t.Fatalf("%v → status %d, want %d", err, rec.Code, wantCode)
		}
		return rec
	}

	// Sub-millisecond hint: both headers clamp to 1 so clients never see
	// a zero ("retry immediately") hint.
	rec := check(&SaturatedError{RetryAfter: 200 * time.Microsecond}, http.StatusTooManyRequests)
	if ra, ms := rec.Header().Get("Retry-After"), rec.Header().Get("Retry-After-Ms"); ra != "1" || ms != "1" {
		t.Fatalf("sub-ms hint headers: Retry-After=%q Retry-After-Ms=%q, want 1/1", ra, ms)
	}
	rec = check(&SaturatedError{RetryAfter: 1500 * time.Millisecond}, http.StatusTooManyRequests)
	if ra, ms := rec.Header().Get("Retry-After"), rec.Header().Get("Retry-After-Ms"); ra != "1" || ms != "1500" {
		t.Fatalf("1.5s hint headers: Retry-After=%q Retry-After-Ms=%q, want 1/1500", ra, ms)
	}

	check(fmt.Errorf("step: %w", context.Canceled), statusClientClosedRequest)
	check(fmt.Errorf("step: %w", context.DeadlineExceeded), http.StatusGatewayTimeout)
	check(ErrDraining, http.StatusServiceUnavailable)
	check(ErrClosed, http.StatusServiceUnavailable)
	check(ErrTooManySessions, http.StatusServiceUnavailable)
	check(ErrNotFound, http.StatusNotFound)
	check(errors.New("bad spec"), http.StatusBadRequest)
}
