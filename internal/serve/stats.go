package serve

import (
	"fmt"
	"sort"
	"time"

	"esthera/internal/device"
	"esthera/internal/telemetry"
)

// SessionStats is one session's introspection record.
type SessionStats struct {
	ID      string       `json:"id"`
	Model   string       `json:"model"`
	Shape   string       `json:"shape"` // "N×m"
	Steps   int64        `json:"steps"`
	AgeMS   int64        `json:"age_ms"`
	Latency LatencyStats `json:"latency"`
	// Health is the most recent stride-gated filter-health sample (ESS,
	// weight degeneracy, resample acceptance); omitted until the first
	// sample is taken.
	Health *telemetry.FilterHealth `json:"health,omitempty"`
}

// HealthSnapshot is the server's robustness-layer introspection record:
// readiness, drain state, and the cancellation/backpressure counters.
// Fields carry explicit json wire names (enforced by esthera-vet's
// checkpointcompat analyzer) so the /metrics payload only ever changes
// deliberately.
type HealthSnapshot struct {
	// Ready and Draining mirror the /readyz state.
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// InFlight counts admitted steps not yet delivered to their callers.
	InFlight int64 `json:"in_flight"`
	// Cancelled counts steps abandoned by their caller's context while
	// queued; Skipped is the scheduler's view — abandoned requests
	// dropped at delivery time without executing. Skipped can lag
	// Cancelled while an abandoned request still sits in the queue.
	Cancelled int64 `json:"cancelled"`
	Skipped   int64 `json:"skipped"`
	// RetryAfterMS is the adaptive back-off hint a saturated step would
	// receive right now; BatchLatencyUS is the EWMA of batch execution
	// latency it derives from (0 until the first batch runs).
	RetryAfterMS   float64 `json:"retry_after_ms"`
	BatchLatencyUS float64 `json:"batch_latency_us"`
}

// Stats is the server's introspection snapshot: the /metrics payload.
type Stats struct {
	// Sessions lists per-session step counts and latency histograms,
	// sorted by id.
	Sessions []SessionStats `json:"sessions"`
	// QueueDepth/QueueCap describe the admission queue right now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Rejected counts steps shed by admission control since start.
	Rejected int64 `json:"rejected"`
	// Batches and BatchedSteps measure scheduler coalescing:
	// BatchedSteps/Batches is the mean batch size the device saw.
	Batches      int64   `json:"batches"`
	BatchedSteps int64   `json:"batched_steps"`
	MeanBatch    float64 `json:"mean_batch"`
	// Health is the robustness-layer state: readiness, drain,
	// cancellation counters, and the adaptive backpressure hint.
	Health HealthSnapshot `json:"health"`
	// Device is the shared device's kernel-breakdown profile.
	Device device.Stats `json:"device"`
}

// Stats returns the introspection snapshot.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()

	st := Stats{
		QueueDepth:   len(s.queue),
		QueueCap:     s.cfg.QueueDepth,
		Rejected:     s.rejected.Load(),
		Batches:      s.batches.Load(),
		BatchedSteps: s.batchedSteps.Load(),
		Health: HealthSnapshot{
			Ready:          s.Ready(),
			Draining:       s.draining.Load(),
			InFlight:       s.inflight.Load(),
			Cancelled:      s.cancelled.Load(),
			Skipped:        s.skipped.Load(),
			RetryAfterMS:   float64(s.retryHint().Microseconds()) / 1e3,
			BatchLatencyUS: float64(s.batchLatNS.Load()) / 1e3,
		},
		Device: s.dev.Profiler().Stats(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.BatchedSteps) / float64(st.Batches)
	}
	now := time.Now()
	for _, sess := range sessions {
		sess.mu.Lock()
		rec := SessionStats{
			ID:      sess.id,
			Model:   sess.spec.Model,
			Shape:   shape(sess.spec),
			Steps:   sess.steps,
			AgeMS:   now.Sub(sess.created).Milliseconds(),
			Latency: sess.lat.snapshot(),
		}
		if sess.health.Round > 0 {
			h := sess.health
			rec.Health = &h
		}
		sess.mu.Unlock()
		st.Sessions = append(st.Sessions, rec)
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}

func shape(sp FilterSpec) string {
	return fmt.Sprintf("%d×%d", sp.SubFilters, sp.ParticlesPer)
}
