package serve

import (
	"fmt"
	"sort"
	"time"

	"esthera/internal/device"
)

// SessionStats is one session's introspection record.
type SessionStats struct {
	ID      string       `json:"id"`
	Model   string       `json:"model"`
	Shape   string       `json:"shape"` // "N×m"
	Steps   int64        `json:"steps"`
	AgeMS   int64        `json:"age_ms"`
	Latency LatencyStats `json:"latency"`
}

// Stats is the server's introspection snapshot: the /metrics payload.
type Stats struct {
	// Sessions lists per-session step counts and latency histograms,
	// sorted by id.
	Sessions []SessionStats `json:"sessions"`
	// QueueDepth/QueueCap describe the admission queue right now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Rejected counts steps shed by admission control since start.
	Rejected int64 `json:"rejected"`
	// Batches and BatchedSteps measure scheduler coalescing:
	// BatchedSteps/Batches is the mean batch size the device saw.
	Batches      int64   `json:"batches"`
	BatchedSteps int64   `json:"batched_steps"`
	MeanBatch    float64 `json:"mean_batch"`
	// Device is the shared device's kernel-breakdown profile.
	Device device.Stats `json:"device"`
}

// Stats returns the introspection snapshot.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()

	st := Stats{
		QueueDepth:   len(s.queue),
		QueueCap:     s.cfg.QueueDepth,
		Rejected:     s.rejected.Load(),
		Batches:      s.batches.Load(),
		BatchedSteps: s.batchedSteps.Load(),
		Device:       s.dev.Profiler().Stats(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.BatchedSteps) / float64(st.Batches)
	}
	now := time.Now()
	for _, sess := range sessions {
		sess.mu.Lock()
		rec := SessionStats{
			ID:      sess.id,
			Model:   sess.spec.Model,
			Shape:   shape(sess.spec),
			Steps:   sess.steps,
			AgeMS:   now.Sub(sess.created).Milliseconds(),
			Latency: sess.lat.snapshot(),
		}
		sess.mu.Unlock()
		st.Sessions = append(st.Sessions, rec)
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}

func shape(sp FilterSpec) string {
	return fmt.Sprintf("%d×%d", sp.SubFilters, sp.ParticlesPer)
}
