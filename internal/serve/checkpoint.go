package serve

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"

	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/rng"
)

// CheckpointVersion is the current checkpoint format version; Restore
// rejects other versions.
const CheckpointVersion = 1

// Checkpoint is the deterministic serialization of one session: the
// filter spec to rebuild it and the exact runtime state to resume it.
// Particle and weight arrays are base64-encoded little-endian float64
// bit patterns — never decimal-formatted — so a checkpoint/restore
// roundtrip is bit-exact even through JSON (which cannot represent
// ±Inf and rounds long decimals). A session restored from a Checkpoint
// produces estimates bit-identical to the uninterrupted run under the
// same seed and observations; TestCheckpointDeterminism enforces this.
type Checkpoint struct {
	Version int        `json:"version"`
	ID      string     `json:"id"`
	Spec    FilterSpec `json:"spec"`
	Step    int        `json:"step"`

	SubFilters   int `json:"sub_filters"`
	ParticlesPer int `json:"particles_per"`
	Dim          int `json:"dim"`

	// Particles is the N·m·dim particle state, LogWeights the N·m
	// accumulated log-weights (base64 little-endian float64).
	Particles  string `json:"particles"`
	LogWeights string `json:"log_weights"`

	// BestSub and BestLWBits record the last estimate reduction (the
	// log-weight as IEEE-754 bits: it is -Inf before the first step).
	BestSub    int    `json:"best_sub"`
	BestLWBits uint64 `json:"best_lw_bits"`

	// LastState/LastLWBits reproduce Estimate's reply after restore.
	LastState  string `json:"last_state,omitempty"`
	LastLWBits uint64 `json:"last_lw_bits"`

	// Windows is the per-sub-filter window partition when the adaptive
	// allocator has resized it; absent means uniform (ParticlesPer
	// each), so non-adaptive checkpoints are byte-identical to the
	// pre-adaptive wire format.
	Windows []int `json:"windows,omitempty"`

	// Rands is the exact position of every per-sub-filter random stream.
	Rands []rng.State `json:"rands"`
}

// encodeF64s packs floats as base64 little-endian IEEE-754 bits.
func encodeF64s(xs []float64) string {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeF64s unpacks encodeF64s output, checking the expected length
// (pass -1 to skip the check).
func decodeF64s(s string, want int) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("serve: bad float array encoding: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("serve: float array has %d bytes, not a multiple of 8", len(buf))
	}
	xs := make([]float64, len(buf)/8)
	if want >= 0 && len(xs) != want {
		return nil, fmt.Errorf("serve: float array has %d values, want %d", len(xs), want)
	}
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return xs, nil
}

// Checkpoint captures session id's full state. It waits for the
// session's in-flight step (if any) to finish, so the snapshot is always
// taken at a round boundary.
func (s *Server) Checkpoint(id string) (*Checkpoint, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	sess.stepMu.Lock()
	defer sess.stepMu.Unlock()
	if sess.isClosed() {
		return nil, ErrNotFound
	}
	return s.checkpointLocked(id, sess), nil
}

// Export checkpoints session id and closes it in one atomic section:
// the in-flight step (if any) finishes, the snapshot lands on a round
// boundary, and no later step can advance the session past its own
// checkpoint — the source-side half of a bit-exact live migration. A
// restored copy of the returned checkpoint continues the estimate
// stream exactly where this session stopped.
func (s *Server) Export(id string) (*Checkpoint, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	sess.stepMu.Lock()
	defer sess.stepMu.Unlock()
	if sess.isClosed() {
		return nil, ErrNotFound
	}
	cp := s.checkpointLocked(id, sess)
	sess.markClosed()
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	return cp, nil
}

// checkpointLocked serializes a session; the caller holds sess.stepMu.
func (s *Server) checkpointLocked(id string, sess *Session) *Checkpoint {
	snap := sess.f.Snapshot()
	last := sess.lastResult()
	cp := &Checkpoint{
		Version:      CheckpointVersion,
		ID:           id,
		Spec:         sess.spec,
		Step:         snap.Step,
		SubFilters:   snap.Pipe.SubFilters,
		ParticlesPer: snap.Pipe.ParticlesPer,
		Dim:          snap.Pipe.Dim,
		Particles:    encodeF64s(snap.Pipe.X),
		LogWeights:   encodeF64s(snap.Pipe.LogW),
		BestSub:      snap.Pipe.BestSub,
		BestLWBits:   math.Float64bits(snap.Pipe.BestLW),
		LastState:    encodeF64s(last.State),
		LastLWBits:   math.Float64bits(last.LogWeight),
		Windows:      snap.Pipe.Windows,
		Rands:        snap.Pipe.Rands,
	}
	return cp
}

// Restore creates a new session from a checkpoint and returns its id.
// The restored session resumes exactly where the checkpoint was taken:
// same particles, same weights, same random-stream positions.
func (s *Server) Restore(cp *Checkpoint) (string, error) {
	if cp == nil {
		return "", fmt.Errorf("serve: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return "", fmt.Errorf("serve: checkpoint version %d, this server reads %d", cp.Version, CheckpointVersion)
	}
	sp := cp.Spec.withDefaults()
	if cp.SubFilters != sp.SubFilters || cp.ParticlesPer != sp.ParticlesPer {
		return "", fmt.Errorf("serve: checkpoint shape %d×%d does not match its spec %d×%d",
			cp.SubFilters, cp.ParticlesPer, sp.SubFilters, sp.ParticlesPer)
	}
	f, mdl, err := s.buildFilter(sp)
	if err != nil {
		return "", err
	}
	if mdl.StateDim() != cp.Dim {
		return "", fmt.Errorf("serve: checkpoint state dim %d, model %q has %d", cp.Dim, sp.Model, mdl.StateDim())
	}
	n := cp.SubFilters * cp.ParticlesPer
	x, err := decodeF64s(cp.Particles, n*cp.Dim)
	if err != nil {
		return "", err
	}
	logw, err := decodeF64s(cp.LogWeights, n)
	if err != nil {
		return "", err
	}
	err = f.RestoreSnapshot(&filter.ParallelSnapshot{
		Seed: sp.Seed,
		Step: cp.Step,
		Pipe: &kernels.Snapshot{
			SubFilters:   cp.SubFilters,
			ParticlesPer: cp.ParticlesPer,
			Dim:          cp.Dim,
			X:            x,
			LogW:         logw,
			BestSub:      cp.BestSub,
			BestLW:       math.Float64frombits(cp.BestLWBits),
			Windows:      cp.Windows,
			Rands:        cp.Rands,
		},
	})
	if err != nil {
		return "", err
	}
	id, err := s.install(sp, f, mdl)
	if err != nil {
		return "", err
	}
	var lastState []float64
	if cp.LastState != "" {
		if lastState, err = decodeF64s(cp.LastState, -1); err != nil {
			return "", err
		}
	}
	if sess, lookupErr := s.lookup(id); lookupErr == nil {
		sess.seedResult(int64(cp.Step), filter.Estimate{
			State:     lastState,
			LogWeight: math.Float64frombits(cp.LastLWBits),
		})
	}
	return id, nil
}
