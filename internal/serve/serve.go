// Package serve runs many concurrent tracking sessions — one distributed
// particle filter per tracked target — on a single shared many-core
// device, the deployment shape the paper's design is built for: "many
// small sub-filters share one many-core device" (§IV, Table I). It is
// the toolkit's multi-tenant estimation service layer:
//
//   - Session lifecycle: Create builds a filter from a FilterSpec on the
//     shared device substrate; Step advances it one observation; Estimate
//     reads the last estimate; Close releases it.
//   - Admission control: pending steps enter a bounded queue. When the
//     queue is full the server rejects immediately with ErrSaturated
//     (carrying a retry-after hint) instead of growing without bound —
//     load sheds at the edge, latency stays bounded.
//   - Cross-session batching: a scheduler goroutine coalesces queued
//     steps from different sessions into shared kernel launches
//     (kernels.RoundBatch), so B sessions of N sub-filters each drive the
//     device with B·N-group grids instead of B separate small launches.
//     Batching is a pure scheduling optimization: estimates are
//     bit-identical to unbatched stepping.
//   - Checkpoint/restore: a session's full state — particles, weights
//     and the exact position of every random stream — serializes to a
//     deterministic Checkpoint; restored sessions replay bit-identically
//     under the same seed (see checkpoint.go).
//   - Introspection: Stats publishes per-session step counts and latency
//     histograms, queue depth, batching effectiveness and the shared
//     device's kernel-breakdown profile (device.Profiler.Stats).
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

// Config shapes a Server.
type Config struct {
	// Workers sizes the shared device (0 = GOMAXPROCS).
	Workers int
	// MaxSessions bounds concurrent sessions (0 = 256).
	MaxSessions int
	// QueueDepth bounds the admission queue of pending steps (0 = 128).
	// A full queue rejects new steps with ErrSaturated.
	QueueDepth int
	// MaxBatch bounds how many session steps one scheduling round
	// coalesces into shared launches (0 = 32).
	MaxBatch int
	// BatchWindow is how long the scheduler waits after the first queued
	// step for more steps to coalesce (0 = 200µs). Zero latency cost
	// under load: the window only adds latency when the queue is
	// near-empty, exactly when latency is cheapest.
	BatchWindow time.Duration
	// RetryAfter is the client back-off hint attached to ErrSaturated
	// before the scheduler has measured any batch latency (0 = 5ms).
	// Once batches have run, the hint is adaptive: the expected time to
	// drain the current queue, derived from the queue depth and an EWMA
	// of recent batch execution latency (see retryHint).
	RetryAfter time.Duration
	// Trace starts the server with span recording enabled. Recording
	// can also be toggled at runtime via POST /trace; the tracer itself
	// always exists and is free while disabled.
	Trace bool
	// HealthStride gates per-session filter-health sampling (ESS,
	// weight degeneracy, resample acceptance): every k-th round is
	// sampled. 0 means every round; negative disables sampling.
	HealthStride int
	// Name identifies this process in traces and structured logs (the
	// shard name in a swarm). "" leaves exports unnamed.
	Name string
	// LogLevel is the structured logger's minimum severity (zero =
	// info); LogSink, when non-nil, additionally mirrors warn+ records
	// there as they happen (the binaries pass stderr). The ring-buffered
	// log is always available at /logz regardless.
	LogLevel tlog.Level
	LogSink  io.Writer
	// StepSLO is the step endpoint's latency objective: a step counts
	// against the error budget when it exceeds this bound (0 = 50ms).
	// SLOObjective is the target good fraction (0 = 0.99). Burn rates
	// are exported via /metrics (esthera_slo_*).
	StepSLO      time.Duration
	SLOObjective float64
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Millisecond
	}
	if c.HealthStride == 0 {
		c.HealthStride = 1
	}
	if c.HealthStride < 0 {
		c.HealthStride = -1
	}
	return c
}

// FilterSpec describes a session's filter: the model by registry name
// plus the distributed-filter parameters (the root package's Config, in
// serve-layer form).
type FilterSpec struct {
	// Model names a registered model factory ("arm", "ungm", ...).
	Model string `json:"model"`
	// SubFilters (N) and ParticlesPer (m) shape the network; zero values
	// take the session-scale defaults (16 sub-filters × 64 particles).
	SubFilters   int `json:"sub_filters,omitempty"`
	ParticlesPer int `json:"particles_per,omitempty"`
	// ExchangeScheme is "ring" (default), "torus", "all-to-all",
	// "hypercube" or "none"; ExchangeCount is t.
	ExchangeScheme string `json:"exchange_scheme,omitempty"`
	ExchangeCount  int    `json:"exchange_count,omitempty"`
	// Resampler is "rws" (default), "vose", "systematic" or
	// "metropolis".
	Resampler string `json:"resampler,omitempty"`
	// Policy is "always" (default), "never", "ess" / "ess:<frac>" or
	// "random" / "random:<p>".
	Policy string `json:"policy,omitempty"`
	// Streams is "philox" (default) or "mtgp".
	Streams string `json:"streams,omitempty"`
	// Estimator is "max-weight" (default) or "weighted-mean".
	Estimator string `json:"estimator,omitempty"`
	// AdaptEvery enables the ESS-driven adaptive allocator: every
	// AdaptEvery rounds the per-sub-filter particle windows are
	// re-divided toward the degenerating sub-filters (gain and clamp
	// defaults from filter.AdaptConfig). 0, the default, keeps fixed
	// uniform windows. Reallocations show up in the session's health
	// sample and as esthera_filter_reallocations_total on /metrics.
	AdaptEvery int `json:"adapt_every,omitempty"`
	// Seed derives every random stream of the session.
	Seed uint64 `json:"seed"`
}

func (sp FilterSpec) withDefaults() FilterSpec {
	if sp.SubFilters <= 0 {
		sp.SubFilters = 16
	}
	if sp.ParticlesPer <= 0 {
		sp.ParticlesPer = 64
	}
	if sp.ExchangeScheme == "" {
		sp.ExchangeScheme = "ring"
	}
	if sp.ExchangeScheme != "none" && sp.ExchangeCount == 0 {
		sp.ExchangeCount = 1
	}
	return sp
}

// ModelFactory builds a fresh model instance for one session.
type ModelFactory func() (model.Model, error)

// Sentinel errors. ErrSaturated additionally carries a retry hint; use
// errors.As with *SaturatedError to read it.
var (
	ErrNotFound        = errors.New("serve: no such session")
	ErrClosed          = errors.New("serve: server closed")
	ErrDraining        = errors.New("serve: draining, not admitting new steps")
	ErrTooManySessions = errors.New("serve: session limit reached")
)

// SaturatedError reports that the admission queue was full: the step was
// rejected without queuing, and the client should back off for
// RetryAfter before retrying.
type SaturatedError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: saturated, retry after %v", e.RetryAfter)
}

// Server runs concurrent estimation sessions over one shared device.
type Server struct {
	cfg    Config
	dev    *device.Device
	models map[string]ModelFactory

	// stepper is the scheduler goroutine's reusable batched-stepping
	// scratch (merged-launch tables, batch entries); only runBatch
	// touches it.
	stepper *filter.BatchStepper

	mu       sync.RWMutex
	sessions map[string]*Session
	nextID   uint64
	closed   bool

	queue chan *stepReq
	quit  chan struct{}
	done  chan struct{}

	// draining flips once on Drain: admission stops, in-flight steps
	// finish, /readyz goes unready.
	draining atomic.Bool

	// Scheduler counters (atomics: read by Stats concurrently).
	batches      atomic.Int64
	batchedSteps atomic.Int64
	rejected     atomic.Int64
	// inflight counts steps admitted to the queue whose waiters have not
	// returned yet (queued or executing); Drain waits for it to hit 0.
	inflight atomic.Int64
	// cancelled counts steps abandoned by their waiter (context
	// cancellation/deadline) while still queued; skipped counts the
	// scheduler-side view — abandoned requests dropped at delivery time
	// without executing.
	cancelled atomic.Int64
	skipped   atomic.Int64
	// batchLatNS is an EWMA of recent batch execution latency in
	// nanoseconds, feeding the adaptive retry hint.
	batchLatNS atomic.Int64

	// Observability: the span tracer shared by the device, every
	// session's pipeline, and the scheduler; the metrics registry
	// unifying serve counters, latency histograms, filter health and
	// the device profile behind /metrics (see telemetry.go); the
	// structured logger behind /logz; and the step endpoint's SLO
	// tracker plus predicted-cost histogram.
	tracer   *telemetry.Tracer
	reg      *telemetry.Registry
	log      *tlog.Logger
	sloStep  *telemetry.SLOTracker
	costHist *telemetry.Histogram
}

// NewServer starts a server with the given model registry. The caller
// owns the registry map after return (it is copied).
func NewServer(cfg Config, models map[string]ModelFactory) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		dev:      device.New(device.Config{Workers: cfg.Workers, LocalMemBytes: -1}),
		models:   make(map[string]ModelFactory, len(models)),
		sessions: make(map[string]*Session),
		queue:    make(chan *stepReq, cfg.QueueDepth),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		tracer:   telemetry.New(telemetry.Config{}),
		reg:      telemetry.NewRegistry(),
	}
	s.stepper = filter.NewBatchStepper(s.dev)
	s.tracer.SetEnabled(cfg.Trace)
	s.tracer.SetProcess(cfg.Name)
	s.dev.SetTracer(s.tracer)
	s.log = tlog.New(tlog.Config{Level: cfg.LogLevel, Process: cfg.Name, Sink: cfg.LogSink})
	s.sloStep = telemetry.NewSLOTracker(telemetry.SLO{Objective: cfg.SLOObjective, Threshold: cfg.StepSLO})
	// Predicted lane-op cost per request, bucketed in powers of four:
	// spans the arm default (16x64 sub-filters, ~200k ops) out to the
	// million-particle shapes the throughput scenarios use.
	s.costHist = s.reg.NewHistogram("esthera_request_cost_laneops",
		"Predicted lane-operation cost of each stepped request (platform cost model).",
		[]float64{1e3, 4e3, 16e3, 64e3, 256e3, 1e6, 4e6, 16e6, 64e6, 256e6})
	s.reg.RegisterCollector(s.collectMetrics)
	for name, f := range models {
		s.models[name] = f
	}
	go s.schedule()
	return s
}

// Device exposes the shared device (its profiler feeds the introspection
// endpoint).
func (s *Server) Device() *device.Device { return s.dev }

// buildFilter constructs a session filter on the shared device.
func (s *Server) buildFilter(sp FilterSpec) (*filter.Parallel, model.Model, error) {
	factory, ok := s.models[sp.Model]
	if !ok {
		known := make([]string, 0, len(s.models))
		for name := range s.models {
			known = append(known, name)
		}
		sort.Strings(known)
		return nil, nil, fmt.Errorf("serve: unknown model %q (registered: %v)", sp.Model, known)
	}
	mdl, err := factory()
	if err != nil {
		return nil, nil, err
	}
	scheme, err := exchange.SchemeByName(sp.ExchangeScheme)
	if err != nil {
		return nil, nil, err
	}
	algo, err := kernels.AlgoByName(sp.Resampler)
	if err != nil {
		return nil, nil, err
	}
	policy, err := resample.PolicyByName(sp.Policy)
	if err != nil {
		return nil, nil, err
	}
	est, err := filter.EstimatorByName(sp.Estimator)
	if err != nil {
		return nil, nil, err
	}
	if sp.AdaptEvery < 0 {
		return nil, nil, fmt.Errorf("serve: adapt_every must be >= 0, got %d", sp.AdaptEvery)
	}
	switch sp.Streams {
	case "", "philox", "mtgp":
	default:
		return nil, nil, fmt.Errorf("serve: unknown streams %q (philox, mtgp)", sp.Streams)
	}
	f, err := filter.NewParallel(s.dev, mdl, filter.ParallelConfig{
		SubFilters:    sp.SubFilters,
		ParticlesPer:  sp.ParticlesPer,
		Scheme:        scheme,
		ExchangeCount: sp.ExchangeCount,
		Resampler:     algo,
		Policy:        policy,
		Streams:       sp.Streams,
		Estimator:     est,
		Adapt:         filter.AdaptConfig{Every: sp.AdaptEvery},
	}, sp.Seed)
	if err != nil {
		return nil, nil, err
	}
	return f, mdl, nil
}

// Create builds a new session and returns its id.
func (s *Server) Create(sp FilterSpec) (string, error) {
	sp = sp.withDefaults()
	f, mdl, err := s.buildFilter(sp)
	if err != nil {
		return "", err
	}
	return s.install(sp, f, mdl)
}

// install registers a constructed session under a fresh id.
func (s *Server) install(sp FilterSpec, f *filter.Parallel, mdl model.Model) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return "", ErrTooManySessions
	}
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	// Wire the session's pipeline into the server's observability:
	// round spans when tracing is on, and stride-gated health sampling.
	f.Pipeline().SetTracer(s.tracer)
	if s.cfg.HealthStride > 0 {
		f.Pipeline().SetHealthEvery(s.cfg.HealthStride)
	}
	sess := newSession(id, sp, f, mdl)
	s.sessions[id] = sess
	s.log.Info("session created",
		tlog.Str("session", id), tlog.Str("model", sp.Model),
		tlog.Int("sub_filters", int64(sp.SubFilters)), tlog.Int("particles_per", int64(sp.ParticlesPer)),
		tlog.Int("cost_laneops", sess.cost))
	return id, nil
}

// lookup fetches a live session.
func (s *Server) lookup(id string) (*Session, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sess, ok := s.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return sess, nil
}

// StepResult is one successful Step's output.
type StepResult struct {
	// Step is the session's step index after this observation.
	Step int `json:"step"`
	// State is the estimated state vector.
	State []float64 `json:"state"`
	// LogWeight is the winning particle's unnormalized log-weight
	// (max-weight estimator; 0 for weighted-mean).
	LogWeight float64 `json:"log_weight"`
}

// Step advances session id by one observation: control u (may be nil for
// uncontrolled models) and measurement z. It is StepCtx without a
// deadline; see StepCtx for the delivery semantics.
func (s *Server) Step(id string, u, z []float64) (StepResult, error) {
	return s.StepCtx(context.Background(), id, u, z)
}

// StepCtx advances session id by one observation under a context: the
// caller's deadline and cancellation propagate into the batching
// scheduler. Steps of one session are serialized in arrival order; steps
// of different sessions are coalesced by the batching scheduler. Returns
// *SaturatedError when the admission queue is full (carrying the
// adaptive retry hint) and ErrDraining once Drain has begun.
//
// Delivery is at-most-once with a hard consistency guarantee: a step is
// either applied to the session's filter and reported with its result,
// or never applied and reported with an error — no step is both applied
// and reported failed. Cancellation is honored while the step is
// queued: the call returns promptly with the context's error, the
// scheduler skips the request at delivery time without executing it,
// and its batch slot is released. Once the scheduler has claimed the
// step for an executing batch, cancellation arrives too late: the call
// waits out the batch and returns the applied step's result, so the
// session's filter state never silently diverges from its reported
// estimates.
func (s *Server) StepCtx(ctx context.Context, id string, u, z []float64) (StepResult, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return StepResult{}, err
	}
	if len(z) != sess.mdl.MeasurementDim() {
		return StepResult{}, fmt.Errorf("serve: measurement has %d values, model %q needs %d",
			len(z), sess.spec.Model, sess.mdl.MeasurementDim())
	}
	if cd := sess.mdl.ControlDim(); len(u) != cd && !(u == nil && cd == 0) {
		return StepResult{}, fmt.Errorf("serve: control has %d values, model %q needs %d",
			len(u), sess.spec.Model, cd)
	}
	if err := ctx.Err(); err != nil {
		return StepResult{}, err
	}
	start := time.Now()

	// Serialize this session's steps: the filter is a strictly ordered
	// Markov recursion, so a session admits one in-flight step at a time.
	sess.stepMu.Lock()
	defer sess.stepMu.Unlock()
	if sess.isClosed() {
		return StepResult{}, ErrNotFound
	}
	if s.draining.Load() {
		return StepResult{}, ErrDraining
	}

	req := &stepReq{sess: sess, u: u, z: z, done: make(chan stepResult, 1)}
	if s.tracer.Enabled() {
		// Propagated trace context (router ingress via the traceparent
		// header) plus this request's own span: the batch that executes
		// the step installs it as the tracer's ambient context, so
		// device/kernel round spans inherit the request's trace ID. A
		// request arriving without a trace mints its own, so standalone
		// (router-less) traces still group by request.
		tc, ok := telemetry.TraceFromContext(ctx)
		if !ok {
			tc = telemetry.TraceContext{Trace: telemetry.NewTraceID()}
		}
		req.tc = tc
		req.span = telemetry.NewSpanID()
	}
	select {
	case s.queue <- req:
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
	default:
		// Bounded admission: reject, never queue unboundedly.
		s.rejected.Add(1)
		return StepResult{}, &SaturatedError{RetryAfter: s.retryHint()}
	}
	select {
	case res := <-req.done:
		return s.finish(sess, req, res, start)
	case <-ctx.Done():
		if req.abandon() {
			// Still queued: the scheduler will skip it; the step is
			// never applied.
			s.cancelled.Add(1)
			return StepResult{}, fmt.Errorf("serve: step abandoned while queued: %w", ctx.Err())
		}
		// The scheduler claimed the step first: it will be applied and a
		// result is guaranteed on done. Take it — reporting failure here
		// would desynchronize the session from its own filter.
		return s.finish(sess, req, <-req.done, start)
	case <-s.quit:
		if req.abandon() {
			// Still queued at shutdown: never applied.
			return StepResult{}, ErrClosed
		}
		// The batch completed (or is completing) concurrently with
		// shutdown: prefer the ready result over quit, so an applied
		// step is never reported as failed and recordStep always runs.
		return s.finish(sess, req, <-req.done, start)
	}
}

// finish delivers one completed step to the caller, recording it in the
// session bookkeeping so Estimate and Stats stay consistent with the
// filter state.
func (s *Server) finish(sess *Session, req *stepReq, res stepResult, start time.Time) (StepResult, error) {
	if res.err != nil {
		s.log.Warn("step failed",
			tlog.Str("session", sess.id), tlog.Trace(req.tc), tlog.Str("error", res.err.Error()))
		return StepResult{}, res.err
	}
	elapsed := time.Since(start)
	sess.recordStep(res.est, elapsed)
	s.sloStep.Observe(elapsed)
	s.costHist.Observe(float64(sess.cost))
	if s.cfg.HealthStride > 0 {
		// The caller holds sess.stepMu and the batch that ran this step
		// has delivered, so the pipeline's health sample is stable.
		sess.setHealth(sess.f.Pipeline().LastHealth())
	}
	if s.tracer.Enabled() {
		ev := telemetry.Event{
			Name: "request", Cat: "serve", TS: s.tracer.Stamp(start), Dur: elapsed,
			Trace: req.tc.Trace, Span: req.span, Parent: req.tc.Span,
		}
		ev.SetArg("step", int64(res.step))
		ev.SetArg("cost_laneops", sess.cost)
		s.tracer.Record(ev)
	}
	if s.log.Enabled(tlog.LevelDebug) {
		s.log.Debug("step",
			tlog.Str("session", sess.id), tlog.Int("step", int64(res.step)),
			tlog.Dur("latency", elapsed), tlog.Int("cost_laneops", sess.cost),
			tlog.Trace(telemetry.TraceContext{Trace: req.tc.Trace, Span: req.span}))
	}
	return StepResult{Step: res.step, State: res.est.State, LogWeight: res.est.LogWeight}, nil
}

// retryHint derives the saturation back-off from live load: the
// expected time for the scheduler to drain the queue as seen now —
// (batches left to run) × (EWMA batch latency) — clamped to a sane
// range. Before any batch has run it falls back to the configured
// constant.
func (s *Server) retryHint() time.Duration {
	lat := time.Duration(s.batchLatNS.Load())
	if lat <= 0 {
		return s.cfg.RetryAfter
	}
	pending := len(s.queue)/s.cfg.MaxBatch + 1
	hint := time.Duration(pending) * lat
	const minHint, maxHint = 200 * time.Microsecond, 2 * time.Second
	if hint < minHint {
		hint = minHint
	}
	if hint > maxHint {
		hint = maxHint
	}
	return hint
}

// Estimate returns the session's latest estimate without stepping (zero
// State before the first step).
func (s *Server) Estimate(id string) (StepResult, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return StepResult{}, err
	}
	return sess.lastResult(), nil
}

// Close tears down one session. In-flight steps finish first (Close
// waits for the session's step lock).
func (s *Server) Close(id string) error {
	sess, err := s.lookup(id)
	if err != nil {
		return err
	}
	sess.stepMu.Lock()
	sess.markClosed()
	sess.stepMu.Unlock()
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	s.log.Info("session closed", tlog.Str("session", id))
	return nil
}

// Sessions returns the live session ids, sorted.
func (s *Server) Sessions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Drain begins graceful shutdown: the server stops admitting new steps
// (they fail with ErrDraining; /readyz goes unready) and Drain blocks
// until every already-admitted step has completed and been delivered,
// or ctx expires. It does not stop the scheduler or the device — call
// Shutdown afterwards for that. Drain is idempotent and safe to call
// concurrently.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.Swap(true) {
		s.log.Info("drain started", tlog.Int("inflight", s.inflight.Load()))
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 && len(s.queue) == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		case <-s.quit:
			return ErrClosed
		}
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// stopped reports whether Shutdown has fired.
func (s *Server) stopped() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// Ready reports whether the server is admitting new steps: live, not
// draining, not shut down. The /readyz endpoint serves it.
func (s *Server) Ready() bool {
	if s.draining.Load() {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.closed
}

// Shutdown stops the scheduler and fails pending steps with ErrClosed.
// Steps already claimed by an executing batch still deliver their
// results (at-most-once: an applied step is never reported failed).
// Sessions become unreachable; Shutdown is idempotent. For a graceful
// stop, call Drain first.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.log.Info("server shutdown")
	close(s.quit)
	<-s.done
}
