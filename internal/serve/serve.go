// Package serve runs many concurrent tracking sessions — one distributed
// particle filter per tracked target — on a single shared many-core
// device, the deployment shape the paper's design is built for: "many
// small sub-filters share one many-core device" (§IV, Table I). It is
// the toolkit's multi-tenant estimation service layer:
//
//   - Session lifecycle: Create builds a filter from a FilterSpec on the
//     shared device substrate; Step advances it one observation; Estimate
//     reads the last estimate; Close releases it.
//   - Admission control: pending steps enter a bounded queue. When the
//     queue is full the server rejects immediately with ErrSaturated
//     (carrying a retry-after hint) instead of growing without bound —
//     load sheds at the edge, latency stays bounded.
//   - Cross-session batching: a scheduler goroutine coalesces queued
//     steps from different sessions into shared kernel launches
//     (kernels.RoundBatch), so B sessions of N sub-filters each drive the
//     device with B·N-group grids instead of B separate small launches.
//     Batching is a pure scheduling optimization: estimates are
//     bit-identical to unbatched stepping.
//   - Checkpoint/restore: a session's full state — particles, weights
//     and the exact position of every random stream — serializes to a
//     deterministic Checkpoint; restored sessions replay bit-identically
//     under the same seed (see checkpoint.go).
//   - Introspection: Stats publishes per-session step counts and latency
//     histograms, queue depth, batching effectiveness and the shared
//     device's kernel-breakdown profile (device.Profiler.Stats).
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/resample"
)

// Config shapes a Server.
type Config struct {
	// Workers sizes the shared device (0 = GOMAXPROCS).
	Workers int
	// MaxSessions bounds concurrent sessions (0 = 256).
	MaxSessions int
	// QueueDepth bounds the admission queue of pending steps (0 = 128).
	// A full queue rejects new steps with ErrSaturated.
	QueueDepth int
	// MaxBatch bounds how many session steps one scheduling round
	// coalesces into shared launches (0 = 32).
	MaxBatch int
	// BatchWindow is how long the scheduler waits after the first queued
	// step for more steps to coalesce (0 = 200µs). Zero latency cost
	// under load: the window only adds latency when the queue is
	// near-empty, exactly when latency is cheapest.
	BatchWindow time.Duration
	// RetryAfter is the client back-off hint attached to ErrSaturated
	// (0 = 5ms).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Millisecond
	}
	return c
}

// FilterSpec describes a session's filter: the model by registry name
// plus the distributed-filter parameters (the root package's Config, in
// serve-layer form).
type FilterSpec struct {
	// Model names a registered model factory ("arm", "ungm", ...).
	Model string `json:"model"`
	// SubFilters (N) and ParticlesPer (m) shape the network; zero values
	// take the session-scale defaults (16 sub-filters × 64 particles).
	SubFilters   int `json:"sub_filters,omitempty"`
	ParticlesPer int `json:"particles_per,omitempty"`
	// ExchangeScheme is "ring" (default), "torus", "all-to-all",
	// "hypercube" or "none"; ExchangeCount is t.
	ExchangeScheme string `json:"exchange_scheme,omitempty"`
	ExchangeCount  int    `json:"exchange_count,omitempty"`
	// Resampler is "rws" (default), "vose" or "systematic".
	Resampler string `json:"resampler,omitempty"`
	// Policy is "always" (default), "ess", "random" or "never".
	Policy string `json:"policy,omitempty"`
	// Streams is "philox" (default) or "mtgp".
	Streams string `json:"streams,omitempty"`
	// Estimator is "max-weight" (default) or "weighted-mean".
	Estimator string `json:"estimator,omitempty"`
	// Seed derives every random stream of the session.
	Seed uint64 `json:"seed"`
}

func (sp FilterSpec) withDefaults() FilterSpec {
	if sp.SubFilters <= 0 {
		sp.SubFilters = 16
	}
	if sp.ParticlesPer <= 0 {
		sp.ParticlesPer = 64
	}
	if sp.ExchangeScheme == "" {
		sp.ExchangeScheme = "ring"
	}
	if sp.ExchangeScheme != "none" && sp.ExchangeCount == 0 {
		sp.ExchangeCount = 1
	}
	return sp
}

// ModelFactory builds a fresh model instance for one session.
type ModelFactory func() (model.Model, error)

// Sentinel errors. ErrSaturated additionally carries a retry hint; use
// errors.As with *SaturatedError to read it.
var (
	ErrNotFound        = errors.New("serve: no such session")
	ErrClosed          = errors.New("serve: server closed")
	ErrTooManySessions = errors.New("serve: session limit reached")
)

// SaturatedError reports that the admission queue was full: the step was
// rejected without queuing, and the client should back off for
// RetryAfter before retrying.
type SaturatedError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: saturated, retry after %v", e.RetryAfter)
}

// Server runs concurrent estimation sessions over one shared device.
type Server struct {
	cfg    Config
	dev    *device.Device
	models map[string]ModelFactory

	mu       sync.RWMutex
	sessions map[string]*Session
	nextID   uint64
	closed   bool

	queue chan *stepReq
	quit  chan struct{}
	done  chan struct{}

	// Scheduler counters (atomics: read by Stats concurrently).
	batches      atomic.Int64
	batchedSteps atomic.Int64
	rejected     atomic.Int64
}

// NewServer starts a server with the given model registry. The caller
// owns the registry map after return (it is copied).
func NewServer(cfg Config, models map[string]ModelFactory) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		dev:      device.New(device.Config{Workers: cfg.Workers, LocalMemBytes: -1}),
		models:   make(map[string]ModelFactory, len(models)),
		sessions: make(map[string]*Session),
		queue:    make(chan *stepReq, cfg.QueueDepth),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for name, f := range models {
		s.models[name] = f
	}
	go s.schedule()
	return s
}

// Device exposes the shared device (its profiler feeds the introspection
// endpoint).
func (s *Server) Device() *device.Device { return s.dev }

// buildFilter constructs a session filter on the shared device.
func (s *Server) buildFilter(sp FilterSpec) (*filter.Parallel, model.Model, error) {
	factory, ok := s.models[sp.Model]
	if !ok {
		known := make([]string, 0, len(s.models))
		for name := range s.models {
			known = append(known, name)
		}
		sort.Strings(known)
		return nil, nil, fmt.Errorf("serve: unknown model %q (registered: %v)", sp.Model, known)
	}
	mdl, err := factory()
	if err != nil {
		return nil, nil, err
	}
	scheme, err := exchange.SchemeByName(sp.ExchangeScheme)
	if err != nil {
		return nil, nil, err
	}
	algo, err := kernels.AlgoByName(sp.Resampler)
	if err != nil {
		return nil, nil, err
	}
	policy, err := resample.PolicyByName(sp.Policy)
	if err != nil {
		return nil, nil, err
	}
	est, err := filter.EstimatorByName(sp.Estimator)
	if err != nil {
		return nil, nil, err
	}
	switch sp.Streams {
	case "", "philox", "mtgp":
	default:
		return nil, nil, fmt.Errorf("serve: unknown streams %q (philox, mtgp)", sp.Streams)
	}
	f, err := filter.NewParallel(s.dev, mdl, filter.ParallelConfig{
		SubFilters:    sp.SubFilters,
		ParticlesPer:  sp.ParticlesPer,
		Scheme:        scheme,
		ExchangeCount: sp.ExchangeCount,
		Resampler:     algo,
		Policy:        policy,
		Streams:       sp.Streams,
		Estimator:     est,
	}, sp.Seed)
	if err != nil {
		return nil, nil, err
	}
	return f, mdl, nil
}

// Create builds a new session and returns its id.
func (s *Server) Create(sp FilterSpec) (string, error) {
	sp = sp.withDefaults()
	f, mdl, err := s.buildFilter(sp)
	if err != nil {
		return "", err
	}
	return s.install(sp, f, mdl)
}

// install registers a constructed session under a fresh id.
func (s *Server) install(sp FilterSpec, f *filter.Parallel, mdl model.Model) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return "", ErrTooManySessions
	}
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	s.sessions[id] = newSession(id, sp, f, mdl)
	return id, nil
}

// lookup fetches a live session.
func (s *Server) lookup(id string) (*Session, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sess, ok := s.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return sess, nil
}

// StepResult is one successful Step's output.
type StepResult struct {
	// Step is the session's step index after this observation.
	Step int `json:"step"`
	// State is the estimated state vector.
	State []float64 `json:"state"`
	// LogWeight is the winning particle's unnormalized log-weight
	// (max-weight estimator; 0 for weighted-mean).
	LogWeight float64 `json:"log_weight"`
}

// Step advances session id by one observation: control u (may be nil for
// uncontrolled models) and measurement z. Steps of one session are
// serialized in arrival order; steps of different sessions are coalesced
// by the batching scheduler. Returns *SaturatedError when the admission
// queue is full.
func (s *Server) Step(id string, u, z []float64) (StepResult, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return StepResult{}, err
	}
	if len(z) != sess.mdl.MeasurementDim() {
		return StepResult{}, fmt.Errorf("serve: measurement has %d values, model %q needs %d",
			len(z), sess.spec.Model, sess.mdl.MeasurementDim())
	}
	if cd := sess.mdl.ControlDim(); len(u) != cd && !(u == nil && cd == 0) {
		return StepResult{}, fmt.Errorf("serve: control has %d values, model %q needs %d",
			len(u), sess.spec.Model, cd)
	}
	start := time.Now()

	// Serialize this session's steps: the filter is a strictly ordered
	// Markov recursion, so a session admits one in-flight step at a time.
	sess.stepMu.Lock()
	defer sess.stepMu.Unlock()
	if sess.isClosed() {
		return StepResult{}, ErrNotFound
	}

	req := &stepReq{sess: sess, u: u, z: z, done: make(chan stepResult, 1)}
	select {
	case s.queue <- req:
	default:
		// Bounded admission: reject, never queue unboundedly.
		s.rejected.Add(1)
		return StepResult{}, &SaturatedError{RetryAfter: s.cfg.RetryAfter}
	}
	select {
	case res := <-req.done:
		if res.err != nil {
			return StepResult{}, res.err
		}
		sess.recordStep(res.est, time.Since(start))
		return StepResult{Step: res.step, State: res.est.State, LogWeight: res.est.LogWeight}, nil
	case <-s.quit:
		return StepResult{}, ErrClosed
	}
}

// Estimate returns the session's latest estimate without stepping (zero
// State before the first step).
func (s *Server) Estimate(id string) (StepResult, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return StepResult{}, err
	}
	return sess.lastResult(), nil
}

// Close tears down one session. In-flight steps finish first (Close
// waits for the session's step lock).
func (s *Server) Close(id string) error {
	sess, err := s.lookup(id)
	if err != nil {
		return err
	}
	sess.stepMu.Lock()
	sess.markClosed()
	sess.stepMu.Unlock()
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	return nil
}

// Sessions returns the live session ids, sorted.
func (s *Server) Sessions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Shutdown stops the scheduler and fails pending steps with ErrClosed.
// Sessions become unreachable; Shutdown is idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	<-s.done
}
