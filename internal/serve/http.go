package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

// NewHandler exposes a Server as a JSON-over-HTTP API (stdlib only):
//
//	POST   /v1/sessions                 {"spec": FilterSpec}        → {"id": ...}
//	GET    /v1/sessions                                             → {"sessions": [ids]}
//	GET    /v1/sessions/{id}                                        → last estimate
//	POST   /v1/sessions/{id}/step       {"u": [...], "z": [...]}    → StepResult
//	DELETE /v1/sessions/{id}                                        → 204
//	GET    /v1/sessions/{id}/checkpoint                             → Checkpoint
//	POST   /v1/restore                  Checkpoint                  → {"id": ...}
//	GET    /metrics                                                 → Stats (JSON); Prometheus text with
//	                                                                  ?format=prometheus or an Accept header
//	                                                                  preferring text/plain
//	GET    /trace                                                   → drain recorded spans (Chrome trace JSON;
//	                                                                  ?format=raw for the wire format)
//	POST   /trace                       {"enabled": bool}           → toggle span recording
//	GET    /logz                                                    → drain structured log ring (JSON lines)
//	POST   /logz                        {"level": "debug"|...}      → set log level
//	GET    /healthz                                                 → 200 while up (body carries the build string)
//	GET    /readyz                                                  → 200 admitting, 503 draining/closed
//
// A W3C traceparent request header is parsed into the request context,
// so a step propagated from the router joins the caller's trace; without
// one a fresh trace ID is minted per step when tracing is enabled.
//
// Step requests run under the request context: a client disconnect or
// deadline cancels a still-queued step (the scheduler skips it without
// executing), surfacing as 499 (client closed request) or 504.
//
// Saturation maps to 429 with a Retry-After header (the adaptive
// admission hint, rounded up to whole seconds per RFC 9110, and in
// milliseconds — clamped to ≥ 1 so clients never busy-spin — in a
// Retry-After-Ms header); draining to 503 with the same headers;
// unknown sessions to 404; invalid specs and malformed bodies to 400.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Spec FilterSpec `json:"spec"`
		}
		if !readJSON(w, r, &body) {
			return
		}
		id, err := s.Create(body.Spec)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": s.Sessions()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Estimate(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sanitizeResult(res))
	})
	mux.HandleFunc("POST /v1/sessions/{id}/step", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			U []float64 `json:"u"`
			Z []float64 `json:"z"`
		}
		if !readJSON(w, r, &body) {
			return
		}
		ctx := r.Context()
		if tc, ok := telemetry.ParseTraceParent(r.Header.Get(telemetry.TraceHeader)); ok {
			ctx = telemetry.ContextWithTrace(ctx, tc)
		}
		res, err := s.StepCtx(ctx, r.PathValue("id"), body.U, body.Z)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sanitizeResult(res))
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Close(r.PathValue("id")); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		cp, err := s.Checkpoint(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, cp)
	})
	mux.HandleFunc("POST /v1/restore", func(w http.ResponseWriter, r *http.Request) {
		var cp Checkpoint
		if !readJSON(w, r, &cp) {
			return
		}
		id, err := s.Restore(&cp)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if telemetry.WantsPrometheus(r) {
			s.reg.ServePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("/trace", telemetry.TraceHandler(s.tracer))
	mux.Handle("/logz", tlog.Handler(s.log))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "build": telemetry.BuildString()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			// "closed" wins over "draining": the graceful path drains
			// first and shuts down after, and probes care about the
			// terminal state.
			status := "closed"
			if s.Draining() && !s.stopped() {
				status = "draining"
			}
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": status})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// stepReply is StepResult with the log-weight JSON-safe: encoding/json
// rejects ±Inf/NaN, and a just-created or fully degenerate session has
// LogWeight == -Inf. The bits field is always exact.
type stepReply struct {
	Step          int       `json:"step"`
	State         []float64 `json:"state"`
	LogWeight     *float64  `json:"log_weight,omitempty"`
	LogWeightBits uint64    `json:"log_weight_bits"`
}

func sanitizeResult(res StepResult) stepReply {
	out := stepReply{
		Step:          res.Step,
		State:         res.State,
		LogWeightBits: math.Float64bits(res.LogWeight),
	}
	if !math.IsInf(res.LogWeight, 0) && !math.IsNaN(res.LogWeight) {
		lw := res.LogWeight
		out.LogWeight = &lw
	}
	return out
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the step was delivered. The response body is
// unlikely to be read; the code exists for access logs and middleware.
const statusClientClosedRequest = 499

func httpError(w http.ResponseWriter, err error) {
	var sat *SaturatedError
	switch {
	case errors.As(err, &sat):
		secs := int64(sat.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		ms := sat.RetryAfter.Milliseconds()
		if ms < 1 {
			// A sub-millisecond hint truncates to 0, which tells
			// clients to retry immediately in a hot loop.
			ms = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("Retry-After-Ms", strconv.FormatInt(ms, 10))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, context.Canceled):
		writeJSON(w, statusClientClosedRequest, map[string]string{"error": err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrTooManySessions):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}
