package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// testModels is the registry used across the tests: the UNGM benchmark
// plus a deliberately slow variant for saturation tests.
func testModels() map[string]ModelFactory {
	return map[string]ModelFactory{
		"ungm": func() (model.Model, error) { return model.NewUNGM(), nil },
		"slow-ungm": func() (model.Model, error) {
			return slowModel{Model: model.NewUNGM(), delay: 200 * time.Microsecond}, nil
		},
	}
}

// slowModel delays each propagation, so a step occupies the device long
// enough for the admission queue to fill under concurrent load.
type slowModel struct {
	model.Model
	delay time.Duration
}

func (m slowModel) Step(dst, src, u []float64, k int, r *rng.Rand) {
	time.Sleep(m.delay)
	m.Model.Step(dst, src, u, k, r)
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg, testModels())
	t.Cleanup(s.Shutdown)
	return s
}

// refFilter builds the sequential reference for a spec: the same filter
// on a private device, stepped without batching.
func refFilter(t testing.TB, sp FilterSpec) *filter.Parallel {
	t.Helper()
	sp = sp.withDefaults()
	scheme, err := exchange.SchemeByName(sp.ExchangeScheme)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
	f, err := filter.NewParallel(dev, model.NewUNGM(), filter.ParallelConfig{
		SubFilters:    sp.SubFilters,
		ParticlesPer:  sp.ParticlesPer,
		Scheme:        scheme,
		ExchangeCount: sp.ExchangeCount,
	}, sp.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// obs returns session i's deterministic synthetic measurement at step k.
func obs(i, k int) []float64 {
	return []float64{10 * math.Sin(float64(k)*0.3+float64(i))}
}

func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 8, ParticlesPer: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := refFilter(t, FilterSpec{Model: "ungm", SubFilters: 8, ParticlesPer: 32, Seed: 5})
	for k := 1; k <= 20; k++ {
		z := obs(0, k)
		got, err := s.Step(id, nil, z)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Step(nil, z)
		if got.Step != k {
			t.Fatalf("step index %d, want %d", got.Step, k)
		}
		if got.State[0] != want.State[0] || got.LogWeight != want.LogWeight {
			t.Fatalf("step %d: served estimate (%v, %v) != reference (%v, %v)",
				k, got.State[0], got.LogWeight, want.State[0], want.LogWeight)
		}
	}
	est, err := s.Estimate(id)
	if err != nil {
		t.Fatal(err)
	}
	if est.Step != 20 {
		t.Fatalf("estimate step %d, want 20", est.Step)
	}
	if err := s.Close(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id, nil, obs(0, 21)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("step after close: %v, want ErrNotFound", err)
	}
}

func TestCreateValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	bad := []FilterSpec{
		{Model: "no-such-model"},
		{Model: "ungm", Resampler: "bogus"},
		{Model: "ungm", ExchangeScheme: "bogus"},
		{Model: "ungm", Policy: "bogus"},
		{Model: "ungm", Streams: "bogus"},
		{Model: "ungm", Estimator: "bogus"},
		{Model: "ungm", SubFilters: 4, ParticlesPer: 2, ExchangeCount: 3},
	}
	for i, sp := range bad {
		if _, err := s.Create(sp); err == nil {
			t.Errorf("spec %d accepted: %+v", i, sp)
		}
	}
	if got := len(s.Sessions()); got != 0 {
		t.Fatalf("%d sessions leaked from failed creates", got)
	}
}

func TestStepValidatesDims(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id, nil, []float64{1, 2}); err == nil {
		t.Fatal("oversized measurement accepted")
	}
	if _, err := s.Step(id, []float64{1}, []float64{0}); err == nil {
		t.Fatal("control for uncontrolled model accepted")
	}
}

// TestConcurrentSessionsMatchReferences is the core serving guarantee:
// many sessions stepped concurrently — and so coalesced into shared
// batched launches — produce exactly the estimates each filter would
// produce alone.
func TestConcurrentSessionsMatchReferences(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	const sessions = 9
	const steps = 25
	ids := make([]string, sessions)
	for i := range ids {
		var err error
		ids[i], err = s.Create(FilterSpec{Model: "ungm", SubFilters: 8, ParticlesPer: 32, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref := refFilter(t, FilterSpec{Model: "ungm", SubFilters: 8, ParticlesPer: 32, Seed: uint64(i + 1)})
			for k := 1; k <= steps; k++ {
				z := obs(i, k)
				var got StepResult
				for {
					var err error
					got, err = s.Step(ids[i], nil, z)
					if err == nil {
						break
					}
					var sat *SaturatedError
					if errors.As(err, &sat) {
						time.Sleep(sat.RetryAfter)
						continue
					}
					errs <- fmt.Errorf("session %d step %d: %w", i, k, err)
					return
				}
				want := ref.Step(nil, z)
				if got.State[0] != want.State[0] || got.LogWeight != want.LogWeight {
					errs <- fmt.Errorf("session %d step %d: (%v,%v) != reference (%v,%v)",
						i, k, got.State[0], got.LogWeight, want.State[0], want.LogWeight)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.BatchedSteps != sessions*steps {
		t.Fatalf("scheduler stepped %d, want %d", st.BatchedSteps, sessions*steps)
	}
	if st.Batches == 0 || st.MeanBatch < 1 {
		t.Fatalf("implausible batch stats: %+v", st)
	}
	t.Logf("mean batch size %.2f over %d batches", st.MeanBatch, st.Batches)
}

// TestSaturationBackpressure drives a tiny admission queue far past
// capacity and requires (a) rejects with a retry hint rather than
// unbounded queue growth, and (b) full recovery: after backoff every
// session completes its steps.
func TestSaturationBackpressure(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:     2,
		QueueDepth:  2,
		MaxBatch:    2,
		BatchWindow: 50 * time.Microsecond,
		RetryAfter:  time.Millisecond,
	})
	const sessions = 12
	ids := make([]string, sessions)
	for i := range ids {
		var err error
		ids[i], err = s.Create(FilterSpec{Model: "slow-ungm", SubFilters: 4, ParticlesPer: 32, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var saturated, completed int64
	var mu sync.Mutex
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 1; k <= 6; k++ {
				for {
					_, err := s.Step(ids[i], nil, obs(i, k))
					if err == nil {
						mu.Lock()
						completed++
						mu.Unlock()
						break
					}
					var sat *SaturatedError
					if !errors.As(err, &sat) {
						t.Errorf("session %d: unexpected error %v", i, err)
						return
					}
					if sat.RetryAfter <= 0 {
						t.Errorf("saturation without retry hint")
						return
					}
					mu.Lock()
					saturated++
					mu.Unlock()
					time.Sleep(sat.RetryAfter)
				}
			}
		}(i)
	}
	wg.Wait()
	if completed != sessions*6 {
		t.Fatalf("completed %d steps, want %d", completed, sessions*6)
	}
	if saturated == 0 {
		t.Fatal("queue of depth 2 under 12 concurrent slow sessions never saturated")
	}
	st := s.Stats()
	if st.Rejected != saturated {
		t.Fatalf("stats count %d rejects, clients saw %d", st.Rejected, saturated)
	}
	t.Logf("%d steps completed, %d rejects shed", completed, saturated)
}

func TestSessionLimit(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxSessions: 3})
	for i := 0; i < 3; i++ {
		if _, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 2, ParticlesPer: 8, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 2, ParticlesPer: 8, Seed: 1}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("4th create: %v, want ErrTooManySessions", err)
	}
	ids := s.Sessions()
	if err := s.Close(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 2, ParticlesPer: 8, Seed: 1}); err != nil {
		t.Fatalf("create after close: %v", err)
	}
}

func TestShutdown(t *testing.T) {
	s := NewServer(Config{Workers: 2}, testModels())
	id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 2, ParticlesPer: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	s.Shutdown() // idempotent
	if _, err := s.Step(id, nil, []float64{0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("step after shutdown: %v, want ErrClosed", err)
	}
	if _, err := s.Create(FilterSpec{Model: "ungm"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after shutdown: %v, want ErrClosed", err)
	}
}

func TestStatsIntrospection(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		if _, err := s.Step(id, nil, obs(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Sessions) != 1 || st.Sessions[0].ID != id {
		t.Fatalf("sessions: %+v", st.Sessions)
	}
	sess := st.Sessions[0]
	if sess.Steps != 5 || sess.Latency.Count != 5 {
		t.Fatalf("session stats: %+v", sess)
	}
	var bucketTotal int64
	for _, b := range sess.Latency.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 5 {
		t.Fatalf("histogram buckets sum to %d, want 5", bucketTotal)
	}
	if st.QueueCap != 128 {
		t.Fatalf("queue cap %d, want default 128", st.QueueCap)
	}
	// The shared device profiler must expose the six kernels' breakdown.
	names := map[string]bool{}
	for _, k := range st.Device.Kernels {
		names[k.Name] = true
	}
	for _, want := range []string{"rand", "sampling", "local sort", "global estimate", "exchange", "resampling"} {
		if !names[want] {
			t.Fatalf("kernel %q missing from device stats %v", want, names)
		}
	}
	if st.Device.TotalElapsed <= 0 {
		t.Fatalf("device total elapsed %v", st.Device.TotalElapsed)
	}
}
