package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"esthera/internal/telemetry"
)

// scrape GETs url and returns body and content type. Errors are
// reported with Errorf (not Fatal) so it is safe from the concurrent
// scraper goroutine in TestConcurrentScrapeUnderLoad.
func scrape(t *testing.T, url, accept string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Errorf("scrape %s: %v", url, err)
		return "", ""
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Errorf("scrape %s: %v", url, err)
		return "", ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("scrape %s: %v", url, err)
		return "", ""
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
		return "", ""
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestMetricsContentNegotiation pins the /metrics format selection: the
// default stays the JSON Stats payload (backward compatible), the query
// parameter and Accept header select Prometheus text, and the
// Prometheus body passes the exposition-format lint.
func TestMetricsContentNegotiation(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2})
	id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if _, err := s.Step(id, nil, obs(0, k)); err != nil {
			t.Fatal(err)
		}
	}

	body, ctype := scrape(t, ts.URL+"/metrics", "")
	if !strings.Contains(ctype, "application/json") || !strings.Contains(body, "\"sessions\"") {
		t.Fatalf("default scrape not JSON Stats: %s %q", ctype, body[:min(len(body), 120)])
	}

	for _, variant := range []struct{ url, accept string }{
		{ts.URL + "/metrics?format=prometheus", ""},
		{ts.URL + "/metrics", "text/plain"},
	} {
		body, ctype := scrape(t, variant.url, variant.accept)
		if ctype != telemetry.PrometheusContentType {
			t.Fatalf("prometheus scrape content type %q", ctype)
		}
		if err := telemetry.LintPrometheus(strings.NewReader(body)); err != nil {
			t.Fatalf("prometheus lint: %v\n%s", err, body)
		}
		for _, want := range []string{
			"esthera_serve_batches_total",
			"esthera_session_steps_total{session=\"" + id + "\"}",
			"esthera_step_latency_seconds_bucket",
			"esthera_kernel_launches_total",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("prometheus scrape missing %s", want)
			}
		}
	}
}

// TestESSGaugePerSessionUpdates is the filter-health acceptance test:
// ESS and weight-degeneracy gauges appear per session and track the
// advancing rounds.
func TestESSGaugePerSessionUpdates(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2})
	ids := make([]string, 2)
	for i := range ids {
		id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	step := func(rounds int) {
		for k := 1; k <= rounds; k++ {
			for i, id := range ids {
				if _, err := s.Step(id, nil, obs(i, k)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	gauge := func(body, name, id string) (float64, bool) {
		prefix := fmt.Sprintf("%s{session=%q} ", name, id)
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, prefix) {
				var v float64
				if _, err := fmt.Sscanf(line[len(prefix):], "%g", &v); err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				return v, true
			}
		}
		return 0, false
	}

	step(4)
	body1, _ := scrape(t, ts.URL+"/metrics?format=prometheus", "")
	step(3)
	body2, _ := scrape(t, ts.URL+"/metrics?format=prometheus", "")

	for _, id := range ids {
		ess, ok := gauge(body1, "esthera_filter_ess", id)
		if !ok {
			t.Fatalf("no esthera_filter_ess for %s:\n%s", id, body1)
		}
		if ess <= 0 || ess > 4*16 {
			t.Errorf("%s: ESS %v out of (0, 64]", id, ess)
		}
		if frac, ok := gauge(body1, "esthera_filter_ess_frac", id); !ok || frac <= 0 || frac > 1 {
			t.Errorf("%s: ess_frac %v ok=%v, want in (0, 1]", id, frac, ok)
		}
		if ratio, ok := gauge(body1, "esthera_filter_max_weight_ratio", id); !ok || ratio < 1 {
			t.Errorf("%s: max_weight_ratio %v ok=%v, want >= 1", id, ratio, ok)
		}
		r1, ok1 := gauge(body1, "esthera_filter_health_round", id)
		r2, ok2 := gauge(body2, "esthera_filter_health_round", id)
		if !ok1 || !ok2 || r2 <= r1 {
			t.Errorf("%s: health round did not advance across scrapes: %v -> %v", id, r1, r2)
		}
	}
}

// TestConcurrentScrapeUnderLoad hammers /metrics (both formats) and
// /trace while sessions step concurrently — run under -race, this is
// the data-race acceptance test for the whole exposition path.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 4, Trace: true})
	ids := make([]string, 3)
	for i := range ids {
		id, err := s.Create(FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 16, Seed: uint64(i + 9)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	const rounds = 30
	var steppers sync.WaitGroup
	for i, id := range ids {
		steppers.Add(1)
		go func(i int, id string) {
			defer steppers.Done()
			for k := 1; k <= rounds; k++ {
				if _, err := s.Step(id, nil, obs(i, k)); err != nil {
					t.Errorf("step %s: %v", id, err)
					return
				}
			}
		}(i, id)
	}

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			switch n % 4 {
			case 0:
				body, _ := scrape(t, ts.URL+"/metrics?format=prometheus", "")
				if err := telemetry.LintPrometheus(strings.NewReader(body)); err != nil {
					t.Errorf("prometheus lint under load: %v", err)
					return
				}
			case 1:
				scrape(t, ts.URL+"/metrics", "")
			case 2:
				scrape(t, ts.URL+"/trace", "")
			case 3:
				resp, err := http.Post(ts.URL+"/trace", "application/json",
					bytes.NewReader([]byte(`{"enabled":true}`)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}
	}()

	steppers.Wait()
	close(stop)
	scraper.Wait()

	for _, id := range ids {
		res, err := s.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Step != rounds {
			t.Errorf("%s at step %d, want %d", id, res.Step, rounds)
		}
	}
}
