package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientHonorsRetryAfterMs checks the client retries 429 replies
// and prefers the millisecond hint over the coarse whole-second header.
func TestClientHonorsRetryAfterMs(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1") // 1s — must NOT be used
			w.Header().Set("Retry-After-Ms", "5")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		json.NewEncoder(w).Encode(stepReply{
			Step: 7, State: []float64{1.5}, LogWeightBits: math.Float64bits(-2.25),
		})
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{BaseURL: ts.URL})
	start := time.Now()
	res, err := c.Step(context.Background(), "x", nil, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Step != 7 || res.State[0] != 1.5 || res.LogWeight != -2.25 {
		t.Fatalf("result %+v", res)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("%d attempts, want 3", n)
	}
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond {
		t.Fatalf("two 5ms waits finished in %v — Retry-After-Ms not honored", elapsed)
	}
	if elapsed > 900*time.Millisecond {
		t.Fatalf("%v elapsed — client used the 1s Retry-After instead of the ms hint", elapsed)
	}
}

// TestClientBackoffWithoutHint checks the doubling fallback schedule
// and the attempt bound when the server sends no Retry-After headers.
func TestClientBackoffWithoutHint(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{
		BaseURL:     ts.URL,
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	_, err := c.Step(context.Background(), "x", nil, []float64{0})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err %v, want APIError 503", err)
	}
	if apiErr.Message != "draining" {
		t.Fatalf("message %q", apiErr.Message)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("%d attempts, want MaxAttempts=4", n)
	}
}

// TestClientDoesNotRetryTerminalErrors: 404 fails immediately and maps
// onto ErrNotFound across the wire.
func TestClientDoesNotRetryTerminalErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such session"}`)
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{BaseURL: ts.URL})
	_, err := c.Step(context.Background(), "x", nil, []float64{0})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v, want ErrNotFound via errors.Is", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("%d attempts for a 404, want 1", n)
	}
}

// TestClientContextCancelsRetryWait: a context deadline interrupts the
// retry sleep rather than waiting out the server's hint.
func TestClientContextCancelsRetryWait(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After-Ms", "10000")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := NewClient(ClientConfig{BaseURL: ts.URL})
	start := time.Now()
	_, err := c.Step(ctx, "x", nil, []float64{0})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — client waited out the 10s hint", elapsed)
	}
}

// TestClientEndToEnd drives a saturating real server through the retry
// client: every 429 is absorbed transparently and every session still
// matches its sequential reference bit-for-bit.
func TestClientEndToEnd(t *testing.T) {
	s, ts := newHTTPServer(t, Config{
		Workers:     2,
		QueueDepth:  1,
		MaxBatch:    1,
		BatchWindow: 50 * time.Microsecond,
	})
	const sessions = 6
	const steps = 4
	// Depth-1 queue under 6-way contention: a single step can be shed
	// many times before admission, so give the client headroom.
	c := NewClient(ClientConfig{BaseURL: ts.URL, MaxAttempts: 200})
	ctx := context.Background()

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("ready: %v", err)
	}

	ids := make([]string, sessions)
	for i := range ids {
		id, err := c.Create(ctx, FilterSpec{
			Model: "slow-ungm", SubFilters: 4, ParticlesPer: 32, Seed: uint64(200 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref := refFilter(t, FilterSpec{Model: "ungm", SubFilters: 4, ParticlesPer: 32, Seed: uint64(200 + i)})
			for k := 1; k <= steps; k++ {
				z := obs(i, k)
				got, err := c.Step(ctx, ids[i], nil, z)
				if err != nil {
					errs <- fmt.Errorf("session %d step %d: %w", i, k, err)
					return
				}
				want := ref.Step(nil, z)
				if got.Step != k ||
					math.Float64bits(got.State[0]) != math.Float64bits(want.State[0]) ||
					math.Float64bits(got.LogWeight) != math.Float64bits(want.LogWeight) {
					errs <- fmt.Errorf("session %d step %d: %+v != reference %+v", i, k, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchedSteps != sessions*steps {
		t.Fatalf("batched steps %d, want %d", st.BatchedSteps, sessions*steps)
	}
	if s.rejected.Load() > 0 {
		t.Logf("client absorbed %d saturation rejections transparently", s.rejected.Load())
	}

	// Estimate and Close round-trip through the client too.
	est, err := c.Estimate(ctx, ids[0])
	if err != nil || est.Step != steps {
		t.Fatalf("estimate: %+v, %v", est, err)
	}
	if err := c.Close(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimate(ctx, ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("estimate after close: %v, want ErrNotFound", err)
	}
}
