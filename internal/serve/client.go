package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"esthera/internal/telemetry"
)

// ClientConfig shapes a Client.
type ClientConfig struct {
	// BaseURL is the server root, e.g. "http://tracker:8080".
	BaseURL string
	// HTTPClient is the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds the tries per call, including the first
	// (0 = 8). Only backpressure replies (429) and unavailability (503)
	// are retried; they guarantee the step was not applied.
	MaxAttempts int
	// BaseBackoff is the first retry's wait when the server supplies no
	// Retry-After hint (0 = 2ms); it doubles per retry up to MaxBackoff
	// (0 = 250ms). Server hints override the schedule.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	return c
}

// Client talks to a serve HTTP endpoint with exponential-backoff
// retries that honor the server's admission hints: a 429 or 503 reply
// is retried after the `Retry-After-Ms` (millisecond-exact) or
// `Retry-After` (whole seconds) header, falling back to doubling
// backoff when neither is present. Both statuses are sent before the
// step is admitted, so retrying can never double-apply an observation.
// Transport-level errors are NOT retried — a broken connection cannot
// prove the server didn't apply the step. All calls respect ctx.
type Client struct {
	cfg ClientConfig
}

// NewClient builds a client for the server at cfg.BaseURL.
func NewClient(cfg ClientConfig) *Client {
	return &Client{cfg: cfg.withDefaults()}
}

// APIError is a non-retryable (or retry-exhausted) non-2xx reply.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("serve client: status %d: %s", e.Status, e.Message)
}

// Is maps wire statuses back onto the server's sentinel errors, so
// errors.Is(err, ErrNotFound) works across the HTTP boundary.
func (e *APIError) Is(target error) bool {
	return target == ErrNotFound && e.Status == http.StatusNotFound
}

// Create builds a session from spec and returns its id.
func (c *Client) Create(ctx context.Context, spec FilterSpec) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/sessions", map[string]any{"spec": spec}, &out)
	return out.ID, err
}

// Step advances session id by one observation, retrying backpressure
// rejections with the server's own hints.
func (c *Client) Step(ctx context.Context, id string, u, z []float64) (StepResult, error) {
	var reply stepReply
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/step", map[string]any{"u": u, "z": z}, &reply)
	if err != nil {
		return StepResult{}, err
	}
	return reply.result(), nil
}

// Estimate returns the session's latest estimate without stepping.
func (c *Client) Estimate(ctx context.Context, id string) (StepResult, error) {
	var reply stepReply
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &reply)
	if err != nil {
		return StepResult{}, err
	}
	return reply.result(), nil
}

// Close tears down session id.
func (c *Client) Close(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Stats fetches the /metrics introspection snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &st)
	return st, err
}

// Ready probes /readyz: nil while the server admits new steps.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// result converts the wire reply to a StepResult; the bits field is the
// exact value (±Inf round-trips through it, which plain JSON forbids).
func (r stepReply) result() StepResult {
	return StepResult{Step: r.Step, State: r.State, LogWeight: math.Float64frombits(r.LogWeightBits)}
}

// do issues one API call with the retry policy described on Client.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	backoff := c.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, body)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if tc, ok := telemetry.TraceFromContext(ctx); ok {
			req.Header.Set(telemetry.TraceHeader, tc.HeaderValue())
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode < 300 {
			if out == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return nil
			}
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			return err
		}
		msg := readError(resp.Body)
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.cfg.MaxAttempts {
			resp.Body.Close()
			return &APIError{Status: resp.StatusCode, Message: msg}
		}
		wait := c.retryWait(resp.Header, &backoff)
		resp.Body.Close()
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// retryWait picks the next wait: the server's millisecond hint, its
// whole-second hint, or (absent both) the doubling backoff schedule.
func (c *Client) retryWait(h http.Header, backoff *time.Duration) time.Duration {
	if ms, err := strconv.ParseInt(h.Get("Retry-After-Ms"), 10, 64); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	if secs, err := strconv.ParseInt(h.Get("Retry-After"), 10, 64); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	wait := *backoff
	*backoff *= 2
	if *backoff > c.cfg.MaxBackoff {
		*backoff = c.cfg.MaxBackoff
	}
	return wait
}

// readError extracts the {"error": ...} body of a failed reply.
func readError(r io.Reader) string {
	var body struct {
		Error string `json:"error"`
	}
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || json.Unmarshal(raw, &body) != nil || body.Error == "" {
		return string(raw)
	}
	return body.Error
}
