package serve

import (
	"sort"

	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

// Observability accessors and the metrics collector unifying the
// serving layer's counters, per-session latency histograms, filter
// health and the device profile behind one registry gather.

// Tracer returns the server's span tracer. It is shared by the device
// (launch/phase spans), every session's pipeline (round spans) and the
// scheduler (batch/request spans), so one Drain yields the full
// cross-layer picture of a serving window.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Registry returns the server's metrics registry; a gather renders the
// same state as Stats() in Prometheus shape.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Logger returns the server's structured logger (ring-buffered,
// drained over /logz). Never nil.
func (s *Server) Logger() *tlog.Logger { return s.log }

// collectMetrics is the registry collector: it walks the same state Stats()
// publishes as JSON and emits it under stable esthera_* names.
func (s *Server) collectMetrics(e *telemetry.Emitter) {
	telemetry.CollectBuildInfo(e)
	s.sloStep.Collect(e, "step")
	e.Gauge("esthera_serve_ready", "1 while the server accepts steps.", b2f(s.Ready()))
	e.Gauge("esthera_serve_draining", "1 while a graceful drain is in progress.", b2f(s.draining.Load()))
	e.Gauge("esthera_serve_queue_depth", "Steps waiting in the admission queue.", float64(len(s.queue)))
	e.Gauge("esthera_serve_queue_cap", "Admission queue capacity.", float64(s.cfg.QueueDepth))
	e.Gauge("esthera_serve_inflight", "Admitted steps not yet delivered.", float64(s.inflight.Load()))
	e.Counter("esthera_serve_rejected_total", "Steps shed by admission control.", float64(s.rejected.Load()))
	e.Counter("esthera_serve_cancelled_total", "Steps abandoned by caller context while queued.", float64(s.cancelled.Load()))
	e.Counter("esthera_serve_skipped_total", "Abandoned steps dropped at delivery time.", float64(s.skipped.Load()))
	e.Counter("esthera_serve_batches_total", "Scheduler batches executed.", float64(s.batches.Load()))
	e.Counter("esthera_serve_batched_steps_total", "Steps executed across all batches.", float64(s.batchedSteps.Load()))
	e.Gauge("esthera_serve_batch_latency_seconds", "EWMA of batch execution latency.", float64(s.batchLatNS.Load())/1e9)
	e.Gauge("esthera_serve_retry_hint_seconds", "Back-off hint a saturated step would receive now.", s.retryHint().Seconds())
	e.Counter("esthera_trace_dropped_events_total", "Span events overwritten by tracer ring overflow.", float64(s.tracer.Dropped()))

	s.mu.RLock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	e.Gauge("esthera_serve_sessions", "Open sessions.", float64(len(sessions)))

	for _, sess := range sessions {
		sess.mu.Lock()
		steps := sess.steps
		cum, sum, n := sess.lat.promSnapshot()
		h := sess.health
		sess.mu.Unlock()

		e.Counter("esthera_session_steps_total", "Filtering steps executed, by session.",
			float64(steps), "session", sess.id)
		e.Histogram("esthera_step_latency_seconds", "End-to-end step latency (admission to delivery), by session.",
			latBoundsSeconds, cum, sum, n, "session", sess.id)
		if h.Round > 0 {
			e.Gauge("esthera_filter_ess", "Effective sample size at the last health sample.",
				h.ESS, "session", sess.id)
			e.Gauge("esthera_filter_ess_frac", "ESS as a fraction of the particle count.",
				h.ESSFrac, "session", sess.id)
			e.Gauge("esthera_filter_max_weight_ratio", "Largest normalized weight times N (1 = uniform, N = degenerate).",
				h.MaxWeightRatio, "session", sess.id)
			e.Gauge("esthera_filter_resample_accept_ratio", "Fraction of groups the resampling policy fired for last round.",
				h.ResampleAccept, "session", sess.id)
			e.Gauge("esthera_filter_health_round", "Round the health sample was taken at.",
				float64(h.Round), "session", sess.id)
			e.Gauge("esthera_filter_non_finite_weights", "NaN/+Inf log-weights at the last health sample (poisoned filter indicator).",
				float64(h.NonFiniteWeights), "session", sess.id)
			if h.MaxWindow > 0 {
				e.Gauge("esthera_filter_min_window", "Smallest per-sub-filter particle window.",
					float64(h.MinWindow), "session", sess.id)
				e.Gauge("esthera_filter_max_window", "Largest per-sub-filter particle window.",
					float64(h.MaxWindow), "session", sess.id)
				e.Counter("esthera_filter_reallocations_total", "Adaptive-allocator window resizes applied.",
					float64(h.Reallocations), "session", sess.id)
			}
		}
	}

	s.dev.Profiler().Collect(e)
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
