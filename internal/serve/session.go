package serve

import (
	"math"
	"math/bits"
	"sync"
	"time"

	"esthera/internal/filter"
	"esthera/internal/model"
	"esthera/internal/platform"
	"esthera/internal/telemetry"
)

// Session is one tracked target: a filter plus serving bookkeeping.
type Session struct {
	id   string
	spec FilterSpec
	f    *filter.Parallel
	mdl  model.Model
	// cost is the predicted lane-op price of one fused round over this
	// session's shape, computed once at create time from the platform
	// cost model and stamped on every request (trace arg + histogram).
	cost int64

	// stepMu serializes this session's steps (and checkpoints and close)
	// in arrival order: the filter is a strictly ordered Markov
	// recursion, so one step may be in flight at a time. It is held
	// across the queue wait, which also guarantees a session never
	// appears twice in one scheduler batch.
	stepMu sync.Mutex

	// mu guards the mutable bookkeeping below (read by Stats while the
	// scheduler is stepping other sessions).
	mu      sync.Mutex
	closed  bool
	created time.Time
	steps   int64
	lastEst filter.Estimate
	lat     latencyHist
	// health is the pipeline's most recent stride-gated filter-health
	// sample, copied out after each step so Stats and the Prometheus
	// collector can read it without touching the filter.
	health telemetry.FilterHealth
}

func newSession(id string, sp FilterSpec, f *filter.Parallel, mdl model.Model) *Session {
	return &Session{
		id: id, spec: sp, f: f, mdl: mdl, created: time.Now(),
		cost: platform.EstimateRoundLaneOps(platform.RoundShape{
			SubFilters:    sp.SubFilters,
			ParticlesPer:  sp.ParticlesPer,
			StateDim:      mdl.StateDim(),
			ExchangeCount: sp.ExchangeCount,
		}),
		// No estimate exists before the first step: log-weight -Inf.
		lastEst: filter.Estimate{LogWeight: math.Inf(-1)},
	}
}

func (sess *Session) isClosed() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.closed
}

func (sess *Session) markClosed() {
	sess.mu.Lock()
	sess.closed = true
	sess.mu.Unlock()
}

func (sess *Session) recordStep(est filter.Estimate, d time.Duration) {
	sess.mu.Lock()
	sess.steps++
	sess.lastEst = est
	sess.lat.observe(d)
	sess.mu.Unlock()
}

func (sess *Session) setHealth(h telemetry.FilterHealth) {
	if h.Round == 0 {
		return // no sample taken yet (stride hasn't fired)
	}
	sess.mu.Lock()
	sess.health = h
	sess.mu.Unlock()
}

func (sess *Session) healthSample() telemetry.FilterHealth {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.health
}

// seedResult primes the bookkeeping of a restored session so Estimate
// and Stats reflect the checkpointed run.
func (sess *Session) seedResult(steps int64, est filter.Estimate) {
	sess.mu.Lock()
	sess.steps = steps
	sess.lastEst = est
	sess.mu.Unlock()
}

func (sess *Session) lastResult() StepResult {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	state := append([]float64(nil), sess.lastEst.State...)
	return StepResult{Step: int(sess.steps), State: state, LogWeight: sess.lastEst.LogWeight}
}

// latBuckets is the histogram resolution: bucket i counts steps whose
// end-to-end latency was < 2^i µs, so the histogram spans 1µs ..
// ~4s in powers of two — wide enough for an 8-byte-state session on a
// loaded box and cheap enough to publish on every introspection poll.
const latBuckets = 23

// latencyHist is a power-of-two latency histogram. Guarded by the
// session's mu.
type latencyHist struct {
	counts [latBuckets]int64
	n      int64
	sum    time.Duration
	max    time.Duration
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	b := bits.Len64(uint64(us)) // 0µs → bucket 0, 1µs → 1, 2-3µs → 2, ...
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.counts[b]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// LatencyBucket is one histogram bin: Count steps took < UpperUS µs
// (and at least the previous bucket's bound).
type LatencyBucket struct {
	UpperUS int64 `json:"le_us"`
	Count   int64 `json:"count"`
}

// LatencyStats is the publishable snapshot of a latency histogram.
type LatencyStats struct {
	Count   int64           `json:"count"`
	MeanUS  float64         `json:"mean_us"`
	MaxUS   int64           `json:"max_us"`
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

func (h *latencyHist) snapshot() LatencyStats {
	st := LatencyStats{Count: h.n, MaxUS: h.max.Microseconds()}
	if h.n > 0 {
		st.MeanUS = float64(h.sum.Microseconds()) / float64(h.n)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		st.Buckets = append(st.Buckets, LatencyBucket{UpperUS: 1 << i, Count: c})
	}
	return st
}

// latBoundsSeconds are the histogram bounds in seconds (2^i µs), shared
// by every session's Prometheus exposition so series stay comparable.
var latBoundsSeconds = func() []float64 {
	b := make([]float64, latBuckets)
	for i := range b {
		b[i] = float64(int64(1)<<i) / 1e6
	}
	return b
}()

// promSnapshot renders the histogram in Prometheus shape: cumulative
// counts over latBoundsSeconds plus a +Inf bucket, the observation sum
// in seconds, and the count. Caller holds the session's mu.
func (h *latencyHist) promSnapshot() (cum []int64, sum float64, n int64) {
	cum = make([]int64, latBuckets+1)
	var running int64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	cum[latBuckets] = h.n // +Inf
	return cum, h.sum.Seconds(), h.n
}
