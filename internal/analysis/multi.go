package analysis

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Main is the multichecker entry point backing cmd/esthera-vet: it
// loads the module's packages and applies the analyzer suite, printing
// findings in the go vet file:line:col format. Exit status follows the
// vet convention: 0 clean, 1 findings, 2 usage or load failure.
//
// Usage: esthera-vet [-list] [-run names] [-require paths] [-ratchet] [packages]
//
// The only package pattern supported is the module-wide sweep (./...,
// all, or no argument at all): the invariants are repository-wide, and
// partial runs would only invite partially-checked merges. -run
// restricts the sweep to a comma-separated subset of analyzers (the
// directive registry stays the full suite, so //esthera:allow names
// keep validating against every analyzer). -require names import paths
// (comma-separated) that MUST appear in the sweep: the run fails if one
// is absent, guarding against a package silently dropping out of
// coverage (a moved directory, a build-tag mistake). -ratchet
// recomputes scripts/bce_baseline.txt from the tree's current
// //esthera:hotpath bce functions instead of checking against it.
func Main(argv []string, stdout, stderr io.Writer, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("esthera-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	run := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	require := fs.String("require", "", "comma-separated import paths that must be covered by the sweep")
	ratchet := fs.Bool("ratchet", false, "recompute "+BCEBaselinePath+" from the current tree and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(stderr, "esthera-vet: unsupported package pattern %q (the suite always checks the whole module; use ./...)\n", arg)
			return 2
		}
	}

	active := analyzers
	if *run != "" {
		byName := make(map[string]*Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				names := make([]string, 0, len(analyzers))
				for _, a := range analyzers {
					names = append(names, a.Name)
				}
				fmt.Fprintf(stderr, "esthera-vet: unknown analyzer %q (registered: %s)\n", name, strings.Join(names, ", "))
				return 2
			}
			active = append(active, a)
		}
		if len(active) == 0 {
			fmt.Fprintf(stderr, "esthera-vet: -run selected no analyzers\n")
			return 2
		}
	}

	// The allow-directive registry always spans the FULL suite: a
	// -run subset must not make valid suppressions look like typos.
	cfg := &Config{Compiler: NewCompilerCache(), Known: KnownNames(analyzers)}

	if *ratchet {
		cfg.BCERecord = make(map[string]int)
		bce := []*Analyzer{}
		for _, a := range analyzers {
			if a.Name == "bce" {
				bce = append(bce, a)
			}
		}
		if len(bce) == 0 {
			fmt.Fprintf(stderr, "esthera-vet: -ratchet requires the bce analyzer in the suite\n")
			return 2
		}
		_, _, root, err := checkModule(".", bce, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "esthera-vet: %v\n", err)
			return 2
		}
		path := filepath.Join(root, filepath.FromSlash(BCEBaselinePath))
		if err := os.WriteFile(path, FormatBCEBaseline(cfg.BCERecord), 0o644); err != nil {
			fmt.Fprintf(stderr, "esthera-vet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "esthera-vet: wrote %d function entr(ies) to %s\n", len(cfg.BCERecord), BCEBaselinePath)
		return 0
	}

	diags, covered, _, err := checkModule(".", active, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "esthera-vet: %v\n", err)
		return 2
	}
	for _, p := range strings.Split(*require, ",") {
		if p = strings.TrimSpace(p); p != "" && !covered[p] {
			fmt.Fprintf(stderr, "esthera-vet: required package %q was not covered by the sweep\n", p)
			return 2
		}
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "esthera-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// CheckModule loads every package of the module containing dir and
// returns the combined diagnostics of the analyzers, sorted by
// position within each package. The run gets a fresh compiler cache
// and the BCE baseline from the module's scripts/bce_baseline.txt.
func CheckModule(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	cfg := &Config{Compiler: NewCompilerCache(), Known: KnownNames(analyzers)}
	diags, _, _, err := checkModule(dir, analyzers, cfg)
	return diags, err
}

// checkModule is CheckModule plus the set of package import paths the
// sweep covered (backing the -require coverage guard) and the module
// root. It loads the BCE ratchet baseline into cfg unless the caller
// already set one or asked for record mode.
func checkModule(dir string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, map[string]bool, string, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, nil, "", err
	}
	if cfg.BCEBaseline == nil && cfg.BCERecord == nil {
		baseline, err := LoadBCEBaseline(filepath.Join(loader.Root(), filepath.FromSlash(BCEBaselinePath)))
		if err != nil {
			return nil, nil, "", err
		}
		cfg.BCEBaseline = baseline
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, nil, "", err
	}
	covered := make(map[string]bool, len(pkgs))
	var out []Diagnostic
	for _, pkg := range pkgs {
		covered[pkg.Path] = true
		diags, err := RunAnalyzers(pkg, analyzers, false, cfg)
		if err != nil {
			return nil, nil, "", err
		}
		out = append(out, diags...)
	}
	return out, covered, loader.Root(), nil
}
