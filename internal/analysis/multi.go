package analysis

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Main is the multichecker entry point backing cmd/esthera-vet: it
// loads the module's packages and applies the analyzer suite, printing
// findings in the go vet file:line:col format. Exit status follows the
// vet convention: 0 clean, 1 findings, 2 usage or load failure.
//
// Usage: esthera-vet [-list] [-require paths] [packages]
//
// The only package pattern supported is the module-wide sweep (./...,
// all, or no argument at all): the invariants are repository-wide, and
// partial runs would only invite partially-checked merges. -require
// names import paths (comma-separated) that MUST appear in the sweep:
// the run fails if one is absent, guarding against a package silently
// dropping out of coverage (a moved directory, a build-tag mistake).
func Main(argv []string, stdout, stderr io.Writer, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("esthera-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	require := fs.String("require", "", "comma-separated import paths that must be covered by the sweep")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(stderr, "esthera-vet: unsupported package pattern %q (the suite always checks the whole module; use ./...)\n", arg)
			return 2
		}
	}
	diags, covered, err := checkModule(".", analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "esthera-vet: %v\n", err)
		return 2
	}
	for _, p := range strings.Split(*require, ",") {
		if p = strings.TrimSpace(p); p != "" && !covered[p] {
			fmt.Fprintf(stderr, "esthera-vet: required package %q was not covered by the sweep\n", p)
			return 2
		}
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "esthera-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// CheckModule loads every package of the module containing dir and
// returns the combined diagnostics of the analyzers, sorted by
// position within each package.
func CheckModule(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := checkModule(dir, analyzers)
	return diags, err
}

// checkModule is CheckModule plus the set of package import paths the
// sweep covered, backing the -require coverage guard.
func checkModule(dir string, analyzers []*Analyzer) ([]Diagnostic, map[string]bool, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, nil, err
	}
	covered := make(map[string]bool, len(pkgs))
	var out []Diagnostic
	for _, pkg := range pkgs {
		covered[pkg.Path] = true
		diags, err := RunAnalyzers(pkg, analyzers, false)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, diags...)
	}
	return out, covered, nil
}
