package analysis

import (
	"flag"
	"fmt"
	"io"
)

// Main is the multichecker entry point backing cmd/esthera-vet: it
// loads the module's packages and applies the analyzer suite, printing
// findings in the go vet file:line:col format. Exit status follows the
// vet convention: 0 clean, 1 findings, 2 usage or load failure.
//
// Usage: esthera-vet [-list] [packages]
//
// The only package pattern supported is the module-wide sweep (./...,
// all, or no argument at all): the invariants are repository-wide, and
// partial runs would only invite partially-checked merges.
func Main(argv []string, stdout, stderr io.Writer, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("esthera-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(stderr, "esthera-vet: unsupported package pattern %q (the suite always checks the whole module; use ./...)\n", arg)
			return 2
		}
	}
	diags, err := CheckModule(".", analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "esthera-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "esthera-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// CheckModule loads every package of the module containing dir and
// returns the combined diagnostics of the analyzers, sorted by
// position within each package.
func CheckModule(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers, false)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	return out, nil
}
