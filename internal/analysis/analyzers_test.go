package analysis_test

import (
	"path/filepath"
	"testing"

	"esthera/internal/analysis"
	"esthera/internal/analysis/analysistest"
)

// fixture returns the testdata directory of one fixture package.
func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNondeterminismFixtures(t *testing.T) {
	analysistest.Run(t, fixture("nondet"), analysis.NondeterminismAnalyzer)
}

func TestBarrierFixtures(t *testing.T) {
	analysistest.Run(t, fixture("barrier"), analysis.BarrierAnalyzer)
}

func TestFloatOrderFixtures(t *testing.T) {
	analysistest.Run(t, fixture("floatorder"), analysis.FloatOrderAnalyzer)
}

func TestCheckpointCompatFixtures(t *testing.T) {
	analysistest.Run(t, fixture("checkpoint"), analysis.CheckpointAnalyzer)
}

// The noalloc and bce fixtures need real compiler diagnostics: the
// harness shells out to `go build -gcflags=...` on the fixture package,
// which is too slow for -short.

func TestNoallocFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture package for escape diagnostics; skipped in -short")
	}
	analysistest.Run(t, fixture("noalloc"), analysis.NoallocAnalyzer)
}

func TestBCEFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture package for bounds-check diagnostics; skipped in -short")
	}
	analysistest.Run(t, fixture("bce"), analysis.BCEAnalyzer)
}

func TestDrawOrderFixtures(t *testing.T) {
	analysistest.Run(t, fixture("draworder"), analysis.DrawOrderAnalyzer)
}

func TestLockOrderFixtures(t *testing.T) {
	analysistest.Run(t, fixture("lockorder"), analysis.LockOrderAnalyzer)
}

func TestDirectiveFixtures(t *testing.T) {
	analysistest.Run(t, fixture("directive"), analysis.DirectiveAnalyzer)
}
