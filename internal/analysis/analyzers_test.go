package analysis_test

import (
	"path/filepath"
	"testing"

	"esthera/internal/analysis"
	"esthera/internal/analysis/analysistest"
)

// fixture returns the testdata directory of one fixture package.
func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNondeterminismFixtures(t *testing.T) {
	analysistest.Run(t, fixture("nondet"), analysis.NondeterminismAnalyzer)
}

func TestBarrierFixtures(t *testing.T) {
	analysistest.Run(t, fixture("barrier"), analysis.BarrierAnalyzer)
}

func TestFloatOrderFixtures(t *testing.T) {
	analysistest.Run(t, fixture("floatorder"), analysis.FloatOrderAnalyzer)
}

func TestCheckpointCompatFixtures(t *testing.T) {
	analysistest.Run(t, fixture("checkpoint"), analysis.CheckpointAnalyzer)
}
