package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// kernelPackages are the packages whose code runs (conceptually) on the
// device: every sub-filter round through them must replay bit-identically
// under a fixed seed, which is the property the golden-trace tests pin
// and the serve layer's checkpoint/restore contract depends on.
var kernelPackages = map[string]bool{
	"esthera/internal/kernels":  true,
	"esthera/internal/scan":     true,
	"esthera/internal/sortnet":  true,
	"esthera/internal/resample": true,
	"esthera/internal/exchange": true,
}

// NondeterminismAnalyzer flags nondeterminism sources inside kernel-side
// packages: wall-clock reads, the global math/rand generator (kernel
// randomness must come from esthera/internal/rng streams, which are
// seeded, per-sub-filter, and checkpointable), map iteration (random
// order), and goroutine-identity/scheduler probes.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc: "flag nondeterminism sources (time.Now, global math/rand, map iteration, " +
		"goroutine-identity probes) in kernel-side packages, whose rounds must " +
		"replay bit-identically under a fixed seed",
	Filter: func(pkgPath string) bool { return kernelPackages[pkgPath] },
	Run:    runNondeterminism,
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// sanctionedClockConsumers are packages kernel code may call even
// though they read the wall clock internally. esthera/internal/telemetry
// wraps the clock behind its tracer, writes only telemetry-side buffers,
// and never feeds time back into particle state or RNG consumption, so
// spans recorded through it leave rounds bit-identical (asserted by the
// golden-trace tests). Calls into a sanctioned consumer are the approved
// spelling for in-kernel timing; a direct time.Now next to them stays
// flagged.
var sanctionedClockConsumers = map[string]bool{
	"esthera/internal/telemetry": true,
	// The structured logger stamps entries with the wall clock but, like
	// the tracer, writes only its own ring buffer — log output never
	// feeds back into particle state, weights or RNG consumption.
	"esthera/internal/telemetry/log": true,
}

// goroutineProbes are runtime functions whose result depends on
// scheduler state or goroutine identity.
var goroutineProbes = map[string]bool{"NumGoroutine": true, "Stack": true, "Gosched": true}

func runNondeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"kernel code must not import %s: draw randomness from esthera/internal/rng streams, which are seeded per sub-filter and checkpointable", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgPath, ok := selectorPackage(pass, n)
				if !ok {
					return true
				}
				name := n.Sel.Name
				switch {
				case sanctionedClockConsumers[pkgPath]:
					// Explicitly allowed: the consumer owns the clock and
					// keeps it out of filter state.
					return true
				case pkgPath == "time" && clockFuncs[name]:
					pass.Reportf(n.Pos(),
						"nondeterministic clock read time.%s in kernel code: kernel rounds must replay bit-identically; record spans through esthera/internal/telemetry (a sanctioned clock consumer) or measure outside kernels (the device profiler already attributes per-phase cost)", name)
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && ast.IsExported(name):
					pass.Reportf(n.Pos(),
						"global %s.%s in kernel code: draw randomness from esthera/internal/rng streams, which are seeded per sub-filter and checkpointable", pkgPath, name)
				case pkgPath == "runtime" && goroutineProbes[name]:
					pass.Reportf(n.Pos(),
						"runtime.%s in kernel code depends on scheduler state or goroutine identity and is nondeterministic across runs", name)
				}
			case *ast.RangeStmt:
				if n.X == nil {
					return true
				}
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap && !isKeyCollection(n) {
					pass.Reportf(n.Pos(),
						"map iteration order is nondeterministic: kernel code must iterate sorted keys (or a deterministic slice) so rounds replay bit-identically")
				}
			}
			return true
		})
	}
	return nil
}

// isKeyCollection recognizes the one legal map range: collecting the
// keys for sorting, `for k := range m { keys = append(keys, k) }` —
// the body is a single append of the key, so the loop's effect is
// order-insensitive. Without this exception the analyzer's own advice
// ("iterate sorted keys") would be unwritable.
func isKeyCollection(rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// selectorPackage resolves sel's base identifier to an imported package
// and returns its path.
func selectorPackage(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
