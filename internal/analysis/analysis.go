// Package analysis is esthera's static-analysis suite: a set of custom
// analyzers that machine-check the determinism and work-group-safety
// invariants the distributed filter's correctness argument rests on
// (DESIGN.md "Static guarantees").
//
// The golden-trace tests prove three seeds replay bit-identically; the
// analyzers prove the *code shape* cannot drift into the failure modes
// those traces would only catch probabilistically: wall-clock reads and
// global PRNG use inside kernels, map iteration on estimate paths,
// cross-lane writes that silently break the barrier-phased work-group
// model, float reductions in nondeterministic order, and snapshot
// fields that would silently fall out of the checkpoint wire format.
//
// The framework mirrors the golang.org/x/tools go/analysis API surface
// (Analyzer, Pass, Diagnostic, an analysistest fixture harness) but is
// built purely on the standard library's go/ast + go/types, because the
// toolchain image carries no external modules. Analyzers are compiled
// into the cmd/esthera-vet multichecker and run by scripts/verify.sh.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, in the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //esthera:allow suppression comments.
	Name string
	// Doc is the one-paragraph description shown by esthera-vet -list.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
	// Filter restricts the analyzer to packages for which it returns
	// true (nil means every package). The analysistest harness ignores
	// it so fixtures exercise the check regardless of their path.
	Filter func(pkgPath string) bool
	// NeedsCompiler marks analyzers that consume compiler diagnostics
	// (escape analysis, BCE). When set, RunAnalyzers performs one
	// diagnostic build per package (memoized in Config.Compiler) and
	// exposes the findings through Pass.Escapes / Pass.Bounds. Such an
	// analyzer is skipped when the run has no compiler cache.
	NeedsCompiler bool
}

// Config carries run-wide state shared by every RunAnalyzers call of a
// sweep: the compiler-diagnostic cache, the valid-analyzer-name registry
// the directive analyzer validates suppressions against, and the BCE
// ratchet baseline.
type Config struct {
	// Compiler memoizes diagnostic builds; nil disables NeedsCompiler
	// analyzers for the run.
	Compiler *CompilerCache
	// Known is the set of analyzer names //esthera:allow may reference.
	// When nil, the directive analyzer falls back to the Suite registry.
	Known map[string]bool
	// BCEBaseline maps per-function keys ("pkg.(recv).name") to the
	// number of sanctioned per-element-loop bounds checks; functions
	// absent from the map have a budget of zero.
	BCEBaseline map[string]int
	// BCERecord, when non-nil, switches the bce analyzer into ratchet
	// mode: it records current loop-class counts here instead of
	// reporting, so the caller can rewrite the baseline file.
	BCERecord map[string]int
}

// Pass carries one package's syntax and type information to an analyzer,
// like go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory (absolute).
	Dir string
	// Config is the sweep-wide configuration (never nil inside Run).
	Config *Config
	// Escapes and Bounds hold the package's compiler diagnostics; they
	// are populated only for analyzers with NeedsCompiler set.
	Escapes []CompilerFinding
	Bounds  []CompilerFinding

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// allowDirective is the suppression comment prefix: a comment
// "//esthera:allow <analyzer> [rationale]" on the diagnostic's line or
// the line directly above it suppresses that analyzer's findings there.
// Suppressions are escape hatches for deliberate, reviewed exceptions
// (e.g. cost-model instrumentation a real device would not execute) and
// should carry a rationale.
const allowDirective = "esthera:allow"

// allowedLines returns, per analyzer name, the set of file lines on
// which its diagnostics are suppressed (the directive line and the line
// below it).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[string]map[int]bool {
	out := make(map[string]map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byFile := out[name]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					out[name] = byFile
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return out
}

// RunAnalyzers applies the analyzers to one loaded package (honoring
// each analyzer's package filter unless ignoreFilter is set, which the
// analysistest harness uses) and returns the surviving diagnostics
// sorted by position. cfg may be nil; NeedsCompiler analyzers then
// skip (no diagnostic builds without a cache to share them).
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, ignoreFilter bool, cfg *Config) ([]Diagnostic, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	var diags []Diagnostic
	allowed := allowedLines(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		if !ignoreFilter && a.Filter != nil && !a.Filter(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dir:       pkg.Dir,
			Config:    cfg,
			diags:     &diags,
		}
		if a.NeedsCompiler {
			if cfg.Compiler == nil {
				continue
			}
			cd, err := cfg.Compiler.Diags(pkg.Dir)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			pass.Escapes = cd.Escapes
			pass.Bounds = cd.Bounds
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if lines := allowed[d.Analyzer][d.Pos.Filename]; lines[d.Pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// Suite returns the full analyzer suite compiled into esthera-vet, in
// stable order. The meta-test asserts its size and registration. The
// first four are the PR 3 AST/type analyzers; noalloc and bce consume
// compiler diagnostics through the Config.Compiler harness; draworder
// and lockorder are the model-contract and concurrency analyzers; the
// directive analyzer validates the suppression/annotation comments the
// others rely on.
func Suite() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		BarrierAnalyzer,
		FloatOrderAnalyzer,
		CheckpointAnalyzer,
		NoallocAnalyzer,
		BCEAnalyzer,
		DrawOrderAnalyzer,
		LockOrderAnalyzer,
		DirectiveAnalyzer,
	}
}

// KnownNames returns the set of analyzer names //esthera:allow may
// legally reference: every analyzer in the given registry.
func KnownNames(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}
