package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer pins the serving stack's deadlock-freedom argument
// (the PR 4 scheduler races, the PR 6 migration protocol) statically:
//
//  1. it builds an intra-package lock-acquisition graph — node =
//     (struct type, mutex field), edge A→B = "B acquired while A is
//     held", including acquisitions reached transitively through
//     same-package calls — and flags every edge on a cycle;
//  2. it flags blocking channel sends made while a lock is held: the
//     send can park the goroutine for as long as the consumer takes,
//     extending the critical section unboundedly (the serve admission
//     path instead sends under select-with-default, which cannot block
//     and is exempt).
//
// The held-set tracking is a statement-order approximation: branch
// bodies are analyzed with a copy of the entry set (so an early
// return-after-unlock does not leak), defers keep the lock held to the
// end of the function, and Lock/RLock map to the same node (an RLock
// ordered against a Lock is still an ordering commitment). Distinct
// instances of one struct share a node, so cross-instance cycles
// through the same field are found too; re-acquiring the same node is
// deliberately NOT flagged (two different Sessions' mutexes are
// different runtime locks).
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "serve/shard mutex acquisitions must form a cycle-free order, and no blocking channel send may happen with a lock held",
	Run:  runLockOrder,
	Filter: func(path string) bool {
		return path == "esthera/internal/serve" || path == "esthera/internal/shard"
	},
}

// lockEdge is one "to acquired while holding from" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee name for transitive acquisitions, "" for direct
}

// lockState walks one function accumulating edges, sends-under-lock,
// and the set of nodes the function may acquire (for the transitive
// closure).
type lockState struct {
	pass     *Pass
	funcs    map[*types.Func]*ast.FuncDecl // same-package declarations
	acquires map[*types.Func]map[string]bool
	edges    []lockEdge
	sends    []lockEdge // from = held node, pos = send
}

func runLockOrder(pass *Pass) error {
	st := &lockState{
		pass:     pass,
		funcs:    make(map[*types.Func]*ast.FuncDecl),
		acquires: make(map[*types.Func]map[string]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				st.funcs[obj] = fn
			}
		}
	}

	// Fixpoint: acquires(f) = direct locks of f ∪ acquires(callees).
	for obj, fn := range st.funcs {
		st.acquires[obj] = st.directAcquires(fn)
	}
	for changed := true; changed; {
		changed = false
		for obj, fn := range st.funcs {
			for _, callee := range st.callees(fn) {
				for node := range st.acquires[callee] {
					if !st.acquires[obj][node] {
						st.acquires[obj][node] = true
						changed = true
					}
				}
			}
		}
	}

	for _, fn := range st.funcs {
		st.walkStmts(fn.Body.List, make(map[string]bool))
	}

	for _, s := range st.sends {
		st.pass.Reportf(s.pos, "blocking channel send while holding %s; a parked consumer extends the critical section unboundedly (use select with default, or send after unlocking)", s.from)
	}

	reportLockCycles(pass, st.edges)
	return nil
}

// reportLockCycles finds strongly-connected ordering violations in the
// edge list and reports each edge that participates in one.
func reportLockCycles(pass *Pass, edges []lockEdge) {
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	// reaches reports whether to is reachable from from.
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	reported := make(map[string]bool)
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		if e.from == e.to || !reaches(e.to, e.from) {
			continue
		}
		key := e.from + "→" + e.to
		if reported[key] {
			continue
		}
		reported[key] = true
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (through call to %s)", e.via)
		}
		pass.Reportf(e.pos, "lock order cycle: %s acquired while holding %s%s, but the reverse order also occurs; a deadlock needs only two goroutines interleaving", e.to, e.from, via)
	}
}

// directAcquires returns the nodes fn locks anywhere in its body.
func (st *lockState) directAcquires(fn *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if node, op := st.mutexOp(call); node != "" && (op == "Lock" || op == "RLock") {
				out[node] = true
			}
		}
		return true
	})
	return out
}

// callees returns the same-package functions fn calls.
func (st *lockState) callees(fn *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		default:
			return true
		}
		if obj, ok := st.pass.TypesInfo.Uses[id].(*types.Func); ok {
			if _, declared := st.funcs[obj]; declared {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// mutexOp recognizes a sync.Mutex/RWMutex method call and returns the
// lock node ("Type.field") plus the operation name.
func (st *lockState) mutexOp(call *ast.CallExpr) (node, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := st.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	return st.lockNode(sel.X), obj.Name()
}

// lockNode names the mutex a selector expression denotes: the owning
// named type plus field name ("Server.mu"), a package-level variable's
// name, or — as a fallback — the expression text position-independent
// enough to be stable within the package.
func (st *lockState) lockNode(e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		base := st.pass.TypesInfo.Types[x.X].Type
		if base != nil {
			if named := namedOf(base); named != "" {
				return named + "." + x.Sel.Name
			}
		}
		return st.lockNode(x.X) + "." + x.Sel.Name
	case *ast.Ident:
		if obj := st.pass.TypesInfo.Uses[x]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar && obj.Parent() == obj.Pkg().Scope() {
				return "var " + x.Name
			}
			if named := namedOf(obj.Type()); named != "" {
				return named + "." + x.Name
			}
		}
		return x.Name
	case *ast.IndexExpr:
		return st.lockNode(x.X) + "[]"
	}
	return "?"
}

// namedOf unwraps pointers and returns a type's base name, "" if the
// type is unnamed.
func namedOf(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// walkStmts processes a statement list in order, threading the held
// set. Branch bodies get a copy: the continuation conservatively keeps
// the pre-branch set (the early-return-after-unlock pattern stays
// clean; a branch that unlocks and falls through is over-approximated).
func (st *lockState) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		st.walkStmt(s, held)
	}
}

func (st *lockState) walkStmt(s ast.Stmt, held map[string]bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		st.walkExprStmt(x.X, held, false)
	case *ast.DeferStmt:
		if node, op := st.mutexOp(x.Call); node != "" {
			// defer Unlock: the lock stays held to function end — exactly
			// what the current held set already says. defer Lock is odd
			// enough to ignore.
			_ = op
			_ = node
			return
		}
		st.recordCall(x.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine has its own empty held set.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			st.walkStmts(lit.Body.List, make(map[string]bool))
		}
	case *ast.SendStmt:
		st.flagSend(x, held)
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			st.walkExprStmt(rhs, held, false)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			st.walkExprStmt(r, held, false)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			st.walkStmt(x.Init, held)
		}
		st.walkStmts(x.Body.List, copySet(held))
		if x.Else != nil {
			st.walkStmt(x.Else, copySet(held))
		}
	case *ast.BlockStmt:
		st.walkStmts(x.List, held)
	case *ast.ForStmt:
		st.walkStmts(x.Body.List, copySet(held))
	case *ast.RangeStmt:
		st.walkStmts(x.Body.List, copySet(held))
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.walkStmts(cc.Body, copySet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.walkStmts(cc.Body, copySet(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := comm.Comm.(*ast.SendStmt); ok && !selectHasDefault(x) {
				// A send case of a select without default can block.
				st.flagSend(send, held)
			}
			st.walkStmts(comm.Body, copySet(held))
		}
	case *ast.LabeledStmt:
		st.walkStmt(x.Stmt, held)
	}
}

// walkExprStmt handles expression-level effects: mutex ops mutate the
// held set, same-package calls contribute transitive edges, function
// literals are walked with the current held set (they run inline when
// called immediately; a stored closure's later locks are attributed to
// its eventual caller through the call graph, so walking here is the
// conservative union).
func (st *lockState) walkExprStmt(e ast.Expr, held map[string]bool, inDefer bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		if lit, ok := ast.Unparen(e).(*ast.FuncLit); ok {
			st.walkStmts(lit.Body.List, copySet(held))
		}
		return
	}
	if node, op := st.mutexOp(call); node != "" {
		switch op {
		case "Lock", "RLock":
			for h := range held {
				if h != node {
					st.edges = append(st.edges, lockEdge{from: h, to: node, pos: call.Pos()})
				}
			}
			held[node] = true
		case "Unlock", "RUnlock":
			delete(held, node)
		}
		return
	}
	for _, arg := range call.Args {
		st.walkExprStmt(arg, held, inDefer)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		st.walkStmts(lit.Body.List, held)
		return
	}
	st.recordCall(call, held)
}

// recordCall adds transitive edges for a same-package callee's
// acquisitions.
func (st *lockState) recordCall(call *ast.CallExpr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return
	}
	obj, ok := st.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	acq := st.acquires[obj]
	if acq == nil {
		return
	}
	name := obj.Name()
	for h := range held {
		for node := range acq {
			if h != node {
				st.edges = append(st.edges, lockEdge{from: h, to: node, pos: call.Pos(), via: name})
			}
		}
	}
}

// flagSend records a blocking send performed with locks held.
func (st *lockState) flagSend(s *ast.SendStmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	for h := range held {
		names = append(names, h)
	}
	sort.Strings(names)
	st.sends = append(st.sends, lockEdge{from: strings.Join(names, ", "), pos: s.Arrow})
}

// selectHasDefault reports whether a select statement has a default
// clause (making its communication cases non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// copySet clones a held set for branch-local mutation.
func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
