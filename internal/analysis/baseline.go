package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BCEBaselinePath is the baseline file's module-root-relative location.
const BCEBaselinePath = "scripts/bce_baseline.txt"

// LoadBCEBaseline parses a ratchet baseline file: one "<func-key>
// <count>" pair per line, '#' comments and blank lines ignored. A
// missing file is an empty baseline (zero budget everywhere), so a
// fresh checkout before the first ratchet run still works.
func LoadBCEBaseline(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]int{}, nil
		}
		return nil, err
	}
	defer f.Close()
	out := make(map[string]int)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("analysis: %s:%d: want \"<func-key> <count>\", got %q", path, lineNo, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("analysis: %s:%d: bad count %q", path, lineNo, fields[1])
		}
		out[fields[0]] = n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatBCEBaseline renders a baseline map in the canonical sorted form
// LoadBCEBaseline reads back.
func FormatBCEBaseline(m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("# BCE ratchet baseline: per-function sanctioned per-element-loop\n")
	buf.WriteString("# bounds-check counts for //esthera:hotpath bce functions. Audited\n")
	buf.WriteString("# residuals only (see DESIGN.md \"Static guarantees\"); refresh with\n")
	buf.WriteString("# `make vet-ratchet` after reviewed changes.\n")
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s %d\n", k, m[k])
	}
	return buf.Bytes()
}
