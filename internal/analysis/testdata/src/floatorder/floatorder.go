// Package floatorder seeds order-sensitive float reductions over
// unordered collections (flagged) and their deterministic counterparts
// (accepted).
package floatorder

import "sort"

// MapSum accumulates a float over a map range: bits change per run.
func MapSum(ws map[string]float64) float64 {
	sum := 0.0
	for _, w := range ws {
		sum += w // want `float accumulation inside range over map`
	}
	return sum
}

// MapProduct is order-sensitive too (rounding differs by order).
func MapProduct(ws map[int]float64) float64 {
	p := 1.0
	for _, w := range ws {
		p *= w // want `float accumulation inside range over map`
	}
	return p
}

// ChanSum accumulates over a channel: arrival order is scheduling.
func ChanSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum -= v // want `float accumulation inside range over channel`
	}
	return sum
}

// NestedSlice accumulates inside an ordered inner range whose outer
// range is a map: the outer order still scrambles the sum.
func NestedSlice(groups map[string][]float64) float64 {
	sum := 0.0
	for _, xs := range groups {
		for _, x := range xs {
			sum += x // want `float accumulation inside range over map`
		}
	}
	return sum
}

// IntCount is integer accumulation: associative, accepted.
func IntCount(ws map[string]float64) int {
	n := 0
	for range ws {
		n++
	}
	return n
}

// SliceSum accumulates over a slice: ordered, accepted.
func SliceSum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// SortedSum is the deterministic spelling for maps.
func SortedSum(ws map[string]float64) float64 {
	keys := make([]string, 0, len(ws))
	for k := range ws {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += ws[k]
	}
	return sum
}

// Allowed demonstrates the reviewed-exception escape hatch for sums
// that feed diagnostics only, never bit-compared outputs.
func Allowed(ws map[string]float64) float64 {
	sum := 0.0
	for _, w := range ws {
		//esthera:allow floatorder -- debug-logging total, never bit-compared
		sum += w
	}
	return sum
}
