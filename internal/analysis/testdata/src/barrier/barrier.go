// Package barrier seeds the lane-closure patterns the barrier analyzer
// must flag (captured-scalar writes, loop-variable writes, including
// through the reused-closure idiom) and the legal patterns it must
// accept (lane-indexed writes, closure locals, StepOne/StepSerial
// single-lane writes, host-side stage parameters).
package barrier

import "esthera/internal/device"

// state mimics the kernels' shared stage-parameter struct.
type state struct {
	stride  int
	visited int
	buf     []float64
}

// CapturedScalar accumulates into a captured variable across lanes.
func CapturedScalar(ctx device.Ctx, xs []float64) float64 {
	sum := 0.0
	ctx.Step(func(lane int) {
		sum += xs[lane] // want `writes captured variable sum`
	})
	return sum
}

// CapturedField writes a field of a captured struct across lanes.
func CapturedField(ctx device.Ctx, st *state) {
	ctx.StepSpan(func(lo, hi int) {
		for lane := lo; lane < hi; lane++ {
			st.visited++ // want `writes captured variable st`
		}
	})
}

// LoopVariable writes the enclosing loop's induction variable.
func LoopVariable(ctx device.Ctx, xs []float64) {
	for i := 0; i < len(xs); i++ {
		ctx.Step(func(lane int) {
			i = lane // want `writes enclosing loop variable i`
		})
	}
}

// ReusedClosure is the named-closure idiom: the literal is bound once
// and passed by identifier; the analyzer resolves and checks it.
func ReusedClosure(ctx device.Ctx, st *state) {
	body := func(lo, hi int) {
		st.visited++ // want `writes captured variable st`
	}
	for d := 1; d < 8; d <<= 1 {
		st.stride = d
		ctx.StepSpan(body)
	}
}

// VecCapturedScalar accumulates into a captured variable from a StepVec
// range body: the same cross-lane race as in a Step body, since the
// range [lo, hi) is one lane's share of the rows.
func VecCapturedScalar(ctx device.Ctx, xs []float64) float64 {
	sum := 0.0
	ctx.StepVec(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `writes captured variable sum`
		}
	})
	return sum
}

// VecCapturedField writes a field of a captured struct from a StepVec
// body.
func VecCapturedField(ctx device.Ctx, st *state) {
	ctx.StepVec(func(lo, hi int) {
		st.visited += hi - lo // want `writes captured variable st`
	})
}

// VecReusedClosure is the named-closure idiom under StepVec.
func VecReusedClosure(ctx device.Ctx, st *state) {
	body := func(lo, hi int) {
		st.visited++ // want `writes captured variable st`
	}
	for d := 1; d < 8; d <<= 1 {
		st.stride = d
		ctx.StepVec(body)
	}
}

// VecRowIndexed writes only rows [lo, hi) of SoA columns: the legal
// StepVec pattern.
func VecRowIndexed(ctx device.Ctx, dst, src [][]float64) {
	ctx.StepVec(func(lo, hi int) {
		d0, s0 := dst[0], src[0]
		for i := lo; i < hi; i++ {
			d0[i] = 2 * s0[i]
		}
	})
}

// VecLaneScratch accumulates into row-indexed scratch (one slot per
// row) instead of a shared scalar: legal.
func VecLaneScratch(ctx device.Ctx, hits []int, keys []float64) {
	ctx.StepVec(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keys[i] > 0 {
				hits[i]++
			}
		}
	})
}

// LaneIndexed writes through lane-indexed storage: the legal pattern.
func LaneIndexed(ctx device.Ctx, dst, src []float64) {
	ctx.Step(func(lane int) {
		dst[lane] = 2 * src[lane]
	})
}

// FieldIndexed writes lane-indexed storage reached through a captured
// struct: still legal.
func FieldIndexed(ctx device.Ctx, st *state) {
	ctx.StepSpan(func(lo, hi int) {
		for lane := lo; lane < hi; lane++ {
			st.buf[lane] = float64(lane)
		}
	})
}

// ClosureLocal writes locals declared inside the closure: legal.
func ClosureLocal(ctx device.Ctx, dst []float64) {
	ctx.StepSpan(func(lo, hi int) {
		for lane := lo; lane < hi; lane++ {
			acc := 0.0
			for i := 0; i < 4; i++ {
				acc += float64(i)
			}
			dst[lane] = acc
		}
	})
}

// SingleLane writes captured state from StepOne/StepSerial bodies,
// which run on one lane by contract (the "if (tid == 0)" idiom): legal.
func SingleLane(g *device.Group, ws []float64) float64 {
	total := 0.0
	g.StepOne(func() {
		for _, w := range ws {
			total += w
		}
	})
	return total
}

// HostStage updates stage parameters between steps (across the
// barrier) and only reads them inside the closure: legal.
func HostStage(ctx device.Ctx, st *state, buf []float64) {
	body := func(lo, hi int) {
		for lane := lo; lane < hi; lane++ {
			buf[lane] += float64(st.stride)
		}
	}
	for d := 1; d < 8; d <<= 1 {
		st.stride = d
		ctx.StepSpan(body)
	}
}

// Allowed demonstrates the reviewed-exception escape hatch.
func Allowed(ctx device.Ctx, xs []float64) int {
	n := 0
	ctx.Step(func(lane int) {
		//esthera:allow barrier -- sequential-simulation-only debug counter
		n++
	})
	return n
}
