package nondet

import (
	"time"

	tlog "esthera/internal/telemetry/log"
)

// LoggedRound is the approved spelling for in-kernel structured
// logging: esthera/internal/telemetry/log is a sanctioned clock
// consumer — it stamps entries internally but writes only its own ring
// buffer, never filter state. Nothing here is flagged.
func LoggedRound(l *tlog.Logger, k int64) {
	if l.Enabled(tlog.LevelDebug) {
		l.Debug("round", tlog.Int("k", k))
	}
}

// LoggedDuration passes a pre-measured duration through a log field;
// field constructors on the sanctioned package stay legal.
func LoggedDuration(l *tlog.Logger, d time.Duration) {
	l.Info("step", tlog.Dur("took", d))
}

// DirectClockBesideLogger shows the sanction does not bleed: a direct
// wall-clock read in kernel code is still flagged even when the result
// only feeds a log field.
func DirectClockBesideLogger(l *tlog.Logger) {
	start := time.Now() // want `nondeterministic clock read time\.Now`
	l.Info("step", tlog.Dur("took", time.Since(start))) // want `nondeterministic clock read time\.Since`
}
