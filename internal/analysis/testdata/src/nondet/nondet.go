// Package nondet seeds every nondeterminism pattern the analyzer must
// flag, plus the deterministic spellings it must accept.
package nondet

import (
	"math/rand" // want `kernel code must not import math/rand`
	"runtime"
	"sort"
	"time"
)

// Clock reads the wall clock inside kernel code.
func Clock() int64 {
	t := time.Now() // want `nondeterministic clock read time\.Now`
	return t.Unix()
}

// Elapsed measures durations inside kernel code.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `nondeterministic clock read time\.Since`
}

// GlobalRand draws from the global math/rand generator.
func GlobalRand() float64 {
	return rand.Float64() // want `global math/rand\.Float64 in kernel code`
}

// MapRange iterates a map in random order.
func MapRange(weights map[string]float64) float64 {
	sum := 0.0
	for _, w := range weights { // want `map iteration order is nondeterministic`
		sum += w
	}
	return sum
}

// GoroutineProbe depends on scheduler state.
func GoroutineProbe() int {
	return runtime.NumGoroutine() // want `runtime\.NumGoroutine in kernel code`
}

// SortedRange is the accepted spelling: collect keys (the one legal
// map range), sort, then iterate the slice.
func SortedRange(weights map[string]float64) float64 {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += weights[k]
	}
	return sum
}

// Allowed demonstrates the reviewed-exception escape hatch.
func Allowed(set map[int]bool) int {
	n := 0
	//esthera:allow nondeterminism -- membership count, order-insensitive
	for range set {
		n++
	}
	return n
}

// DurationArg uses the time package without reading the clock: types
// and constants are deterministic and stay legal.
func DurationArg(d time.Duration) bool {
	return d > time.Millisecond
}

// SliceRange iterates a slice: ordered, legal.
func SliceRange(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}
