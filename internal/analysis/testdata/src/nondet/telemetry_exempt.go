package nondet

import (
	"time"

	"esthera/internal/telemetry"
)

// TracedRound is the approved spelling for in-kernel timing: spans
// recorded through esthera/internal/telemetry, a sanctioned clock
// consumer. The tracer reads the clock internally but writes only
// telemetry-side buffers, so nothing here is flagged.
func TracedRound(tr *telemetry.Tracer, k int64) {
	sp := tr.Begin("filter", "round").Arg("k", k)
	defer sp.End()
}

// StampedEvent records a pre-measured event through the sanctioned
// consumer; calls on the telemetry package stay legal.
func StampedEvent(tr *telemetry.Tracer, at time.Time, d time.Duration) {
	ev := telemetry.Event{Name: "launch", Cat: "demo", TS: tr.Stamp(at), Dur: d}
	tr.Record(ev)
}

// DirectClockBesideTracer shows the sanction does not bleed: a direct
// wall-clock read in kernel code is still flagged even when the result
// only feeds the tracer.
func DirectClockBesideTracer(tr *telemetry.Tracer) {
	start := time.Now() // want `nondeterministic clock read time\.Now`
	sp := tr.Begin("filter", "round")
	_ = start
	sp.End()
}
