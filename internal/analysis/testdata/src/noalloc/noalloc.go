// Package noalloc exercises the noalloc analyzer: functions marked
// //esthera:hotpath noalloc must show no heap allocations under escape
// analysis, except through the device arena or an explicit allow.
package noalloc

import (
	"esthera/internal/device"
)

// Leaky is a marked hot function with a deliberate per-call heap
// allocation: the slice is returned, so it must escape.
//
//esthera:hotpath noalloc
func Leaky(dst []float64) []float64 {
	tmp := make([]float64, len(dst)) // want `heap allocation in //esthera:hotpath noalloc function Leaky`
	for i := range tmp {
		tmp[i] = dst[i] * 2
	}
	return tmp
}

// Unmarked allocates freely: no contract, no finding.
func Unmarked(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// ArenaUser requests scratch through the device arena; the grow-path
// make that inlines into this line is sanctioned.
//
//esthera:hotpath noalloc
func ArenaUser(g *device.Group, n int) int {
	idx := g.ScratchInt(n)
	s := 0
	for i := range idx {
		idx[i] = i
		s += idx[i]
	}
	return s
}

// Allowed escapes deliberately, with a reviewed suppression.
//
//esthera:hotpath noalloc
func Allowed(n int) []int {
	//esthera:allow noalloc fixture-sanctioned amortized growth
	out := make([]int, n)
	return out
}
