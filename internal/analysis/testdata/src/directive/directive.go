// Package directive exercises the directive analyzer: //esthera:allow
// must name a registered analyzer, and //esthera:hotpath must sit in a
// function's doc comment listing only known contracts.
package directive

//esthera:allow nosuchanalyzer reviewed long ago // want `unknown analyzer "nosuchanalyzer"`
var masked = 1

//esthera:allow barrier fixture rationale: a valid suppression is silent
var sanctioned = 2

//esthera:allow // want `names no analyzer`
var nameless = 3

// Frob declares a contract that no analyzer implements.
//
//esthera:hotpath nosuchcontract // want `unknown contract "nosuchcontract"`
func Frob() {}

// Empty forgot its contract list.
//
//esthera:hotpath // want `lists no contracts`
func Empty() {}

// Clean carries a well-formed directive.
//
//esthera:hotpath noalloc bce
func Clean() int {
	//esthera:hotpath noalloc // want `must appear in a function declaration's doc comment`
	return masked + sanctioned + nameless
}
