// Package checkpoint seeds snapshot-struct shapes: untagged exported
// fields (flagged — they would silently join or leave the wire format)
// and the explicit spellings the wire-format contract requires.
package checkpoint

// GoodSnapshot declares every exported field's wire fate explicitly.
type GoodSnapshot struct {
	Step  int       `json:"step"`
	X     []float64 `json:"-"` // serialized out of band (base64)
	state []byte    // unexported: never on the wire
}

// BadSnapshot has exported fields without wire tags.
type BadSnapshot struct {
	Step    int `json:"step"`
	Weights []float64 // want `exported field Weights of snapshot struct BadSnapshot has no json tag`
	Best    int       // want `exported field Best of snapshot struct BadSnapshot has no json tag`
}

// StreamState matches the State$ naming rule.
type StreamState struct {
	Kind  string   `json:"kind"`
	Words []uint32 // want `exported field Words of snapshot struct StreamState has no json tag`
}

// WireCheckpoint matches the Checkpoint$ naming rule.
type WireCheckpoint struct {
	Version int `json:"version"`
	Inner   GoodSnapshot // want `exported field Inner of snapshot struct WireCheckpoint has no json tag`
}

// EmbeddedSnapshot embeds without a tag: the embedded fields would
// flatten into the wire format implicitly.
type EmbeddedSnapshot struct {
	GoodSnapshot // want `embedded field of snapshot struct EmbeddedSnapshot has no json tag`
	Extra        int `json:"extra"`
}

// FramedMsg matches the Msg$ naming rule: transport control frames are
// a wire format too.
type FramedMsg struct {
	ID    string `json:"id"`
	Round int64  // want `exported field Round of snapshot struct FramedMsg has no json tag`
}

// BinaryMsg is hand-encoded into a raw frame: binary tags declare the
// wire fields just like json tags do.
type BinaryMsg struct {
	From int       `binary:"u32le"`
	Recs []float64 `binary:"f64le"`
}

// NotPersisted is not snapshot-named: untagged fields are fine here.
type NotPersisted struct {
	Cache   map[string]int
	Pending []float64
}

// AllowedSnapshot demonstrates the reviewed-exception escape hatch.
type AllowedSnapshot struct {
	Step int `json:"step"`
	//esthera:allow checkpointcompat -- scratch rebuilt on restore, never persisted
	Scratch []float64
}
