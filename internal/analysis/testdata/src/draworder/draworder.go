// Package draworder exercises the draw-order analyzer: vectorized
// model methods must use block rng draws, and their per-row draw count
// must match the paired scalar method.
package draworder

import "esthera/internal/rng"

// Skewed's StepVec requests one normal per row while the scalar Step
// consumes two: the replayed stream diverges after the first row.
type Skewed struct{}

func (m *Skewed) Step(dst, src, u []float64, k int, r *rng.Rand) {
	dst[0] = src[0] + r.Normal(0, 1)
	dst[1] = src[1] + r.Normal(0, 1)
}

func (m *Skewed) StepVec(dst, src [][]float64, u []float64, k int, r *rng.Rand) { // want `consumes 1 normal draw\(s\) per row but scalar Step consumes 2`
	n := len(dst[0])
	zs := r.Normals(n)
	for i := range zs {
		dst[0][i] = src[0][i] + zs[i]
		dst[1][i] = src[1][i]
	}
}

// Scalarized draws word-at-a-time inside its vectorized method, which
// reorders the stream relative to block replay.
type Scalarized struct{}

func (m *Scalarized) InitParticle(x []float64, r *rng.Rand) {
	x[0] = r.Normal(0, 1)
}

func (m *Scalarized) InitVec(x [][]float64, r *rng.Rand) {
	x0 := x[0]
	for i := range x0 {
		x0[i] = r.Normal(0, 1) // want `scalar normal-stream draw r.Normal in vectorized method`
	}
}

// Balanced is the clean shape: 2 normals per row on both sides.
type Balanced struct{}

func (m *Balanced) Step(dst, src, u []float64, k int, r *rng.Rand) {
	dst[0] = src[0] + r.Normal(0, 1)
	dst[1] = src[1]*0.5 + r.Normal(0, 1)
}

func (m *Balanced) StepVec(dst, src [][]float64, u []float64, k int, r *rng.Rand) {
	n := len(dst[0])
	zs := r.Normals(2 * n)
	d0, s0 := dst[0][:n], src[0][:n]
	d1, s1 := dst[1][:n], src[1][:n]
	for i := range d0 {
		d0[i] = s0[i] + zs[2*i]
		d1[i] = s1[i]*0.5 + zs[2*i+1]
	}
}

// Jagged's block request length is not a static multiple of the row
// count, so the comparison stays silent (soundness over completeness).
type Jagged struct {
	dims int
}

func (m *Jagged) Step(dst, src, u []float64, k int, r *rng.Rand) {
	dst[0] = src[0] + r.Normal(0, 1)
}

func (m *Jagged) StepVec(dst, src [][]float64, u []float64, k int, r *rng.Rand) {
	n := len(dst[0])
	zs := r.Normals(m.dims * n)
	for i := range dst[0] {
		dst[0][i] = src[0][i] + zs[i]
	}
}
