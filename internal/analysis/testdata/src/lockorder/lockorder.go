// Package lockorder exercises the lock-order analyzer: mutex
// acquisitions must form a cycle-free order, and no blocking channel
// send may happen while a lock is held.
package lockorder

import "sync"

// Server's two mutexes are taken in both orders: a two-goroutine
// interleaving deadlocks.
type Server struct {
	mu     sync.Mutex
	sessMu sync.RWMutex
}

func (s *Server) abLock() {
	s.mu.Lock()
	s.sessMu.Lock() // want `lock order cycle: Server.sessMu acquired while holding Server.mu`
	s.sessMu.Unlock()
	s.mu.Unlock()
}

func (s *Server) baLock() {
	s.sessMu.RLock()
	s.mu.Lock() // want `lock order cycle: Server.mu acquired while holding Server.sessMu`
	s.mu.Unlock()
	s.sessMu.RUnlock()
}

// Agent closes its cycle through a call: opThenLog holds opMu while
// calling a helper that acquires logMu, and logThenOp inverts it.
type Agent struct {
	opMu  sync.Mutex
	logMu sync.Mutex
}

func (a *Agent) lockLog() {
	a.logMu.Lock()
	a.logMu.Unlock()
}

func (a *Agent) opThenLog() {
	a.opMu.Lock()
	a.lockLog() // want `lock order cycle: Agent.logMu acquired while holding Agent.opMu \(through call to lockLog\)`
	a.opMu.Unlock()
}

func (a *Agent) logThenOp() {
	a.logMu.Lock()
	a.opMu.Lock() // want `lock order cycle: Agent.opMu acquired while holding Agent.logMu`
	a.opMu.Unlock()
	a.logMu.Unlock()
}

// Router demonstrates the clean shapes: a consistent nesting order, a
// non-blocking select send under lock, sends after unlocking, and an
// early return past an unlock.
type Router struct {
	mu     sync.Mutex
	ringMu sync.Mutex
	out    chan int
}

func (r *Router) place(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ringMu.Lock()
	r.ringMu.Unlock()
	r.out <- v // want `blocking channel send while holding Router.mu`
}

func (r *Router) tryPlace(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.out <- v:
	default:
	}
}

func (r *Router) unheldSend(v int) {
	r.mu.Lock()
	r.mu.Unlock()
	r.out <- v
}

func (r *Router) earlyReturn(cond bool) {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
}

func (r *Router) spawn(v int) {
	r.mu.Lock()
	go func() {
		r.out <- v
	}()
	r.mu.Unlock()
}
