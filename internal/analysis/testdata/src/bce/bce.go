// Package bce exercises the bounds-check ratchet: functions marked
// //esthera:hotpath bce must not retain per-element-loop bounds checks
// beyond their scripts/bce_baseline.txt budget (zero in fixtures).
package bce

// GatherStride reads at a stride the prover cannot tie to the loop
// bound, so the access retains its check inside the loop.
//
//esthera:hotpath bce
func GatherStride(dst, src []float64) {
	n := len(dst)
	d := dst[:n:n]
	for i := range d {
		d[i] = src[2*i] // want `retained bounds check in per-element loop of GatherStride`
	}
}

// Head retains checks only in straight-line setup code (outside any
// loop); setup-class checks are sanctioned unconditionally.
//
//esthera:hotpath bce
func Head(dst, src []float64) float64 {
	x := src[0]
	y := dst[1]
	return x + y
}

// Clamped reslices both operands to a common proven length, so the
// prover eliminates every in-loop check.
//
//esthera:hotpath bce
func Clamped(dst, src []float64) {
	n := len(dst)
	if len(src) < n {
		return
	}
	d := dst[:n:n]
	s := src[:n]
	for i := range d {
		d[i] = s[i]
	}
}

// Unratcheted carries no contract: retained checks are not findings.
func Unratcheted(dst, src []float64) {
	for i := range dst {
		dst[i] = src[3*i]
	}
}
