package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DrawOrderAnalyzer guards the model.VecModel bit-exactness contract:
// a vectorized method must consume random draws in EXACTLY the per-row
// order its scalar counterpart does (DESIGN.md, internal/model/vec.go).
// The golden traces catch a violation only for the models and seeds
// they pin; this analyzer catches the code shapes that produce one:
//
//  1. word-at-a-time scalar draws (r.Normal, r.Float64, ...) inside a
//     vectorized method body (StepVec/InitVec/LogLikelihoodVec). Block
//     replay is only bit-identical through the rng block APIs
//     (Normals/FillNormals/Uniforms/FillUniforms); a scalar draw
//     interleaved with block draws reorders the stream;
//  2. a block-draw sequence whose per-row draw count diverges from the
//     paired scalar method on the same receiver (Step vs StepVec,
//     InitParticle vs InitVec). The counts are compared per stream
//     (normals vs uniforms) when both sides are statically countable:
//     unconditional draws on the scalar side, block requests of
//     rows-multiple length (n, c*n, len(column)) on the vector side.
//     Draws under branches or loops, or an *rng.Rand escaping into
//     another call, make a side uncountable and the comparison stays
//     silent — soundness over completeness.
var DrawOrderAnalyzer = &Analyzer{
	Name: "draworder",
	Doc:  "model.VecModel methods must use block rng draws whose per-row count matches the paired scalar method (bit-exact draw order)",
	Run:  runDrawOrder,
}

// vecMethodNames are the VecModel methods the scalar-draw check covers.
var vecMethodNames = map[string]bool{
	"StepVec":          true,
	"InitVec":          true,
	"LogLikelihoodVec": true,
}

// methodPairs maps each vectorized method to the scalar method whose
// per-row draw count it must reproduce.
var methodPairs = map[string]string{
	"StepVec": "Step",
	"InitVec": "InitParticle",
}

// scalarDraws maps word-at-a-time rng.Rand draw methods to the stream
// ("normal"/"uniform") they consume from.
var scalarDraws = map[string]string{
	"Normal":      "normal",
	"NormFloat64": "normal",
	"Float64":     "uniform",
	"OpenFloat64": "uniform",
	"ExpFloat64":  "uniform",
	"Uint64":      "uniform",
	"Uint32":      "uniform",
	"Intn":        "uniform",
	"Perm":        "uniform",
	"Shuffle":     "uniform",
}

// blockDraws maps block rng.Rand draw methods to their stream.
var blockDraws = map[string]string{
	"Normals":      "normal",
	"FillNormals":  "normal",
	"Uniforms":     "uniform",
	"FillUniforms": "uniform",
}

// drawCount is a per-stream draw tally; ok=false means statically
// uncountable.
type drawCount struct {
	normals, uniforms int
	ok                bool
}

func runDrawOrder(pass *Pass) error {
	// Group declared methods by receiver base type name.
	methods := make(map[string]map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			recv := recvTypeName(fn)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]*ast.FuncDecl)
			}
			methods[recv][fn.Name.Name] = fn
		}
	}

	for _, byName := range methods {
		// Check 1: scalar draws inside vectorized methods.
		for name, fn := range byName {
			if !vecMethodNames[name] {
				continue
			}
			rObj := rngParam(pass, fn)
			if rObj == nil {
				continue
			}
			for _, call := range rngCalls(pass, fn, rObj) {
				sel := call.Fun.(*ast.SelectorExpr)
				if stream, ok := scalarDraws[sel.Sel.Name]; ok {
					pass.Reportf(call.Pos(), "scalar %s-stream draw %s.%s in vectorized method %s breaks the block-replay draw order; use the rng block APIs (Normals/FillNormals/Uniforms/FillUniforms)", stream, exprIdentName(sel.X), sel.Sel.Name, funcDisplayName(fn))
				}
			}
		}
		// Check 2: per-row draw-count parity between paired methods.
		for vecName, scalarName := range methodPairs {
			vecFn, scalarFn := byName[vecName], byName[scalarName]
			if vecFn == nil || scalarFn == nil {
				continue
			}
			sc := countScalarDraws(pass, scalarFn)
			vc := countVecDraws(pass, vecFn)
			if !sc.ok || !vc.ok {
				continue
			}
			if vc.normals != sc.normals {
				pass.Reportf(vecFn.Name.Pos(), "%s consumes %d normal draw(s) per row but scalar %s consumes %d; diverging draw order breaks bit-identity with the scalar path", funcDisplayName(vecFn), vc.normals, scalarName, sc.normals)
			}
			if vc.uniforms != sc.uniforms {
				pass.Reportf(vecFn.Name.Pos(), "%s consumes %d uniform draw(s) per row but scalar %s consumes %d; diverging draw order breaks bit-identity with the scalar path", funcDisplayName(vecFn), vc.uniforms, scalarName, sc.uniforms)
			}
		}
	}
	return nil
}

// recvTypeName returns the base type name of a method's receiver.
func recvTypeName(fn *ast.FuncDecl) string {
	t := fn.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// rngParam returns the object of fn's *rng.Rand parameter, if any.
func rngParam(pass *Pass, fn *ast.FuncDecl) types.Object {
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isRngRand(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// isRngRand reports whether t is *rng.Rand (esthera's internal rng).
func isRngRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Rand" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/rng")
}

// rngCalls returns every method call whose receiver is exactly the rng
// parameter object.
func rngCalls(pass *Pass, fn *ast.FuncDecl, rObj types.Object) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == rObj {
			out = append(out, call)
		}
		return true
	})
	return out
}

// rngEscapes reports whether the rng parameter is used anywhere other
// than as the receiver of its own method calls — passed to another
// function, stored, aliased — which makes draw counting unsound.
func rngEscapes(pass *Pass, fn *ast.FuncDecl, rObj types.Object) bool {
	receiverUse := make(map[*ast.Ident]bool)
	for _, call := range rngCalls(pass, fn, rObj) {
		if id, ok := call.Fun.(*ast.SelectorExpr).X.(*ast.Ident); ok {
			receiverUse[id] = true
		}
	}
	escapes := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == rObj && !receiverUse[id] {
			escapes = true
		}
		return !escapes
	})
	return escapes
}

// posSpan is one node's position extent.
type posSpan struct{ start, end token.Pos }

// conditionalRanges returns the position spans of fn's branches, loops,
// and function literals: a draw inside one executes a data-dependent
// number of times, so it defeats static counting.
func conditionalRanges(fn *ast.FuncDecl) []posSpan {
	var out []posSpan
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			out = append(out, posSpan{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

func inConditional(ranges []posSpan, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r.start && pos < r.end {
			return true
		}
	}
	return false
}

// countScalarDraws tallies the unconditional word-at-a-time draws of a
// scalar model method; one call is one per-row draw (the scalar method
// runs once per particle).
func countScalarDraws(pass *Pass, fn *ast.FuncDecl) drawCount {
	rObj := rngParam(pass, fn)
	if rObj == nil {
		return drawCount{ok: true}
	}
	if rngEscapes(pass, fn, rObj) {
		return drawCount{}
	}
	cond := conditionalRanges(fn)
	c := drawCount{ok: true}
	for _, call := range rngCalls(pass, fn, rObj) {
		name := call.Fun.(*ast.SelectorExpr).Sel.Name
		stream, isScalar := scalarDraws[name]
		if !isScalar || inConditional(cond, call.Pos()) {
			return drawCount{} // block draw, state mutation, or conditional draw
		}
		if stream == "normal" {
			c.normals++
		} else {
			c.uniforms++
		}
	}
	return c
}

// countVecDraws tallies the per-row block draws of a vectorized method:
// each unconditional block request whose length is a static multiple of
// the row count contributes that multiple.
func countVecDraws(pass *Pass, fn *ast.FuncDecl) drawCount {
	rObj := rngParam(pass, fn)
	if rObj == nil {
		return drawCount{ok: true}
	}
	if rngEscapes(pass, fn, rObj) {
		return drawCount{}
	}
	cond := conditionalRanges(fn)
	rows := rowExprs(pass, fn)
	c := drawCount{ok: true}
	for _, call := range rngCalls(pass, fn, rObj) {
		name := call.Fun.(*ast.SelectorExpr).Sel.Name
		stream, isBlock := blockDraws[name]
		if !isBlock || inConditional(cond, call.Pos()) {
			return drawCount{}
		}
		if len(call.Args) != 1 {
			return drawCount{}
		}
		// Fill variants take a destination slice whose length is not
		// statically visible here; Normals/Uniforms take the count.
		if name == "FillNormals" || name == "FillUniforms" {
			return drawCount{}
		}
		mult, ok := rows.perRowMultiple(call.Args[0])
		if !ok {
			return drawCount{}
		}
		if stream == "normal" {
			c.normals += mult
		} else {
			c.uniforms += mult
		}
	}
	return c
}

// rowInfo resolves which expressions denote the span's row count inside
// one vectorized method: `len(col)` for a column of a [][]float64
// parameter, or a local variable assigned such a length.
type rowInfo struct {
	pass    *Pass
	rowVars map[types.Object]bool // n := len(dst[0])
	columns map[types.Object]bool // x0 := x[0]
	params  map[types.Object]bool // [][]float64 parameters
}

func rowExprs(pass *Pass, fn *ast.FuncDecl) *rowInfo {
	ri := &rowInfo{
		pass:    pass,
		rowVars: make(map[types.Object]bool),
		columns: make(map[types.Object]bool),
		params:  make(map[types.Object]bool),
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if s, ok := obj.Type().(*types.Slice); ok {
				if _, ok := s.Elem().(*types.Slice); ok {
					ri.params[obj] = true
				}
			}
		}
	}
	// One linear scan is enough: the vectorized bodies define their
	// row-count and column locals before use.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := ri.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = ri.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if ri.isColumn(assign.Rhs[i]) {
				ri.columns[obj] = true
			}
			if ri.isRowCount(assign.Rhs[i]) {
				ri.rowVars[obj] = true
			}
		}
		return true
	})
	return ri
}

// isColumn reports whether e denotes one state-dimension column of a
// [][]float64 parameter (x[0], src[c][:n], or an alias of one).
func (ri *rowInfo) isColumn(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			obj := ri.pass.TypesInfo.Uses[id]
			return obj != nil && ri.params[obj]
		}
	case *ast.SliceExpr:
		return ri.isColumn(x.X)
	case *ast.Ident:
		obj := ri.pass.TypesInfo.Uses[x]
		return obj != nil && ri.columns[obj]
	}
	return false
}

// isRowCount reports whether e evaluates to the span's row count.
func (ri *rowInfo) isRowCount(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fun, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && fun.Name == "len" && len(x.Args) == 1 {
			return ri.isColumn(x.Args[0])
		}
	case *ast.Ident:
		obj := ri.pass.TypesInfo.Uses[x]
		return obj != nil && ri.rowVars[obj]
	}
	return false
}

// perRowMultiple resolves a block-request length to its per-row
// multiple: n → 1, c*n / n*c with integer literal c → c.
func (ri *rowInfo) perRowMultiple(e ast.Expr) (int, bool) {
	e = ast.Unparen(e)
	if ri.isRowCount(e) {
		return 1, true
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "*" {
		return 0, false
	}
	if c, ok := intLit(bin.X); ok && ri.isRowCount(bin.Y) {
		return c, true
	}
	if c, ok := intLit(bin.Y); ok && ri.isRowCount(bin.X) {
		return c, true
	}
	return 0, false
}

func intLit(e ast.Expr) (int, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return n, true
}

// exprIdentName renders a receiver expression for diagnostics.
func exprIdentName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "r"
}
