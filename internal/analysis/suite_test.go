package analysis_test

import (
	"bytes"
	"strings"
	"testing"

	"esthera/internal/analysis"
)

// TestSuiteRegistration is the meta-test: the multichecker registers
// every analyzer, with unique names, documentation, and the package
// filters the determinism contract assigns them.
func TestSuiteRegistration(t *testing.T) {
	suite := analysis.Suite()
	if len(suite) < 9 {
		t.Fatalf("suite registers %d analyzers, want >= 9", len(suite))
	}
	want := map[string]bool{
		"nondeterminism":   false,
		"barrier":          false,
		"floatorder":       false,
		"checkpointcompat": false,
		"noalloc":          false,
		"bce":              false,
		"draworder":        false,
		"lockorder":        false,
		"directive":        false,
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered (need Name, Doc, Run)", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if _, ok := want[a.Name]; ok {
			want[a.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("suite does not register analyzer %q", name)
		}
	}
}

// TestSuiteFilters pins the package scoping: nondeterminism covers
// exactly the kernel-side packages, checkpointcompat the snapshot
// packages, and barrier/floatorder run everywhere.
func TestSuiteFilters(t *testing.T) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analysis.Suite() {
		byName[a.Name] = a
	}
	nd := byName["nondeterminism"]
	for _, pkg := range []string{
		"esthera/internal/kernels", "esthera/internal/scan", "esthera/internal/sortnet",
		"esthera/internal/resample", "esthera/internal/exchange",
	} {
		if !nd.Filter(pkg) {
			t.Errorf("nondeterminism must cover kernel package %s", pkg)
		}
	}
	if nd.Filter("esthera/internal/serve") {
		t.Errorf("nondeterminism must not cover host-side serve (it may legitimately read clocks)")
	}
	cc := byName["checkpointcompat"]
	for _, pkg := range []string{
		"esthera/internal/serve", "esthera/internal/filter",
		"esthera/internal/kernels", "esthera/internal/rng",
		"esthera/internal/cluster",
	} {
		if !cc.Filter(pkg) {
			t.Errorf("checkpointcompat must cover snapshot package %s", pkg)
		}
	}
	if byName["barrier"].Filter != nil || byName["floatorder"].Filter != nil {
		t.Errorf("barrier and floatorder must run over every package")
	}
	for _, name := range []string{"noalloc", "bce"} {
		a := byName[name]
		if !a.NeedsCompiler {
			t.Errorf("%s must request compiler diagnostics", name)
		}
		for _, pkg := range []string{
			"esthera/internal/kernels", "esthera/internal/sortnet", "esthera/internal/scan",
			"esthera/internal/rng", "esthera/internal/model", "esthera/internal/model/arm",
		} {
			if !a.Filter(pkg) {
				t.Errorf("%s must cover hot package %s", name, pkg)
			}
		}
		if a.Filter("esthera/internal/serve") {
			t.Errorf("%s must not compile host-side serve (only the hot path carries the contract)", name)
		}
	}
	lo := byName["lockorder"]
	for _, pkg := range []string{"esthera/internal/serve", "esthera/internal/shard"} {
		if !lo.Filter(pkg) {
			t.Errorf("lockorder must cover serving package %s", pkg)
		}
	}
	if lo.Filter("esthera/internal/kernels") {
		t.Errorf("lockorder must not cover lock-free kernels")
	}
	if byName["draworder"].Filter != nil || byName["directive"].Filter != nil {
		t.Errorf("draworder and directive must run over every package")
	}
}

// TestListFlag exercises the multichecker's -list mode, which the
// verify pipeline uses to assert registration from the shell.
func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := analysis.Main([]string{"-list"}, &out, &errb, analysis.Suite())
	if code != 0 {
		t.Fatalf("esthera-vet -list exited %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{
		"nondeterminism:", "barrier:", "floatorder:", "checkpointcompat:",
		"noalloc:", "bce:", "draworder:", "lockorder:", "directive:",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestRunFlag pins -run's name validation: an unknown analyzer is a
// usage error (exit 2) before any package is loaded, and the error
// names the registered set.
func TestRunFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := analysis.Main([]string{"-run", "nosuchanalyzer", "./..."}, &out, &errb, analysis.Suite()); code != 2 {
		t.Fatalf("-run nosuchanalyzer exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "nosuchanalyzer") || !strings.Contains(errb.String(), "registered:") {
		t.Errorf("error does not name the unknown analyzer and the registry: %s", errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := analysis.Main([]string{"-run", " , "}, &out, &errb, analysis.Suite()); code != 2 {
		t.Fatalf("-run with an empty selection exited %d, want 2", code)
	}
}

// TestRequireFlag pins the -require coverage guard verify.sh relies
// on: a covered package passes, an unknown one fails the run with exit
// status 2 even when the sweep itself is clean.
func TestRequireFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	var out, errb bytes.Buffer
	if code := analysis.Main([]string{"-require", "esthera/internal/telemetry", "./..."}, &out, &errb, analysis.Suite()); code != 0 {
		t.Fatalf("-require on a covered package exited %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := analysis.Main([]string{"-require", "esthera/internal/nosuchpkg", "./..."}, &out, &errb, analysis.Suite()); code != 2 {
		t.Fatalf("-require on a missing package exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "esthera/internal/nosuchpkg") {
		t.Errorf("error does not name the missing package: %s", errb.String())
	}
}

// TestRepositoryClean runs the full suite over the whole module — the
// same sweep scripts/verify.sh performs — and requires zero findings:
// every invariant the analyzers encode holds in the tree as committed.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	diags, err := analysis.CheckModule(".", analysis.Suite())
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
