package analysis_test

import (
	"bytes"
	"strings"
	"testing"

	"esthera/internal/analysis"
)

// TestSuiteRegistration is the meta-test: the multichecker registers
// every analyzer, with unique names, documentation, and the package
// filters the determinism contract assigns them.
func TestSuiteRegistration(t *testing.T) {
	suite := analysis.Suite()
	if len(suite) < 4 {
		t.Fatalf("suite registers %d analyzers, want >= 4", len(suite))
	}
	want := map[string]bool{
		"nondeterminism":   false,
		"barrier":          false,
		"floatorder":       false,
		"checkpointcompat": false,
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered (need Name, Doc, Run)", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if _, ok := want[a.Name]; ok {
			want[a.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("suite does not register analyzer %q", name)
		}
	}
}

// TestSuiteFilters pins the package scoping: nondeterminism covers
// exactly the kernel-side packages, checkpointcompat the snapshot
// packages, and barrier/floatorder run everywhere.
func TestSuiteFilters(t *testing.T) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analysis.Suite() {
		byName[a.Name] = a
	}
	nd := byName["nondeterminism"]
	for _, pkg := range []string{
		"esthera/internal/kernels", "esthera/internal/scan", "esthera/internal/sortnet",
		"esthera/internal/resample", "esthera/internal/exchange",
	} {
		if !nd.Filter(pkg) {
			t.Errorf("nondeterminism must cover kernel package %s", pkg)
		}
	}
	if nd.Filter("esthera/internal/serve") {
		t.Errorf("nondeterminism must not cover host-side serve (it may legitimately read clocks)")
	}
	cc := byName["checkpointcompat"]
	for _, pkg := range []string{
		"esthera/internal/serve", "esthera/internal/filter",
		"esthera/internal/kernels", "esthera/internal/rng",
		"esthera/internal/cluster",
	} {
		if !cc.Filter(pkg) {
			t.Errorf("checkpointcompat must cover snapshot package %s", pkg)
		}
	}
	if byName["barrier"].Filter != nil || byName["floatorder"].Filter != nil {
		t.Errorf("barrier and floatorder must run over every package")
	}
}

// TestListFlag exercises the multichecker's -list mode, which the
// verify pipeline uses to assert registration from the shell.
func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := analysis.Main([]string{"-list"}, &out, &errb, analysis.Suite())
	if code != 0 {
		t.Fatalf("esthera-vet -list exited %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"nondeterminism:", "barrier:", "floatorder:", "checkpointcompat:"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestRequireFlag pins the -require coverage guard verify.sh relies
// on: a covered package passes, an unknown one fails the run with exit
// status 2 even when the sweep itself is clean.
func TestRequireFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	var out, errb bytes.Buffer
	if code := analysis.Main([]string{"-require", "esthera/internal/telemetry", "./..."}, &out, &errb, analysis.Suite()); code != 0 {
		t.Fatalf("-require on a covered package exited %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := analysis.Main([]string{"-require", "esthera/internal/nosuchpkg", "./..."}, &out, &errb, analysis.Suite()); code != 2 {
		t.Fatalf("-require on a missing package exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "esthera/internal/nosuchpkg") {
		t.Errorf("error does not name the missing package: %s", errb.String())
	}
}

// TestRepositoryClean runs the full suite over the whole module — the
// same sweep scripts/verify.sh performs — and requires zero findings:
// every invariant the analyzers encode holds in the tree as committed.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	diags, err := analysis.CheckModule(".", analysis.Suite())
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
