package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// hotpathDirective is the function annotation the compiler-diagnostic
// analyzers key off: a doc comment
//
//	//esthera:hotpath <contract> [<contract>...]
//
// on a function declaration subscribes that function to the named
// contracts. The grammar is a space-separated contract list; valid
// contracts are "noalloc" (escape analysis must show no heap
// allocations in the body) and "bce" (per-element-loop bounds checks
// are ratcheted against scripts/bce_baseline.txt).
const hotpathDirective = "esthera:hotpath"

// hotpathContracts are the contract names //esthera:hotpath accepts.
var hotpathContracts = map[string]bool{
	"noalloc": true,
	"bce":     true,
}

// directiveText returns the trimmed body of a //esthera:<kind> comment,
// or ok=false if c is not that directive. Directives are recognized in
// the Go directive shape (no space after //), but a spaced variant is
// still parsed so the directive analyzer can flag rather than silently
// ignore it — callers decide.
func directiveText(c *ast.Comment, kind string) (rest string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, kind) {
		return "", false
	}
	rest = text[len(kind):]
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return "", false // e.g. esthera:hotpathx
	}
	// A trailing "// ..." is not part of the directive (the analysistest
	// fixtures put their `// want` expectations there).
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}

// funcContracts returns the hotpath contracts declared in fn's doc
// comment (nil when the function carries no directive). Malformed
// contract words are included verbatim; the directive analyzer rejects
// them, and the consuming analyzers simply see an unknown word.
func funcContracts(fn *ast.FuncDecl) []string {
	if fn.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fn.Doc.List {
		if rest, ok := directiveText(c, hotpathDirective); ok {
			out = append(out, strings.Fields(rest)...)
		}
	}
	return out
}

// hasContract reports whether fn declares the given hotpath contract.
func hasContract(fn *ast.FuncDecl, contract string) bool {
	for _, c := range funcContracts(fn) {
		if c == contract {
			return true
		}
	}
	return false
}

// DirectiveAnalyzer validates the comment directives the rest of the
// suite trusts: //esthera:allow must name a registered analyzer (a
// typo'd allow would otherwise silently mask nothing while the author
// believes a finding is sanctioned), and //esthera:hotpath must sit in
// a function's doc comment and list only known contracts.
var DirectiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc:  "validate //esthera:allow and //esthera:hotpath directives: known analyzer names, known contracts, correct placement",
}

// Run is attached in init: runDirective's Known fallback calls Suite(),
// which contains DirectiveAnalyzer, and a direct field reference would
// be an initialization cycle.
func init() { DirectiveAnalyzer.Run = runDirective }

func runDirective(pass *Pass) error {
	known := pass.Config.Known
	if known == nil {
		known = KnownNames(Suite())
	}
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, f := range pass.Files {
		// Positions of comments that belong to some function's doc
		// comment: the only legal home for //esthera:hotpath.
		docComments := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				docComments[c] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := directiveText(c, allowDirective); ok {
					name := rest
					if i := strings.IndexAny(rest, " \t"); i >= 0 {
						name = rest[:i]
					}
					switch {
					case name == "":
						pass.Reportf(c.Pos(), "//esthera:allow directive names no analyzer (known: %s)", strings.Join(names, ", "))
					case !known[name]:
						pass.Reportf(c.Pos(), "//esthera:allow names unknown analyzer %q (known: %s)", name, strings.Join(names, ", "))
					}
					continue
				}
				rest, ok := directiveText(c, hotpathDirective)
				if !ok {
					continue
				}
				if !docComments[c] {
					pass.Reportf(c.Pos(), "//esthera:hotpath directive must appear in a function declaration's doc comment")
					continue
				}
				contracts := strings.Fields(rest)
				if len(contracts) == 0 {
					pass.Reportf(c.Pos(), "//esthera:hotpath directive lists no contracts (valid: bce, noalloc)")
				}
				for _, contract := range contracts {
					if !hotpathContracts[contract] {
						pass.Reportf(c.Pos(), "//esthera:hotpath names unknown contract %q (valid: bce, noalloc)", contract)
					}
				}
			}
		}
	}
	return nil
}
