// Package analysistest runs analyzers over testdata fixtures, in the
// shape of golang.org/x/tools/go/analysis/analysistest: fixture files
// mark expected findings with `// want "regexp"` comments on the
// offending line, and Run fails the test for every unmatched
// expectation and every unexpected diagnostic. Fixtures may import real
// module packages (the barrier fixtures use esthera/internal/device),
// which the loader resolves from the enclosing module.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"esthera/internal/analysis"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantComment extracts the quoted regexps of a `// want "..." "..."`
// comment.
var wantComment = regexp.MustCompile(`//\s*want\s+(.*)`)

// quoted matches one Go-quoted string, interpreted ("...") or raw
// (backquoted), the two forms x/tools analysistest accepts.
var quoted = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run applies the analyzer to the fixture package in dir (a directory
// under testdata) and checks its diagnostics against the `// want`
// expectations. The analyzer's package filter is bypassed: fixtures
// exercise the check regardless of their synthetic import path.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := analysis.NewLoader(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(abs, "fixture/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	// Fixtures get the full harness: a compiler cache so NeedsCompiler
	// analyzers see real escape/BCE diagnostics for the fixture package
	// (it compiles standalone inside the module), the full suite as the
	// allow-name registry, and an empty BCE baseline so every loop-class
	// bounds check in a fixture is a finding.
	known := analysis.KnownNames(analysis.Suite())
	known[a.Name] = true
	cfg := &analysis.Config{
		Compiler:    analysis.NewCompilerCache(),
		Known:       known,
		BCEBaseline: map[string]int{},
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}, true, cfg)
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, dir, err)
	}

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		if w := matchWant(wants, d.Pos.Filename, d.Pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWants collects the want expectations of every fixture file.
func parseWants(pkg *analysis.Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		var fileComments []*ast.Comment
		for _, cg := range f.Comments {
			fileComments = append(fileComments, cg.List...)
		}
		for _, c := range fileComments {
			m := wantComment.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			specs := quoted.FindAllString(m[1], -1)
			if len(specs) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment (no quoted regexp)", pos.Filename, pos.Line)
			}
			for _, q := range specs {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
			}
		}
	}
	return out, nil
}

// matchWant finds an unmatched expectation on the diagnostic's line
// whose regexp matches its message.
func matchWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if w.matched || w.line != line || !sameFile(w.file, file) {
			continue
		}
		if w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// sameFile compares paths by base name, tolerating abs/rel differences.
func sameFile(a, b string) bool {
	return a == b || strings.EqualFold(filepath.Base(a), filepath.Base(b))
}
