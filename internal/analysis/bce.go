package analysis

import (
	"go/ast"
)

// BCEAnalyzer is the bounds-check ratchet: for every function marked
// `//esthera:hotpath bce` it reads the SSA prove pass's retained-check
// diagnostics (-d=ssa/check_bce) and classifies each as
//
//   - setup-class: outside any loop in the function body — slice-header
//     construction, reslicing, parameter validation. These run once per
//     call and are sanctioned unconditionally;
//   - loop-class: inside a for/range statement — a check the column
//     kernels pay once per element. These are ratcheted: a function may
//     retain at most as many as its entry in scripts/bce_baseline.txt
//     records (absent entry = zero).
//
// Known residuals (the strided RNG reads in arm's StepVec, where the
// prover can't connect the block length to the loop bound) live in the
// baseline with their audited counts; any NEW loop-class check — a
// refactor that re-grew a per-element bound — fails the sweep. Refresh
// the baseline with `make vet-ratchet` (esthera-vet -ratchet) after
// deliberate, reviewed changes.
var BCEAnalyzer = &Analyzer{
	Name:          "bce",
	Doc:           "functions marked //esthera:hotpath bce must not grow new per-element-loop bounds checks (ratcheted against scripts/bce_baseline.txt)",
	Run:           runBCE,
	Filter:        isHotPackage,
	NeedsCompiler: true,
}

func runBCE(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasContract(fn, "bce") {
				continue
			}
			file := declFile(pass, fn)
			start := pass.Fset.Position(fn.Pos()).Line
			end := pass.Fset.Position(fn.End()).Line
			loops := loopLineRanges(pass, fn)
			var loopClass []CompilerFinding
			for _, finding := range findingsWithin(pass.Bounds, file, start, end) {
				if inAnyRange(loops, finding.Pos.Line) {
					loopClass = append(loopClass, finding)
				}
			}
			key := funcKey(pass, fn)
			if pass.Config.BCERecord != nil {
				if len(loopClass) > 0 {
					pass.Config.BCERecord[key] = len(loopClass)
				}
				continue
			}
			budget := pass.Config.BCEBaseline[key]
			if len(loopClass) <= budget {
				continue
			}
			for _, finding := range loopClass {
				pos := findingPos(pass, finding)
				if !pos.IsValid() {
					pos = fn.Pos()
				}
				pass.Reportf(pos, "retained bounds check in per-element loop of %s (%d found, baseline %d): %s — hoist or restructure the access, or refresh scripts/bce_baseline.txt with `make vet-ratchet` if the check is a reviewed residual", funcDisplayName(fn), len(loopClass), budget, finding.Message)
			}
		}
	}
	return nil
}

// lineRange is an inclusive source-line interval.
type lineRange struct{ start, end int }

// loopLineRanges returns the line ranges of every for/range statement
// in fn's body.
func loopLineRanges(pass *Pass, fn *ast.FuncDecl) []lineRange {
	var out []lineRange
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, lineRange{
				start: pass.Fset.Position(n.Pos()).Line,
				end:   pass.Fset.Position(n.End()).Line,
			})
		}
		return true
	})
	return out
}

func inAnyRange(rs []lineRange, line int) bool {
	for _, r := range rs {
		if line >= r.start && line <= r.end {
			return true
		}
	}
	return false
}
