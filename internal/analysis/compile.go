package analysis

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the second-generation diagnostic harness: where the
// PR 3 analyzers see only syntax and types, the harness consumes the
// COMPILER's own analyses — escape analysis (-gcflags=-m) and the
// bounds-check elimination results of the SSA prove pass
// (-d=ssa/check_bce) — and maps each finding back to a source position
// in the loader's FileSet. Analyzers that set NeedsCompiler receive the
// parsed findings through Pass.Escapes and Pass.Bounds and report
// through the ordinary pass/diagnostic/`//esthera:allow` model, so a
// compiler-backed contract (a hot function allocates, a column loop
// regrew a bounds check) reads exactly like an AST-backed one.

// CompilerFinding is one diagnostic emitted by the Go compiler for a
// package build: an allocation site from escape analysis or a retained
// bounds check from the prove pass.
type CompilerFinding struct {
	Pos     token.Position // absolute filename
	Message string         // e.g. "make([]float64, n) escapes to heap", "Found IsInBounds"
}

// CompilerDiags is the per-package feed of compiler findings.
type CompilerDiags struct {
	// Escapes holds the heap-allocation sites: "... escapes to heap"
	// and "moved to heap: x" findings. Inlining attributes a callee's
	// allocation to the caller's source line, which is exactly the
	// accounting a per-function no-allocation contract wants.
	Escapes []CompilerFinding
	// Bounds holds the retained bounds checks: "Found IsInBounds" /
	// "Found IsSliceInBounds" from -d=ssa/check_bce.
	Bounds []CompilerFinding
}

// CompilerCache runs the diagnostic build at most once per package
// directory and memoizes the parsed findings, so the noalloc and bce
// analyzers share one compiler invocation per package.
type CompilerCache struct {
	byDir map[string]*CompilerDiags
	errs  map[string]error
}

// NewCompilerCache returns an empty cache.
func NewCompilerCache() *CompilerCache {
	return &CompilerCache{byDir: make(map[string]*CompilerDiags), errs: make(map[string]error)}
}

// diagLine matches one compiler diagnostic: file:line:col: message.
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// Diags builds the package rooted at dir with the diagnostic flags and
// returns its parsed findings. The build runs with the directory itself
// as the (only) named package, so the unpatterned -gcflags apply to it
// alone — dependencies rebuild quietly from the build cache — and the
// same invocation works for real module packages and testdata fixture
// directories alike.
func (c *CompilerCache) Diags(dir string) (*CompilerDiags, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if d, ok := c.byDir[abs]; ok {
		return d, nil
	}
	if err, ok := c.errs[abs]; ok {
		return nil, err
	}
	d, err := compileDiags(abs)
	if err != nil {
		c.errs[abs] = err
		return nil, err
	}
	c.byDir[abs] = d
	return d, nil
}

// compileDiags performs one diagnostic build of the package in dir.
func compileDiags(dir string) (*CompilerDiags, error) {
	cmd := exec.Command("go", "build", "-o", os.DevNull, "-gcflags=-m -d=ssa/check_bce", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		// A failing diagnostic build means the package does not compile;
		// surface the compiler's message, which is in out.
		return nil, fmt.Errorf("analysis: diagnostic build of %s failed: %v\n%s", dir, err, strings.TrimSpace(string(out)))
	}
	d := &CompilerDiags{}
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := diagLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue // "# pkg" headers, inlining notes without positions, blanks
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		file = filepath.Clean(file)
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		msg := m[4]
		f := CompilerFinding{Pos: token.Position{Filename: file, Line: ln, Column: col}, Message: msg}
		// Generic instantiation and inlining can emit the same finding
		// several times; one source position is one contract violation.
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		switch {
		case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
			d.Bounds = append(d.Bounds, f)
		case strings.Contains(msg, "moved to heap"),
			strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "does not escape"):
			d.Escapes = append(d.Escapes, f)
		}
	}
	sortFindings(d.Escapes)
	sortFindings(d.Bounds)
	return d, nil
}

func sortFindings(fs []CompilerFinding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// findingPos maps a compiler finding back into the pass's FileSet,
// returning token.NoPos when the finding's file is not one of the
// package's parsed files (e.g. a generated cgo shim).
func findingPos(pass *Pass, f CompilerFinding) token.Pos {
	for _, file := range pass.Files {
		tf := pass.Fset.File(file.Pos())
		if tf == nil || filepath.Clean(tf.Name()) != f.Pos.Filename {
			continue
		}
		if f.Pos.Line < 1 || f.Pos.Line > tf.LineCount() {
			return token.NoPos
		}
		p := tf.LineStart(f.Pos.Line)
		// Columns are byte-based in both worlds; stepping within the line
		// keeps the diagnostic anchored to the offending expression.
		if f.Pos.Column > 1 {
			off := tf.Offset(p) + f.Pos.Column - 1
			if off < tf.Size() {
				p = tf.Pos(off)
			}
		}
		return p
	}
	return token.NoPos
}
