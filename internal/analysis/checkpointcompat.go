package analysis

import (
	"go/ast"
	"reflect"
	"regexp"
	"strings"
)

// snapshotPackages are the packages whose snapshot/checkpoint structs
// form the persisted wire format (serve.Checkpoint and everything it
// transitively embeds).
var snapshotPackages = map[string]bool{
	"esthera/internal/serve":   true,
	"esthera/internal/filter":  true,
	"esthera/internal/kernels": true,
	"esthera/internal/rng":     true,
	"esthera/internal/cluster": true,
}

// snapshotName matches the type names that participate in the
// checkpoint wire format: kernels.Snapshot, filter.ParallelSnapshot,
// serve.Checkpoint, rng.State.
var snapshotName = regexp.MustCompile(`(Snapshot|Checkpoint|State)$`)

// CheckpointAnalyzer guards the checkpoint wire format: every exported
// field of a snapshot struct must carry an explicit json tag — either a
// wire name (frozen independently of Go-side renames) or `json:"-"`
// for state that is serialized out of band (the base64 float encoding)
// or deliberately excluded. An untagged exported field would silently
// join (or, renamed, silently leave) the wire format, breaking the
// bit-exact checkpoint/restore contract between server versions.
var CheckpointAnalyzer = &Analyzer{
	Name: "checkpointcompat",
	Doc: "flag exported fields of snapshot/checkpoint structs that lack an explicit " +
		"json wire tag, so the checkpoint format only ever changes deliberately",
	Filter: func(pkgPath string) bool { return snapshotPackages[pkgPath] },
	Run:    runCheckpointCompat,
}

func runCheckpointCompat(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() || !snapshotName.MatchString(ts.Name.Name) {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					// Embedded field: its own struct is checked at its
					// declaration (if it is snapshot-named); embedding
					// without a tag is flagged like a named field.
					if !hasJSONTag(field) {
						pass.Reportf(field.Pos(),
							"embedded field of snapshot struct %s has no json tag: checkpoint wire fields must be declared explicitly (use a wire name or json:\"-\")", ts.Name.Name)
					}
					continue
				}
				for _, name := range field.Names {
					if !name.IsExported() {
						continue
					}
					if !hasJSONTag(field) {
						pass.Reportf(name.Pos(),
							"exported field %s of snapshot struct %s has no json tag: new checkpoint fields need an explicit wire name (or json:\"-\" with out-of-band encoding) and restore-side handling", name.Name, ts.Name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// hasJSONTag reports whether the field carries a json struct tag.
func hasJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	tag := strings.Trim(field.Tag.Value, "`")
	_, ok := reflect.StructTag(tag).Lookup("json")
	return ok
}
