package analysis

import (
	"go/ast"
	"reflect"
	"regexp"
	"strings"
)

// snapshotPackages are the packages whose snapshot/checkpoint structs
// form the persisted wire format (serve.Checkpoint and everything it
// transitively embeds).
var snapshotPackages = map[string]bool{
	"esthera/internal/serve":   true,
	"esthera/internal/filter":  true,
	"esthera/internal/kernels": true,
	"esthera/internal/rng":     true,
	"esthera/internal/cluster": true,
	"esthera/internal/shard":   true,
}

// snapshotName matches the type names that participate in a wire
// format: kernels.Snapshot, filter.ParallelSnapshot, serve.Checkpoint,
// rng.State, and the shard transport's framed *Msg control structs
// (shard.ExportMsg, shard.RestoreMsg, ...).
var snapshotName = regexp.MustCompile(`(Snapshot|Checkpoint|State|Msg)$`)

// CheckpointAnalyzer guards the wire formats: every exported field of
// a snapshot/checkpoint/framed-message struct must carry an explicit
// wire tag — a json tag with a wire name (frozen independently of
// Go-side renames), `json:"-"` for state serialized out of band (the
// base64 float encoding) or deliberately excluded, or a `binary:` tag
// for fields hand-encoded into a raw binary frame (shard.ExchangeMsg).
// An untagged exported field would silently join (or, renamed,
// silently leave) the wire format, breaking the bit-exact
// checkpoint/restore and transport contracts between versions.
var CheckpointAnalyzer = &Analyzer{
	Name: "checkpointcompat",
	Doc: "flag exported fields of snapshot/checkpoint/wire-message structs that lack an " +
		"explicit json or binary wire tag, so wire formats only ever change deliberately",
	Filter: func(pkgPath string) bool { return snapshotPackages[pkgPath] },
	Run:    runCheckpointCompat,
}

func runCheckpointCompat(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() || !snapshotName.MatchString(ts.Name.Name) {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					// Embedded field: its own struct is checked at its
					// declaration (if it is snapshot-named); embedding
					// without a tag is flagged like a named field.
					if !hasWireTag(field) {
						pass.Reportf(field.Pos(),
							"embedded field of snapshot struct %s has no json tag: checkpoint wire fields must be declared explicitly (use a wire name or json:\"-\")", ts.Name.Name)
					}
					continue
				}
				for _, name := range field.Names {
					if !name.IsExported() {
						continue
					}
					if !hasWireTag(field) {
						pass.Reportf(name.Pos(),
							"exported field %s of snapshot struct %s has no json tag: new wire fields need an explicit wire name (json, or binary for hand-framed payloads; json:\"-\" with out-of-band encoding) and restore-side handling", name.Name, ts.Name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// hasWireTag reports whether the field carries an explicit wire tag:
// json (the checkpoint and control-frame formats) or binary (fields
// hand-encoded into raw frames, e.g. shard.ExchangeMsg).
func hasWireTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`"))
	if _, ok := tag.Lookup("json"); ok {
		return true
	}
	_, ok := tag.Lookup("binary")
	return ok
}
