package analysis

import (
	"go/ast"
)

// NoallocAnalyzer turns the fused round's 0 allocs/op property from a
// runtime observation (TestRoundBatchSteadyStateAllocs, bench_guard's
// allocs/op ratchet) into a compile-time contract: a function whose doc
// comment carries `//esthera:hotpath noalloc` must show no heap
// allocations in the compiler's escape analysis.
//
// One class of allocation site is sanctioned automatically: calls to
// the internal/device arena allocators (AllocLocal*/Scratch*). Their
// amortized grow path contains a `make` that escape analysis attributes
// to the *caller's* line once the method inlines — but the arena is the
// mechanism that makes the steady state allocation-free, so flagging it
// would force an //esthera:allow onto every legitimate scratch request.
// Any other allocation (a closure capture, a slice that outlives the
// frame, fmt boxing) is reported and needs an explicit allow with a
// rationale.
var NoallocAnalyzer = &Analyzer{
	Name:          "noalloc",
	Doc:           "functions marked //esthera:hotpath noalloc must show no heap allocations under escape analysis (-gcflags=-m)",
	Run:           runNoalloc,
	Filter:        isHotPackage,
	NeedsCompiler: true,
}

// arenaAllocators are the internal/device methods whose inlined grow
// path is a sanctioned allocation site.
var arenaAllocators = map[string]bool{
	"AllocLocalF64": true,
	"AllocLocalU32": true,
	"AllocLocalInt": true,
	"ScratchF64":    true,
	"ScratchInt":    true,
}

func runNoalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasContract(fn, "noalloc") {
				continue
			}
			file := declFile(pass, fn)
			start := pass.Fset.Position(fn.Pos()).Line
			end := pass.Fset.Position(fn.End()).Line
			sanctioned := arenaCallLines(pass, fn)
			for _, finding := range findingsWithin(pass.Escapes, file, start, end) {
				if sanctioned[finding.Pos.Line] {
					continue
				}
				pos := findingPos(pass, finding)
				if !pos.IsValid() {
					pos = fn.Pos()
				}
				pass.Reportf(pos, "heap allocation in //esthera:hotpath noalloc function %s: %s", funcDisplayName(fn), finding.Message)
			}
		}
	}
	return nil
}

// arenaCallLines returns the source lines of fn's body that call a
// device arena allocator.
func arenaCallLines(pass *Pass, fn *ast.FuncDecl) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pass.TypesInfo.ObjectOf(sel.Sel), "internal/device", arenaAllocators) {
			lines[pass.Fset.Position(call.Pos()).Line] = true
		}
		return true
	})
	return lines
}
