package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrderAnalyzer flags floating-point reductions whose result
// depends on an unordered iteration: accumulating into a float inside a
// `range` over a map (random order per run) or a channel (arrival
// order). Float addition is not associative, so such a reduction
// changes bits from run to run — precisely the drift the estimate and
// weight-sum paths must never exhibit (golden traces, checkpoint
// replay, and cross-backend validation all compare bit patterns).
//
// The fix is to iterate sorted keys, or to accumulate into an indexed
// slice and reduce it in a fixed order.
var FloatOrderAnalyzer = &Analyzer{
	Name: "floatorder",
	Doc: "flag float accumulation inside map/channel range loops, where iteration " +
		"order (and therefore the non-associative float sum) changes between runs",
	Run: runFloatOrder,
}

// orderSensitiveOps are the compound assignments whose float result
// depends on evaluation order.
var orderSensitiveOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func runFloatOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.X == nil {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			var source string
			switch t.Underlying().(type) {
			case *types.Map:
				source = "map"
			case *types.Chan:
				source = "channel"
			default:
				return true
			}
			ast.Inspect(rng.Body, func(inner ast.Node) bool {
				if nested, ok := inner.(*ast.RangeStmt); ok && nested.X != nil {
					// A nested map/channel range reports its own body on
					// its own visit; descending here would double-report.
					// Ordered nested ranges (slices, ints) stay in scope:
					// the outer unordered loop still scrambles any
					// accumulation inside them.
					nt := pass.TypesInfo.TypeOf(nested.X)
					if nt != nil {
						switch nt.Underlying().(type) {
						case *types.Map, *types.Chan:
							return false
						}
					}
				}
				a, ok := inner.(*ast.AssignStmt)
				if !ok || !orderSensitiveOps[a.Tok] || len(a.Lhs) != 1 {
					return true
				}
				if isFloat(pass.TypesInfo.TypeOf(a.Lhs[0])) {
					pass.Reportf(a.Pos(),
						"float accumulation inside range over %s: iteration order is nondeterministic and float %s is not associative, so the result changes bits between runs; iterate sorted keys or reduce an indexed slice", source, a.Tok)
				}
				return true
			})
			return true
		})
	}
	return nil
}

// isFloat reports whether t is (or aliases) a floating-point or complex
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
