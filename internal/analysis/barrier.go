package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BarrierAnalyzer enforces the work-group model inside lane closures:
// the bodies passed to device.Ctx.Step, StepSpan, and StepVec run once
// per lane (or per lane range, for the span/vector forms — concurrently
// on a real SIMT device, with a barrier only *between* steps), so a
// lane body may write global or local memory only through lane-indexed
// storage. StepVec closures in particular must write only rows
// [lo, hi) of their SoA columns; a captured scalar accumulated across
// the whole range is the same cross-lane race as in a Step body. A write to a captured scalar — an accumulator,
// a flag, an enclosing loop variable — is a cross-lane data race on a
// real device even though the Go simulation (which runs lanes
// sequentially) masks it.
//
// StepOne and StepSerial closures are exempt: they execute on a single
// lane by contract, which is exactly the "if (tid == 0)" idiom the
// kernels use for shared scalar writes. Reads of captured variables are
// always allowed — host code legitimately updates stage parameters
// between steps, across the barrier.
var BarrierAnalyzer = &Analyzer{
	Name: "barrier",
	Doc: "flag writes to captured non-lane-indexed variables (including enclosing " +
		"loop variables) inside device.Ctx.Step/StepSpan/StepVec lane closures, " +
		"which race across lanes on a real work-group device",
	Run: runBarrier,
}

// devicePkgSuffix identifies the device package by import-path suffix,
// so the analyzer keeps working if the module is ever renamed.
const devicePkgSuffix = "internal/device"

var laneStepMethods = map[string]bool{"Step": true, "StepSpan": true, "StepVec": true}

func runBarrier(pass *Pass) error {
	for _, f := range pass.Files {
		loopVars := collectLoopVars(pass, f)
		closures := make(map[*ast.FuncLit]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !laneStepMethods[sel.Sel.Name] || !isDeviceCtx(pass, sel.X) {
				return true
			}
			fl := resolveFuncLit(pass, f, call.Args[0])
			if fl == nil || closures[fl] {
				return true
			}
			closures[fl] = true
			checkLaneClosure(pass, sel.Sel.Name, fl, loopVars)
			return true
		})
	}
	return nil
}

// isDeviceCtx reports whether expr's type is declared in the device
// package (Ctx, *Group, Serial, ...).
func isDeviceCtx(pass *Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), devicePkgSuffix)
}

// resolveFuncLit returns the function literal behind a Step argument:
// the literal itself, or — for the reused-closure idiom (`up := func...;
// ctx.StepSpan(up)`) — the literal the identifier was bound to in the
// same file.
func resolveFuncLit(pass *Pass, f *ast.File, arg ast.Expr) *ast.FuncLit {
	if fl, ok := arg.(*ast.FuncLit); ok {
		return fl
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	var found *ast.FuncLit
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pass.TypesInfo.Defs[lid] == obj || pass.TypesInfo.Uses[lid] == obj {
					if fl, ok := n.Rhs[i].(*ast.FuncLit); ok {
						found = fl
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					if fl, ok := n.Values[i].(*ast.FuncLit); ok {
						found = fl
					}
				}
			}
		}
		return true
	})
	return found
}

// collectLoopVars gathers the objects of every for/range induction
// variable in the file, so captured writes to them get the sharper
// loop-variable message.
func collectLoopVars(pass *Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	def := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Key != nil {
				def(n.Key)
			}
			if n.Value != nil {
				def(n.Value)
			}
		case *ast.ForStmt:
			if a, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					def(lhs)
				}
			}
		}
		return true
	})
	return out
}

// checkLaneClosure flags captured-variable writes in one lane closure.
func checkLaneClosure(pass *Pass, method string, fl *ast.FuncLit, loopVars map[types.Object]bool) {
	report := func(n ast.Node, obj types.Object) {
		if loopVars[obj] {
			pass.Reportf(n.Pos(),
				"lane closure passed to %s writes enclosing loop variable %s: on a real device the lanes run concurrently and race on it; keep loop control on the host side of the barrier", method, obj.Name())
			return
		}
		pass.Reportf(n.Pos(),
			"lane closure passed to %s writes captured variable %s, which is shared across lanes: use lane-indexed storage (scratch/local buffers) and reduce after the barrier", method, obj.Name())
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := capturedWriteTarget(pass, fl, lhs); obj != nil {
					report(lhs, obj)
				}
			}
		case *ast.IncDecStmt:
			if obj := capturedWriteTarget(pass, fl, n.X); obj != nil {
				report(n, obj)
			}
		}
		return true
	})
}

// capturedWriteTarget returns the captured variable a write target
// resolves to, or nil if the write is safe: a local of the closure, the
// blank identifier, or any lane-indexed (IndexExpr) location.
func capturedWriteTarget(pass *Pass, fl *ast.FuncLit, lhs ast.Expr) types.Object {
	// Strip field selectors: writing st.field mutates the captured st.
	// Stop at the first index expression — buf[lane], st.buf[lane] and
	// deeper are lane-indexed storage, the legal pattern.
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			// A selector through a pointer field still names shared
			// state; keep unwrapping to the base identifier.
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return nil
			}
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return nil
			}
			if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
				return nil // declared inside the closure
			}
			return v
		default:
			// IndexExpr and anything else exotic: treated as
			// lane-indexed / out of scope.
			return nil
		}
	}
}
