package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("esthera/internal/scan")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks the module's packages from source,
// resolving intra-module imports itself and standard-library imports
// through the toolchain's source importer. It exists because the build
// image carries no external modules: golang.org/x/tools/go/packages is
// unavailable, and the analyzers only need syntax plus type info for a
// single self-contained module.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory
	module  string // module path from go.mod
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader locates the enclosing module starting from dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	// The stdlib is type-checked from source (the image ships no
	// pre-built export data); disabling cgo selects the pure-Go variants
	// of net and friends, which is all type checking needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		root:    root,
		module:  module,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module path.
func (l *Loader) Module() string { return l.module }

// Import implements types.Importer, dispatching module-internal paths
// to the source loader and everything else to the stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// loadPath loads a module-internal package by import path, memoized.
func (l *Loader) loadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	p, err := l.LoadDir(l.dirFor(path), path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir parses and type-checks the non-test Go files of one directory
// as the package with the given import path. Test files are go vet's
// and the race detector's jurisdiction; the invariants the analyzers
// enforce live in production code.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadAll loads every package of the module (the ./... pattern),
// skipping testdata, hidden directories, and directories without
// buildable Go files. Packages load in dependency order automatically:
// imports are resolved through the loader itself.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.root, p)
				if err != nil {
					return err
				}
				ip := l.module
				if rel != "." {
					ip = l.module + "/" + filepath.ToSlash(rel)
				}
				paths = append(paths, ip)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		p, err := l.loadPath(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
