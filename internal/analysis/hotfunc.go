package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// hotPackages is the exact set of packages carrying //esthera:hotpath
// annotations. The noalloc and bce analyzers are scoped to it because
// every package they cover costs one diagnostic `go build`; a new
// annotated package must be added here (and to the esthera-vet -require
// list in scripts/verify.sh, which guards against silent coverage loss).
var hotPackages = map[string]bool{
	"esthera/internal/kernels":       true,
	"esthera/internal/sortnet":       true,
	"esthera/internal/scan":          true,
	"esthera/internal/rng":           true,
	"esthera/internal/model":         true,
	"esthera/internal/model/arm":     true,
	"esthera/internal/telemetry":     true,
	"esthera/internal/telemetry/log": true,
}

func isHotPackage(path string) bool { return hotPackages[path] }

// funcKey is the stable per-function identity used in diagnostics and
// the BCE baseline: "pkgpath.name" for functions, "pkgpath.(T).name" /
// "pkgpath.(*T).name" for methods. Line numbers are deliberately not
// part of the key so unrelated edits don't invalidate the baseline.
func funcKey(pass *Pass, fn *ast.FuncDecl) string {
	return pass.Pkg.Path() + "." + funcDisplayName(fn)
}

// funcDisplayName renders a FuncDecl's name with its receiver type.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		star = "*"
		t = s.X
	}
	name := "?"
	switch x := t.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := x.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return fmt.Sprintf("(%s%s).%s", star, name, fn.Name.Name)
}

// declFile returns the cleaned filename a declaration lives in.
func declFile(pass *Pass, n ast.Node) string {
	return filepath.Clean(pass.Fset.Position(n.Pos()).Filename)
}

// findingsWithin selects the compiler findings falling inside the given
// file and line range (inclusive).
func findingsWithin(findings []CompilerFinding, file string, startLine, endLine int) []CompilerFinding {
	var out []CompilerFinding
	for _, f := range findings {
		if f.Pos.Filename == file && f.Pos.Line >= startLine && f.Pos.Line <= endLine {
			out = append(out, f)
		}
	}
	return out
}

// isPkgFunc reports whether obj is the named function/method of a
// package whose import path ends with the given suffix.
func isPkgFunc(obj types.Object, pkgSuffix string, names map[string]bool) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if !names[fn.Name()] {
		return false
	}
	p := fn.Pkg().Path()
	return p == pkgSuffix || len(p) > len(pkgSuffix) && p[len(p)-len(pkgSuffix)-1] == '/' && p[len(p)-len(pkgSuffix):] == pkgSuffix
}
