package cluster

import (
	"encoding/json"
	"net/http"
	"strconv"

	"esthera/internal/telemetry"
)

// HealthSnapshot is the cluster's degraded-mode introspection record:
// how many nodes are up, how often rounds ran degraded, and what the
// rerouting machinery did about it. All counters accumulate since New
// or the last Reset. Fields carry explicit json wire names (enforced by
// esthera-vet's checkpointcompat analyzer) so the /metrics payload only
// ever changes deliberately.
type HealthSnapshot struct {
	// Nodes, FailedNodes and LiveNodes describe the cluster right now.
	Nodes       int `json:"nodes"`
	FailedNodes int `json:"failed_nodes"`
	LiveNodes   int `json:"live_nodes"`
	// Rounds counts filtering rounds; DegradedRounds those stepped with
	// at least one node failed. The cluster keeps stepping every round
	// regardless — degradation reroutes edges, it never stalls them.
	Rounds         int64 `json:"rounds"`
	DegradedRounds int64 `json:"degraded_rounds"`
	// ReroutedEdges counts exchange pulls that skipped past at least one
	// failed node to a farther live sender; DroppedEdges counts pulls
	// with no live sender anywhere on the lane (receiver kept native
	// particles).
	ReroutedEdges int64 `json:"rerouted_edges"`
	DroppedEdges  int64 `json:"dropped_edges"`
	// Reseeds counts nodes re-seeded from live neighbors on restore.
	Reseeds int64 `json:"reseeds"`
	// TransportErrors counts inter-node exchange pulls dropped because
	// the attached Transport failed (each also counts in DroppedEdges).
	TransportErrors int64 `json:"transport_errors"`
	// CommBytes and CommMessages mirror CommStats.
	CommBytes    int64 `json:"comm_bytes"`
	CommMessages int64 `json:"comm_messages"`
	// ExchangeContrib counts, per node, how many exchange deliveries
	// that node's sub-filters donated. Under failures the live
	// neighbors of a hole contribute extra (rerouted receivers pull
	// from them), which this vector makes visible.
	ExchangeContrib []int64 `json:"exchange_contrib"`
}

// Health returns the degradation counters. Safe to call concurrently
// with Step (the counters are atomics; the fault flags take their own
// lock).
func (c *Cluster) Health() HealthSnapshot {
	failedN := c.FailedNodes()
	contrib := make([]int64, len(c.contrib))
	for i := range c.contrib {
		contrib[i] = c.contrib[i].Load()
	}
	return HealthSnapshot{
		Nodes:           c.cfg.Nodes,
		FailedNodes:     failedN,
		LiveNodes:       c.cfg.Nodes - failedN,
		Rounds:          c.rounds.Load(),
		DegradedRounds:  c.degradedRounds.Load(),
		ReroutedEdges:   c.reroutedEdges.Load(),
		DroppedEdges:    c.droppedEdges.Load(),
		Reseeds:         c.reseeds.Load(),
		TransportErrors: c.transportErrors.Load(),
		CommBytes:       c.commBytes.Load(),
		CommMessages:    c.commMsgs.Load(),
		ExchangeContrib: contrib,
	}
}

// Collect emits the health snapshot into a telemetry registry gather
// under the esthera_cluster_* names, unifying cluster introspection
// with the Prometheus exposition.
func (c *Cluster) Collect(e *telemetry.Emitter) {
	h := c.Health()
	e.Gauge("esthera_cluster_nodes", "Configured cluster size.", float64(h.Nodes))
	e.Gauge("esthera_cluster_failed_nodes", "Currently failed nodes.", float64(h.FailedNodes))
	e.Gauge("esthera_cluster_live_nodes", "Currently live nodes.", float64(h.LiveNodes))
	e.Counter("esthera_cluster_rounds_total", "Filtering rounds stepped.", float64(h.Rounds))
	e.Counter("esthera_cluster_degraded_rounds_total", "Rounds stepped with at least one node failed.", float64(h.DegradedRounds))
	e.Counter("esthera_cluster_rerouted_edges_total", "Exchange pulls rerouted past failed nodes.", float64(h.ReroutedEdges))
	e.Counter("esthera_cluster_dropped_edges_total", "Exchange pulls with no live sender on the lane.", float64(h.DroppedEdges))
	e.Counter("esthera_cluster_reseeds_total", "Nodes re-seeded from live neighbors on restore.", float64(h.Reseeds))
	e.Counter("esthera_cluster_transport_errors_total", "Inter-node exchange pulls dropped by transport failures.", float64(h.TransportErrors))
	e.Counter("esthera_cluster_comm_bytes_total", "Inter-node exchange payload bytes.", float64(h.CommBytes))
	e.Counter("esthera_cluster_comm_messages_total", "Inter-node exchange messages.", float64(h.CommMessages))
	for i, n := range h.ExchangeContrib {
		e.Counter("esthera_cluster_node_exchange_contrib_total",
			"Exchange deliveries donated, by sender node.",
			float64(n), "node", strconv.Itoa(i))
	}
}

// NewMetricsHandler exposes a cluster's health and degradation counters
// over HTTP, the same introspection shape the serving layer uses:
//
//	GET /metrics  → HealthSnapshot (JSON); Prometheus text exposition
//	                with ?format=prometheus or an Accept header
//	                preferring text/plain (see telemetry.WantsPrometheus)
//	GET /healthz  → 200 while the process is up
//	GET /readyz   → 200 while any node is live, else 503
func NewMetricsHandler(c *Cluster) http.Handler {
	reg := telemetry.NewRegistry()
	reg.RegisterCollector(c.Collect)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if telemetry.WantsPrometheus(r) {
			reg.ServePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(c.Health())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if c.FailedNodes() == c.Nodes() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("{\"status\":\"no live nodes\"}\n"))
			return
		}
		_, _ = w.Write([]byte("{\"status\":\"ready\"}\n"))
	})
	return mux
}
