package cluster_test

import (
	"testing"

	"esthera/internal/cluster"
	"esthera/internal/filter"
	"esthera/internal/metrics"
	"esthera/internal/model"
	"esthera/internal/model/arm"
)

func armScenario(t *testing.T) (model.Model, model.Scenario) {
	t.Helper()
	m, sc, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
	if err != nil {
		t.Fatal(err)
	}
	return m, sc
}

func newCluster(t *testing.T, m model.Model, nodes int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(m, cluster.Config{
		Nodes: nodes, SubFiltersPerNode: 16, ParticlesPer: 16,
		ExchangeCount: 1, WorkersPerNode: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	m, _ := armScenario(t)
	bad := []cluster.Config{
		{Nodes: 0, SubFiltersPerNode: 4, ParticlesPer: 8},
		{Nodes: 2, SubFiltersPerNode: 0, ParticlesPer: 8},
		{Nodes: 2, SubFiltersPerNode: 4, ParticlesPer: 8, ExchangeCount: 4},
		{Nodes: 2, SubFiltersPerNode: 4, ParticlesPer: 8, ExchangeCount: -1},
	}
	for i, cfg := range bad {
		if _, err := cluster.New(m, cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestClusterTracksArm(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)
	if c.TotalParticles() != 4*16*16 {
		t.Fatalf("total particles %d", c.TotalParticles())
	}
	s := metrics.Run(c, sc, 60, 7)
	if tail := s.MeanAfter(30); tail > 0.25 {
		t.Fatalf("cluster trailing error %v, want < 0.25", tail)
	}
}

func TestClusterMatchesSingleNodeAccuracy(t *testing.T) {
	m, sc := armScenario(t)
	one := newCluster(t, m, 1)
	four := newCluster(t, m, 4)
	sOne := metrics.Run(one, sc, 50, 9)
	sFour := metrics.Run(four, sc, 50, 9)
	// Four nodes hold 4× the particles; they must not be meaningfully
	// worse than the single node.
	if sFour.MeanAfter(25) > 2*sOne.MeanAfter(25)+0.1 {
		t.Fatalf("4-node error %v far above 1-node %v", sFour.MeanAfter(25), sOne.MeanAfter(25))
	}
}

func TestInterNodeTrafficCounted(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)
	metrics.Run(c, sc, 10, 3)
	bytes, msgs := c.CommStats()
	// Ring of 64 sub-filters over 4 nodes: exactly 2 boundary pulls per
	// node per round → 8 messages/round.
	if msgs != 10*8 {
		t.Fatalf("messages = %d, want 80", msgs)
	}
	stride := int64(m.StateDim()+1) * 8
	if bytes != msgs*stride {
		t.Fatalf("bytes = %d, want %d", bytes, msgs*stride)
	}
	if c.PredictCommPerRound() <= 0 {
		t.Fatal("comm prediction must be positive for a multi-node cluster")
	}
	// Single node: no network traffic at all.
	c1 := newCluster(t, m, 1)
	metrics.Run(c1, sc, 10, 3)
	if b, _ := c1.CommStats(); b != 0 {
		t.Fatalf("single-node cluster sent %d bytes", b)
	}
	if c1.PredictCommPerRound() != 0 {
		t.Fatal("single-node comm prediction must be zero")
	}
}

func TestResetReproducible(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 2)
	a := metrics.Run(c, sc, 20, 5)
	c.Reset(1)
	b := metrics.Run(c, sc, 20, 5)
	for i := range a.Err {
		if a.Err[i] != b.Err[i] {
			t.Fatalf("cluster not reproducible at step %d", i)
		}
	}
}

func TestNodeFailureAndRecovery(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)

	var f filter.Filter = c
	// Warm up: converge.
	s := metrics.Run(f, sc, 40, 11)
	before := s.MeanAfter(30)

	// Kill half the cluster; the survivors must keep tracking.
	c.FailNode(1)
	c.FailNode(2)
	if c.FailedNodes() != 2 {
		t.Fatalf("failed nodes = %d", c.FailedNodes())
	}
	s2 := continueRun(c, sc, 41, 30, 11)
	during := mean(s2)

	// Restore; the stale nodes rejoin and get refreshed via exchange.
	c.RestoreNode(1)
	c.RestoreNode(2)
	s3 := continueRun(c, sc, 71, 40, 11)
	after := s3[len(s3)-20:]

	if during > 5*before+0.5 {
		t.Fatalf("tracking collapsed under node failure: %v vs %v before", during, before)
	}
	if m := mean(after); m > 5*before+0.5 {
		t.Fatalf("no recovery after restore: %v vs %v before", m, before)
	}
}

// continueRun advances an already-running filter against the scenario
// from step start (metrics.Run always starts at 1, so failure tests drive
// the loop directly).
func continueRun(c *cluster.Cluster, sc model.Scenario, start, steps int, seed uint64) []float64 {
	m := sc.Model()
	// Reuse the same measurement stream construction as metrics.Run so
	// sequences are comparable.
	s := metrics.Run(&offsetFilter{c}, &offsetScenario{sc, start - 1}, steps, seed)
	_ = m
	return s.Err
}

// offsetScenario shifts a scenario's time axis.
type offsetScenario struct {
	model.Scenario
	offset int
}

func (o *offsetScenario) TrueState(k int, x []float64) { o.Scenario.TrueState(k+o.offset, x) }
func (o *offsetScenario) Control(k int, u []float64)   { o.Scenario.Control(k+o.offset, u) }

// offsetFilter passes steps through without resetting.
type offsetFilter struct{ *cluster.Cluster }

func (o *offsetFilter) Reset(uint64) {} // keep running state

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// TestConcurrentFaultInjection runs FailNode/RestoreNode from a second
// goroutine while the cluster filter steps, as a live deployment would
// (failure detection is asynchronous to the filtering loop). Under
// `go test -race` this asserts the fault flags are properly
// synchronized; functionally it asserts the estimate survives the churn
// and recovers once all nodes are back.
func TestConcurrentFaultInjection(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)

	// Warm up so the filter has acquired the target.
	warm := metrics.Run(c, sc, 30, 7)
	before := mean(warm.Err[20:])

	// Churn node failures from a second goroutine while stepping.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			node := i % (c.Nodes() - 1) // node 0 .. n-2; never all at once
			c.FailNode(node)
			c.FailedNodes()
			c.RestoreNode(node)
			i++
		}
	}()
	continueRun(c, sc, 31, 40, 7)
	close(stop)
	<-done

	// All nodes restored: the filter must still track.
	if got := c.FailedNodes(); got != 0 {
		t.Fatalf("%d nodes still failed after churn", got)
	}
	after := continueRun(c, sc, 71, 30, 7)
	if m := mean(after[10:]); m > 5*before+0.5 {
		t.Fatalf("estimate did not recover after concurrent fault churn: %v vs %v before", m, before)
	}
}
