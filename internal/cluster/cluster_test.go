package cluster_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"esthera/internal/cluster"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/metrics"
	"esthera/internal/model"
	"esthera/internal/model/arm"
)

func armScenario(t *testing.T) (model.Model, model.Scenario) {
	t.Helper()
	m, sc, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
	if err != nil {
		t.Fatal(err)
	}
	return m, sc
}

func newCluster(t *testing.T, m model.Model, nodes int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(m, cluster.Config{
		Nodes: nodes, SubFiltersPerNode: 16, ParticlesPer: 16,
		ExchangeCount: 1, WorkersPerNode: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	m, _ := armScenario(t)
	bad := []cluster.Config{
		{Nodes: 0, SubFiltersPerNode: 4, ParticlesPer: 8},
		{Nodes: 2, SubFiltersPerNode: 0, ParticlesPer: 8},
		{Nodes: 2, SubFiltersPerNode: 4, ParticlesPer: 8, ExchangeCount: 4},
		{Nodes: 2, SubFiltersPerNode: 4, ParticlesPer: 8, ExchangeCount: -1},
	}
	for i, cfg := range bad {
		if _, err := cluster.New(m, cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestClusterTracksArm(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)
	if c.TotalParticles() != 4*16*16 {
		t.Fatalf("total particles %d", c.TotalParticles())
	}
	s := metrics.Run(c, sc, 60, 7)
	if tail := s.MeanAfter(30); tail > 0.25 {
		t.Fatalf("cluster trailing error %v, want < 0.25", tail)
	}
}

func TestClusterMatchesSingleNodeAccuracy(t *testing.T) {
	m, sc := armScenario(t)
	one := newCluster(t, m, 1)
	four := newCluster(t, m, 4)
	sOne := metrics.Run(one, sc, 50, 9)
	sFour := metrics.Run(four, sc, 50, 9)
	// Four nodes hold 4× the particles; they must not be meaningfully
	// worse than the single node.
	if sFour.MeanAfter(25) > 2*sOne.MeanAfter(25)+0.1 {
		t.Fatalf("4-node error %v far above 1-node %v", sFour.MeanAfter(25), sOne.MeanAfter(25))
	}
}

func TestInterNodeTrafficCounted(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)
	metrics.Run(c, sc, 10, 3)
	bytes, msgs := c.CommStats()
	// Ring of 64 sub-filters over 4 nodes: exactly 2 boundary pulls per
	// node per round → 8 messages/round.
	if msgs != 10*8 {
		t.Fatalf("messages = %d, want 80", msgs)
	}
	stride := int64(m.StateDim()+1) * 8
	if bytes != msgs*stride {
		t.Fatalf("bytes = %d, want %d", bytes, msgs*stride)
	}
	if c.PredictCommPerRound() <= 0 {
		t.Fatal("comm prediction must be positive for a multi-node cluster")
	}
	// Single node: no network traffic at all.
	c1 := newCluster(t, m, 1)
	metrics.Run(c1, sc, 10, 3)
	if b, _ := c1.CommStats(); b != 0 {
		t.Fatalf("single-node cluster sent %d bytes", b)
	}
	if c1.PredictCommPerRound() != 0 {
		t.Fatal("single-node comm prediction must be zero")
	}
}

func TestResetReproducible(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 2)
	a := metrics.Run(c, sc, 20, 5)
	c.Reset(1)
	b := metrics.Run(c, sc, 20, 5)
	for i := range a.Err {
		if a.Err[i] != b.Err[i] {
			t.Fatalf("cluster not reproducible at step %d", i)
		}
	}
}

func TestNodeFailureAndRecovery(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)

	var f filter.Filter = c
	// Warm up: converge.
	s := metrics.Run(f, sc, 40, 11)
	before := s.MeanAfter(30)

	// Kill half the cluster; the survivors must keep tracking.
	c.FailNode(1)
	c.FailNode(2)
	if c.FailedNodes() != 2 {
		t.Fatalf("failed nodes = %d", c.FailedNodes())
	}
	s2 := continueRun(c, sc, 41, 30, 11)
	during := mean(s2)

	// Restore; the stale nodes rejoin and get refreshed via exchange.
	c.RestoreNode(1)
	c.RestoreNode(2)
	s3 := continueRun(c, sc, 71, 40, 11)
	after := s3[len(s3)-20:]

	if during > 5*before+0.5 {
		t.Fatalf("tracking collapsed under node failure: %v vs %v before", during, before)
	}
	if m := mean(after); m > 5*before+0.5 {
		t.Fatalf("no recovery after restore: %v vs %v before", m, before)
	}
}

// continueRun advances an already-running filter against the scenario
// from step start (metrics.Run always starts at 1, so failure tests drive
// the loop directly).
func continueRun(c *cluster.Cluster, sc model.Scenario, start, steps int, seed uint64) []float64 {
	m := sc.Model()
	// Reuse the same measurement stream construction as metrics.Run so
	// sequences are comparable.
	s := metrics.Run(&offsetFilter{c}, &offsetScenario{sc, start - 1}, steps, seed)
	_ = m
	return s.Err
}

// offsetScenario shifts a scenario's time axis.
type offsetScenario struct {
	model.Scenario
	offset int
}

func (o *offsetScenario) TrueState(k int, x []float64) { o.Scenario.TrueState(k+o.offset, x) }
func (o *offsetScenario) Control(k int, u []float64)   { o.Scenario.Control(k+o.offset, u) }

// offsetFilter passes steps through without resetting.
type offsetFilter struct{ *cluster.Cluster }

func (o *offsetFilter) Reset(uint64) {} // keep running state

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// TestDegradedModeKeepsEdgesLive is the degraded-mode contract: with a
// failed node under ring exchange the cluster keeps stepping every
// round, every live exchange lane reroutes to the next live sender (no
// frozen edges, no dropped lanes while live senders exist), and the
// degradation counters record it.
func TestDegradedModeKeepsEdgesLive(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)

	warm := metrics.Run(c, sc, 30, 13)
	before := mean(warm.Err[20:])
	h0 := c.Health()
	if h0.DegradedRounds != 0 || h0.ReroutedEdges != 0 || h0.DroppedEdges != 0 {
		t.Fatalf("healthy run recorded degradation: %+v", h0)
	}

	c.FailNode(1)
	s := continueRun(c, sc, 31, 20, 13)
	h := c.Health()
	if h.FailedNodes != 1 || h.LiveNodes != 3 {
		t.Fatalf("node accounting: %+v", h)
	}
	if h.DegradedRounds != 20 {
		t.Fatalf("degraded rounds %d, want 20 (the cluster must step every round)", h.DegradedRounds)
	}
	// Ring receivers adjacent to the dead node's slice reroute past it:
	// 16 dead sub-filters, so the two flanking live sub-filters skip 16
	// hops — 2 rerouted edges per round.
	if h.ReroutedEdges != 2*20 {
		t.Fatalf("rerouted edges %d, want 40", h.ReroutedEdges)
	}
	if h.DroppedEdges != 0 {
		t.Fatalf("%d exchange lanes froze with 3 live nodes available", h.DroppedEdges)
	}
	if during := mean(s); during > 5*before+0.5 {
		t.Fatalf("tracking collapsed in degraded mode: %v vs %v before", during, before)
	}
	c.RestoreNode(1)
	continueRun(c, sc, 51, 5, 13)
	if got := c.Health().Reseeds; got != 1 {
		t.Fatalf("reseeds %d, want 1", got)
	}
}

// TestTorusDegradedMode runs the same contract under the torus scheme.
func TestTorusDegradedMode(t *testing.T) {
	m, sc := armScenario(t)
	c, err := cluster.New(m, cluster.Config{
		Nodes: 4, SubFiltersPerNode: 16, ParticlesPer: 16,
		ExchangeCount: 1, WorkersPerNode: 2, Scheme: exchange.Torus2D,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.Run(c, sc, 40, 17)
	before := s.MeanAfter(25)
	if before > 0.25 {
		t.Fatalf("torus cluster trailing error %v, want < 0.25", before)
	}
	if _, msgs := c.CommStats(); msgs == 0 {
		t.Fatal("torus exchange produced no inter-node messages")
	}
	c.FailNode(2)
	s2 := continueRun(c, sc, 41, 20, 17)
	h := c.Health()
	if h.DegradedRounds != 20 || h.ReroutedEdges == 0 {
		t.Fatalf("torus degradation not recorded: %+v", h)
	}
	if h.DroppedEdges != 0 {
		t.Fatalf("%d torus lanes froze with 3 live nodes", h.DroppedEdges)
	}
	if during := mean(s2); during > 5*before+0.5 {
		t.Fatalf("torus tracking collapsed in degraded mode: %v vs %v", during, before)
	}
}

// TestSchemeValidation rejects topologies without directional structure
// and exchange volumes that overflow the per-scheme slot budget.
func TestSchemeValidation(t *testing.T) {
	m, _ := armScenario(t)
	if _, err := cluster.New(m, cluster.Config{
		Nodes: 2, SubFiltersPerNode: 4, ParticlesPer: 16, Scheme: exchange.Hypercube,
	}, 1); err == nil {
		t.Fatal("hypercube scheme accepted")
	}
	// Torus pulls from 4 directions: 4t must stay below m.
	if _, err := cluster.New(m, cluster.Config{
		Nodes: 2, SubFiltersPerNode: 4, ParticlesPer: 8,
		ExchangeCount: 2, Scheme: exchange.Torus2D,
	}, 1); err == nil {
		t.Fatal("torus with 4t >= m accepted")
	}
}

// TestReseedOnRestoreConvergesFaster is the restore contract: a node
// that rejoins after the target moved on re-acquires faster when
// re-seeded from its live neighbors' top-t than when resurrected with
// its stale frozen particles. Both runs are deterministic; the
// comparison is the restored node's own local-best error over the
// rounds right after restore.
func TestReseedOnRestoreConvergesFaster(t *testing.T) {
	m, sc := armScenario(t)
	nodeErr := func(stale bool) []float64 {
		cfg := cluster.Config{
			Nodes: 4, SubFiltersPerNode: 16, ParticlesPer: 16,
			ExchangeCount: 1, WorkersPerNode: 2, StaleRestore: stale,
		}
		c, err := cluster.New(m, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Converge, then kill node 1 and let the target move on without it.
		metrics.Run(c, sc, 20, 19)
		c.FailNode(1)
		continueRun(c, sc, 21, 30, 19)
		c.RestoreNode(1)
		// The restored node's own error over the rounds right after
		// restore, one round at a time.
		var errs []float64
		for k := 0; k < 8; k++ {
			continueRun(c, sc, 51+k, 1, 19)
			state, _, ok := c.NodeEstimate(1)
			if !ok {
				t.Fatal("restored node did not participate")
			}
			ex, ey := m.TrackedPosition(state)
			truth := make([]float64, m.StateDim())
			sc.TrueState(51+k, truth)
			tx, ty := m.TrackedPosition(truth)
			errs = append(errs, hypot(ex-tx, ey-ty))
		}
		if stale && c.Health().Reseeds != 0 {
			t.Fatal("stale restore must not reseed")
		}
		if !stale && c.Health().Reseeds != 1 {
			t.Fatalf("reseeds = %d, want 1", c.Health().Reseeds)
		}
		return errs
	}
	reseeded := nodeErr(false)
	stale := nodeErr(true)
	if mean(reseeded) >= mean(stale) {
		t.Fatalf("re-seeded node error %v (mean %.4f) not below stale-restore %v (mean %.4f)",
			reseeded, mean(reseeded), stale, mean(stale))
	}
}

func hypot(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

// TestMetricsHandler publishes the degradation counters over HTTP: the
// acceptance surface for "FailedNodes visible via /metrics".
func TestMetricsHandler(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)
	ts := httptest.NewServer(cluster.NewMetricsHandler(c))
	defer ts.Close()

	c.FailNode(3)
	metrics.Run(c, sc, 10, 23)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var h cluster.HealthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.FailedNodes != 1 || h.LiveNodes != 3 || h.Nodes != 4 {
		t.Fatalf("node counters over the wire: %+v", h)
	}
	if h.DegradedRounds != 10 || h.ReroutedEdges == 0 {
		t.Fatalf("degradation counters over the wire: %+v", h)
	}
	if h.CommMessages == 0 {
		t.Fatalf("comm counters over the wire: %+v", h)
	}

	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz with live nodes: status %d", code)
	}
	for i := 0; i < 4; i++ {
		c.FailNode(i)
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with all nodes down: status %d, want 503", code)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestConcurrentFaultInjection runs FailNode/RestoreNode from a second
// goroutine while the cluster filter steps, as a live deployment would
// (failure detection is asynchronous to the filtering loop). Under
// `go test -race` this asserts the fault flags are properly
// synchronized; functionally it asserts the estimate survives the churn
// and recovers once all nodes are back.
func TestConcurrentFaultInjection(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)

	// Warm up so the filter has acquired the target.
	warm := metrics.Run(c, sc, 30, 7)
	before := mean(warm.Err[20:])

	// Churn node failures from a second goroutine while stepping.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			node := i % (c.Nodes() - 1) // node 0 .. n-2; never all at once
			c.FailNode(node)
			c.FailedNodes()
			c.RestoreNode(node)
			i++
		}
	}()
	continueRun(c, sc, 31, 40, 7)
	close(stop)
	<-done

	// All nodes restored: the filter must still track.
	if got := c.FailedNodes(); got != 0 {
		t.Fatalf("%d nodes still failed after churn", got)
	}
	after := continueRun(c, sc, 71, 30, 7)
	if m := mean(after[10:]); m > 5*before+0.5 {
		t.Fatalf("estimate did not recover after concurrent fault churn: %v vs %v before", m, before)
	}
}
