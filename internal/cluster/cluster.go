// Package cluster implements the paper's first future-work direction
// (§IX): scaling the distributed particle filter *up* from a single
// many-core device to a cluster of them.
//
// The design follows directly from the paper's argument: because every
// operation is local to a sub-filter except the thin particle exchange,
// the sub-filter network can be partitioned across nodes; only exchange
// edges that cross a node boundary become network messages. Each node
// runs its own device pipeline (rand → sampling → sort → estimate →
// resample) over a contiguous slice of the global ring of sub-filters,
// and the cluster layer performs the global exchange, counting inter-node
// traffic against a configurable network profile (latency + bandwidth) so
// experiments can predict communication cost on Gigabit Ethernet vs
// InfiniBand-class fabrics.
//
// The package also supports fault injection (FailNode/RestoreNode) with
// degraded-mode serving: a failed node stops computing, exchanging, and
// contributing to the estimate, but the surviving sub-filter network
// keeps every exchange edge live by rerouting around the hole — ring and
// torus receivers deterministically skip along their direction to the
// next live sender instead of freezing the lane. A restored node does
// not resurrect its stale particles: RestoreNode re-seeds the node from
// its live neighbors' current top-t particles, so the rejoining node
// starts from the survivors' posterior rather than a snapshot of where
// the target used to be. Health and degradation counters (rerouted and
// dropped edges, degraded rounds, reseeds) are published through
// Health() and the /metrics handler (NewMetricsHandler), which lets the
// experiments quantify how quickly the network re-acquires the target —
// a robustness property centralized filters do not have.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/rng"
	"esthera/internal/telemetry"
)

// NetworkProfile models the cluster interconnect for the communication-
// cost predictions.
type NetworkProfile struct {
	Name         string
	Latency      time.Duration // per message
	BandwidthGBs float64       // payload bandwidth
}

// GigabitEthernet returns a 1 GbE profile (~50 µs latency).
func GigabitEthernet() NetworkProfile {
	return NetworkProfile{Name: "1GbE", Latency: 50 * time.Microsecond, BandwidthGBs: 0.117}
}

// TenGigabitEthernet returns a 10 GbE profile.
func TenGigabitEthernet() NetworkProfile {
	return NetworkProfile{Name: "10GbE", Latency: 20 * time.Microsecond, BandwidthGBs: 1.17}
}

// InfiniBandQDR returns a QDR InfiniBand profile (~1.3 µs latency).
func InfiniBandQDR() NetworkProfile {
	return NetworkProfile{Name: "IB-QDR", Latency: 1300 * time.Nanosecond, BandwidthGBs: 4.0}
}

// Config parameterizes a cluster filter.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// SubFiltersPerNode and ParticlesPer shape each node's network slice.
	SubFiltersPerNode int
	ParticlesPer      int
	// ExchangeCount is t for the global exchange.
	ExchangeCount int
	// Scheme is the global exchange topology over all S sub-filters:
	// exchange.Ring (the default; the zero value exchange.None selects
	// it) or exchange.Torus2D. Both have the directional structure
	// degraded-mode rerouting needs.
	Scheme exchange.Scheme
	// Network selects the interconnect profile (default GigabitEthernet).
	Network NetworkProfile
	// WorkersPerNode sizes each node's device (0 = 1: nodes in this
	// simulation share the host, so oversubscription is the caller's
	// choice).
	WorkersPerNode int
	// Resampler selects the per-node resampling kernel.
	Resampler kernels.Algo
	// StaleRestore disables neighbor re-seeding on RestoreNode: the
	// rejoining node resumes from its frozen (stale) particles, the
	// pre-robustness behavior. Kept as an ablation knob so experiments
	// can measure what re-seeding buys.
	StaleRestore bool
}

// Cluster is a distributed particle filter partitioned over simulated
// cluster nodes. It implements filter.Filter.
type Cluster struct {
	cfg Config
	m   model.Model
	dim int

	nodes []*node
	// top is the global exchange topology over all S sub-filters; its
	// directional lanes drive both the healthy exchange and the
	// degraded-mode rerouting.
	top *exchange.Topology
	// failMu guards failed and reseed: fault injection
	// (FailNode/RestoreNode) may be called from a different goroutine
	// than Step, modeling failures that strike while a round is in
	// flight. Step snapshots the flags once at round start, so a
	// mid-round failure takes effect at the next round — a node cannot
	// half-participate in a round.
	failMu sync.Mutex
	failed []bool
	// reseed marks nodes restored since the last round: before the next
	// round's kernels they are re-seeded from live neighbors' top-t.
	reseed []bool
	seed   uint64
	k      int
	// lastBests holds each node's local best from the last round (read
	// by NodeEstimate; written only by Step).
	lastBests []nodeBest

	// Communication accounting (inter-node messages only) and the
	// degradation counters, atomics: Health() and the /metrics handler
	// read them while Step runs.
	commBytes      atomic.Int64
	commMsgs       atomic.Int64
	rounds         atomic.Int64
	degradedRounds atomic.Int64
	reroutedEdges  atomic.Int64
	droppedEdges   atomic.Int64
	reseeds        atomic.Int64

	// contrib counts, per node, how many exchange deliveries that
	// node's sub-filters donated (its outbox records pulled by a
	// receiver). Atomics: Health() reads them while Step runs.
	contrib []atomic.Int64

	// tracer, when attached and enabled, records one span per round
	// plus per-phase child spans (reseed, local kernels, exchange,
	// resample) with degradation counters as span arguments.
	tracer atomic.Pointer[telemetry.Tracer]

	// transport, when attached, carries every inter-node exchange pull
	// (nil keeps the in-process copy path, bit-identically). A failing
	// transport degrades exactly like a failed sender: the edge drops,
	// the receiver keeps native particles, and the round completes.
	transport       atomic.Pointer[Transport]
	transportErrors atomic.Int64

	outbox []float64 // global staging: S·t·(dim+1)
}

// Transport carries inter-node exchange pulls for one cluster. Exchange
// delivers the sender sub-filter's staged top-t records (t contiguous
// [dim state floats + 1 log-weight] groups) from sub-filter `from` to
// receiver `to` for the given round, returning the records as the
// receiver must apply them — the same length, bit-exact floats. An
// implementation that round-trips the records unchanged (loopback, or
// the shard package's TCP framing) leaves the filter's estimate stream
// bit-identical to the in-process path; an error drops the edge for
// this round (counted in TransportErrors and DroppedEdges) instead of
// stalling it.
type Transport interface {
	Exchange(round int64, from, to int, recs []float64) ([]float64, error)
}

// SetTransport attaches (or, with nil, detaches) the inter-node
// exchange transport. Safe to call concurrently with Step; the round in
// flight keeps the transport it started with.
func (c *Cluster) SetTransport(t Transport) {
	if t == nil {
		c.transport.Store(nil)
		return
	}
	c.transport.Store(&t)
}

// TransportErrors counts exchange pulls dropped by transport failures
// since New or the last Reset.
func (c *Cluster) TransportErrors() int64 { return c.transportErrors.Load() }

// node is one cluster member: a device pipeline over its sub-filter slice.
type node struct {
	pipe *kernels.Pipeline
	dev  *device.Device
}

// New builds the cluster filter.
func New(m model.Model, cfg Config, seed uint64) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: non-positive node count %d", cfg.Nodes)
	}
	if cfg.SubFiltersPerNode <= 0 || cfg.ParticlesPer <= 0 {
		return nil, fmt.Errorf("cluster: invalid node shape %d×%d", cfg.SubFiltersPerNode, cfg.ParticlesPer)
	}
	if cfg.Scheme == exchange.None {
		cfg.Scheme = exchange.Ring
	}
	var degree int
	switch cfg.Scheme {
	case exchange.Ring:
		degree = 2
	case exchange.Torus2D:
		degree = 4
	default:
		return nil, fmt.Errorf("cluster: scheme %v lacks the directional structure degraded-mode rerouting needs (use ring or torus)", cfg.Scheme)
	}
	if cfg.ExchangeCount < 0 || degree*cfg.ExchangeCount >= cfg.ParticlesPer {
		return nil, fmt.Errorf("cluster: exchange count %d incompatible with sub-filter size %d under %v",
			cfg.ExchangeCount, cfg.ParticlesPer, cfg.Scheme)
	}
	if cfg.Network.Name == "" {
		cfg.Network = GigabitEthernet()
	}
	if cfg.WorkersPerNode <= 0 {
		cfg.WorkersPerNode = 1
	}
	c := &Cluster{cfg: cfg, m: m, dim: m.StateDim()}
	c.nodes = make([]*node, cfg.Nodes)
	c.failed = make([]bool, cfg.Nodes)
	c.reseed = make([]bool, cfg.Nodes)
	c.contrib = make([]atomic.Int64, cfg.Nodes)
	total := cfg.Nodes * cfg.SubFiltersPerNode
	gtop, err := exchange.NewTopology(cfg.Scheme, total)
	if err != nil {
		return nil, err
	}
	c.top = gtop
	c.outbox = make([]float64, total*max(cfg.ExchangeCount, 1)*(c.dim+1))
	for i := range c.nodes {
		dev := device.New(device.Config{Workers: cfg.WorkersPerNode, LocalMemBytes: -1})
		top, err := exchange.NewTopology(exchange.None, cfg.SubFiltersPerNode)
		if err != nil {
			return nil, err
		}
		pipe, err := kernels.New(dev, m, kernels.Config{
			SubFilters:   cfg.SubFiltersPerNode,
			ParticlesPer: cfg.ParticlesPer,
			Topology:     top,
			Resampler:    cfg.Resampler,
		}, rng.StreamSeed(seed, i))
		if err != nil {
			return nil, err
		}
		c.nodes[i] = &node{pipe: pipe, dev: dev}
	}
	c.seed = seed
	return c, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements filter.Filter.
func (c *Cluster) Name() string { return "cluster" }

// TotalParticles returns the global population size.
func (c *Cluster) TotalParticles() int {
	return c.cfg.Nodes * c.cfg.SubFiltersPerNode * c.cfg.ParticlesPer
}

// Reset implements filter.Filter.
func (c *Cluster) Reset(seed uint64) {
	c.seed = seed
	c.k = 0
	c.commBytes.Store(0)
	c.commMsgs.Store(0)
	c.rounds.Store(0)
	c.degradedRounds.Store(0)
	c.reroutedEdges.Store(0)
	c.droppedEdges.Store(0)
	c.reseeds.Store(0)
	c.transportErrors.Store(0)
	for i := range c.contrib {
		c.contrib[i].Store(0)
	}
	for i, n := range c.nodes {
		n.pipe.Reset(rng.StreamSeed(seed, i))
	}
	c.failMu.Lock()
	for i := range c.failed {
		c.failed[i] = false
		c.reseed[i] = false
	}
	c.failMu.Unlock()
}

// FailNode freezes node i: it stops computing, exchanging and
// contributing to estimates until RestoreNode. Safe to call from a
// different goroutine than Step; the failure takes effect at the next
// round boundary.
func (c *Cluster) FailNode(i int) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if i >= 0 && i < len(c.failed) {
		c.failed[i] = true
	}
}

// RestoreNode brings a failed node back. The node does not resume from
// its stale frozen particles: before its first round back it is
// re-seeded from its live neighbors' current top-t particles, so it
// rejoins at the survivors' posterior instead of where the target was
// when it died (Config.StaleRestore disables this for ablation). Safe
// to call from a different goroutine than Step; like failures, the
// restore takes effect at the next round boundary.
func (c *Cluster) RestoreNode(i int) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if i >= 0 && i < len(c.failed) && c.failed[i] {
		c.failed[i] = false
		if !c.cfg.StaleRestore {
			c.reseed[i] = true
		}
	}
}

// FailedNodes returns the number of currently failed nodes.
func (c *Cluster) FailedNodes() int {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	n := 0
	for _, f := range c.failed {
		if f {
			n++
		}
	}
	return n
}

// failedSnapshot copies the fault flags for one round's consistent view
// and claims the pending re-seed set: a node restored since the last
// round is re-seeded exactly once, before its first round back.
func (c *Cluster) failedSnapshot() (failed, pending []bool) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	failed = append([]bool(nil), c.failed...)
	pending = append([]bool(nil), c.reseed...)
	for i := range c.reseed {
		c.reseed[i] = false
	}
	return failed, pending
}

// Step implements filter.Filter: one global filtering round.
func (c *Cluster) Step(u, z []float64) filter.Estimate {
	c.k++
	c.rounds.Add(1)
	failed, pending := c.failedSnapshot()
	anyFailed := false
	liveN := 0
	for _, f := range failed {
		anyFailed = anyFailed || f
		if !f {
			liveN++
		}
	}
	if anyFailed {
		c.degradedRounds.Add(1)
	}
	tr := c.tracer.Load()
	degraded := int64(0)
	if anyFailed {
		degraded = 1
	}
	roundSp := tr.Begin("cluster", "round").Arg("k", int64(c.k)).Arg("degraded", degraded)

	// Phase 0: re-seed nodes restored since the last round from their
	// live neighbors' top-t, before any kernel touches their state.
	reseedSp := tr.Begin("cluster", "reseed")
	reseeded := int64(0)
	for i := range pending {
		if pending[i] && !failed[i] {
			c.reseedNode(i, failed, pending)
			reseeded++
		}
	}
	if reseeded > 0 {
		reseedSp.Arg("nodes", reseeded).End()
	}

	// Phase 1 (per node, concurrently): local kernels up to the sorted
	// state and the node-local best.
	localSp := tr.Begin("cluster", "local kernels").Arg("live_nodes", int64(liveN))
	bests := make([]nodeBest, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		if failed[i] {
			continue
		}
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			n.pipe.KernelRand()
			n.pipe.KernelSampleWeight(u, z, c.k)
			n.pipe.KernelSortLocal()
			state, lw := n.pipe.KernelEstimate()
			// The estimate buffer is pipeline-owned and reused next
			// round; lastBests outlives it, so copy.
			bests[i] = nodeBest{state: append([]float64(nil), state...), logw: lw, ok: true}
		}(i, n)
	}
	wg.Wait()
	localSp.End()

	// Phase 2: global ring exchange across the whole sub-filter network;
	// inter-node edges are counted as network traffic. The span records
	// this round's reroute/drop deltas, making degraded-mode reroutes
	// visible per round rather than only as cumulative counters.
	exchSp := tr.Begin("cluster", "exchange")
	rerBefore, drpBefore := c.reroutedEdges.Load(), c.droppedEdges.Load()
	c.exchangeGlobal(failed)
	exchSp.Arg("rerouted", c.reroutedEdges.Load()-rerBefore).
		Arg("dropped", c.droppedEdges.Load()-drpBefore).End()

	// Phase 3 (per node): local resampling.
	resSp := tr.Begin("cluster", "resample")
	for i, n := range c.nodes {
		if failed[i] {
			continue
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.pipe.KernelResample()
		}(n)
	}
	wg.Wait()
	resSp.End()
	roundSp.End()

	// Global estimate over surviving nodes.
	best := filter.Estimate{State: make([]float64, c.dim), LogWeight: negInf}
	for _, nb := range bests {
		if nb.ok && nb.logw > best.LogWeight {
			copy(best.State, nb.state)
			best.LogWeight = nb.logw
		}
	}
	c.lastBests = bests
	return best
}

// nodeBest is one node's local best from the last round's phase 1.
type nodeBest struct {
	state []float64
	logw  float64
	ok    bool
}

// NodeEstimate returns node i's local best from the most recent round:
// its state, log-weight, and whether the node participated (failed
// nodes do not). Not safe to call concurrently with Step; it exists for
// per-node convergence introspection in the failure experiments.
func (c *Cluster) NodeEstimate(i int) (state []float64, logw float64, ok bool) {
	if i < 0 || i >= len(c.lastBests) {
		return nil, negInf, false
	}
	nb := c.lastBests[i]
	return append([]float64(nil), nb.state...), nb.logw, nb.ok
}

const negInf = -1.7976931348623157e308

// exchangeGlobal performs the global exchange over all S sub-filters,
// under the round's snapshot of the fault flags. Each live sub-filter
// pulls its sender along every topology direction; when the immediate
// neighbor sits on a failed node the edge is rerouted — the receiver
// walks the direction's cycle to the next live sender — so no exchange
// edge freezes while any live sender exists. With no failures the
// rerouting degenerates to the plain neighbor pulls, bit-identically.
func (c *Cluster) exchangeGlobal(failed []bool) {
	t := c.cfg.ExchangeCount
	degree := c.top.Directions()
	if t == 0 || degree == 0 {
		return
	}
	spn := c.cfg.SubFiltersPerNode
	mp := c.cfg.ParticlesPer
	dim := c.dim
	stride := dim + 1
	S := c.cfg.Nodes * spn
	live := func(q int) bool { return !failed[q/spn] }
	anyFailed := false
	for _, f := range failed {
		anyFailed = anyFailed || f
	}
	var tr Transport
	if p := c.transport.Load(); p != nil {
		tr = *p
	}
	round := c.rounds.Load()

	// Stage every live sub-filter's top-t into the global outbox.
	for g := 0; g < S; g++ {
		nodeIdx := g / spn
		if failed[nodeIdx] {
			continue
		}
		local := g % spn
		pipe := c.nodes[nodeIdx].pipe
		lw := pipe.LogWeights()
		for i := 0; i < t; i++ {
			rec := c.outbox[(g*t+i)*stride : (g*t+i+1)*stride]
			pipe.ReadParticle(local, i, rec[:dim])
			rec[dim] = lw[local*mp+i]
		}
	}
	// Deliver: each live sub-filter pulls along every direction from the
	// first live sender on that direction's cycle. Lanes with no live
	// sender anywhere (every other node dead, or a degenerate torus
	// axis) keep native particles. Inter-node pulls are counted as
	// messages.
	for g := 0; g < S; g++ {
		nodeIdx := g / spn
		if failed[nodeIdx] {
			continue
		}
		local := g % spn
		pipe := c.nodes[nodeIdx].pipe
		lw := pipe.LogWeights()
		slot := mp - degree*t
		for dir := 0; dir < degree; dir++ {
			q := c.top.RouteLive(g, dir, live)
			if q < 0 {
				if anyFailed {
					c.droppedEdges.Add(1)
				}
				slot += t
				continue
			}
			if q != c.top.Walk(g, dir) {
				c.reroutedEdges.Add(1)
			}
			qNode := q / spn
			recs := c.outbox[(q * t * stride) : (q*t+t)*stride]
			if qNode != nodeIdx {
				c.commMsgs.Add(1)
				c.commBytes.Add(int64(t * stride * 8))
				if tr != nil {
					got, err := tr.Exchange(round, q, g, recs)
					if err != nil || len(got) != len(recs) {
						// The edge drops exactly as if the sender had no
						// live lane: native particles stay in the slots.
						c.transportErrors.Add(1)
						c.droppedEdges.Add(1)
						slot += t
						continue
					}
					recs = got
				}
			}
			c.contrib[qNode].Add(1)
			for i := 0; i < t; i++ {
				rec := recs[i*stride : (i+1)*stride]
				pipe.WriteParticle(local, slot, rec[:dim])
				lw[local*mp+slot] = rec[dim]
				slot++
			}
		}
	}
}

// reseedNode replaces a restored node's stale particles with copies of
// its live neighbors' current top-t: for each of the node's sub-filters
// the donors are the first live sender along every topology direction
// (skipping failed nodes and nodes restored in this same round, whose
// state is equally stale), and the donors' top-t records are tiled
// deterministically across all m particle slots. With no live donor
// anywhere the stale particles are kept — there is nothing better.
func (c *Cluster) reseedNode(nodeIdx int, failed, pending []bool) {
	spn := c.cfg.SubFiltersPerNode
	mp := c.cfg.ParticlesPer
	dim := c.dim
	t := max(c.cfg.ExchangeCount, 1)
	donorOK := func(q int) bool {
		n := q / spn
		return !failed[n] && !pending[n] && n != nodeIdx
	}
	pipe := c.nodes[nodeIdx].pipe
	lw := pipe.LogWeights()
	degree := c.top.Directions()
	reseeded := false
	tmp := make([]float64, dim)
	for local := 0; local < spn; local++ {
		g := nodeIdx*spn + local
		// Gather the donor pool: top-t of each direction's nearest donor.
		states := make([]float64, 0, degree*t*dim)
		weights := make([]float64, 0, degree*t)
		for dir := 0; dir < degree; dir++ {
			q := c.top.RouteLive(g, dir, donorOK)
			if q < 0 {
				continue
			}
			donor := c.nodes[q/spn].pipe
			qlw := c.nodes[q/spn].pipe.LogWeights()
			for i := 0; i < t; i++ {
				donor.ReadParticle(q%spn, i, tmp)
				states = append(states, tmp...)
				weights = append(weights, qlw[(q%spn)*mp+i])
			}
		}
		if len(weights) == 0 {
			continue
		}
		for s := 0; s < mp; s++ {
			d := s % len(weights)
			pipe.WriteParticle(local, s, states[d*dim:(d+1)*dim])
			lw[local*mp+s] = weights[d]
		}
		reseeded = true
	}
	if reseeded {
		c.reseeds.Add(1)
	}
}

// CommStats returns the accumulated inter-node traffic.
func (c *Cluster) CommStats() (bytes, messages int64) {
	return c.commBytes.Load(), c.commMsgs.Load()
}

// PredictCommPerRound converts the measured per-round traffic into a
// communication-time prediction under the configured network profile.
// Messages from different node pairs overlap; the cost is the busiest
// node's share (each node exchanges with two neighbor nodes per round).
func (c *Cluster) PredictCommPerRound() time.Duration {
	rounds := c.rounds.Load()
	if rounds == 0 || c.cfg.Nodes == 1 {
		return 0
	}
	msgsPerRound := float64(c.commMsgs.Load()) / float64(rounds)
	bytesPerRound := float64(c.commBytes.Load()) / float64(rounds)
	live := float64(c.cfg.Nodes - c.FailedNodes())
	if live == 0 {
		return 0
	}
	perNodeMsgs := msgsPerRound / live
	perNodeBytes := bytesPerRound / live
	sec := perNodeMsgs*c.cfg.Network.Latency.Seconds() + perNodeBytes/(c.cfg.Network.BandwidthGBs*1e9)
	return time.Duration(sec * float64(time.Second))
}

// SetTracer attaches a span tracer; each round records a parent span
// plus reseed/local/exchange/resample phase spans. Pass nil to detach.
// Safe to call concurrently with Step.
func (c *Cluster) SetTracer(tr *telemetry.Tracer) { c.tracer.Store(tr) }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// NodeProfiler exposes node i's device profiler (for scaling experiments).
func (c *Cluster) NodeProfiler(i int) *device.Profiler { return c.nodes[i].dev.Profiler() }

var _ filter.Filter = (*Cluster)(nil)
